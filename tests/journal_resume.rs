//! Crash-recovery differential: a campaign interrupted at a randomized
//! point and resumed from its journal must produce exports that are
//! **byte-identical** to an uninterrupted run — across worker counts and
//! both reset modes, for CPU and DSA workloads, including a simulated
//! SIGKILL torn tail (the journal cut mid-line).
//!
//! This extends the reset-mode differential suite's invariant (per-mask
//! records are deterministic) to the persistence layer: because records
//! don't depend on *when* they ran, replaying the journaled prefix and
//! driving only the remainder reproduces the full record set exactly.

use gem5_marvel::core::{CampaignConfig, ResetMode, RunRecord, TelemetryConfig};
use gem5_marvel::serve::{CampaignSpec, Journal, Prepared};
use gem5_marvel::telemetry::Registry;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tiny deterministic LCG for the randomized interruption points (no
/// RNG dependency in integration tests).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("marvel_journal_resume_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config_for(spec: &CampaignSpec, workers: usize, reset: ResetMode) -> CampaignConfig {
    let mut cc = spec.to_config(TelemetryConfig {
        registry: Registry::disabled(),
        progress_interval_ms: 0,
        flight_capacity: 0,
        taint: spec.taint,
        ..Default::default()
    });
    cc.workers = workers;
    cc.reset_mode = reset;
    cc
}

/// The uninterrupted oracle: drive everything in one go.
fn oracle_records(prepared: &Prepared, cc: &CampaignConfig, total: usize) -> Vec<RunRecord> {
    let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; total]);
    let outcome = prepared.drive(cc, &vec![false; total], None, &|i, rec| {
        slots.lock().unwrap()[i] = Some(rec);
    });
    assert_eq!(outcome.completed, total);
    assert!(!outcome.cancelled);
    slots.into_inner().unwrap().into_iter().map(|r| r.expect("oracle complete")).collect()
}

/// Interrupt after `cut` journaled records (cancel flag tripped from the
/// sink, like a shutdown signal landing mid-campaign), optionally tear
/// the journal tail mid-line (SIGKILL between write and fsync), then
/// "restart": reopen the journal, drive only what's missing, export.
fn interrupted_then_resumed(
    spec: &CampaignSpec,
    prepared: &Prepared,
    cc: &CampaignConfig,
    dir: &Path,
    cut: usize,
    tear_tail: bool,
) -> Vec<String> {
    let total = spec.n_faults;
    let jpath = dir.join("journal.jsonl");

    // Phase 1: run until `cut` records have landed, then cancel.
    {
        let (journal, recovered) = Journal::open(&jpath, &spec.id, &spec.digest(), total).unwrap();
        assert!(recovered.iter().all(|r| r.is_none()), "fresh journal");
        let state = Mutex::new(journal);
        let delivered = AtomicUsize::new(0);
        let cancel = AtomicBool::new(false);
        prepared.drive(cc, &vec![false; total], Some(&cancel), &|i, rec| {
            state.lock().unwrap().append(i, &rec).unwrap();
            if delivered.fetch_add(1, Ordering::SeqCst) + 1 >= cut {
                cancel.store(true, Ordering::SeqCst);
            }
        });
        // No flush: the journal ends wherever the last append left it,
        // exactly like a process that died without a clean shutdown.
    }
    if tear_tail {
        let len = std::fs::metadata(&jpath).unwrap().len();
        let file = OpenOptions::new().write(true).open(&jpath).unwrap();
        file.set_len(len.saturating_sub(7)).unwrap();
    }

    // Phase 2: "restart" — recover the journal, drive only the remainder.
    let (journal, recovered) = Journal::open(&jpath, &spec.id, &spec.digest(), total).unwrap();
    let prior = recovered.iter().filter(|r| r.is_some()).count();
    assert!(prior >= 1, "interruption should leave journaled progress (cut={cut})");
    assert!(
        prior < total || cut >= total,
        "interruption at cut={cut} should leave work to resume (prior={prior})"
    );
    let skip: Vec<bool> = recovered.iter().map(|r| r.is_some()).collect();
    let state = Mutex::new((journal, recovered));
    let outcome = prepared.drive(cc, &skip, None, &|i, rec| {
        let mut g = state.lock().unwrap();
        g.0.append(i, &rec).unwrap();
        g.1[i] = Some(rec);
    });
    let (mut journal, slots) = state.into_inner().unwrap();
    journal.flush().unwrap();
    assert_eq!(prior + outcome.completed, total);
    let records: Vec<RunRecord> =
        slots.into_iter().map(|r| r.expect("resume completes every run")).collect();
    gem5_marvel::serve::write_exports(dir, spec, prepared, &records).unwrap()
}

fn assert_resume_byte_identical(spec_text: &str, tag: &str) {
    let spec = CampaignSpec::parse(spec_text).unwrap();
    let total = spec.n_faults;
    let mut lcg = Lcg(spec.seed ^ 0x9E3779B97F4A7C15);
    for (case, (workers, reset)) in
        [(1usize, ResetMode::Dirty), (2, ResetMode::Dirty), (1, ResetMode::Clone), (2, ResetMode::Clone)]
            .into_iter()
            .enumerate()
    {
        let cc = config_for(&spec, workers, reset);
        let prepared = Prepared::new(&spec, &cc).unwrap();

        let oracle_dir = scratch_dir(&format!("{tag}_{case}_oracle"));
        let oracle = oracle_records(&prepared, &cc, total);
        let oracle_files =
            gem5_marvel::serve::write_exports(&oracle_dir, &spec, &prepared, &oracle).unwrap();

        // Randomized interruption point strictly inside the campaign;
        // tear the tail on every other case to also cover torn writes.
        let cut = 1 + (lcg.next() as usize) % (total - 1);
        let tear = case % 2 == 1;
        let resumed_dir = scratch_dir(&format!("{tag}_{case}_resumed"));
        let resumed_files = interrupted_then_resumed(&spec, &prepared, &cc, &resumed_dir, cut, tear);

        assert_eq!(oracle_files, resumed_files, "same artifact set");
        for name in &oracle_files {
            let a = std::fs::read(oracle_dir.join(name)).unwrap();
            let b = std::fs::read(resumed_dir.join(name)).unwrap();
            assert_eq!(
                a, b,
                "{name} differs after resume (workers={workers}, reset={reset:?}, \
                 cut={cut}, tear={tear})"
            );
        }
        std::fs::remove_dir_all(&oracle_dir).ok();
        std::fs::remove_dir_all(&resumed_dir).ok();
    }
}

#[test]
fn dsa_campaign_resume_is_byte_identical() {
    // Taint on: exercises the attribution field's journal round-trip and
    // the attribution export surfaces.
    assert_resume_byte_identical(
        r#"{"type":"campaign_spec","schema_version":1,"id":"jr-dsa",
            "workload":{"kind":"dsa","design":"fft","component":"REAL","fus":4},
            "faults":24,"seed":11,"taint":true}"#,
        "dsa",
    );
}

#[test]
fn cpu_campaign_resume_is_byte_identical() {
    // HVF on: exercises the hvf field's journal round-trip.
    assert_resume_byte_identical(
        r#"{"type":"campaign_spec","schema_version":1,"id":"jr-cpu",
            "workload":{"kind":"cpu","bench":"crc32","isa":"riscv"},
            "target":"prf","faults":12,"seed":5,"hvf":true,"ladder_rungs":4,
            "fast_prep":true}"#,
        "cpu",
    );
}
