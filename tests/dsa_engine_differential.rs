//! Differential oracle for the event-driven DSA engine: campaigns driven
//! by the static-schedule/golden-replay engine must produce byte-identical
//! exports — per-run effect/trap/cycles/early-termination/convergence plus
//! the marvel-taint attribution tables — to the tick-every-cycle oracle,
//! across fault models (transient/permanent), targets (SPM, RegBank, MMR),
//! worker counts, reset modes and ladder/convergence configurations.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, run_dsa_campaign, run_dsa_masks,
    CampaignConfig, DsaCampaignResult, DsaEngine, DsaGolden, FaultKind, FaultMask, FaultModel,
    ResetMode, TelemetryConfig,
};
use gem5_marvel::soc::Target;
use gem5_marvel::workloads::accel;
use marvel_accel::FuConfig;

fn config(
    kind: FaultKind,
    engine: DsaEngine,
    reset: ResetMode,
    rungs: usize,
    conv: bool,
    workers: usize,
) -> CampaignConfig {
    CampaignConfig {
        n_faults: 12,
        kind,
        workers,
        reset_mode: reset,
        ladder_rungs: rungs,
        convergence_exit: conv,
        dsa_engine: engine,
        telemetry: TelemetryConfig { taint: true, ..Default::default() },
        ..Default::default()
    }
}

/// Render the full export surface of one campaign: one line per run
/// (classification, trap tag, cycle count, early-termination and
/// convergence flags) plus the attribution CSV + JSONL tables.
fn export(res: &DsaCampaignResult) -> String {
    let mut out: String = res
        .records
        .iter()
        .map(|r| {
            format!("{:?},{:?},{},{},{}\n", r.effect, r.trap, r.cycles, r.early_terminated, r.converged)
        })
        .collect();
    if let Some(map) = attribution_by_structure(&res.records) {
        out.push_str(&attribution_csv(&map));
        out.push_str(&attribution_jsonl(&map));
    }
    out
}

#[test]
fn event_engine_exports_byte_identical_across_matrix() {
    let cases = [
        ("FFT", Target::Spm { accel: 0, mem: 0 }),
        ("BFS", Target::RegBank { accel: 0, mem: 0 }),
        ("BFS", Target::Mmr { accel: 0 }),
    ];
    for (design, target) in cases {
        let d = accel::design(design);
        let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
        assert!(g.harness.accel.replay_armed(), "{design} must be schedulable");
        for kind in [FaultKind::Transient, FaultKind::Permanent] {
            let oracle = export(&run_dsa_campaign(
                &g,
                target,
                &config(kind, DsaEngine::Cycle, ResetMode::Clone, 0, false, 1),
            ));
            for workers in [1usize, 2, 8] {
                for reset in [ResetMode::Clone, ResetMode::Dirty] {
                    for (rungs, conv) in [(0usize, false), (6, true)] {
                        let got = export(&run_dsa_campaign(
                            &g,
                            target,
                            &config(kind, DsaEngine::Event, reset, rungs, conv, workers),
                        ));
                        assert_eq!(
                            oracle, got,
                            "{design} {target:?} {kind:?} workers={workers} \
                             reset={reset:?} rungs={rungs} conv={conv}"
                        );
                    }
                }
            }
        }
    }
}

/// Non-taint campaigns must also export identically: the event engine
/// enables the shadow planes internally (replay memoization needs them),
/// which must not leak attribution into records the cycle oracle leaves
/// bare.
#[test]
fn event_engine_without_taint_matches_cycle_oracle() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = Target::Spm { accel: 0, mem: 1 };
    let plain = |engine| {
        let cc = CampaignConfig { n_faults: 16, workers: 2, dsa_engine: engine, ..Default::default() };
        let res = run_dsa_campaign(&g, target, &cc);
        assert!(
            res.records.iter().all(|r| r.attribution.is_none()),
            "non-taint campaigns must not carry attribution ({engine:?})"
        );
        export(&res)
    };
    assert_eq!(plain(DsaEngine::Cycle), plain(DsaEngine::Event));
}

/// Regression for the convergence-exit bugfix: with the event engine's
/// lazy retirement, a fault injected on a cycle strictly between two
/// schedule events must not let `state_eq` declare a masked run while
/// fire events are still pending. Sweep a dense band of injection cycles
/// mid-compute (guaranteeing many between-event landings) and require
/// the laddered convergence-exit campaign to match the full-run cycle
/// oracle record for record.
#[test]
fn convergence_exit_is_exact_between_fire_events() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = Target::Spm { accel: 0, mem: 0 };
    let bit_len = g.harness.accel.spms[0].bit_len();
    let mid = g.cycles / 2;
    let masks: Vec<FaultMask> = (0..48u64)
        .map(|i| FaultMask {
            target,
            bits: vec![(i * 977) % bit_len],
            model: FaultModel::Transient { cycle: mid + i },
        })
        .collect();
    let oracle = export(&run_dsa_masks(
        &g,
        target,
        &masks,
        &config(FaultKind::Transient, DsaEngine::Cycle, ResetMode::Clone, 0, false, 1),
    ));
    for engine in [DsaEngine::Cycle, DsaEngine::Event] {
        let got = export(&run_dsa_masks(
            &g,
            target,
            &masks,
            &config(FaultKind::Transient, engine, ResetMode::Dirty, 8, true, 2),
        ));
        assert_eq!(oracle, got, "laddered convergence exit diverged on {engine:?}");
    }
}
