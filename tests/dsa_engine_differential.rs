//! Differential oracle for the event-driven DSA engine: campaigns driven
//! by the static-schedule/golden-replay engine must produce byte-identical
//! exports — per-run effect/trap/cycles/early-termination/convergence plus
//! the marvel-taint attribution tables — to the tick-every-cycle oracle,
//! across fault models (transient/permanent), targets (SPM, RegBank, MMR),
//! worker counts, reset modes and ladder/convergence configurations.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, run_dsa_campaign, run_dsa_masks,
    CampaignConfig, DsaCampaignResult, DsaEngine, DsaGolden, FaultKind, FaultMask, FaultModel,
    ResetMode, TelemetryConfig,
};
use gem5_marvel::soc::Target;
use gem5_marvel::workloads::accel;
use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{Accelerator, DmaDir, DmaJob, FuConfig, Sram, SramKind};
use marvel_core::DsaHarness;
use marvel_isa::AluOp;

fn config(
    kind: FaultKind,
    engine: DsaEngine,
    reset: ResetMode,
    rungs: usize,
    conv: bool,
    workers: usize,
) -> CampaignConfig {
    CampaignConfig {
        n_faults: 12,
        kind,
        workers,
        reset_mode: reset,
        ladder_rungs: rungs,
        convergence_exit: conv,
        dsa_engine: engine,
        telemetry: TelemetryConfig { taint: true, ..Default::default() },
        ..Default::default()
    }
}

/// Render the full export surface of one campaign: one line per run
/// (classification, trap tag, cycle count, early-termination and
/// convergence flags) plus the attribution CSV + JSONL tables.
fn export(res: &DsaCampaignResult) -> String {
    let mut out: String = res
        .records
        .iter()
        .map(|r| {
            format!("{:?},{:?},{},{},{}\n", r.effect, r.trap, r.cycles, r.early_terminated, r.converged)
        })
        .collect();
    if let Some(map) = attribution_by_structure(&res.records) {
        out.push_str(&attribution_csv(&map));
        out.push_str(&attribution_jsonl(&map));
    }
    out
}

#[test]
fn event_engine_exports_byte_identical_across_matrix() {
    let cases = [
        ("FFT", Target::Spm { accel: 0, mem: 0 }),
        ("BFS", Target::RegBank { accel: 0, mem: 0 }),
        ("BFS", Target::Mmr { accel: 0 }),
    ];
    for (design, target) in cases {
        let d = accel::design(design);
        let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
        assert!(g.harness.accel.replay_armed(), "{design} must be schedulable");
        for kind in [FaultKind::Transient, FaultKind::Permanent] {
            let oracle = export(&run_dsa_campaign(
                &g,
                target,
                &config(kind, DsaEngine::Cycle, ResetMode::Clone, 0, false, 1),
            ));
            for workers in [1usize, 2, 8] {
                for reset in [ResetMode::Clone, ResetMode::Dirty] {
                    for (rungs, conv) in [(0usize, false), (6, true)] {
                        let got = export(&run_dsa_campaign(
                            &g,
                            target,
                            &config(kind, DsaEngine::Event, reset, rungs, conv, workers),
                        ));
                        assert_eq!(
                            oracle, got,
                            "{design} {target:?} {kind:?} workers={workers} \
                             reset={reset:?} rungs={rungs} conv={conv}"
                        );
                    }
                }
            }
        }
    }
}

/// Non-taint campaigns must also export identically: the event engine
/// enables the shadow planes internally (replay memoization needs them),
/// which must not leak attribution into records the cycle oracle leaves
/// bare.
#[test]
fn event_engine_without_taint_matches_cycle_oracle() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = Target::Spm { accel: 0, mem: 1 };
    let plain = |engine| {
        let cc = CampaignConfig { n_faults: 16, workers: 2, dsa_engine: engine, ..Default::default() };
        let res = run_dsa_campaign(&g, target, &cc);
        assert!(
            res.records.iter().all(|r| r.attribution.is_none()),
            "non-taint campaigns must not carry attribution ({engine:?})"
        );
        export(&res)
    };
    assert_eq!(plain(DsaEngine::Cycle), plain(DsaEngine::Event));
}

/// Elementwise OUT[i] = IN[i] * 3: IN (Spm 0) is the only memory any load
/// manifest touches, OUT (Spm 1) is store-only. A fault in OUT is
/// therefore provably disjoint from every load in the design.
fn triple_harness(n: u64) -> DsaHarness {
    let bytes = (n * 8) as usize;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let body = g.block(1);
    let done = g.block(0);
    g.select(entry);
    let z = g.konst(0);
    g.jump(body, &[z]);
    g.select(body);
    let i = g.arg(0);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let v = g.load(MemRef::Spm(0), 8, off);
    let three = g.konst(3);
    let prod = g.alu(AluOp::Mul, v, three);
    g.store(MemRef::Spm(1), 8, off, prod);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let nn = g.konst(n);
    let more = g.alu(AluOp::Sltu, i2, nn);
    g.branch(more, body, &[i2], done, &[]);
    g.select(done);
    g.finish();
    let accel = Accelerator::new(
        "triple",
        g.build().unwrap(),
        FuConfig::default(),
        vec![Sram::new("IN", SramKind::Spm, bytes, 2), Sram::new("OUT", SramKind::Spm, bytes, 2)],
        vec![],
        0,
    );
    let mut ram = vec![0u8; bytes * 2];
    for (k, b) in ram.iter_mut().take(bytes).enumerate() {
        *b = (k as u8).wrapping_mul(13).wrapping_add(7);
    }
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![DmaJob {
            dir: DmaDir::ToSram,
            ram_off: 0,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: bytes,
        }],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: bytes,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: bytes,
        }],
        args: vec![],
        output: bytes..bytes * 2,
    }
}

/// Stuck-at shadow taint whose byte range is provably disjoint from every
/// load manifest must not defeat the whole-block warp: the warp's
/// per-load taint check is byte-precise, so a permanent fault in a
/// store-only memory leaves every block warpable (stores still go through
/// the ordinary write path, which reasserts the stuck bit and its shadow
/// taint). Pins both the warp coverage — via the `warp_blocks` stat —
/// and campaign-level byte-identity against the cycle oracle.
#[test]
fn warp_tolerates_load_disjoint_stuck_taint() {
    let g = DsaGolden::prepare(triple_harness(64), 1_000_000);
    assert!(g.harness.accel.replay_armed(), "triple must be schedulable");
    let out_spm = Target::Spm { accel: 0, mem: 1 };

    // Warp coverage oracle: the fault-free event run warps everything.
    let warp_full = {
        let mut h = g.harness.clone();
        assert!(h.accel.set_engine_event());
        h.accel.enable_taint("IN");
        h.run(None, 1_000_000);
        h.accel.stats.warp_blocks
    };
    assert!(warp_full > 60, "fault-free replay must warp the whole run, got {warp_full}");

    // Stuck-at in the store-only OUT memory: taint never meets a load
    // manifest, so warp coverage must not regress.
    let mut h = g.harness.clone();
    assert!(h.accel.set_engine_event());
    h.accel.enable_taint("OUT");
    let mask = FaultMask {
        target: out_spm,
        bits: vec![5 * 64 + 3],
        model: FaultModel::Permanent { value: true },
    };
    h.run(Some(&mask), 1_000_000);
    assert_eq!(
        h.accel.stats.warp_blocks, warp_full,
        "load-disjoint stuck taint must not abort any block warp"
    );

    // And the campaign export surface stays byte-identical to the cycle
    // oracle for stuck-at faults on the store-only memory.
    let oracle = export(&run_dsa_campaign(
        &g,
        out_spm,
        &config(FaultKind::Permanent, DsaEngine::Cycle, ResetMode::Clone, 0, false, 1),
    ));
    for reset in [ResetMode::Clone, ResetMode::Dirty] {
        for (rungs, conv) in [(0usize, false), (6, true)] {
            let got = export(&run_dsa_campaign(
                &g,
                out_spm,
                &config(FaultKind::Permanent, DsaEngine::Event, reset, rungs, conv, 2),
            ));
            assert_eq!(oracle, got, "stuck-at OUT campaign reset={reset:?} rungs={rungs} conv={conv}");
        }
    }
}

/// Regression for the convergence-exit bugfix: with the event engine's
/// lazy retirement, a fault injected on a cycle strictly between two
/// schedule events must not let `state_eq` declare a masked run while
/// fire events are still pending. Sweep a dense band of injection cycles
/// mid-compute (guaranteeing many between-event landings) and require
/// the laddered convergence-exit campaign to match the full-run cycle
/// oracle record for record.
#[test]
fn convergence_exit_is_exact_between_fire_events() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = Target::Spm { accel: 0, mem: 0 };
    let bit_len = g.harness.accel.spms[0].bit_len();
    let mid = g.cycles / 2;
    let masks: Vec<FaultMask> = (0..48u64)
        .map(|i| FaultMask {
            target,
            bits: vec![(i * 977) % bit_len],
            model: FaultModel::Transient { cycle: mid + i },
        })
        .collect();
    let oracle = export(&run_dsa_masks(
        &g,
        target,
        &masks,
        &config(FaultKind::Transient, DsaEngine::Cycle, ResetMode::Clone, 0, false, 1),
    ));
    for engine in [DsaEngine::Cycle, DsaEngine::Event] {
        let got = export(&run_dsa_masks(
            &g,
            target,
            &masks,
            &config(FaultKind::Transient, engine, ResetMode::Dirty, 8, true, 2),
        ));
        assert_eq!(oracle, got, "laddered convergence exit diverged on {engine:?}");
    }
}
