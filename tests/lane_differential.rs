//! Differential oracle for the lane-packed campaign engine: campaigns run
//! with any lane width must produce records byte-identical to the scalar
//! oracle (`lane_width: 0`) — effect, HVF, trap tag, cycle count,
//! early-termination and convergence flags, record for record — across
//! targets, worker counts, reset modes, ladder/convergence configurations
//! and early-termination settings.

use gem5_marvel::core::{
    run_campaign, run_masks, CampaignConfig, FaultMask, FaultModel, Golden, ResetMode,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::mibench;

fn golden_for(isa: Isa) -> Golden {
    let bin = assemble(&mibench::build("crc32"), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

#[derive(Clone, Copy)]
struct Cfg {
    lane_width: usize,
    workers: usize,
    reset: ResetMode,
    rungs: usize,
    conv: bool,
    et: bool,
    hvf: bool,
}

fn config(c: Cfg) -> CampaignConfig {
    CampaignConfig {
        n_faults: 40,
        collect_hvf: c.hvf,
        workers: c.workers,
        early_termination: c.et,
        reset_mode: c.reset,
        ladder_rungs: c.rungs,
        convergence_exit: c.conv,
        lane_width: c.lane_width,
        ..Default::default()
    }
}

/// Render every record field that reaches an export: classification, HVF,
/// trap tag, cycles, early-termination and convergence flags.
fn export(golden: &Golden, target: Target, c: Cfg) -> String {
    run_campaign(golden, target, &config(c))
        .records
        .iter()
        .map(|r| {
            format!(
                "{:?},{:?},{:?},{},{},{}\n",
                r.effect, r.hvf, r.trap, r.cycles, r.early_terminated, r.converged
            )
        })
        .collect()
}

const LANE_TARGETS: [Target; 6] =
    [Target::PrfInt, Target::PrfFp, Target::Rob, Target::L1D, Target::L1I, Target::L2];

#[test]
fn lane_records_byte_identical_to_scalar_oracle() {
    let g = golden_for(Isa::RiscV);
    for target in LANE_TARGETS {
        let oracle = export(
            &g,
            target,
            Cfg {
                lane_width: 0,
                workers: 1,
                reset: ResetMode::Dirty,
                rungs: 0,
                conv: false,
                et: true,
                hvf: true,
            },
        );
        for lane_width in [64usize, 8] {
            for (workers, reset, rungs, conv) in
                [(1usize, ResetMode::Clone, 0usize, false), (4, ResetMode::Dirty, 6, true)]
            {
                let got = export(
                    &g,
                    target,
                    Cfg { lane_width, workers, reset, rungs, conv, et: true, hvf: true },
                );
                assert_eq!(
                    oracle, got,
                    "{target:?} width={lane_width} workers={workers} \
                     reset={reset:?} rungs={rungs} conv={conv}"
                );
            }
        }
    }
}

/// Without early termination (and without HVF collection) every run goes
/// the distance — lanes retire only at rung convergence or halt, the
/// paths the main matrix exercises least.
#[test]
fn lane_records_match_oracle_without_early_termination() {
    let g = golden_for(Isa::Arm);
    for target in [Target::PrfInt, Target::Rob, Target::L1I] {
        for (et, hvf) in [(false, false), (false, true), (true, false)] {
            let base = Cfg {
                lane_width: 0,
                workers: 1,
                reset: ResetMode::Dirty,
                rungs: 6,
                conv: true,
                et,
                hvf,
            };
            let oracle = export(&g, target, base);
            let got = export(&g, target, Cfg { lane_width: 64, workers: 2, ..base });
            assert_eq!(oracle, got, "{target:?} et={et} hvf={hvf}");
        }
    }
}

/// Maximal pack density: 64 single-bit transients on the same cycle form
/// one full-width pass. Directed variant of the random campaigns above —
/// every lane shares the injection cycle, so arming, fate polls and rung
/// crossings all coincide.
#[test]
fn dense_same_cycle_pack_matches_scalar_oracle() {
    let g = golden_for(Isa::RiscV);
    for target in [Target::PrfInt, Target::Rob, Target::L1D] {
        let bit_len = g.ckpt.bit_len(target);
        let mid = g.ckpt_cycle + g.exec_cycles / 2;
        let masks: Vec<FaultMask> = (0..64u64)
            .map(|i| FaultMask {
                target,
                bits: vec![(i * 977) % bit_len],
                model: FaultModel::Transient { cycle: mid },
            })
            .collect();
        let run = |lane_width, workers| {
            let cc = CampaignConfig {
                collect_hvf: true,
                workers,
                ladder_rungs: 6,
                convergence_exit: true,
                lane_width,
                ..Default::default()
            };
            run_masks(&g, &masks, &cc)
                .iter()
                .map(|r| {
                    format!(
                        "{:?},{:?},{:?},{},{},{}\n",
                        r.effect, r.hvf, r.trap, r.cycles, r.early_terminated, r.converged
                    )
                })
                .collect::<String>()
        };
        let oracle = run(0, 1);
        for (width, workers) in [(64usize, 1usize), (64, 4), (16, 2)] {
            assert_eq!(oracle, run(width, workers), "{target:?} width={width} workers={workers}");
        }
    }
}
