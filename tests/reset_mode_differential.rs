//! Differential oracle for the zero-copy campaign engine: the dirty-reset
//! run lifecycle must produce byte-identical campaign exports — summary
//! CSV rows and the marvel-taint attribution tables (CSV + JSONL) — to
//! the clone-per-run path, at every worker count, on all three ISAs.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, csv_row, run_campaign,
    run_dsa_campaign, CampaignConfig, DsaGolden, Golden, ResetMode, TelemetryConfig, CSV_HEADER,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn config(mode: ResetMode, workers: usize) -> CampaignConfig {
    CampaignConfig {
        n_faults: 20,
        collect_hvf: true,
        workers,
        reset_mode: mode,
        telemetry: TelemetryConfig { taint: true, ..Default::default() },
        ..Default::default()
    }
}

/// Render the full export surface of one campaign: summary CSV plus the
/// attribution CSV + JSONL tables.
fn export(label: &str, golden: &Golden, target: Target, cc: &CampaignConfig) -> String {
    let res = run_campaign(golden, target, cc);
    let mut out = String::from(CSV_HEADER);
    out.push_str(&csv_row(label, &res));
    if let Some(map) = attribution_by_structure(&res.records) {
        out.push_str(&attribution_csv(&map));
        out.push_str(&attribution_jsonl(&map));
    }
    out
}

#[test]
fn cpu_exports_byte_identical_across_modes_and_workers() {
    for isa in Isa::ALL {
        let bin = assemble(&mibench::build("crc32"), isa).unwrap();
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        let g = Golden::prepare(sys, 80_000_000).unwrap();
        for target in [Target::PrfInt, Target::L1D] {
            let oracle = export("diff", &g, target, &config(ResetMode::Clone, 1));
            for workers in [1usize, 2, 8] {
                for mode in [ResetMode::Clone, ResetMode::Dirty] {
                    let got = export("diff", &g, target, &config(mode, workers));
                    assert_eq!(oracle, got, "{isa:?} {target:?} {mode:?} workers={workers}");
                }
            }
        }
    }
}

#[test]
fn dsa_exports_byte_identical_across_modes_and_workers() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = d.components[0].target;
    let export = |mode, workers| {
        let res = run_dsa_campaign(&g, target, &config(mode, workers));
        let mut out: String =
            res.records.iter().map(|r| format!("{:?},{:?},{}\n", r.effect, r.trap, r.cycles)).collect();
        if let Some(map) = attribution_by_structure(&res.records) {
            out.push_str(&attribution_csv(&map));
            out.push_str(&attribution_jsonl(&map));
        }
        out
    };
    let oracle = export(ResetMode::Clone, 1);
    for workers in [1usize, 2, 8] {
        for mode in [ResetMode::Clone, ResetMode::Dirty] {
            assert_eq!(oracle, export(mode, workers), "{mode:?} workers={workers}");
        }
    }
}
