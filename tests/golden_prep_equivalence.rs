//! Golden-prep equivalence: `Golden::prepare_fast` (reference-model
//! fast-forward to the checkpoint + architectural-state transplant) must
//! be interchangeable with the cycle-level `Golden::prepare` for
//! everything a campaign *architecturally* depends on. Microarchitectural
//! timing (exec_cycles, checkpoint cycle) legitimately differs; the
//! golden output, the committed-instruction trace and the classification
//! of faults in structures the program never exercises must not.

use gem5_marvel::core::{run_campaign, CampaignConfig, FaultEffect, Golden};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::mibench;

const BENCHES: [&str; 2] = ["crc32", "bitcount"];

fn prep_pair(bench: &str, isa: Isa) -> (Golden, Golden) {
    let bin = assemble(&mibench::build(bench), isa).unwrap();
    let mk = || {
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        sys
    };
    let slow = Golden::prepare(mk(), 80_000_000).unwrap();
    let fast = Golden::prepare_fast(mk(), 80_000_000).unwrap();
    (slow, fast)
}

#[test]
fn fast_forward_reproduces_architectural_golden_run() {
    for bench in BENCHES {
        for isa in Isa::ALL {
            let (slow, fast) = prep_pair(bench, isa);
            assert!(!slow.ref_prepped && fast.ref_prepped, "{bench}/{isa}");
            assert_eq!(fast.output, slow.output, "{bench}/{isa}: golden output");
            assert_eq!(fast.trace, slow.trace, "{bench}/{isa}: commit trace");
            assert!(fast.exec_cycles > 0, "{bench}/{isa}");
        }
    }
}

#[test]
fn unexercised_structure_classifications_match_across_preps() {
    // The FP register file is never read by the integer-only workloads,
    // so every fault injected into it must classify as Masked no matter
    // how the golden checkpoint was produced. This is the strongest
    // per-mask equivalence that is microarchitecture-independent: for
    // timing-sensitive targets the *sampled bit/cycle pairs themselves*
    // differ between preps (the injection window lengths differ).
    let cc = CampaignConfig { n_faults: 16, workers: 2, ..Default::default() };
    for isa in Isa::ALL {
        let (slow, fast) = prep_pair("crc32", isa);
        for g in [&slow, &fast] {
            let res = run_campaign(g, Target::PrfFp, &cc);
            assert_eq!(res.n(), 16, "{isa}");
            assert!(
                res.records.iter().all(|r| r.effect == FaultEffect::Masked),
                "{isa} (ref_prepped={}): FP faults must all mask",
                g.ref_prepped
            );
        }
    }
}
