//! Cross-crate integration tests exercising the whole stack through the
//! facade crate: compile → SoC → checkpoint → inject → classify.

use gem5_marvel::core::{
    run_campaign, run_dsa_campaign, run_one, CampaignConfig, DsaGolden, FaultEffect, FaultKind,
    FaultMask, FaultModel, Golden, HvfEffect,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::{assemble, interp};
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn golden(bench: &str, isa: Isa) -> Golden {
    let bin = assemble(&mibench::build(bench), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

#[test]
fn golden_output_matches_interpreter() {
    for isa in Isa::ALL {
        let g = golden("crc32", isa);
        let want = interp::run(&mibench::build("crc32"), 100_000_000).unwrap();
        assert_eq!(g.output, want.output, "{isa}");
    }
}

#[test]
fn classification_partitions_runs() {
    let g = golden("qsort", Isa::Arm);
    let cc = CampaignConfig { n_faults: 30, collect_hvf: true, workers: 4, ..Default::default() };
    for target in [Target::PrfInt, Target::L1D, Target::StoreQueue] {
        let res = run_campaign(&g, target, &cc);
        assert_eq!(res.n(), 30, "{target:?}");
        let total = res.avf()
            + res.records.iter().filter(|r| r.effect == FaultEffect::Masked).count() as f64 / 30.0;
        assert!((total - 1.0).abs() < 1e-9, "{target:?}");
        // HVF >= AVF invariant.
        assert!(res.hvf().unwrap() + 1e-9 >= res.avf(), "{target:?}");
    }
}

#[test]
fn hvf_corruption_implied_by_any_unmasked_effect() {
    let g = golden("bitcount", Isa::RiscV);
    let cc = CampaignConfig { n_faults: 40, collect_hvf: true, workers: 4, ..Default::default() };
    let res = run_campaign(&g, Target::L1D, &cc);
    for r in &res.records {
        if r.effect != FaultEffect::Masked {
            assert_eq!(r.hvf, Some(HvfEffect::Corruption));
        }
    }
}

#[test]
fn directed_single_fault_is_reproducible() {
    let g = golden("sha", Isa::X86);
    let cc = CampaignConfig { n_faults: 1, collect_hvf: true, ..Default::default() };
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: g.ckpt_cycle + g.exec_cycles / 2 },
    };
    let a = run_one(&g, &mask, &cc);
    let b = run_one(&g, &mask, &cc);
    assert_eq!(a.effect, b.effect);
    assert_eq!(a.hvf, b.hvf);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn permanent_faults_bias_toward_unmasked_vs_transient() {
    // A stuck-at bit present for the whole run can only be *more* harmful
    // on average than a single flip of the same bit.
    let g = golden("crc32", Isa::RiscV);
    let t = CampaignConfig { n_faults: 60, workers: 4, ..Default::default() };
    let p =
        CampaignConfig { n_faults: 60, kind: FaultKind::Permanent, workers: 4, ..Default::default() };
    let rt = run_campaign(&g, Target::L1D, &t);
    let rp = run_campaign(&g, Target::L1D, &p);
    assert!(rp.avf() + 0.10 >= rt.avf(), "permanent {} vs transient {}", rp.avf(), rt.avf());
}

#[test]
fn dsa_and_cpu_frameworks_share_classification() {
    let d = accel::design("MERGESORT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let cc = CampaignConfig { n_faults: 30, workers: 4, ..Default::default() };
    let main_res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
    let temp_res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 1 }, &cc);
    assert_eq!(main_res.records.len(), 30);
    // TEMP is overwritten every pass: it must not be more vulnerable than
    // MAIN (the paper's MERGESORT observation).
    assert!(temp_res.avf() <= main_res.avf() + 0.15);
}

#[test]
fn early_termination_changes_speed_not_results() {
    let g = golden("dijkstra", Isa::Arm);
    let on = CampaignConfig { n_faults: 40, workers: 4, early_termination: true, ..Default::default() };
    let off =
        CampaignConfig { n_faults: 40, workers: 4, early_termination: false, ..Default::default() };
    let r_on = run_campaign(&g, Target::PrfInt, &on);
    let r_off = run_campaign(&g, Target::PrfInt, &off);
    assert!((r_on.avf() - r_off.avf()).abs() < 1e-9, "early termination must not change AVF");
    assert!(r_on.early_termination_rate() > 0.0);
    assert_eq!(r_off.early_termination_rate(), 0.0);
}

#[test]
fn rename_map_and_rob_targets_injectable() {
    let g = golden("basicmath", Isa::RiscV);
    let cc = CampaignConfig { n_faults: 15, workers: 4, ..Default::default() };
    for t in [Target::RenameMap, Target::Rob, Target::L2, Target::PrfFp] {
        let res = run_campaign(&g, t, &cc);
        assert_eq!(res.n(), 15, "{t:?}");
    }
}

#[test]
fn multi_bit_adjacent_faults_at_least_as_harmful() {
    use gem5_marvel::core::MaskGenerator;
    let g = golden("crc32", Isa::Arm);
    let cc = CampaignConfig { n_faults: 40, workers: 4, ..Default::default() };
    let bit_len = g.ckpt.bit_len(Target::L1D);
    let mut gen1 = MaskGenerator::new(99);
    let singles = gen1.single_bit(Target::L1D, bit_len, FaultKind::Transient, g.injection_window(), 40);
    let mut gen2 = MaskGenerator::new(99);
    let bursts =
        gen2.adjacent_multi_bit(Target::L1D, bit_len, 4, FaultKind::Transient, g.injection_window(), 40);
    let rs = gem5_marvel::core::run_masks(&g, &singles, &cc);
    let rb = gem5_marvel::core::run_masks(&g, &bursts, &cc);
    let avf = |rs: &[gem5_marvel::core::RunRecord]| {
        rs.iter().filter(|r| r.effect != FaultEffect::Masked).count() as f64 / rs.len() as f64
    };
    assert!(avf(&rb) + 0.125 >= avf(&rs), "4-bit bursts should not be less harmful");
}
