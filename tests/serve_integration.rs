//! End-to-end service test, process boundary included: start `marvel
//! serve`, submit two campaigns over TCP, watch both make progress
//! concurrently (fair scheduling), SIGKILL the server mid-flight,
//! restart it, and verify both campaigns complete from their journals
//! with the correct record counts and exports byte-identical to an
//! in-process oracle. This is the scenario the CI serve step runs.

use gem5_marvel::core::TelemetryConfig;
use gem5_marvel::serve::json::{self, Json};
use gem5_marvel::serve::{request, request_text, wait_for_addr, CampaignSpec, Prepared};
use gem5_marvel::telemetry::{Registry, SpanCollector};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const FAULTS: usize = 48;

fn spec_text(id: &str, design: &str, component: &str, seed: u64) -> String {
    // Canonical single-line form (the wire protocol is line-delimited).
    CampaignSpec::parse(&format!(
        r#"{{"type":"campaign_spec","schema_version":1,"id":"{id}",
            "workload":{{"kind":"dsa","design":"{design}","component":"{component}","fus":4}},
            "faults":{FAULTS},"seed":{seed}}}"#
    ))
    .unwrap()
    .render()
}

fn spawn_serve(root: &Path, throttle_ms: Option<u64>, once: bool) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_marvel"));
    cmd.arg("serve")
        .arg("--root")
        .arg(root)
        .args(["--workers", "2", "--shard", "8"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(ms) = throttle_ms {
        cmd.env("MARVEL_SERVE_THROTTLE_MS", ms.to_string());
    } else {
        cmd.env_remove("MARVEL_SERVE_THROTTLE_MS");
    }
    if once {
        cmd.arg("--once");
    }
    cmd.spawn().expect("spawn marvel serve")
}

fn status_done(addr: &str, id: &str) -> (String, usize) {
    let line = request(addr, &format!("STATUS {id}")).expect("STATUS request");
    let v = json::parse(&line).expect("status is JSON");
    let phase = v.get("phase").and_then(Json::as_str).unwrap_or("?").to_string();
    let done = v.get("done").and_then(Json::as_usize).unwrap_or(0);
    (phase, done)
}

fn journaled_runs(root: &Path, id: &str) -> usize {
    let text = std::fs::read_to_string(root.join(id).join("journal.jsonl")).unwrap_or_default();
    text.lines().filter(|l| l.contains("\"type\":\"run\"")).count()
}

fn wait_for_exit(child: &mut Child, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if child.try_wait().expect("try_wait").is_some() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

#[test]
fn sigkilled_service_resumes_both_campaigns_with_identical_exports() {
    let root = std::env::temp_dir().join(format!("marvel_serve_it_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();

    let specs = [spec_text("it-fft", "fft", "REAL", 21), spec_text("it-bfs", "bfs", "NODES", 22)];
    let ids = ["it-fft", "it-bfs"];

    // Phase 1: throttled service; submit both campaigns over TCP.
    let mut server = spawn_serve(&root, Some(20), false);
    let addr = wait_for_addr(&root, Duration::from_secs(30)).expect("service came up");
    for spec in &specs {
        let ack = request(&addr, &format!("SUBMIT {spec}")).expect("SUBMIT");
        assert!(ack.contains("\"ok\":true"), "submission accepted: {ack}");
    }
    // Resubmitting the identical spec is an idempotent ack, a colliding
    // id with a different spec is an error.
    let again = request(&addr, &format!("SUBMIT {}", specs[0])).unwrap();
    assert!(again.contains("\"known\":true"), "idempotent resubmit: {again}");
    let clash = specs[0].replace(&format!("\"seed\":{}", 21), "\"seed\":99");
    let rejected = request(&addr, &format!("SUBMIT {clash}")).unwrap();
    assert!(rejected.contains("\"ok\":false"), "digest clash rejected: {rejected}");

    // Fairness: wait until BOTH campaigns have journaled progress at the
    // same time, then SIGKILL the server mid-flight.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done: Vec<usize> = ids.iter().map(|id| status_done(&addr, id).1).collect();
        if done.iter().all(|&d| d >= 2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "both campaigns should make concurrent progress (done={done:?})"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    // marvel-spans round-trip while the service is live: METRICS carries
    // the per-phase totals spliced into the snapshot, PROFILE returns the
    // attribution line, and the Prometheus exposition exposes both the
    // phase series and the journal fsync histogram.
    let m = request(&addr, "METRICS it-fft").expect("METRICS");
    let v = json::parse(&m).expect("metrics line is JSON");
    let phases = v.get("phases").expect("METRICS carries a phases object");
    let dsa_calls =
        phases.get("SimStepDsa").and_then(|p| p.get("calls")).and_then(Json::as_u64).unwrap_or(0);
    assert!(dsa_calls >= 2, "phase totals reflect completed runs: {m}");
    assert!(phases.get("JournalAppend").is_some(), "journal appends attributed: {m}");
    let p = request(&addr, "PROFILE it-fft").expect("PROFILE");
    let v = json::parse(&p).expect("profile line is JSON");
    assert_eq!(v.get("type").and_then(Json::as_str), Some("profile"), "{p}");
    assert!(v.get("wall_us").and_then(Json::as_u64).unwrap_or(0) > 0, "{p}");
    assert!(v.get("phases").and_then(|ph| ph.get("GoldenPrep")).is_some(), "{p}");
    let prom = request_text(&addr, "METRICS it-fft prom").expect("METRICS prom");
    assert!(prom.contains("marvel_phase_self_microseconds{campaign=\"it-fft\""), "{prom}");
    assert!(prom.contains("marvel_journal_fsync_ns_count{campaign=\"it-fft\"}"), "{prom}");

    server.kill().expect("SIGKILL server");
    server.wait().expect("reap server");

    // The kill landed mid-campaign: journals hold partial progress.
    for id in &ids {
        let runs = journaled_runs(&root, id);
        assert!(runs >= 2, "{id}: journal survived the kill ({runs} runs)");
        assert!(runs < FAULTS, "{id}: kill landed mid-campaign ({runs}/{FAULTS})");
        assert!(!root.join(id).join("DONE").exists());
    }

    // Phase 2: restart unthrottled with --once; it must recover both
    // campaigns from disk, resume from the journals, and exit on its own.
    let mut server = spawn_serve(&root, None, true);
    assert!(
        wait_for_exit(&mut server, Duration::from_secs(300)),
        "restarted service finishes and exits (--once)"
    );

    // Both campaigns completed, in separate artifact dirs, with the
    // correct record counts.
    for (id, spec) in ids.iter().zip(&specs) {
        let dir = root.join(id);
        assert!(dir.join("DONE").exists(), "{id} completed");
        assert_eq!(journaled_runs(&root, id), FAULTS, "{id}: every run journaled exactly once");
        let jsonl = std::fs::read_to_string(dir.join("records.jsonl")).unwrap();
        let n = jsonl.lines().filter(|l| l.contains("\"type\":\"run\"")).count();
        assert_eq!(n, FAULTS, "{id}: exported record count");

        // Byte-identity against an uninterrupted in-process oracle.
        let spec = CampaignSpec::parse(spec).unwrap();
        let cc = spec.to_config(TelemetryConfig {
            registry: Registry::disabled(),
            progress_interval_ms: 0,
            flight_capacity: 0,
            taint: spec.taint,
            spans: SpanCollector::disabled(),
        });
        let prepared = Prepared::new(&spec, &cc).unwrap();
        let slots = Mutex::new(vec![None; FAULTS]);
        prepared.drive(&cc, &[false; FAULTS], None, &|i, rec| {
            slots.lock().unwrap()[i] = Some(rec);
        });
        let records: Vec<_> = slots.into_inner().unwrap().into_iter().map(Option::unwrap).collect();
        let oracle_dir = root.join(format!("_oracle_{id}"));
        let files = gem5_marvel::serve::write_exports(&oracle_dir, &spec, &prepared, &records).unwrap();
        for name in &files {
            let a = std::fs::read(oracle_dir.join(name)).unwrap();
            let b = std::fs::read(dir.join(name)).unwrap();
            assert_eq!(a, b, "{id}/{name}: service exports match the uninterrupted oracle");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The spool path: a spec dropped as a file is picked up without any
/// network round-trip, and `--once` exits once it settles.
#[test]
fn spooled_spec_runs_to_completion() {
    let root = std::env::temp_dir().join(format!("marvel_spool_it_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let spool = root.join("_serve").join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    let spec = spec_text("sp-fft", "fft", "IMG", 31);
    std::fs::write(spool.join("sp-fft.json"), format!("{spec}\n")).unwrap();

    let mut server = spawn_serve(&root, None, true);
    assert!(wait_for_exit(&mut server, Duration::from_secs(300)), "--once exits after spool run");
    let dir: PathBuf = root.join("sp-fft");
    assert!(dir.join("DONE").exists());
    assert!(spool.join("sp-fft.json.accepted").exists(), "spool file marked accepted");
    assert_eq!(journaled_runs(&root, "sp-fft"), FAULTS);
    std::fs::remove_dir_all(&root).ok();
}
