//! Differential fuzzing of the cycle-level O3 core against marvel-ref.
//!
//! Random straight-line and branchy programs are generated from a
//! deterministic seed (the vendored proptest shim derives its RNG from
//! the test name, so CI runs are reproducible), assembled for all three
//! ISAs and executed on the full SoC with the lockstep oracle enabled.
//! Every committed instruction's architectural effects are checked
//! against the reference interpreter; a single divergence fails the
//! test with the offending instruction and full register context.
//!
//! As a second, independent oracle the console output is compared with
//! the portable IR interpreter, which shares no code with either the
//! pipeline or the reference model's execution loop.

use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::{assemble, interp, FuncBuilder, Module, VReg};
use gem5_marvel::isa::{AluOp, Cond, Isa, MemWidth};
use gem5_marvel::soc::{RunOutcome, System};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const BUF_LEN: usize = 512;

/// Draw a value for `li`: a mix of small signed constants, dense bit
/// patterns and full-width u64s, which between them exercise sign
/// extension, shift masking and the x86 vs Arm/RISC-V immediate paths.
fn rand_imm(rng: &mut StdRng) -> i64 {
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(-128i64..128),
        1 => rng.gen_range(-0x8000i64..0x8000),
        2 => 0x0101_0101_0101_0101u64.wrapping_mul(rng.gen_range(0u64..256)) as i64,
        _ => rng.gen_range(0u64..=u64::MAX) as i64,
    }
}

fn rand_width(rng: &mut StdRng) -> MemWidth {
    MemWidth::ALL[rng.gen_range(0usize..MemWidth::ALL.len())]
}

/// Append a run of random ALU / memory / output ops to the builder,
/// growing `pool` with every new result so later ops can consume them.
fn emit_straight_line(
    b: &mut FuncBuilder,
    rng: &mut StdRng,
    pool: &mut Vec<VReg>,
    base: VReg,
    n: usize,
) {
    for _ in 0..n {
        let pick = |rng: &mut StdRng, pool: &[VReg]| pool[rng.gen_range(0usize..pool.len())];
        match rng.gen_range(0u32..10) {
            // ALU on two pooled values (divisors forced non-zero so the
            // program semantics stay ISA-independent).
            0..=4 => {
                let op = AluOp::ALL[rng.gen_range(0usize..AluOp::ALL.len())];
                let a = pick(rng, pool);
                let c = pick(rng, pool);
                let c = if matches!(op, AluOp::Div | AluOp::Rem) { b.bin(AluOp::Or, c, 1) } else { c };
                let r = b.bin(op, a, c);
                pool.push(r);
            }
            // ALU against an immediate.
            5 | 6 => {
                let op = AluOp::ALL[rng.gen_range(0usize..AluOp::ALL.len())];
                let a = pick(rng, pool);
                let imm = match op {
                    AluOp::Div | AluOp::Rem => rng.gen_range(1i64..64),
                    // Shift-immediate encodings only cover 0..63.
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => rng.gen_range(0i64..64),
                    _ => rand_imm(rng),
                };
                let r = b.bin(op, a, imm);
                pool.push(r);
            }
            // Aligned store into the scratch buffer.
            7 => {
                let w = rand_width(rng);
                let size = w.bytes() as i64;
                let off = rng.gen_range(0i64..BUF_LEN as i64 / size) * size;
                let src = pick(rng, pool);
                b.store(w, src, base, off);
            }
            // Aligned load back out of it.
            8 => {
                let w = rand_width(rng);
                let size = w.bytes() as i64;
                let off = rng.gen_range(0i64..BUF_LEN as i64 / size) * size;
                let r = b.load(w, rng.gen_bool(0.5), base, off);
                pool.push(r);
            }
            // Make intermediate state observable on the console.
            _ => {
                let v = pick(rng, pool);
                b.out_byte(v);
            }
        }
    }
}

/// Build a random program: interleaved straight-line blocks, forward
/// (skipping) branches and bounded counted loops, ending in a digest of
/// the value pool so silent corruption surfaces on the console.
pub fn gen_program(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", BUF_LEN, 8);
    let main = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    let mut pool: Vec<VReg> = (0..4).map(|_| b.li(rand_imm(&mut rng))).collect();

    for _ in 0..rng.gen_range(2u32..5) {
        let block_len = rng.gen_range(4usize..12);
        emit_straight_line(&mut b, &mut rng, &mut pool, base, block_len);
        match rng.gen_range(0u32..3) {
            // Forward branch skipping a short block: exercises taken and
            // not-taken paths plus branch-predictor recovery.
            0 => {
                let skip = b.new_label();
                let cond = Cond::ALL[rng.gen_range(0usize..Cond::ALL.len())];
                let a = pool[rng.gen_range(0usize..pool.len())];
                let c = pool[rng.gen_range(0usize..pool.len())];
                b.br(cond, a, c, skip);
                // Values defined in a conditionally-skipped block must not
                // escape it, so emit into a scratch pool.
                let mut scratch = pool.clone();
                let skipped_len = rng.gen_range(2usize..6);
                emit_straight_line(&mut b, &mut rng, &mut scratch, base, skipped_len);
                b.bind(skip);
            }
            // Bounded counted loop with a loop-carried accumulator.
            1 => {
                let bound = rng.gen_range(2i64..8);
                let i = b.li(0);
                let acc = b.li(rand_imm(&mut rng));
                let top = b.new_label();
                b.bind(top);
                let stride = rng.gen_range(1i64..5);
                let mixed = b.bin(AluOp::Add, acc, i);
                b.assign(acc, mixed);
                let next = b.bin(AluOp::Add, i, stride);
                b.assign(i, next);
                b.br(Cond::Lt, i, bound * stride, top);
                pool.push(acc);
            }
            // Plain straight-line continuation.
            _ => {}
        }
    }

    // Digest every pooled value into the output so any wrong result is
    // architecturally visible.
    for &v in &pool {
        b.out_byte(v);
        let hi = b.bin(AluOp::Srl, v, 8);
        b.out_byte(hi);
    }
    b.halt();
    m.define(main, b.build());
    m
}

#[test]
#[ignore = "debug helper: cargo test --test lockstep_fuzz -- --ignored --nocapture"]
fn debug_dump_seed() {
    let seed: u64 = std::env::var("FUZZ_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(331091);
    let m = gen_program(seed);
    for (i, inst) in m.funcs[m.main_id()].insts.iter().enumerate() {
        println!("{i:4}: {inst:?}");
    }
    let want = interp::run(&m, 10_000_000).unwrap().output;
    for isa in Isa::ALL {
        let bin = assemble(&m, isa).unwrap();
        let (out, console) = gem5_marvel::ref_model::run_binary(&bin, 10_000_000);
        let first = console.iter().zip(&want).position(|(a, b)| a != b);
        println!("{isa}: ref {out:?}, first mismatch {first:?}");
        if console != want {
            println!("  ref    : {console:?}");
            println!("  interp : {want:?}");
        }
    }
}

// The O3 core, run in lockstep with marvel-ref, must commit the exact
// architectural effect stream of the reference on every ISA, and both
// must reproduce the IR interpreter's output.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_programs_never_diverge(seed in 0u64..1_000_000) {
        let m = gen_program(seed);
        let want = interp::run(&m, 10_000_000).expect("interp golden").output;
        for isa in Isa::ALL {
            let bin = assemble(&m, isa).expect("assemble");
            let mut sys = System::new(CoreConfig::table2(isa));
            sys.load_binary(&bin);
            sys.enable_lockstep();
            let out = sys.run(2_000_000);
            prop_assert!(
                matches!(out, RunOutcome::Halted { .. }),
                "seed {seed} {isa}: did not halt: {out:?}"
            );
            if let Some(d) = sys.lockstep_divergence() {
                panic!("seed {seed} {isa}: lockstep divergence:\n{d}");
            }
            let ls = sys.lockstep.as_deref().unwrap();
            prop_assert!(
                ls.disabled_reason().is_none(),
                "seed {seed} {isa}: oracle suspended: {:?}",
                ls.disabled_reason()
            );
            prop_assert!(ls.checked() > 0, "seed {seed} {isa}: nothing checked");
            prop_assert_eq!(sys.output(), &want[..], "seed {} {}", seed, isa);
            prop_assert_eq!(ls.ref_console(), &want[..], "seed {} {}", seed, isa);
        }
    }
}
