//! marvel-taint integration guards.
//!
//! 1. Determinism matrix: taint {off,on} × telemetry {off,on} must yield
//!    bit-identical classifications in both the CPU and DSA drivers —
//!    taint is strictly observational.
//! 2. Acceptance: a CPU campaign with taint enabled attributes SDC runs
//!    to a structure, carries a propagation timeline in the flight
//!    recorder, and exports schema-versioned CSV/JSONL tables.
//! 3. Pipeline trace: the golden/faulty Konata pair renders, and the
//!    faulty trace flags tainted commits.
//! 4. Overhead: enabling taint may cost (shadow copies move with every
//!    cache line), but must stay within a small constant factor.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, campaign_masks, run_campaign,
    run_dsa_campaign, run_one, trace_pipeline_pair, CampaignConfig, DsaGolden, FaultEffect, FaultMask,
    FaultModel, Golden, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::{check_snapshot_version, Registry};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn golden(bench: &str, isa: Isa) -> Golden {
    let bin = assemble(&mibench::build(bench), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

/// The four corners of the observability matrix.
fn matrix() -> [TelemetryConfig; 4] {
    let full = |taint| TelemetryConfig {
        registry: Registry::new(),
        progress_interval_ms: 0,
        flight_capacity: 64,
        taint,
        ..Default::default()
    };
    let bare = |taint| TelemetryConfig { taint, ..Default::default() };
    [bare(false), bare(true), full(false), full(true)]
}

#[test]
fn cpu_classifications_invariant_across_taint_matrix() {
    let g = golden("crc32", Isa::RiscV);
    let base = CampaignConfig { n_faults: 16, workers: 4, collect_hvf: true, ..Default::default() };
    let reference = run_campaign(&g, Target::L1D, &base);
    let key = |r: &gem5_marvel::core::CampaignResult| -> Vec<_> {
        r.records.iter().map(|x| (x.effect, x.hvf, x.trap, x.cycles)).collect()
    };
    for (i, tel) in matrix().into_iter().enumerate() {
        let cc = CampaignConfig { telemetry: tel, ..base.clone() };
        let res = run_campaign(&g, Target::L1D, &cc);
        assert_eq!(key(&reference), key(&res), "matrix corner {i} perturbed CPU classifications");
    }
}

#[test]
fn dsa_classifications_invariant_across_taint_matrix() {
    let d = accel::designs().into_iter().find(|d| d.name == "FFT").expect("FFT design");
    let g = DsaGolden::prepare((d.make)(FuConfig::uniform(4)), 100_000_000);
    let target = d.components[0].target;
    let base = CampaignConfig { n_faults: 12, workers: 4, ..Default::default() };
    let reference = run_dsa_campaign(&g, target, &base);
    let key = |r: &gem5_marvel::core::DsaCampaignResult| -> Vec<_> {
        r.records.iter().map(|x| (x.effect, x.trap, x.cycles)).collect()
    };
    for (i, tel) in matrix().into_iter().enumerate() {
        let cc = CampaignConfig { telemetry: tel, ..base.clone() };
        let res = run_dsa_campaign(&g, target, &cc);
        assert_eq!(key(&reference), key(&res), "matrix corner {i} perturbed DSA classifications");
        if cc.telemetry.taint {
            // Every run carries an attribution when taint is on.
            assert!(res.records.iter().all(|r| r.attribution.is_some()));
        }
    }
}

#[test]
fn cpu_campaign_attributes_sdc_runs_with_timeline() {
    let g = golden("bitcount", Isa::RiscV);
    let cc = CampaignConfig {
        n_faults: 40,
        workers: 4,
        telemetry: TelemetryConfig {
            registry: Registry::disabled(),
            progress_interval_ms: 0,
            flight_capacity: 128,
            taint: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let res = run_campaign(&g, Target::PrfInt, &cc);

    // At least one SDC with an arch-reaching attribution + hop timeline.
    let sdc = res
        .records
        .iter()
        .find(|r| r.effect == FaultEffect::Sdc)
        .expect("seeded bitcount/PrfInt campaign must surface an SDC");
    let attr = sdc.attribution.as_ref().expect("taint campaign records attribution");
    assert!(attr.reached_arch, "SDC faults reach architectural state by definition");
    assert!(!attr.structure.is_empty());
    assert!(attr.hops > 0, "propagation involves at least one hop");
    let dump = sdc.forensics.as_ref().expect("flight recorder kept the SDC timeline");
    let text = dump.render();
    assert!(text.contains("taint_hop"), "timeline missing propagation hops:\n{text}");
    assert!(text.contains("taint_arch"), "timeline missing arch-reach event:\n{text}");

    // Campaign-level attribution table + schema-versioned exports.
    let map = attribution_by_structure(&res.records).expect("attribution table");
    assert!(map.values().map(|a| a.runs()).sum::<usize>() > 0);
    assert!(map.values().any(|a| a.sdc > 0));
    let csv = attribution_csv(&map);
    let jsonl = attribution_jsonl(&map);
    check_snapshot_version(&csv).expect("CSV export carries a valid schema header");
    check_snapshot_version(&jsonl).expect("JSONL export carries a valid schema header");
    assert_eq!(jsonl.lines().count(), map.len() + 1);
}

#[test]
fn pipeline_trace_pair_renders_kanata() {
    let g = golden("crc32", Isa::RiscV);
    let cc = CampaignConfig { n_faults: 8, ..Default::default() };
    let masks = campaign_masks(&g, Target::PrfInt, &cc);
    let (gtrace, ftrace) = trace_pipeline_pair(&g, &masks[0], &cc);
    for (name, t) in [("golden", &gtrace), ("faulty", &ftrace)] {
        assert!(t.starts_with("Kanata\t0004"), "{name} trace lacks Kanata header");
        assert!(t.contains("\nR\t"), "{name} trace has no retirement lines");
        assert!(t.contains("\nI\t"), "{name} trace has no instruction lines");
    }
}

#[test]
fn taint_overhead_is_bounded() {
    let g = golden("crc32", Isa::RiscV);
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: g.ckpt_cycle + g.exec_cycles / 2 },
    };
    let off = CampaignConfig { n_faults: 1, ..Default::default() };
    let on = CampaignConfig {
        n_faults: 1,
        telemetry: TelemetryConfig { taint: true, ..Default::default() },
        ..Default::default()
    };
    let median = |cc: &CampaignConfig| -> f64 {
        let mut t: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let rec = run_one(&g, &mask, cc);
                assert!(rec.cycles > 0);
                t0.elapsed().as_secs_f64()
            })
            .collect();
        t.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t[t.len() / 2]
    };
    run_one(&g, &mask, &off);
    run_one(&g, &mask, &on);
    let (t_off, t_on) = (median(&off), median(&on));
    // Shadow planes really do move bytes (every cache line fill copies
    // its taint line), so the target is ~1.3x; the asserted bound is 2x
    // so CI scheduler noise cannot flake the guard while a structural
    // regression (per-bit loops, allocation per access) still trips it.
    let ratio = t_on / t_off.max(1e-12);
    assert!(
        ratio < 2.0,
        "taint-on injection run took {ratio:.2}x the taint-off time \
         (off {t_off:.4}s, on {t_on:.4}s)"
    );
}
