// The vendored proptest! macro expands by token-munching, so the test
// bodies here are one-line trampolines into plain `check_*` functions —
// the assertion logic lives outside the macro where it costs nothing.
#![recursion_limit = "1024"]

//! Fuzz oracle for the bit-plane lane primitives: every lane-packed
//! operation — transpose round-trips, ripple-carry add/sub, plane-
//! permutation shifts, compare masks and full ALU diff propagation —
//! must agree with 64 independent scalar evaluations, lane for lane.
//! `alu_diff` is additionally pinned across both of its internal paths
//! (dense bit-plane vs sparse per-lane) by driving masks on both sides
//! of the density threshold.

use gem5_marvel::cpu::lane::alu_diff;
use gem5_marvel::cpu::LanePlane;
use gem5_marvel::isa::{AluOp, Isa};
use proptest::prelude::*;

const ISAS: [Isa; 3] = [Isa::Arm, Isa::X86, Isa::RiscV];

fn lanes64() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 64)
}

fn arr(v: &[u64]) -> [u64; 64] {
    let mut a = [0u64; 64];
    a.copy_from_slice(v);
    a
}

/// Packing lane-major values into planes and back is the identity, and
/// the single-lane accessor reads through the plane form.
fn check_roundtrip(vals: &[u64]) {
    let a = arr(vals);
    let p = LanePlane::from_lanes(&a);
    assert_eq!(p.to_lanes(), a);
    for (l, v) in a.iter().enumerate() {
        assert_eq!(p.lane(l), *v, "lane {l}");
    }
}

/// One ripple-carry pass over the planes must equal 64 independent
/// wrapping adds/subs; the bitwise ops and compare masks likewise.
fn check_arithmetic(av: &[u64], bv: &[u64]) {
    let (a, b) = (arr(av), arr(bv));
    let (pa, pb) = (LanePlane::from_lanes(&a), LanePlane::from_lanes(&b));
    let add = pa.add(&pb).to_lanes();
    let sub = pa.sub(&pb).to_lanes();
    let xor = pa.xor(&pb).to_lanes();
    let and = pa.and(&pb).to_lanes();
    let or = pa.or(&pb).to_lanes();
    let (eq, ltu, lts) = (pa.eq_mask(&pb), pa.lt_u_mask(&pb), pa.lt_s_mask(&pb));
    for l in 0..64 {
        assert_eq!(add[l], a[l].wrapping_add(b[l]), "add lane {l}");
        assert_eq!(sub[l], a[l].wrapping_sub(b[l]), "sub lane {l}");
        assert_eq!(xor[l], a[l] ^ b[l], "xor lane {l}");
        assert_eq!(and[l], a[l] & b[l], "and lane {l}");
        assert_eq!(or[l], a[l] | b[l], "or lane {l}");
        assert_eq!(eq >> l & 1 == 1, a[l] == b[l], "eq lane {l}");
        assert_eq!(ltu >> l & 1 == 1, a[l] < b[l], "ltu lane {l}");
        assert_eq!(lts >> l & 1 == 1, (a[l] as i64) < (b[l] as i64), "lts lane {l}");
    }
}

/// Constant-amount shifts are plane permutations; they must equal the
/// per-lane shifts, including sign replication on `sar`.
fn check_shifts(av: &[u64], k: u32) {
    let a = arr(av);
    let pa = LanePlane::from_lanes(&a);
    let shl = pa.shl_const(k).to_lanes();
    let shr = pa.shr_const(k).to_lanes();
    let sar = pa.sar_const(k).to_lanes();
    for l in 0..64 {
        assert_eq!(shl[l], a[l] << k, "shl lane {l}");
        assert_eq!(shr[l], a[l] >> k, "shr lane {l}");
        assert_eq!(sar[l], ((a[l] as i64) >> k) as u64, "sar lane {l}");
    }
}

/// Full ALU diff propagation vs the scalar oracle: for every masked lane,
/// applying the lane's operand diffs and evaluating scalar-ly must land
/// exactly on `golden ^ diff[lane]` — or the lane must be flagged for
/// forking where the scalar evaluation traps. Unmasked lanes carry no
/// diff by construction. `sparse` pins the mask under the bit-plane
/// density threshold so both internal paths face the same oracle;
/// `shift_const` clears the shift-amount diffs, the only gate into the
/// constant-shift plane permutation.
#[allow(clippy::too_many_arguments)]
fn check_alu_diff(
    op: AluOp,
    isa: Isa,
    a: u64,
    b: u64,
    dav: &[u64],
    dbv: &[u64],
    raw_mask: u64,
    sparse: bool,
    shift_const: bool,
) {
    // A random dense mask averages 32 lanes (bit-plane path); the sparse
    // variant keeps at most 6 (per-lane scalar path).
    let mask = if sparse { raw_mask & 0x8000_0400_0030_0003 } else { raw_mask };
    let (mut da, mut db) = (arr(dav), arr(dbv));
    for l in 0..64 {
        if mask & (1 << l) == 0 {
            da[l] = 0;
            db[l] = 0;
        } else if shift_const {
            db[l] = 0;
        }
    }
    // No golden result to diff against (x86 divide-by-zero in the golden
    // operands themselves): nothing to check.
    let Some(golden) = op.eval(a, b, isa) else { return };

    let d = alu_diff(op, isa, a, b, golden, &da, &db, mask);
    for l in 0..64 {
        if mask & (1 << l) == 0 {
            assert_eq!(d.diff[l], 0, "unmasked lane {l} must carry no diff");
            assert_eq!(d.fork >> l & 1, 0, "unmasked lane {l} must not fork");
            continue;
        }
        match op.eval(a ^ da[l], b ^ db[l], isa) {
            Some(r) => {
                assert_eq!(d.fork >> l & 1, 0, "lane {l} forked spuriously");
                assert_eq!(
                    golden ^ d.diff[l],
                    r,
                    "lane {l}: {op:?}/{isa:?} diff disagrees with scalar eval"
                );
            }
            None => assert_eq!(d.fork >> l & 1, 1, "lane {l}: scalar eval traps, lane must fork"),
        }
    }
}

proptest! {
    #[test]
    fn plane_roundtrip_and_lane_accessor(vals in lanes64()) {
        check_roundtrip(&vals);
    }

    #[test]
    fn broadcast_fills_every_lane(v in any::<u64>()) {
        prop_assert_eq!(LanePlane::broadcast(v).to_lanes(), [v; 64]);
    }

    #[test]
    fn packed_arithmetic_matches_64_scalar_lanes(av in lanes64(), bv in lanes64()) {
        check_arithmetic(&av, &bv);
    }

    #[test]
    fn packed_shifts_match_64_scalar_lanes(av in lanes64(), k in 0u32..64) {
        check_shifts(&av, k);
    }

    #[test]
    fn alu_diff_matches_64_scalar_evals(
        op_i in 0usize..AluOp::ALL.len(),
        isa_i in 0usize..ISAS.len(),
        a in any::<u64>(),
        b in any::<u64>(),
        dav in lanes64(),
        dbv in lanes64(),
        raw_mask in any::<u64>(),
        sparse in any::<bool>(),
        shift_const in any::<bool>(),
    ) {
        check_alu_diff(AluOp::ALL[op_i], ISAS[isa_i], a, b, &dav, &dbv, raw_mask, sparse, shift_const);
    }
}
