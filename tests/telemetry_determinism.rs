//! Telemetry must be strictly observational: a campaign with the full
//! observability stack enabled (registry, flight recorder) must produce
//! bit-identical classifications to a telemetry-disabled campaign with
//! the same `MaskGenerator` seed and `CampaignConfig`.

use gem5_marvel::core::{
    run_campaign, run_dsa_campaign, CampaignConfig, DsaGolden, Golden, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::{Registry, SpanCollector};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn golden(bench: &str, isa: Isa) -> Golden {
    let bin = assemble(&mibench::build(bench), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

fn full_telemetry() -> TelemetryConfig {
    TelemetryConfig {
        registry: Registry::new(),
        // Progress printing is wall-clock driven and stderr-only; leave it
        // off in tests but exercise registry + recorder, the two pieces
        // that touch the run path.
        progress_interval_ms: 0,
        flight_capacity: 64,
        taint: false,
        // Span tracing rides along: it must be observational too.
        spans: SpanCollector::enabled(),
    }
}

#[test]
fn cpu_campaign_classifications_invariant_under_telemetry() {
    let g = golden("bitcount", Isa::RiscV);
    for target in [Target::PrfInt, Target::L1D] {
        let plain = CampaignConfig { n_faults: 24, workers: 4, collect_hvf: true, ..Default::default() };
        let instrumented = CampaignConfig { telemetry: full_telemetry(), ..plain.clone() };

        let r1 = run_campaign(&g, target, &plain);
        let r2 = run_campaign(&g, target, &instrumented);

        let e1: Vec<_> = r1.records.iter().map(|r| (r.effect, r.hvf, r.trap, r.cycles)).collect();
        let e2: Vec<_> = r2.records.iter().map(|r| (r.effect, r.hvf, r.trap, r.cycles)).collect();
        assert_eq!(e1, e2, "telemetry perturbed {target:?} classifications");

        // The instrumented run actually recorded something.
        let snap = instrumented.telemetry.registry.snapshot();
        assert!(!snap.counters.is_empty(), "no metrics published");
        let runs = snap.counters.iter().find(|(n, _)| n == "campaign.runs").unwrap().1;
        assert_eq!(runs, 24);
        // Forensics retained exactly for the SDC/Crash runs.
        for r in &r2.records {
            use gem5_marvel::core::FaultEffect;
            assert_eq!(r.forensics.is_some(), r.effect != FaultEffect::Masked, "forensics retention");
        }
    }
}

#[test]
fn repeated_instrumented_campaigns_are_identical() {
    // Same seed + config with telemetry enabled twice: tallies must match
    // run-for-run (worker scheduling must not leak into results).
    let g = golden("crc32", Isa::Arm);
    let cc1 =
        CampaignConfig { n_faults: 16, workers: 3, telemetry: full_telemetry(), ..Default::default() };
    let cc2 =
        CampaignConfig { n_faults: 16, workers: 3, telemetry: full_telemetry(), ..Default::default() };
    let r1 = run_campaign(&g, Target::L1D, &cc1);
    let r2 = run_campaign(&g, Target::L1D, &cc2);
    let e1: Vec<_> = r1.records.iter().map(|r| (r.effect, r.cycles)).collect();
    let e2: Vec<_> = r2.records.iter().map(|r| (r.effect, r.cycles)).collect();
    assert_eq!(e1, e2);
    // Effect-class tallies in the registries agree too.
    let tally = |reg: &Registry, name: &str| {
        reg.snapshot().counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    };
    for name in ["campaign.sdc", "campaign.crash", "campaign.masked", "campaign.early_terminated"] {
        assert_eq!(
            tally(&cc1.telemetry.registry, name),
            tally(&cc2.telemetry.registry, name),
            "{name} tally diverged between identical campaigns"
        );
    }
}

#[test]
fn dsa_campaign_classifications_invariant_under_telemetry() {
    let d = accel::designs().into_iter().find(|d| d.name == "FFT").expect("FFT design");
    let golden = DsaGolden::prepare((d.make)(FuConfig::uniform(4)), 100_000_000);
    let target = d.components[0].target;

    let plain = CampaignConfig { n_faults: 20, workers: 4, ..Default::default() };
    let instrumented = CampaignConfig { telemetry: full_telemetry(), ..plain.clone() };
    let r1 = run_dsa_campaign(&golden, target, &plain);
    let r2 = run_dsa_campaign(&golden, target, &instrumented);

    let e1: Vec<_> = r1.records.iter().map(|r| (r.effect, r.trap, r.cycles)).collect();
    let e2: Vec<_> = r2.records.iter().map(|r| (r.effect, r.trap, r.cycles)).collect();
    assert_eq!(e1, e2, "telemetry perturbed DSA classifications");

    let snap = instrumented.telemetry.registry.snapshot();
    let runs = snap.counters.iter().find(|(n, _)| n == "dsa.runs").unwrap().1;
    assert_eq!(runs, 20);
}
