//! Campaign accounting invariants: classification counts partition the
//! fault population, and results are bit-identical regardless of the
//! worker-pool size — parallelism must be a pure speed knob.

use gem5_marvel::core::{
    run_campaign, run_dsa_campaign, CampaignConfig, DsaGolden, FaultEffect, Golden, ResetMode, RunRecord,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn golden(bench: &str, isa: Isa) -> Golden {
    let bin = assemble(&mibench::build(bench), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

/// The per-run fields that must not depend on scheduling. (`forensics`
/// and `attribution` are compared implicitly: both are `None` here since
/// telemetry is off.)
fn fingerprint(records: &[RunRecord]) -> Vec<(FaultEffect, Option<&'static str>, bool, u64)> {
    records.iter().map(|x| (x.effect, x.trap, x.early_terminated, x.cycles)).collect()
}

#[test]
fn classification_counts_sum_to_total() {
    let g = golden("bitcount", Isa::Arm);
    let cc = CampaignConfig { n_faults: 40, collect_hvf: true, workers: 4, ..Default::default() };
    for target in [Target::PrfInt, Target::L1D, Target::Rob] {
        let res = run_campaign(&g, target, &cc);
        let masked = res.records.iter().filter(|r| r.effect == FaultEffect::Masked).count();
        let sdc = res.records.iter().filter(|r| r.effect == FaultEffect::Sdc).count();
        let crash = res.records.iter().filter(|r| r.effect == FaultEffect::Crash).count();
        assert_eq!(masked + sdc + crash, res.n(), "{target:?}: effects must partition runs");
        assert_eq!(res.n(), 40, "{target:?}: every requested fault must be accounted for");
        // The rates must be consistent with the same partition.
        let total = res.avf() + masked as f64 / res.n() as f64;
        assert!((total - 1.0).abs() < 1e-9, "{target:?}");
        assert!((res.avf() - (res.sdc_avf() + res.crash_avf())).abs() < 1e-9, "{target:?}");
    }
}

#[test]
fn cpu_campaign_identical_across_worker_counts() {
    let g = golden("crc32", Isa::RiscV);
    for target in [Target::PrfInt, Target::L1D] {
        let mut runs = Vec::new();
        // 0 = all available cores; 1 = fully serial; 2 = minimal pool.
        for workers in [1usize, 2, 0] {
            let cc = CampaignConfig { n_faults: 30, collect_hvf: true, workers, ..Default::default() };
            runs.push(fingerprint(&run_campaign(&g, target, &cc).records));
        }
        assert_eq!(runs[0], runs[1], "{target:?}: workers=1 vs workers=2");
        assert_eq!(runs[0], runs[2], "{target:?}: workers=1 vs workers=all");
    }
}

#[test]
fn dsa_campaign_identical_across_worker_counts() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = d.components[0].target;
    let mut runs = Vec::new();
    for workers in [1usize, 2, 0] {
        let cc = CampaignConfig { n_faults: 24, workers, ..Default::default() };
        runs.push(fingerprint(&run_dsa_campaign(&g, target, &cc).records));
    }
    assert_eq!(runs[0], runs[1], "workers=1 vs workers=2");
    assert_eq!(runs[0], runs[2], "workers=1 vs workers=all");
}

#[test]
fn reset_mode_is_a_pure_speed_knob() {
    // The zero-copy dirty reset must be invisible in the results: for any
    // worker count, the record stream matches the clone-per-run oracle.
    let g = golden("crc32", Isa::RiscV);
    for target in [Target::PrfInt, Target::L1D, Target::Rob] {
        let fp = |mode, workers| {
            let cc = CampaignConfig {
                n_faults: 30,
                collect_hvf: true,
                workers,
                reset_mode: mode,
                ..Default::default()
            };
            fingerprint(&run_campaign(&g, target, &cc).records)
        };
        let oracle = fp(ResetMode::Clone, 1);
        for workers in [1usize, 2, 0] {
            assert_eq!(oracle, fp(ResetMode::Dirty, workers), "{target:?} workers={workers}");
        }
    }
}

#[test]
fn dsa_reset_mode_is_a_pure_speed_knob() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = d.components[0].target;
    let fp = |mode, workers| {
        let cc = CampaignConfig { n_faults: 24, workers, reset_mode: mode, ..Default::default() };
        fingerprint(&run_dsa_campaign(&g, target, &cc).records)
    };
    let oracle = fp(ResetMode::Clone, 1);
    for workers in [1usize, 2, 0] {
        assert_eq!(oracle, fp(ResetMode::Dirty, workers), "workers={workers}");
    }
}

#[test]
fn ref_prepped_campaign_identical_across_worker_counts() {
    // Same determinism guarantee when the golden run was prepared by the
    // reference-model fast-forward path.
    let bin = assemble(&mibench::build("crc32"), Isa::Arm).unwrap();
    let mk = || {
        let mut sys = System::new(CoreConfig::table2(Isa::Arm));
        sys.load_binary(&bin);
        sys
    };
    let g = Golden::prepare_fast(mk(), 80_000_000).unwrap();
    assert!(g.ref_prepped);
    let mut runs = Vec::new();
    for workers in [1usize, 2, 0] {
        let cc = CampaignConfig { n_faults: 24, workers, ..Default::default() };
        runs.push(fingerprint(&run_campaign(&g, Target::PrfInt, &cc).records));
    }
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
}
