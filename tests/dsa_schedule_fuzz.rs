// The vendored proptest! macro expands by token-munching; three sizeable
// test bodies in one block need more headroom than the default 128.
#![recursion_limit = "1024"]

//! Schedule fuzzer for the event-driven accelerator engine: random CDFG
//! designs (node counts, FU mixes, memory-port contention, DMA timings)
//! must produce a static schedule whose next-event stepper agrees with
//! the naive tick-every-cycle loop *cycle for cycle* on golden runs —
//! same state, same compute-cycle count, same memory bytes at every
//! single cycle, not just at the end.

use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{AccelState, Accelerator, DmaDir, DmaJob, FuConfig, Sram, SramKind};
use marvel_core::{DsaGolden, DsaHarness};
use marvel_isa::AluOp;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Elements processed per loop iteration (the contention knob: `width`
/// loads race for the IN ports and `width` stores for the OUT ports
/// every iteration).
const MAX_WIDTH: usize = 4;

/// Build a random elementwise accelerator: for each of `n` iterations,
/// `width` parallel chains each load IN[k], combine it with a TAB
/// regbank value through a randomly chosen int/fp op tree, and store to
/// OUT[k]. Port counts, FU counts, chain width and op mix all come from
/// the seed, so schedules range from fully parallel to one-port serial.
fn gen_accel(seed: u64) -> (Accelerator, usize, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(1..8usize);
    let width = rng.gen_range(1..=MAX_WIDTH);
    let elems = n * width;
    let fu = FuConfig {
        int_alu: rng.gen_range(1..4),
        fp_add: rng.gen_range(1..3),
        fp_mul: rng.gen_range(1..3),
    };
    let in_ports = rng.gen_range(1..4);
    let out_ports = rng.gen_range(1..3);
    let tab_ports = rng.gen_range(1..3);
    let chain_fp: Vec<bool> = (0..width).map(|_| rng.gen_bool(0.4)).collect();
    let chain_reload: Vec<bool> = (0..width).map(|_| rng.gen_bool(0.3)).collect();

    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let body = g.block(1);
    let done = g.block(0);
    g.select(entry);
    let z = g.konst(0);
    g.jump(body, &[z]);
    g.select(body);
    let i = g.arg(0);
    let eight = g.konst(8);
    let w = g.konst(width as u64);
    let iw = g.alu(AluOp::Mul, i, w);
    let base = g.alu(AluOp::Mul, iw, eight);
    for (c, (&fp, &reload)) in chain_fp.iter().zip(&chain_reload).enumerate() {
        let coff = g.konst(c as u64 * 8);
        let addr = g.alu(AluOp::Add, base, coff);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let t = g.load(MemRef::RegBank(0), 8, coff);
        let x = if fp {
            // float path: exercises FpAdd/FpMul contention and the
            // conversion ops.
            let fv = g.itof(v);
            let ft = g.itof(t);
            let prod = g.fmul(fv, ft);
            let sum = g.fadd(prod, fv);
            g.ftoi(sum)
        } else {
            let prod = g.alu(AluOp::Mul, v, t);
            g.alu(AluOp::Xor, prod, v)
        };
        let x = if reload {
            // Load back the previous iteration's OUT slot: mixes loads
            // among the stores on OUT, exercising the RAW/WAR
            // memory-ordering scan.
            let prev = g.load(MemRef::Spm(1), 8, coff);
            g.alu(AluOp::Add, x, prev)
        } else {
            x
        };
        g.store(MemRef::Spm(1), 8, addr, x);
    }
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let nn = g.konst(n as u64);
    let more = g.alu(AluOp::Sltu, i2, nn);
    g.branch(more, body, &[i2], done, &[]);
    g.select(done);
    g.finish();
    let accel = Accelerator::new(
        "fuzz",
        g.build().unwrap(),
        fu,
        vec![
            Sram::new("IN", SramKind::Spm, (elems * 8).max(8), in_ports),
            Sram::new("OUT", SramKind::Spm, (elems * 8).max(8), out_ports),
        ],
        vec![Sram::new("TAB", SramKind::RegBank, MAX_WIDTH * 8, tab_ports)],
        0,
    );
    (accel, n, width)
}

fn fill(a: &mut Accelerator, seed: u64, elems: usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1);
    for k in 0..elems {
        a.spms[0].write(k as u64 * 8, 8, rng.gen_range(0..=u32::MAX as u64)).unwrap();
    }
    for k in 0..MAX_WIDTH {
        a.regbanks[0].write(k as u64 * 8, 8, rng.gen_range(1..1000u64)).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Single-cycle lockstep: advancing the event engine one cycle at a
    // time must match `tick()` at *every* cycle — same state, same
    // compute-cycle count, same SPM/RegBank bytes.
    #[test]
    fn event_stepper_matches_tick_loop_cycle_for_cycle(seed in any::<u64>()) {
        let (mut cyc, n, width) = gen_accel(seed);
        fill(&mut cyc, seed, n * width);
        let mut evt = cyc.clone();
        prop_assert!(evt.prepare_event_engine(), "fuzzed design must be schedulable");
        prop_assert!(evt.set_engine_event());
        cyc.start(&[]);
        evt.start(&[]);
        for cycle in 0..2_000_000u64 {
            let sa = cyc.tick();
            let (sb, used) = evt.advance(1);
            prop_assert_eq!(used, 1, "event engine must consume the cycle");
            prop_assert_eq!(sa, sb, "state diverged at cycle {}", cycle);
            prop_assert_eq!(cyc.stats.compute_cycles, evt.stats.compute_cycles);
            prop_assert_eq!(cyc.spms[1].bytes(), evt.spms[1].bytes(), "OUT diverged at cycle {}", cycle);
            if sa == AccelState::Done {
                prop_assert_eq!(cyc.spms[0].bytes(), evt.spms[0].bytes());
                prop_assert_eq!(cyc.regbanks[0].bytes(), evt.regbanks[0].bytes());
                prop_assert_eq!(cyc.stats.nodes_executed, evt.stats.nodes_executed);
                prop_assert_eq!(cyc.stats.mem_reads, evt.stats.mem_reads);
                prop_assert_eq!(cyc.stats.mem_writes, evt.stats.mem_writes);
                prop_assert_eq!(cyc.stats.blocks_executed, evt.stats.blocks_executed);
                return Ok(());
            }
        }
        panic!("accelerator did not finish");
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Stop-pattern independence: chunked `advance()` with random chunk
    // sizes must land in exactly the same final state as the tick loop.
    #[test]
    fn random_advance_chunks_match_tick_loop(seed in any::<u64>()) {
        let (mut cyc, n, width) = gen_accel(seed);
        fill(&mut cyc, seed, n * width);
        let mut evt = cyc.clone();
        prop_assert!(evt.prepare_event_engine());
        prop_assert!(evt.set_engine_event());
        cyc.start(&[]);
        evt.start(&[]);
        let mut cycles = 0u64;
        loop {
            match cyc.tick() {
                AccelState::Done => break,
                AccelState::Error(e) => panic!("cycle engine error: {e}"),
                _ => cycles += 1,
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4);
        let mut left = cycles + 1;
        while left > 0 {
            let chunk = rng.gen_range(1..=left.min(64));
            let (_, used) = evt.advance(chunk);
            prop_assert_eq!(used, chunk);
            left -= chunk;
        }
        prop_assert_eq!(evt.state(), AccelState::Done);
        prop_assert_eq!(cyc.stats.compute_cycles, evt.stats.compute_cycles);
        prop_assert_eq!(cyc.spms[1].bytes(), evt.spms[1].bytes());
        prop_assert_eq!(cyc.stats.nodes_executed, evt.stats.nodes_executed);
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Full harness with randomized DMA plans: split the DMA-in into a
    // random number of jobs (shifting when compute starts) and check the
    // golden-prep self-check plus end-to-end outcome equality between
    // the engines.
    #[test]
    fn harness_with_random_dma_timing_matches(seed in any::<u64>()) {
        let (accel, n, width) = gen_accel(seed);
        let elems = n * width;
        let in_bytes = (elems * 8).max(8);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA);
        let mut ram = vec![0u8; in_bytes * 2 + 64];
        for b in ram.iter_mut().take(in_bytes) {
            *b = rng.gen_range(0..=255u64) as u8;
        }
        // Random DMA-in split: 1..4 jobs covering IN back-to-back.
        let mut jobs_in = Vec::new();
        let mut off = 0usize;
        while off < in_bytes {
            let rem = in_bytes - off;
            let len = if rem <= 8 { rem } else { rng.gen_range(8..=rem) };
            jobs_in.push(DmaJob { dir: DmaDir::ToSram, ram_off: off, mem: MemRef::Spm(0), mem_off: off, len });
            off += len;
        }
        let jobs_out = vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: in_bytes,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: in_bytes,
        }];
        let mut harness = DsaHarness {
            accel,
            ram,
            jobs_in,
            jobs_out,
            args: vec![],
            output: in_bytes..in_bytes * 2,
        };
        for k in 0..MAX_WIDTH {
            harness.accel.regbanks[0].write(k as u64 * 8, 8, rng.gen_range(1..1000u64)).unwrap();
        }
        // prepare() itself runs the cycle oracle, then the event engine,
        // and asserts cycle counts and outputs are identical.
        let g = DsaGolden::prepare(harness, 10_000_000);
        prop_assert!(g.harness.accel.replay_armed(), "fuzzed design must arm replay");
    }
}
