//! Perf guard for the zero-copy campaign engine, in bytes rather than
//! wall-clock so CI noise cannot flake it: on an early-termination-heavy
//! campaign, the dirty reset must touch a small bounded slice of the
//! checkpoint — not degrade back into a full-state copy.

use gem5_marvel::core::{run_campaign, CampaignConfig, Golden, ResetMode, Target, TelemetryConfig};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::telemetry::Registry;
use gem5_marvel::workloads::mibench;

/// Per-reset byte budget. A full checkpoint clone copies the entire
/// multi-megabyte `System` (4 MiB RAM + 1 MiB L2 alone); a dirty reset
/// after a masked-early run must stay well over an order of magnitude
/// below that.
const RESET_BYTE_BUDGET: u64 = 256 * 1024;

#[test]
fn dirty_reset_touches_bounded_bytes_on_early_terminated_runs() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    // workers=1: a single worker context, so run 1 pays the clone and the
    // remaining n-1 runs all go through reset_from.
    let cc = CampaignConfig {
        n_faults: 48,
        workers: 1,
        reset_mode: ResetMode::Dirty,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    // PrfInt transients mostly land in dead registers: the campaign is
    // dominated by masked-early runs, the case the zero-copy engine is
    // built around.
    let res = run_campaign(&g, Target::PrfInt, &cc);
    assert!(
        res.early_termination_rate() > 0.5,
        "guard needs an early-termination-heavy campaign, got {:.0}%",
        res.early_termination_rate() * 100.0
    );

    let snap = registry.histogram("campaign.reset_bytes").expect("registry is live").snapshot();
    assert_eq!(snap.count, 47, "every run after the first must reset, not clone");
    let mean = snap.mean();
    assert!(
        mean <= RESET_BYTE_BUDGET as f64,
        "mean dirty-reset footprint {mean:.0} B exceeds the {RESET_BYTE_BUDGET} B budget"
    );
}
