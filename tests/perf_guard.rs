//! Perf guards for the campaign engine, in bytes and cycles rather than
//! wall-clock so CI noise cannot flake them: on an early-termination-heavy
//! campaign, the dirty reset must touch a small bounded slice of the
//! checkpoint — not degrade back into a full-state copy — and on a
//! late-injection campaign, the checkpoint ladder must cut the fault-free
//! prefix each run re-simulates down to at most one inter-rung gap.

use gem5_marvel::core::{
    run_campaign, run_masks, CampaignConfig, FaultKind, Golden, MaskGenerator, ResetMode, Target,
    TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::telemetry::Registry;
use gem5_marvel::workloads::mibench;

/// Per-reset byte budget. A full checkpoint clone copies the entire
/// multi-megabyte `System` (4 MiB RAM + 1 MiB L2 alone); a dirty reset
/// after a masked-early run must stay well over an order of magnitude
/// below that.
const RESET_BYTE_BUDGET: u64 = 256 * 1024;

#[test]
fn dirty_reset_touches_bounded_bytes_on_early_terminated_runs() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    // workers=1: a single worker context, so run 1 pays the clone and the
    // remaining n-1 runs all go through reset_from.
    let cc = CampaignConfig {
        n_faults: 48,
        workers: 1,
        reset_mode: ResetMode::Dirty,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    // PrfInt transients mostly land in dead registers: the campaign is
    // dominated by masked-early runs, the case the zero-copy engine is
    // built around.
    let res = run_campaign(&g, Target::PrfInt, &cc);
    assert!(
        res.early_termination_rate() > 0.5,
        "guard needs an early-termination-heavy campaign, got {:.0}%",
        res.early_termination_rate() * 100.0
    );

    let snap = registry.histogram("campaign.reset_bytes").expect("registry is live").snapshot();
    assert_eq!(snap.count, 47, "every run after the first must reset, not clone");
    let mean = snap.mean();
    assert!(
        mean <= RESET_BYTE_BUDGET as f64,
        "mean dirty-reset footprint {mean:.0} B exceeds the {RESET_BYTE_BUDGET} B budget"
    );
}

#[test]
fn ladder_bounds_residual_prefix_on_late_injections() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    const RUNGS: u64 = 8;
    let cc = CampaignConfig {
        workers: 2,
        reset_mode: ResetMode::Dirty,
        ladder_rungs: RUNGS as usize,
        convergence_exit: true,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    // Masks windowed into the last fifth of the injection window — the
    // worst case for the full-prefix engine (each run used to re-simulate
    // ≥80% of the golden run fault-free before the flip even landed).
    let w = g.injection_window();
    let late = (w.start + (w.end - w.start) * 4 / 5)..w.end;
    let n = 32;
    let mut gen = MaskGenerator::new(0x1ADDE2);
    let masks =
        gen.single_bit(Target::PrfInt, g.ckpt.bit_len(Target::PrfInt), FaultKind::Transient, late, n);
    let records = run_masks(&g, &masks, &cc);
    assert_eq!(records.len(), n);

    // Residual fault-free prefix actually simulated per run (injection
    // cycle minus the restored rung's cycle). With K rungs it is bounded
    // by one inter-rung gap, exec/(K+1) — allow exec/K for rounding slack.
    // Without the ladder this mean sits at ≥ 0.8 × exec_cycles.
    let snap = registry.histogram("campaign.prefix_cycles").expect("registry is live").snapshot();
    assert_eq!(snap.count, n as u64, "every transient run must report its residual prefix");
    let budget = (g.exec_cycles / RUNGS) as f64;
    let mean = snap.mean();
    assert!(
        mean <= budget,
        "mean residual prefix {mean:.0} cycles exceeds the inter-rung budget {budget:.0} \
         (exec_cycles {})",
        g.exec_cycles
    );

    // And the ladder must actually be skipping work: the prefix cycles
    // skipped per run dwarf the residual simulated.
    let skipped =
        registry.histogram("campaign.prefix_cycles_skipped").expect("registry is live").snapshot();
    assert!(
        skipped.mean() >= 4.0 * budget,
        "skipped-prefix mean {:.0} is too small for a late-injection campaign",
        skipped.mean()
    );
}
