//! Perf guards for the campaign engine, in bytes and cycles rather than
//! wall-clock so CI noise cannot flake them: on an early-termination-heavy
//! campaign, the dirty reset must touch a small bounded slice of the
//! checkpoint — not degrade back into a full-state copy — and on a
//! late-injection campaign, the checkpoint ladder must cut the fault-free
//! prefix each run re-simulates down to at most one inter-rung gap.

use gem5_marvel::core::{
    run_campaign, run_dsa_campaign, run_masks, CampaignConfig, DsaEngine, DsaGolden, DsaOutcome,
    FaultKind, FaultMask, FaultModel, Golden, MaskGenerator, ResetMode, Target, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::telemetry::{PhaseId, Registry, SpanCollector};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{Accelerator, DmaDir, DmaJob, FuConfig, Sram, SramKind};
use marvel_core::DsaHarness;
use marvel_isa::AluOp;

/// Per-reset byte budget. A full checkpoint clone copies the entire
/// multi-megabyte `System` (4 MiB RAM + 1 MiB L2 alone); a dirty reset
/// after a masked-early run must stay well over an order of magnitude
/// below that.
const RESET_BYTE_BUDGET: u64 = 256 * 1024;

#[test]
fn dirty_reset_touches_bounded_bytes_on_early_terminated_runs() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    // workers=1: a single worker context, so run 1 pays the clone and the
    // remaining n-1 runs all go through reset_from.
    // lane_width 0: this guard bounds the *scalar* dirty-reset footprint
    // (one reset per run); lane packing shares resets across a pass and
    // has its own utilization guard below.
    let cc = CampaignConfig {
        n_faults: 48,
        workers: 1,
        reset_mode: ResetMode::Dirty,
        lane_width: 0,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    // PrfInt transients mostly land in dead registers: the campaign is
    // dominated by masked-early runs, the case the zero-copy engine is
    // built around.
    let res = run_campaign(&g, Target::PrfInt, &cc);
    assert!(
        res.early_termination_rate() > 0.5,
        "guard needs an early-termination-heavy campaign, got {:.0}%",
        res.early_termination_rate() * 100.0
    );

    let snap = registry.histogram("campaign.reset_bytes").expect("registry is live").snapshot();
    assert_eq!(snap.count, 47, "every run after the first must reset, not clone");
    let mean = snap.mean();
    assert!(
        mean <= RESET_BYTE_BUDGET as f64,
        "mean dirty-reset footprint {mean:.0} B exceeds the {RESET_BYTE_BUDGET} B budget"
    );
}

#[test]
fn ladder_bounds_residual_prefix_on_late_injections() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    const RUNGS: u64 = 8;
    // lane_width 0: the guard asserts one prefix_cycles sample per run,
    // which is a scalar-engine invariant — a lane pass simulates the
    // residual prefix once for every lane it carries.
    let cc = CampaignConfig {
        workers: 2,
        reset_mode: ResetMode::Dirty,
        ladder_rungs: RUNGS as usize,
        convergence_exit: true,
        lane_width: 0,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    // Masks windowed into the last fifth of the injection window — the
    // worst case for the full-prefix engine (each run used to re-simulate
    // ≥80% of the golden run fault-free before the flip even landed).
    let w = g.injection_window();
    let late = (w.start + (w.end - w.start) * 4 / 5)..w.end;
    let n = 32;
    let mut gen = MaskGenerator::new(0x1ADDE2);
    let masks =
        gen.single_bit(Target::PrfInt, g.ckpt.bit_len(Target::PrfInt), FaultKind::Transient, late, n);
    let records = run_masks(&g, &masks, &cc);
    assert_eq!(records.len(), n);

    // Residual fault-free prefix actually simulated per run (injection
    // cycle minus the restored rung's cycle). With K rungs it is bounded
    // by one inter-rung gap, exec/(K+1) — allow exec/K for rounding slack.
    // Without the ladder this mean sits at ≥ 0.8 × exec_cycles.
    let snap = registry.histogram("campaign.prefix_cycles").expect("registry is live").snapshot();
    assert_eq!(snap.count, n as u64, "every transient run must report its residual prefix");
    let budget = (g.exec_cycles / RUNGS) as f64;
    let mean = snap.mean();
    assert!(
        mean <= budget,
        "mean residual prefix {mean:.0} cycles exceeds the inter-rung budget {budget:.0} \
         (exec_cycles {})",
        g.exec_cycles
    );

    // And the ladder must actually be skipping work: the prefix cycles
    // skipped per run dwarf the residual simulated.
    let skipped =
        registry.histogram("campaign.prefix_cycles_skipped").expect("registry is live").snapshot();
    assert!(
        skipped.mean() >= 4.0 * budget,
        "skipped-prefix mean {:.0} is too small for a late-injection campaign",
        skipped.mean()
    );
}

/// Lane-utilization guard, in counters rather than wall-clock: on a
/// packable campaign (single-bit PRF transients) the lane engine must
/// actually pack nearly every run, keep the mean lanes-per-pass well
/// above the break-even point, and fork only a bounded fraction back to
/// scalar re-runs. A regression that silently degrades packing (masks
/// misgrouped, lanes forked eagerly, eligibility over-tightened) trips
/// this long before the wall-clock floor in the bench would.
#[test]
fn lane_packing_sustains_occupancy_and_bounded_forks() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = gem5_marvel::soc::System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let g = Golden::prepare(sys, 80_000_000).unwrap();

    let registry = Registry::new();
    let n = 96;
    let cc = CampaignConfig {
        n_faults: n,
        workers: 2,
        reset_mode: ResetMode::Dirty,
        ladder_rungs: 8,
        convergence_exit: true,
        lane_width: 64,
        telemetry: TelemetryConfig { registry: registry.clone(), ..Default::default() },
        ..Default::default()
    };
    let res = run_campaign(&g, Target::PrfInt, &cc);
    assert_eq!(res.n(), n);

    let passes = registry.counter("campaign.lane_passes").get();
    let packed = registry.counter("campaign.lane_runs_packed").get();
    let forks = registry.counter("campaign.lane_forks").get();
    assert!(passes > 0, "a packable campaign must run lane passes");
    // Single-bit transients on one target are all eligible; only chunks
    // of one (a ladder segment holding a lone mask) may fall out.
    assert!(packed >= n as u64 * 3 / 4, "only {packed} of {n} eligible runs were lane-packed");
    // Mean lanes per pass: with 8 rungs the masks split over 9 ladder
    // segments, so ~n/9 lanes share each pass — demand at least half
    // that, far above the ~2-lane break-even of a shared golden pass.
    let occupancy = packed as f64 / passes as f64;
    assert!(
        occupancy >= (n / 9) as f64 / 2.0,
        "mean lane occupancy {occupancy:.1} is below the utilization floor"
    );
    // Forks are safe but must stay the exception: a PRF-transient
    // campaign is overwhelmingly masked, so at most a quarter of packed
    // lanes may leave their pass for a scalar re-run.
    assert!(forks * 4 <= packed, "{forks} of {packed} packed lanes forked to scalar re-runs");
}

/// Elementwise OUT[i] = IN[i] * 3 over `n` elements — a workload where a
/// single flipped SPM bit taints exactly one element's dataflow cone, so
/// golden replay should memoize essentially everything else.
fn triple_harness(n: u64) -> DsaHarness {
    let bytes = (n * 8) as usize;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let body = g.block(1);
    let done = g.block(0);
    g.select(entry);
    let z = g.konst(0);
    g.jump(body, &[z]);
    g.select(body);
    let i = g.arg(0);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let v = g.load(MemRef::Spm(0), 8, off);
    let three = g.konst(3);
    let prod = g.alu(AluOp::Mul, v, three);
    g.store(MemRef::Spm(1), 8, off, prod);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let nn = g.konst(n);
    let more = g.alu(AluOp::Sltu, i2, nn);
    g.branch(more, body, &[i2], done, &[]);
    g.select(done);
    g.finish();
    let accel = Accelerator::new(
        "triple",
        g.build().unwrap(),
        FuConfig::default(),
        vec![Sram::new("IN", SramKind::Spm, bytes, 2), Sram::new("OUT", SramKind::Spm, bytes, 2)],
        vec![],
        0,
    );
    let mut ram = vec![0u8; bytes * 2];
    for (k, b) in ram.iter_mut().take(bytes).enumerate() {
        *b = (k as u8).wrapping_mul(13).wrapping_add(7);
    }
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![DmaJob {
            dir: DmaDir::ToSram,
            ram_off: 0,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: bytes,
        }],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: bytes,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: bytes,
        }],
        args: vec![],
        output: bytes..bytes * 2,
    }
}

/// Node evaluations per faulty replay run must be proportional to the
/// taint cone, not the design size: on the contained-taint elementwise
/// workload a single flipped bit taints one element's chain, so a full
/// event-engine run may re-evaluate only a handful of nodes while
/// everything else replays from the golden trace.
const TAINT_EVAL_BUDGET: u64 = 16;

#[test]
fn replay_bounds_node_evals_to_the_taint_cone() {
    let g = DsaGolden::prepare(triple_harness(64), 1_000_000);
    assert!(g.harness.accel.replay_armed(), "triple must be schedulable");

    // Fault-free oracle for the eval population: the cycle engine
    // re-evaluates every non-trivial node.
    let mut oracle = g.harness.clone();
    oracle.run(None, 1_000_000);
    let full_evals = oracle.accel.stats.node_evals;
    assert!(full_evals > 300, "triple(64) must evaluate hundreds of nodes, got {full_evals}");

    // Faulty event run: flip one bit of IN element 5 just after DMA-in
    // lands (cycle 68 of a 64-cycle DMA phase), before the element is
    // consumed.
    let mut h = g.harness.clone();
    assert!(h.accel.set_engine_event());
    h.accel.enable_taint("IN");
    let mask = FaultMask {
        target: Target::Spm { accel: 0, mem: 0 },
        bits: vec![5 * 64 + 3],
        model: FaultModel::Transient { cycle: 68 },
    };
    let out = h.run(Some(&mask), 1_000_000);
    match out {
        DsaOutcome::Done { output, .. } => {
            assert_ne!(output, g.output, "the tainted element must corrupt the output")
        }
        o => panic!("faulty run must still finish, got {o:?}"),
    }
    let stats = &h.accel.stats;
    assert!(
        stats.node_evals <= TAINT_EVAL_BUDGET,
        "faulty replay re-evaluated {} nodes; budget is {TAINT_EVAL_BUDGET} (full run: {full_evals})",
        stats.node_evals
    );
    assert!(
        stats.memo_hits >= full_evals - TAINT_EVAL_BUDGET,
        "replay must memoize the untainted remainder: {} hits of {full_evals} evals",
        stats.memo_hits
    );
}

/// Per-run sim-step wall time, as seen by the span layer: the
/// event-driven engine's SimStepDsa p50 must sit well below the cycle
/// oracle's on the same campaign. A relative ceiling keeps the guard
/// machine-independent while still catching an engine that silently
/// degrades to per-cycle scanning.
#[test]
fn event_engine_sim_step_p50_beats_cycle_oracle() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    assert!(g.harness.accel.replay_armed());
    let target = Target::Spm { accel: 0, mem: 0 };
    let p50 = |engine: DsaEngine| {
        let spans = SpanCollector::enabled();
        let cc = CampaignConfig {
            n_faults: 12,
            workers: 2,
            dsa_engine: engine,
            telemetry: TelemetryConfig { spans: spans.clone(), ..Default::default() },
            ..Default::default()
        };
        run_dsa_campaign(&g, target, &cc);
        let report = spans.report();
        report
            .rows
            .iter()
            .find(|r| r.phase == PhaseId::SimStepDsa)
            .unwrap_or_else(|| panic!("no SimStepDsa span rows for {engine:?}"))
            .p50_us
    };
    let cycle = p50(DsaEngine::Cycle);
    let event = p50(DsaEngine::Event);
    assert!(
        event * 2 <= cycle,
        "event-engine SimStepDsa p50 ({event} µs) must be at most half the \
         cycle oracle's ({cycle} µs)"
    );
}
