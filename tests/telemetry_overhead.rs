//! Overhead guard: full telemetry (registry + flight recorder) must not
//! meaningfully slow the injection hot path relative to
//! `Registry::disabled()`. The precision target is <2% (checked with the
//! `telemetry` Criterion bench); this asserting guard uses a deliberately
//! loose 2x bound so scheduler noise on CI machines cannot flake it while
//! still catching structural regressions (e.g. an accidental lock or
//! allocation per tick).

use gem5_marvel::core::{run_one, CampaignConfig, FaultMask, FaultModel, Golden, TelemetryConfig};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::Registry;
use gem5_marvel::workloads::mibench;
use std::time::Instant;

fn median_run_secs(golden: &Golden, mask: &FaultMask, cc: &CampaignConfig, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let rec = run_one(golden, mask, cc);
            assert!(rec.cycles > 0);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[test]
fn telemetry_overhead_is_bounded() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, 80_000_000).unwrap();
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: golden.ckpt_cycle + golden.exec_cycles / 2 },
    };

    let off = CampaignConfig { n_faults: 1, ..Default::default() };
    let on = CampaignConfig {
        n_faults: 1,
        telemetry: TelemetryConfig {
            registry: Registry::new(),
            progress_interval_ms: 0,
            flight_capacity: 64,
            taint: false,
        },
        ..Default::default()
    };

    // Warm up (page in code + golden state), then compare medians.
    run_one(&golden, &mask, &off);
    run_one(&golden, &mask, &on);
    let t_off = median_run_secs(&golden, &mask, &off, 7);
    let t_on = median_run_secs(&golden, &mask, &on, 7);

    let ratio = t_on / t_off.max(1e-12);
    assert!(
        ratio < 2.0,
        "telemetry-on injection run took {ratio:.2}x the disabled-registry time \
         (off {t_off:.4}s, on {t_on:.4}s) — expected near-zero overhead"
    );
}

#[test]
fn disabled_registry_handles_are_noops() {
    let reg = Registry::disabled();
    let c = reg.counter("x.y");
    for _ in 0..1_000_000 {
        c.inc();
    }
    assert_eq!(c.get(), 0);
    assert!(reg.histogram("h").is_none());
    assert!(reg.snapshot().counters.is_empty());
}
