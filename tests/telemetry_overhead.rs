//! Overhead guard: full telemetry (registry + flight recorder) must not
//! meaningfully slow the injection hot path relative to
//! `Registry::disabled()`. The precision target is <2% (checked with the
//! `telemetry` Criterion bench); this asserting guard uses a deliberately
//! loose 2x bound so scheduler noise on CI machines cannot flake it while
//! still catching structural regressions (e.g. an accidental lock or
//! allocation per tick).

use gem5_marvel::core::{
    run_one, run_one_spanned, CampaignConfig, FaultMask, FaultModel, Golden, TelemetryConfig,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::{PhaseId, Registry, SpanCollector, SpanLane};
use gem5_marvel::workloads::mibench;
use std::time::Instant;

fn median_run_secs(golden: &Golden, mask: &FaultMask, cc: &CampaignConfig, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let rec = run_one(golden, mask, cc);
            assert!(rec.cycles > 0);
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[test]
fn telemetry_overhead_is_bounded() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, 80_000_000).unwrap();
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: golden.ckpt_cycle + golden.exec_cycles / 2 },
    };

    let off = CampaignConfig { n_faults: 1, ..Default::default() };
    let on = CampaignConfig {
        n_faults: 1,
        telemetry: TelemetryConfig {
            registry: Registry::new(),
            progress_interval_ms: 0,
            flight_capacity: 64,
            taint: false,
            spans: SpanCollector::disabled(),
        },
        ..Default::default()
    };

    // Warm up (page in code + golden state), then compare medians.
    run_one(&golden, &mask, &off);
    run_one(&golden, &mask, &on);
    let t_off = median_run_secs(&golden, &mask, &off, 7);
    let t_on = median_run_secs(&golden, &mask, &on, 7);

    let ratio = t_on / t_off.max(1e-12);
    assert!(
        ratio < 2.0,
        "telemetry-on injection run took {ratio:.2}x the disabled-registry time \
         (off {t_off:.4}s, on {t_on:.4}s) — expected near-zero overhead"
    );
}

/// Span-tracing overhead guard (marvel-spans). The precision target is
/// ≤3% with the collector enabled (a run enters a handful of phases, each
/// two monotonic clock reads and a ring push) and exactly 0% disabled
/// (a single `Option` branch per hook). Like the registry guard above,
/// the asserting bound is a loose 1.5x so CI scheduler noise cannot
/// flake it while structural regressions (per-phase allocation, a lock
/// on the hot path) still trip it.
#[test]
fn span_tracing_overhead_is_bounded() {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let golden = Golden::prepare(sys, 80_000_000).unwrap();
    // Bit 4321 lands in a *valid* L1D line (same mask as the registry
    // guard above): the run must reach the post-injection simulation
    // loop, so the SimStepCpu span is exercised — a bit in an invalid
    // entry would return "masked immediately" from the fate probe
    // without ever entering it.
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: golden.ckpt_cycle + golden.exec_cycles / 2 },
    };
    let cc = CampaignConfig { n_faults: 1, ..Default::default() };

    let collector = SpanCollector::enabled();
    let mut on = collector.lane("overhead-guard");
    let mut off = SpanLane::disabled();
    // Warm up both paths, then compare medians over the same run count.
    run_one_spanned(&golden, None, &mask, &cc, None, &mut off);
    run_one_spanned(&golden, None, &mask, &cc, None, &mut on);
    let median = |lane: &mut SpanLane| -> f64 {
        let mut times: Vec<f64> = (0..7)
            .map(|i| {
                lane.begin_run(i);
                let t0 = Instant::now();
                let rec = run_one_spanned(&golden, None, &mask, &cc, None, lane);
                let dt = t0.elapsed().as_secs_f64();
                lane.end_run();
                assert!(rec.cycles > 0);
                dt
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times[times.len() / 2]
    };
    let t_off = median(&mut off);
    let t_on = median(&mut on);
    drop(on);

    // The enabled run actually collected: phases aggregated, run trees kept.
    let rep = collector.report();
    assert!(rep.calls(PhaseId::SimStepCpu) >= 8, "spans collected: {:?}", rep.rows);

    let ratio = t_on / t_off.max(1e-12);
    assert!(
        ratio < 1.5,
        "span-traced injection run took {ratio:.2}x the disabled-lane time \
         (off {t_off:.4}s, on {t_on:.4}s) — target is ≤3% overhead"
    );
}

/// Disabled span hooks must be free: no events, no allocation, no state.
#[test]
fn disabled_span_lane_collects_nothing() {
    let collector = SpanCollector::disabled();
    assert!(!collector.is_enabled());
    let mut lane = collector.lane("ghost");
    for i in 0..10_000 {
        lane.begin_run(i);
        lane.enter(PhaseId::SimStepCpu);
        lane.enter(PhaseId::ConvergenceDiff);
        lane.exit(PhaseId::ConvergenceDiff);
        lane.exit(PhaseId::SimStepCpu);
        lane.end_run();
    }
    drop(lane);
    collector.time(PhaseId::GoldenPrep, || {});
    let rep = collector.report();
    assert!(rep.rows.is_empty(), "disabled collector aggregated phases: {:?}", rep.rows);
    let trace = collector.trace();
    assert!(trace.lanes.is_empty() && trace.external.outer.is_empty() && trace.external.runs.is_empty());
}

#[test]
fn disabled_registry_handles_are_noops() {
    let reg = Registry::disabled();
    let c = reg.counter("x.y");
    for _ in 0..1_000_000 {
        c.inc();
    }
    assert_eq!(c.get(), 0);
    assert!(reg.histogram("h").is_none());
    assert!(reg.snapshot().counters.is_empty());
}
