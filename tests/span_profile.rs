//! marvel-spans integration: the span layer's cross-cutting invariants,
//! checked through the real campaign engine.
//!
//! 1. **Determinism** — phase *call counts* are a pure function of the
//!    spec: the same seed driven at 1, 2 and 8 workers aggregates
//!    identical per-phase counts (wall-times of course differ). Runs in
//!    `Clone` reset mode, where even `RungRestore` is per-run and thus
//!    worker-count-invariant; in `Dirty` mode only the
//!    `DirtyReset + RungRestore` *sum* is invariant (each worker pays one
//!    reclone whenever it inherits a permanently-faulted system).
//! 2. **Trace validity** — the Chrome trace-event JSON parses with the
//!    service's own JSON parser and every event is well-formed per the
//!    trace-event spec (`"M"` metadata or complete `"X"` with ts/dur).
//! 3. **Attribution coverage** — at workers=1 the phase report accounts
//!    for most of the collector's wall clock. The CI profile-smoke step
//!    enforces the release-build ≥90% bound on a real scenario; here the
//!    bound is loose (debug build, shared CI runners) but still catches
//!    a span that silently stops covering the simulation loop.

use gem5_marvel::core::{run_campaign, CampaignConfig, Golden, ResetMode, TelemetryConfig};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::serve::json::{self, Json};
use gem5_marvel::soc::{System, Target};
use gem5_marvel::telemetry::{render_chrome_trace, PhaseId, SpanCollector, TRACE_SCHEMA_VERSION};
use gem5_marvel::workloads::mibench;

const FAULTS: usize = 12;

fn golden() -> Golden {
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

/// Run the reference campaign with spans on and return its collector.
fn campaign_collector(golden: &Golden, workers: usize) -> SpanCollector {
    let collector = SpanCollector::enabled();
    // lane_width 0: these invariants are stated over the scalar engine's
    // span shape (one Inject/SimStepCpu/... span per run); a lane pass
    // shares those spans across its lanes, so the per-phase counts stop
    // being `FAULTS` the moment packing kicks in.
    let cc = CampaignConfig {
        n_faults: FAULTS,
        seed: 0xBEEF,
        workers,
        reset_mode: ResetMode::Clone,
        ladder_rungs: 8,
        lane_width: 0,
        telemetry: TelemetryConfig { spans: collector.clone(), ..Default::default() },
        ..Default::default()
    };
    let res = run_campaign(golden, Target::PrfInt, &cc);
    assert_eq!(res.records.len(), FAULTS);
    collector
}

#[test]
fn phase_counts_are_worker_count_invariant() {
    let g = golden();
    let rep1 = campaign_collector(&g, 1).report();
    // Shape at workers=1: one span per run for every per-run phase (the
    // Schedule span counts only successful claims, so it too equals the
    // run count at any worker count), one ladder build.
    assert_eq!(rep1.calls(PhaseId::LadderBuild), 1);
    for phase in [
        PhaseId::Schedule,
        PhaseId::Inject,
        PhaseId::SimStepCpu,
        PhaseId::RungRestore,
        PhaseId::ExportRecord,
    ] {
        assert_eq!(rep1.calls(phase), FAULTS as u64, "{} per-run", phase.name());
    }
    let base: Vec<u64> = PhaseId::ALL.iter().map(|&p| rep1.calls(p)).collect();
    for workers in [2, 8] {
        let rep = campaign_collector(&g, workers).report();
        let counts: Vec<u64> = PhaseId::ALL.iter().map(|&p| rep.calls(p)).collect();
        assert_eq!(
            base, counts,
            "phase call counts must not depend on worker count (workers={workers})"
        );
    }
}

#[test]
fn chrome_trace_parses_and_events_are_well_formed() {
    let g = golden();
    let c = campaign_collector(&g, 2);
    let text = render_chrome_trace(&c.trace());
    let v = json::parse(&text).expect("trace is valid JSON");
    assert_eq!(
        v.get("otherData").and_then(|o| o.get("schema_version")).and_then(Json::as_u64),
        Some(TRACE_SCHEMA_VERSION as u64)
    );
    let events = v.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    let (mut tracks, mut spans) = (0usize, 0usize);
    for e in events {
        match e.get("ph").and_then(Json::as_str) {
            Some("M") => {
                tracks += 1;
                assert_eq!(e.get("name").and_then(Json::as_str), Some("thread_name"));
                assert!(e.get("args").and_then(|a| a.get("name")).is_some(), "track has a name");
            }
            Some("X") => {
                spans += 1;
                assert!(e.get("name").and_then(Json::as_str).is_some(), "span has a phase name");
                assert!(e.get("ts").and_then(Json::as_u64).is_some(), "span has a timestamp");
                assert!(e.get("dur").and_then(Json::as_u64).is_some(), "span has a duration");
                assert_eq!(e.get("cat").and_then(Json::as_str), Some("phase"));
                assert!(e.get("tid").and_then(Json::as_u64).is_some());
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(tracks >= 2, "at least the shared track plus one worker lane ({tracks})");
    assert!(spans >= FAULTS, "per-run spans present ({spans})");
}

#[test]
fn single_worker_report_attributes_most_wall_time() {
    let g = golden();
    let rep = campaign_collector(&g, 1).report();
    let cov = rep.coverage();
    assert!(
        cov > 0.5,
        "phase self-times cover {:.1}% of the collector wall clock \
         (attributed {} µs of {} µs) — expected the simulation loop to dominate",
        cov * 100.0,
        rep.self_total_us(),
        rep.wall_us
    );
    assert!(cov <= 1.0 + 1e-9, "self-time cannot exceed wall time at one worker ({cov})");
}
