//! Differential oracle for checkpoint-ladder prefix elimination and the
//! dirty-diff convergence exit: campaigns run with any combination of
//! ladder rungs and convergence exit must produce byte-identical exports —
//! summary CSV rows and the marvel-taint attribution tables (CSV + JSONL)
//! — to the full-prefix oracle (`ladder_rungs: 0`), at every worker
//! count, on all three ISAs, and on the DSA path.

use gem5_marvel::core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, csv_row, run_campaign,
    run_dsa_campaign, CampaignConfig, DsaGolden, Golden, TelemetryConfig, CSV_HEADER,
};
use gem5_marvel::cpu::CoreConfig;
use gem5_marvel::ir::assemble;
use gem5_marvel::isa::Isa;
use gem5_marvel::soc::{System, Target};
use gem5_marvel::workloads::{accel, mibench};
use marvel_accel::FuConfig;

fn config(ladder_rungs: usize, convergence_exit: bool, workers: usize) -> CampaignConfig {
    CampaignConfig {
        n_faults: 20,
        collect_hvf: true,
        workers,
        ladder_rungs,
        convergence_exit,
        telemetry: TelemetryConfig { taint: true, ..Default::default() },
        ..Default::default()
    }
}

/// Render the full export surface of one campaign: summary CSV plus the
/// attribution CSV + JSONL tables.
fn export(label: &str, golden: &Golden, target: Target, cc: &CampaignConfig) -> String {
    let res = run_campaign(golden, target, cc);
    let mut out = String::from(CSV_HEADER);
    out.push_str(&csv_row(label, &res));
    if let Some(map) = attribution_by_structure(&res.records) {
        out.push_str(&attribution_csv(&map));
        out.push_str(&attribution_jsonl(&map));
    }
    out
}

#[test]
fn cpu_exports_byte_identical_with_ladder_and_convergence() {
    for isa in Isa::ALL {
        let bin = assemble(&mibench::build("crc32"), isa).unwrap();
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        let g = Golden::prepare(sys, 80_000_000).unwrap();
        for target in [Target::PrfInt, Target::L1D] {
            let oracle = export("ladder", &g, target, &config(0, false, 1));
            for workers in [1usize, 2, 8] {
                for (rungs, conv) in [(8usize, false), (8, true)] {
                    let got = export("ladder", &g, target, &config(rungs, conv, workers));
                    assert_eq!(
                        oracle, got,
                        "{isa:?} {target:?} rungs={rungs} conv={conv} workers={workers}"
                    );
                }
            }
        }
    }
}

#[test]
fn dsa_exports_byte_identical_with_ladder_and_convergence() {
    let d = accel::design("FFT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), 50_000_000);
    let target = d.components[0].target;
    let export = |rungs, conv, workers| {
        let res = run_dsa_campaign(&g, target, &config(rungs, conv, workers));
        let mut out: String = res
            .records
            .iter()
            .map(|r| format!("{:?},{:?},{},{}\n", r.effect, r.trap, r.cycles, r.early_terminated))
            .collect();
        if let Some(map) = attribution_by_structure(&res.records) {
            out.push_str(&attribution_csv(&map));
            out.push_str(&attribution_jsonl(&map));
        }
        out
    };
    let oracle = export(0, false, 1);
    for workers in [1usize, 2, 8] {
        for (rungs, conv) in [(8usize, false), (8, true)] {
            assert_eq!(
                oracle,
                export(rungs, conv, workers),
                "rungs={rungs} conv={conv} workers={workers}"
            );
        }
    }
}
