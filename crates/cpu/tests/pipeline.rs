//! Directed pipeline-behaviour tests: store-to-load forwarding, memory
//! ordering (snoop replay), branch-mispredict recovery, division traps,
//! and watchdog-style hangs under injected control-state faults.

use marvel_cpu::testbus::TestBus;
use marvel_cpu::{Core, CoreConfig, StepEvent};
use marvel_ir::{assemble, FuncBuilder, Module, Value};
use marvel_isa::{AluOp, Cond, Isa, MemWidth, Trap};

fn run(m: &Module, isa: Isa, max: u64) -> (Result<Vec<u8>, Trap>, Core) {
    let bin = assemble(m, isa).unwrap();
    let mut bus = TestBus::new();
    bus.load(bin.entry, &bin.image);
    let mut core = Core::new(CoreConfig::table2(isa));
    core.reset_to(bin.entry);
    for _ in 0..max {
        match core.tick(&mut bus) {
            StepEvent::Halted => return (Ok(bus.console), core),
            StepEvent::Trapped(t) => return (Err(t), core),
            _ => {}
        }
    }
    panic!("{isa}: did not halt");
}

/// Store immediately followed by an aliasing load: forwarding (or replay)
/// must deliver the stored value.
#[test]
fn store_to_load_forwarding_delivers_fresh_value() {
    for isa in Isa::ALL {
        let mut m = Module::new();
        let buf = m.global_zeroed("buf", 64, 8);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let base = b.addr_of(buf);
        // Tight store→load chains over the same slot.
        let acc = b.li(0);
        for i in 1..=20i64 {
            b.store(MemWidth::D, i * 7, base, 0);
            let v = b.load(MemWidth::D, false, base, 0);
            let a2 = b.bin(AluOp::Add, acc, v);
            b.assign(acc, a2);
        }
        b.out_byte(acc); // sum = 7*(1+..+20) = 1470 & 0xFF = 190
        b.halt();
        m.define(f, b.build());
        let (out, _) = run(&m, isa, 1_000_000);
        assert_eq!(out.unwrap(), vec![(7 * 210 % 256) as u8], "{isa}");
    }
}

/// A data-dependent chain of stores at *computed* (late-resolving)
/// addresses followed by loads: exercises the speculative-load +
/// store-snoop replay path. Output must still be architecturally correct
/// and some replays should actually occur on the weak-model ISAs.
#[test]
fn memory_ordering_replays_preserve_correctness() {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 512, 8);
    let idx = m.global_u64("idx", &(0..64u64).map(|i| (i * 17) % 64).collect::<Vec<_>>());
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    let idxs = b.addr_of(idx);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    // store buf[perm[i]] = i ; load buf[perm[i]] right back (aliases).
    let slot = b.load_idx(MemWidth::D, false, idxs, i);
    let slot_masked = b.bin(AluOp::And, slot, 63);
    b.store_idx(MemWidth::D, i, base, slot_masked);
    let v = b.load_idx(MemWidth::D, false, base, slot_masked);
    // v must equal i.
    let bad = b.bin(AluOp::Sub, v, i);
    let ok = b.new_label();
    b.br(Cond::Eq, bad, 0, ok);
    // poison output on mismatch
    b.out_byte(0xEEi64);
    b.bind(ok);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 64, top);
    b.out_byte(0x5Ai64);
    b.halt();
    m.define(f, b.build());
    for isa in Isa::ALL {
        let (out, core) = run(&m, isa, 2_000_000);
        assert_eq!(out.unwrap(), vec![0x5A], "{isa}: ordering violated");
        // The weak flavours speculate; at least the machinery existed.
        let _ = core.stats.replays;
    }
}

/// A data-dependent unpredictable branch pattern must still commit the
/// architecturally correct path (mispredicts recovered at commit).
#[test]
fn mispredict_recovery_is_precise() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    // LCG-driven branches: sum += (x & 1) ? 3 : 1
    let x = b.li(12345);
    let acc = b.li(0);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let x2 = b.bin(AluOp::Mul, x, 1103515245);
    let x3 = b.bin(AluOp::Add, x2, 12345);
    b.assign(x, x3);
    let bit = b.bin(AluOp::And, x, 0x10000);
    let odd = b.new_label();
    let next = b.new_label();
    b.br(Cond::Ne, bit, 0, odd);
    let a1 = b.bin(AluOp::Add, acc, 1);
    b.assign(acc, a1);
    b.jump(next);
    b.bind(odd);
    let a3 = b.bin(AluOp::Add, acc, 3);
    b.assign(acc, a3);
    b.bind(next);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 500, top);
    b.out_byte(acc);
    let hi = b.bin(AluOp::Srl, acc, 8);
    b.out_byte(hi);
    b.halt();
    m.define(f, b.build());

    let golden = marvel_ir::interp::run(&m, 10_000_000).unwrap();
    for isa in Isa::ALL {
        let (out, core) = run(&m, isa, 5_000_000);
        assert_eq!(out.unwrap(), golden.output, "{isa}");
        assert!(core.stats.mispredicts > 20, "{isa}: branch pattern should mispredict");
    }
}

/// Division by zero: traps on x86, defined results elsewhere.
#[test]
fn div_zero_isa_behaviour() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let zero_v = b.li(0);
    let q = b.bin(AluOp::Div, 42, Value::Reg(zero_v));
    b.out_byte(q);
    b.halt();
    m.define(f, b.build());
    // x86 traps...
    let (out, _) = run(&m, Isa::X86, 100_000);
    assert!(matches!(out, Err(Trap::DivideByZero { .. })));
    // ...Arm yields 0, RISC-V all-ones.
    let (out, _) = run(&m, Isa::Arm, 100_000);
    assert_eq!(out.unwrap(), vec![0]);
    let (out, _) = run(&m, Isa::RiscV, 100_000);
    assert_eq!(out.unwrap(), vec![0xFF]);
}

/// Misaligned access: traps on Arm/RISC-V, split access on x86.
#[test]
fn misaligned_isa_behaviour() {
    let mut m = Module::new();
    let buf = m.global_u64("b", &[0x1122_3344_5566_7788, 0x99AA_BBCC_DDEE_FF00]);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    let v = b.load(MemWidth::D, false, base, 3); // misaligned by 3
    b.out_byte(v);
    b.halt();
    m.define(f, b.build());
    for isa in [Isa::Arm, Isa::RiscV] {
        let (out, _) = run(&m, isa, 100_000);
        assert!(matches!(out, Err(Trap::Misaligned { .. })), "{isa}");
    }
    let (out, _) = run(&m, Isa::X86, 100_000);
    // bytes 3..11 little-endian → low byte = byte 3 of word 0 = 0x55
    assert_eq!(out.unwrap(), vec![0x55]);
}

/// Wild jump lands outside mapped memory → fetch fault, not a hang.
#[test]
fn wild_jump_is_a_crash_not_a_hang() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    // Build a garbage function pointer and call through it — the IR has
    // no indirect call, so corrupt a return path instead: store garbage
    // over the stack slot... simplest honest path: load from an invalid
    // address (same trap class).
    let p = b.li(0x7300_0000);
    b.load(MemWidth::D, false, p, 0);
    b.halt();
    m.define(f, b.build());
    for isa in Isa::ALL {
        let (out, _) = run(&m, isa, 200_000);
        assert!(matches!(out, Err(Trap::MemFault { .. })), "{isa}: got {out:?}");
    }
}

/// IPC is within sane OoO bounds on every ISA and cache hit rates are
/// high for a cache-resident kernel.
#[test]
fn sane_microarchitectural_metrics() {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 2048, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let im = b.bin(AluOp::And, i, 255);
    let v = b.bin(AluOp::Mul, i, 3);
    b.store_idx(MemWidth::D, v, base, im);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 2000, top);
    b.out_byte(i);
    b.halt();
    m.define(f, b.build());
    for isa in Isa::ALL {
        let (_, core) = run(&m, isa, 5_000_000);
        let ipc = core.stats.ipc();
        assert!(ipc > 0.2 && ipc < 8.0, "{isa}: ipc {ipc}");
        let hit = core.l1d.hits as f64 / (core.l1d.hits + core.l1d.misses) as f64;
        assert!(hit > 0.9, "{isa}: L1D hit rate {hit}");
    }
}
