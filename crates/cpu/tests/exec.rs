//! Differential execution tests: the out-of-order core running each ISA
//! flavour must reproduce the IR interpreter's golden console output.

use marvel_cpu::testbus::TestBus;
use marvel_cpu::{Core, CoreConfig, StepEvent};
use marvel_ir::{assemble, interp, FuncBuilder, Module, Value};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};

/// Run a module on the core; returns (console bytes, cycles).
fn run_on_core(m: &Module, isa: Isa, max_cycles: u64) -> (Vec<u8>, u64) {
    let bin = assemble(m, isa).unwrap_or_else(|e| panic!("{isa}: assemble failed: {e}"));
    let mut bus = TestBus::new();
    bus.load(bin.entry, &bin.image);
    let mut core = Core::new(CoreConfig::table2(isa));
    core.reset_to(bin.entry);
    for _ in 0..max_cycles {
        match core.tick(&mut bus) {
            StepEvent::Halted => return (bus.console, core.cycle()),
            StepEvent::Trapped(t) => panic!("{isa}: unexpected trap: {t}"),
            _ => {}
        }
    }
    panic!("{isa}: did not halt in {max_cycles} cycles (committed {} uops)", core.stats.committed_uops);
}

fn check_all_isas(m: &Module, max_cycles: u64) {
    let golden = interp::run(m, 10_000_000).expect("interpreter");
    for isa in Isa::ALL {
        let (out, _) = run_on_core(m, isa, max_cycles);
        assert_eq!(
            out, golden.output,
            "{isa}: core output diverged from golden (got {:02x?}, want {:02x?})",
            out, golden.output
        );
    }
}

#[test]
fn arithmetic_and_output() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let x = b.bin(AluOp::Mul, 6, 7);
    b.out_byte(x);
    let y = b.bin(AluOp::Sub, x, 100); // -58
    let z = b.bin(AluOp::Sra, y, 1); // -29
    b.out_byte(z);
    let w = b.bin(AluOp::Xor, z, 0xF0);
    b.out_byte(w);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 200_000);
}

#[test]
fn loops_and_branches() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    // sum of 0..100 = 4950; output low byte (4950 & 0xFF = 0x56)
    let i = b.li(0);
    let acc = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let acc2 = b.bin(AluOp::Add, acc, i);
    b.assign(acc, acc2);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 100, top);
    b.out_byte(acc);
    let hi = b.bin(AluOp::Srl, acc, 8);
    b.out_byte(hi);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 500_000);
}

#[test]
fn memory_and_globals() {
    let mut m = Module::new();
    let g = m.global_u64("tbl", &[3, 1, 4, 1, 5, 9, 2, 6]);
    let buf = m.global_zeroed("buf", 64, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let src = b.addr_of(g);
    let dst = b.addr_of(buf);
    // Copy reversed, then output.
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.load_idx(MemWidth::D, false, src, i);
    let ri = b.bin(AluOp::Sub, 7, i);
    b.store_idx(MemWidth::D, v, dst, ri);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 8, top);
    let j = b.li(0);
    let top2 = b.new_label();
    b.bind(top2);
    let v2 = b.load_idx(MemWidth::D, false, dst, j);
    b.out_byte(v2);
    let j2 = b.bin(AluOp::Add, j, 1);
    b.assign(j, j2);
    b.br(Cond::Lt, j, 8, top2);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 500_000);
}

#[test]
fn subword_memory() {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 32, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    b.store(MemWidth::W, 0x1234_5678, base, 0);
    b.store(MemWidth::H, 0xBEEF, base, 4);
    b.store(MemWidth::B, 0x7F, base, 6);
    let w = b.load(MemWidth::H, false, base, 0); // 0x5678
    b.out_byte(w);
    let hb = b.bin(AluOp::Srl, w, 8);
    b.out_byte(hb); // 0x56
    let sb = b.load(MemWidth::B, true, base, 3); // sign-extended 0x12
    b.out_byte(sb);
    let h = b.load(MemWidth::H, true, base, 4); // 0xBEEF sign-extended
    let neg = b.bin(AluOp::Slt, h, 0);
    b.out_byte(neg); // 1
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 200_000);
}

#[test]
fn calls_and_recursion() {
    let mut m = Module::new();
    let fib = m.declare("fib", 1);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(1);
    let n = b.param(0);
    let rec = b.new_label();
    b.br(Cond::Ge, n, 2, rec);
    b.ret(Some(Value::Reg(n)));
    b.bind(rec);
    let n1 = b.bin(AluOp::Sub, n, 1);
    let n2 = b.bin(AluOp::Sub, n, 2);
    let a = b.call(fib, &[Value::Reg(n1)]);
    let c = b.call(fib, &[Value::Reg(n2)]);
    let s = b.bin(AluOp::Add, a, c);
    b.ret(Some(Value::Reg(s)));
    m.define(fib, b.build());

    let mut b = FuncBuilder::new(0);
    let v = b.call(fib, &[Value::Imm(12)]); // 144
    b.out_byte(v);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 2_000_000);
}

#[test]
fn division_and_remainder() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let q = b.bin(AluOp::Div, 1000, 7); // 142
    b.out_byte(q);
    let r = b.bin(AluOp::Rem, 1000, 7); // 6
    b.out_byte(r);
    let neg = b.li(-1000);
    let q2 = b.bin(AluOp::Div, neg, 7); // -142
    let abs = b.bin(AluOp::Sub, 0, q2);
    b.out_byte(abs);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 200_000);
}

#[test]
fn checkpoint_and_switchcpu_markers_commit() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    b.checkpoint();
    let x = b.li(9);
    b.switch_cpu();
    b.out_byte(x);
    b.halt();
    m.define(f, b.build());

    for isa in Isa::ALL {
        let bin = assemble(&m, isa).unwrap();
        let mut bus = TestBus::new();
        bus.load(bin.entry, &bin.image);
        let mut core = Core::new(CoreConfig::table2(isa));
        core.reset_to(bin.entry);
        let mut seen = Vec::new();
        for _ in 0..100_000 {
            match core.tick(&mut bus) {
                StepEvent::CheckpointHit => seen.push("ckpt"),
                StepEvent::SwitchCpuHit => seen.push("switch"),
                StepEvent::Halted => {
                    seen.push("halt");
                    break;
                }
                StepEvent::Trapped(t) => panic!("{isa}: trap {t}"),
                StepEvent::None => {}
            }
        }
        assert_eq!(seen, vec!["ckpt", "switch", "halt"], "{isa}");
        assert_eq!(bus.console, vec![9]);
    }
}

#[test]
fn spill_heavy_function() {
    // More live values than any ISA has registers: exercises spill slots.
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let vals: Vec<_> = (1..=40i64).map(|i| b.li(i * 3)).collect();
    let mut acc = b.li(0);
    for v in &vals {
        acc = b.bin(AluOp::Add, acc, *v);
    }
    for v in &vals {
        acc = b.bin(AluOp::Xor, acc, *v);
    }
    b.out_byte(acc);
    let hi = b.bin(AluOp::Srl, acc, 8);
    b.out_byte(hi);
    b.halt();
    m.define(f, b.build());
    check_all_isas(&m, 500_000);
}

#[test]
fn stats_are_plausible() {
    let mut m = Module::new();
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 50, top);
    b.out_byte(i);
    b.halt();
    m.define(f, b.build());

    for isa in Isa::ALL {
        let bin = assemble(&m, isa).unwrap();
        let mut bus = TestBus::new();
        bus.load(bin.entry, &bin.image);
        let mut core = Core::new(CoreConfig::table2(isa));
        core.reset_to(bin.entry);
        loop {
            match core.tick(&mut bus) {
                StepEvent::Halted => break,
                StepEvent::Trapped(t) => panic!("{isa}: {t}"),
                _ => {}
            }
        }
        let s = &core.stats;
        assert!(s.committed_macros > 100, "{isa}: {}", s.committed_macros);
        assert!(s.branches >= 50, "{isa}");
        assert!(s.ipc() > 0.05 && s.ipc() < 8.0, "{isa}: ipc {}", s.ipc());
        assert!(core.l1i.hits > 0);
    }
}
