//! Property tests on the cache model: residency, write-back integrity and
//! fault-injection invariants.

use marvel_cpu::{Cache, CacheConfig};
use proptest::prelude::*;

fn small_cfg() -> CacheConfig {
    CacheConfig { size: 4096, assoc: 4, line: 64, latency: 1 }
}

proptest! {
    #[test]
    fn read_after_write_same_line(addr in 0u64..64u64, val in any::<u64>()) {
        let mut c = Cache::new(small_cfg());
        let base = 0x4000_0000u64;
        c.fill(base, &[0u8; 64]);
        let way = c.lookup(base).unwrap();
        let a = base + (addr & !7);
        c.write(a, 8, val, way);
        prop_assert_eq!(c.read(a, 8, way), val);
    }

    #[test]
    fn flip_then_flip_restores(bit in 0u64..(4096 * 8)) {
        let mut c = Cache::new(small_cfg());
        // Fill every line so flips land in valid lines.
        for i in 0..64u64 {
            c.fill(0x4000_0000 + i * 64, &[0xA5u8; 64]);
        }
        c.flip_bit(bit);
        c.flip_bit(bit);
        for i in 0..64u64 {
            let addr = 0x4000_0000 + i * 64;
            let way = c.lookup(addr).unwrap();
            for k in 0..8 {
                prop_assert_eq!(c.read(addr + k * 8, 8, way), 0xA5A5_A5A5_A5A5_A5A5u64);
            }
        }
    }

    #[test]
    fn eviction_preserves_dirty_data(val in any::<u64>(), set_sel in 0u64..16) {
        let mut c = Cache::new(small_cfg());
        let sets = 16u64; // 4096 / (4*64)
        let stride = sets * 64;
        let base = 0x4000_0000 + set_sel * 64;
        c.fill(base, &[0u8; 64]);
        let way = c.lookup(base).unwrap();
        c.write(base, 8, val, way);
        // Force eviction by filling 4 more lines into the same set.
        let mut evicted = None;
        for i in 1..=4u64 {
            if let Some(e) = c.fill(base + i * stride, &[0u8; 64]) {
                evicted = Some(e);
            }
        }
        let (eaddr, data) = evicted.expect("dirty line must be written back");
        prop_assert_eq!(eaddr, base);
        prop_assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), val);
    }

    #[test]
    fn stuck_bit_wins_every_write(bit in 0u64..512, v in any::<bool>(), w in any::<u64>()) {
        let mut c = Cache::new(small_cfg());
        c.fill(0x4000_0000, &[0u8; 64]);
        c.set_stuck(bit, v);
        let way = c.lookup(0x4000_0000).unwrap();
        let byte_addr = 0x4000_0000 + ((bit / 8) & !7);
        c.write(byte_addr, 8, w, way);
        let got = c.read(0x4000_0000 + bit / 8, 1, way);
        let bit_in_byte = bit % 8;
        prop_assert_eq!((got >> bit_in_byte) & 1 == 1, v);
    }

    #[test]
    fn lookup_is_stable_under_touches(lines in prop::collection::vec(0u64..16, 1..40)) {
        let mut c = Cache::new(small_cfg());
        // Distinct tags per set are bounded by associativity: use 4 tags.
        for (k, &l) in lines.iter().enumerate() {
            let addr = 0x4000_0000 + (l % 4) * 16 * 64 + (k as u64 % 4) * 64;
            if c.lookup(addr).is_none() {
                c.fill(addr, &[k as u8; 64]);
            }
            prop_assert!(c.lookup(addr).is_some());
        }
    }
}
