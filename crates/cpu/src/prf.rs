//! Physical register file, rename map and free list — all fault-injectable.

use crate::cache::FaultFate;
use crate::dirty::{DirtyMap, DirtyMarks};

/// A physical register file holding explicit 64-bit values.
#[derive(Debug, Clone)]
pub struct PhysRegFile {
    vals: Vec<u64>,
    ready: Vec<bool>,
    stuck: Vec<(u64, bool)>,
    armed: Option<(u16, FaultFate)>,
    /// marvel-taint shadow plane: one taint mask per register. Empty
    /// (the default) means taint tracking is off and every taint
    /// accessor is a cheap no-op.
    taint: Vec<u64>,
    /// Per-register dirty journal for the zero-copy campaign reset
    /// (`None` = tracking off). Marked on value/ready mutation; armed
    /// fate and taint are restored wholesale by `reset_from`.
    journal: Option<Box<DirtyMap>>,
}

impl PhysRegFile {
    /// Register 0 is reserved as the constant-zero register.
    pub fn new(n: usize) -> Self {
        PhysRegFile {
            vals: vec![0; n],
            ready: vec![true; n],
            stuck: Vec::new(),
            armed: None,
            taint: Vec::new(),
            journal: None,
        }
    }

    #[inline]
    fn mark(&mut self, p: u16) {
        if let Some(j) = &mut self.journal {
            j.mark(p as usize);
        }
    }

    pub fn len(&self) -> usize {
        self.vals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    #[inline]
    pub fn read(&mut self, p: u16) -> u64 {
        if let Some((ap, fate)) = &mut self.armed {
            if *ap == p && *fate == FaultFate::Pending {
                *fate = FaultFate::Read;
            }
        }
        self.vals[p as usize]
    }

    /// Peek without touching fault monitoring (trace/debug use).
    pub fn peek(&self, p: u16) -> u64 {
        self.vals[p as usize]
    }

    #[inline]
    pub fn write(&mut self, p: u16, v: u64) {
        self.mark(p);
        if let Some((ap, fate)) = &mut self.armed {
            if *ap == p && *fate == FaultFate::Pending {
                *fate = FaultFate::Overwritten;
            }
        }
        let mut v = v;
        for &(bit, value) in &self.stuck {
            if (bit / 64) as u16 == p {
                let m = 1u64 << (bit % 64);
                if value {
                    v |= m;
                } else {
                    v &= !m;
                }
            }
        }
        self.vals[p as usize] = v;
    }

    #[inline]
    pub fn is_ready(&self, p: u16) -> bool {
        self.ready[p as usize]
    }

    pub fn set_ready(&mut self, p: u16, r: bool) {
        self.mark(p);
        self.ready[p as usize] = r;
    }

    /// Mark every register ready (used at reset).
    pub fn set_all_ready(&mut self) {
        if let Some(j) = &mut self.journal {
            j.mark_all();
        }
        self.ready.iter_mut().for_each(|r| *r = true);
    }

    // ---- fault injection ----

    pub fn bit_len(&self) -> u64 {
        self.vals.len() as u64 * 64
    }

    pub fn flip_bit(&mut self, bit: u64) -> FaultFate {
        let p = (bit / 64) as u16;
        self.mark(p);
        self.vals[p as usize] ^= 1 << (bit % 64);
        self.armed = Some((p, FaultFate::Pending));
        self.seed_taint_bit(bit);
        FaultFate::Pending
    }

    pub fn set_stuck(&mut self, bit: u64, value: bool) {
        self.stuck.push((bit, value));
        self.mark((bit / 64) as u16);
        let p = (bit / 64) as usize;
        let m = 1u64 << (bit % 64);
        if value {
            self.vals[p] |= m;
        } else {
            self.vals[p] &= !m;
        }
        self.armed = Some((p as u16, FaultFate::Pending));
        self.seed_taint_bit(bit);
    }

    pub fn fate(&self) -> Option<FaultFate> {
        self.armed.map(|(_, f)| f)
    }

    // ---- zero-copy campaign reset ----

    /// Start journaling per-register mutations so
    /// [`reset_from`](Self::reset_from) restores only the dirtied ones.
    pub fn enable_dirty_tracking(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Box::new(DirtyMap::new(self.vals.len())));
        }
    }

    /// Restore this register file to `pristine` by undoing only journaled
    /// registers (full sweep when tracking is off). Returns state bytes
    /// copied. Fault state (stuck list, armed fate, taint) is per-run and
    /// restored wholesale.
    pub fn reset_from(&mut self, pristine: &PhysRegFile) -> u64 {
        debug_assert_eq!(self.vals.len(), pristine.vals.len());
        let mut bytes = 0u64;
        if let Some(mut j) = self.journal.take() {
            j.drain(|p| {
                self.vals[p] = pristine.vals[p];
                self.ready[p] = pristine.ready[p];
                bytes += 9; // 8 value bytes + 1 ready byte
            });
            self.journal = Some(j);
        } else {
            self.vals.copy_from_slice(&pristine.vals);
            self.ready.copy_from_slice(&pristine.ready);
            bytes += self.vals.len() as u64 * 9;
        }
        self.stuck.clone_from(&pristine.stuck);
        self.armed = pristine.armed;
        if pristine.taint.is_empty() {
            self.taint.clear();
        } else {
            self.taint.clone_from(&pristine.taint);
        }
        bytes
    }

    /// Drain the register journal into a detached capture (ladder
    /// construction).
    pub fn take_marks(&mut self) -> DirtyMarks {
        self.journal.as_mut().map(|j| j.take_marks()).unwrap_or_default()
    }

    /// Fold a captured golden-segment mark set into the live journal.
    pub fn merge_marks(&mut self, m: &DirtyMarks) {
        if let Some(j) = &mut self.journal {
            j.merge(m);
        }
    }

    /// Functional-state equality against the rung snapshot `pristine`,
    /// restricted to journaled dirty registers (full sweep when tracking is
    /// off). Armed fate and the taint plane are observational and excluded;
    /// taint is checked separately via [`taint_quiescent`](Self::taint_quiescent).
    pub fn converged_with(&self, pristine: &PhysRegFile) -> bool {
        debug_assert_eq!(self.vals.len(), pristine.vals.len());
        let reg_eq = |p: usize| self.vals[p] == pristine.vals[p] && self.ready[p] == pristine.ready[p];
        match &self.journal {
            Some(j) => {
                let mut ok = true;
                j.peek(|p| ok = ok && reg_eq(p));
                ok
            }
            None => (0..self.vals.len()).all(reg_eq),
        }
    }

    /// True when no register carries taint (or the plane is off).
    pub fn taint_quiescent(&self) -> bool {
        self.taint.iter().all(|&t| t == 0)
    }

    // ---- marvel-taint shadow plane ----

    /// Allocate the shadow taint plane. Fault arming calls
    /// ([`flip_bit`](Self::flip_bit)/[`set_stuck`](Self::set_stuck))
    /// after this self-seed the shadow at the injected bit.
    pub fn enable_taint(&mut self) {
        if self.taint.is_empty() {
            self.taint = vec![0; self.vals.len()];
        }
        if let Some((p, _)) = self.armed {
            // Enabled after arming: conservatively taint the whole reg.
            self.taint[p as usize] = !0;
        }
        for &(bit, _) in &self.stuck {
            let p = (bit / 64) as usize;
            self.taint[p] |= 1 << (bit % 64);
        }
    }

    #[inline]
    pub fn taint_on(&self) -> bool {
        !self.taint.is_empty()
    }

    #[inline]
    pub fn taint_of(&self, p: u16) -> u64 {
        if self.taint.is_empty() {
            0
        } else {
            self.taint[p as usize]
        }
    }

    /// Replace a register's taint (called alongside every `write`, so a
    /// clean result clears stale taint from reallocated registers).
    #[inline]
    pub fn set_taint(&mut self, p: u16, mask: u64) {
        if self.taint.is_empty() {
            return;
        }
        let mut m = mask;
        // Stuck-at bits keep re-asserting the faulty value on every
        // write, so their taint never washes out.
        for &(bit, _) in &self.stuck {
            if (bit / 64) as u16 == p {
                m |= 1 << (bit % 64);
            }
        }
        self.taint[p as usize] = m;
    }

    fn seed_taint_bit(&mut self, bit: u64) {
        if let Some(t) = self.taint.get_mut((bit / 64) as usize) {
            *t |= 1 << (bit % 64);
        }
    }
}

/// Rename map: architectural register → physical register. Injectable: a
/// flipped mapping bit silently redirects reads/writes of an architectural
/// register to the wrong physical register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameMap {
    map: Vec<u16>,
    prf_size: u16,
}

impl RenameMap {
    pub fn new(arch_regs: usize, prf_size: u16) -> Self {
        RenameMap { map: vec![0; arch_regs], prf_size }
    }

    #[inline]
    pub fn get(&self, a: u8) -> u16 {
        self.map[a as usize]
    }

    pub fn set(&mut self, a: u8, p: u16) {
        self.map[a as usize] = p;
    }

    pub fn copy_from(&mut self, other: &RenameMap) {
        self.map.copy_from_slice(&other.map);
    }

    pub fn entries(&self) -> &[u16] {
        &self.map
    }

    /// Bits per entry (⌈log2(prf)⌉).
    pub fn bits_per_entry(&self) -> u64 {
        (16 - (self.prf_size.max(2) - 1).leading_zeros()) as u64
    }

    pub fn bit_len(&self) -> u64 {
        self.map.len() as u64 * self.bits_per_entry()
    }

    /// Flip a mapping bit; the result is clamped into the PRF range by
    /// wrapping (matching a physical array whose decoder ignores the
    /// overflow bit).
    pub fn flip_bit(&mut self, bit: u64) {
        let bpe = self.bits_per_entry();
        let a = (bit / bpe) as usize;
        let b = bit % bpe;
        self.map[a] = (self.map[a] ^ (1 << b)) % self.prf_size;
    }
}

/// Free list of physical registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    free: Vec<u16>,
}

impl FreeList {
    /// All registers except 0 (constant zero) and those in `in_use`.
    pub fn new(prf_size: u16, in_use: &[u16]) -> Self {
        let mut free: Vec<u16> = (1..prf_size).filter(|p| !in_use.contains(p)).collect();
        free.reverse(); // pop from the low end first
        FreeList { free }
    }

    pub fn alloc(&mut self) -> Option<u16> {
        self.free.pop()
    }

    pub fn release(&mut self, p: u16) {
        debug_assert_ne!(p, 0, "the zero register is never freed");
        self.free.push(p);
    }

    /// Restore from `other`, reusing this list's allocation.
    pub fn copy_from(&mut self, other: &FreeList) {
        self.free.clone_from(&other.free);
    }

    pub fn len(&self) -> usize {
        self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_and_fate() {
        let mut prf = PhysRegFile::new(8);
        prf.write(3, 42);
        assert_eq!(prf.read(3), 42);
        prf.flip_bit(3 * 64 + 1); // flip bit 1 of reg 3
        assert_eq!(prf.peek(3), 40);
        assert_eq!(prf.fate(), Some(FaultFate::Pending));
        let _ = prf.read(3);
        assert_eq!(prf.fate(), Some(FaultFate::Read));
    }

    #[test]
    fn overwrite_masks() {
        let mut prf = PhysRegFile::new(8);
        prf.flip_bit(2 * 64);
        prf.write(2, 0);
        assert_eq!(prf.fate(), Some(FaultFate::Overwritten));
    }

    #[test]
    fn stuck_bits_apply_on_write() {
        let mut prf = PhysRegFile::new(8);
        prf.set_stuck(64 + 4, true); // reg 1 bit 4 stuck at 1
        prf.write(1, 0);
        assert_eq!(prf.peek(1), 16);
        prf.set_stuck(64 + 5, false);
        prf.write(1, 0xFF);
        assert_eq!(prf.peek(1) & 0b11_0000, 0b01_0000);
    }

    #[test]
    fn taint_plane_tracks_flips_and_washes_out_on_write() {
        let mut prf = PhysRegFile::new(8);
        assert!(!prf.taint_on());
        prf.set_taint(3, !0); // no-op while disabled
        assert_eq!(prf.taint_of(3), 0);

        prf.enable_taint();
        prf.flip_bit(3 * 64 + 5);
        assert_eq!(prf.taint_of(3), 1 << 5);
        prf.set_taint(3, 0); // clean writeback clears the taint
        assert_eq!(prf.taint_of(3), 0);

        // Stuck-at taint re-asserts across writes.
        prf.set_stuck(64 + 4, true);
        prf.set_taint(1, 0);
        assert_eq!(prf.taint_of(1), 1 << 4);
    }

    #[test]
    fn enable_after_arming_taints_whole_register() {
        let mut prf = PhysRegFile::new(8);
        prf.flip_bit(2 * 64 + 9);
        prf.enable_taint();
        assert_eq!(prf.taint_of(2), !0);
    }

    #[test]
    fn rename_map_bits() {
        let m = RenameMap::new(32, 128);
        assert_eq!(m.bits_per_entry(), 7);
        assert_eq!(m.bit_len(), 32 * 7);
        let m = RenameMap::new(32, 96);
        assert_eq!(m.bits_per_entry(), 7);
    }

    #[test]
    fn rename_flip_stays_in_range() {
        let mut m = RenameMap::new(4, 96);
        m.set(2, 95);
        m.flip_bit(2 * 7 + 6); // flip the top bit of entry 2
        assert!(m.get(2) < 96);
    }

    #[test]
    fn dirty_reset_restores_only_touched_regs() {
        let mut pristine = PhysRegFile::new(8);
        pristine.write(3, 42);
        let mut prf = pristine.clone();
        prf.enable_dirty_tracking();
        let _ = prf.reset_from(&pristine); // flush the clone-time journal
        prf.write(3, 7);
        prf.set_ready(5, false);
        prf.flip_bit(2 * 64 + 1);
        prf.enable_taint();
        let bytes = prf.reset_from(&pristine);
        assert_eq!(bytes, 3 * 9, "exactly regs 2, 3 and 5 journaled");
        assert_eq!(prf.peek(3), 42);
        assert_eq!(prf.peek(2), 0);
        assert!(prf.is_ready(5));
        assert_eq!(prf.fate(), None);
        assert!(!prf.taint_on());
    }

    #[test]
    fn free_list_excludes_in_use_and_zero() {
        let mut fl = FreeList::new(8, &[3, 5]);
        let mut got = Vec::new();
        while let Some(p) = fl.alloc() {
            got.push(p);
        }
        assert_eq!(got, vec![1, 2, 4, 6, 7]);
    }
}
