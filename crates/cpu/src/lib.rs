//! # marvel-cpu
//!
//! Cycle-level out-of-order CPU model — the gem5 O3 analogue that the
//! gem5-MARVEL reproduction injects faults into.
//!
//! The pipeline is fetch (decoding real bytes out of the L1I) → rename
//! (physical register file + map + free list) → issue (ALU/mul-div/memory
//! ports, oldest-first wakeup-select) → execute (loads with store-queue
//! forwarding and conservative disambiguation) → commit (precise traps,
//! commit-time branch squash, senior-store drain).
//!
//! Injectable structures: integer/FP physical register files, L1I/L1D/L2
//! data arrays, load queue, store queue, ROB result fields, rename map.
//! All of them carry explicit bits; see [`cache::FaultFate`] for the
//! early-termination monitoring contract.

pub mod bp;
pub mod cache;
pub mod config;
pub mod core;
pub mod dirty;
pub mod lane;
pub mod lsq;
pub mod prf;
pub mod testbus;

pub use crate::core::{
    Bus, CommitEffect, CommitRecord, Core, CoreDirtyMarks, CoreStats, StepEvent, TraceMode,
};
pub use cache::{Cache, CacheLaneEvent, FaultFate};
pub use config::{CacheConfig, CoreConfig};
pub use dirty::{DirtyMap, DirtyMarks};
pub use lane::{LaneEngine, LaneEvent, LanePlane, MAX_LANES};
pub use lsq::{LoadQueue, StoreQueue};
pub use prf::{FreeList, PhysRegFile, RenameMap};
