//! Dirty-state journal used by the zero-copy campaign reset path.
//!
//! A [`DirtyMap`] records which elements of an indexed structure (registers,
//! cache sets, RAM pages, …) were mutated during a fault-injection run. The
//! campaign worker then restores *only* those elements from the shared
//! pristine checkpoint instead of deep-cloning the whole `System` per run.
//!
//! Soundness contract: every mutation of journaled state must call
//! [`DirtyMap::mark`] (or [`DirtyMap::mark_all`] for bulk invalidations)
//! before or at the mutation. Over-marking is harmless — resetting a clean
//! element is a no-op copy; under-marking silently corrupts later runs, which
//! the clone-vs-dirty differential tests exist to catch.

/// Set of dirty indices with O(1) mark and O(dirty) drain.
#[derive(Debug, Clone, Default)]
pub struct DirtyMap {
    bits: Vec<bool>,
    touched: Vec<u32>,
    saturated: bool,
}

impl DirtyMap {
    /// Journal for a structure with `len` elements, initially clean.
    pub fn new(len: usize) -> Self {
        DirtyMap { bits: vec![false; len], touched: Vec::new(), saturated: false }
    }

    /// Number of journaled elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no element has been marked.
    pub fn is_empty(&self) -> bool {
        !self.saturated && self.touched.is_empty()
    }

    /// Mark element `i` dirty.
    #[inline]
    pub fn mark(&mut self, i: usize) {
        if self.saturated {
            return;
        }
        if let Some(b) = self.bits.get_mut(i) {
            if !*b {
                *b = true;
                self.touched.push(i as u32);
            }
        }
    }

    /// Mark every element dirty (bulk invalidation); `drain` then does a
    /// full sweep instead of iterating individual indices.
    pub fn mark_all(&mut self) {
        self.saturated = true;
    }

    /// Visit every dirty index, clearing the journal. After `drain` the map
    /// is clean again and ready for the next run.
    pub fn drain(&mut self, mut f: impl FnMut(usize)) {
        if self.saturated {
            for i in 0..self.bits.len() {
                f(i);
            }
            self.bits.iter_mut().for_each(|b| *b = false);
            self.touched.clear();
            self.saturated = false;
        } else {
            for &i in &self.touched {
                self.bits[i as usize] = false;
                f(i as usize);
            }
            self.touched.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_dedup_and_drain_clears() {
        let mut d = DirtyMap::new(8);
        d.mark(3);
        d.mark(3);
        d.mark(5);
        let mut seen = Vec::new();
        d.drain(|i| seen.push(i));
        assert_eq!(seen, vec![3, 5]);
        assert!(d.is_empty());
        d.mark(3);
        let mut seen2 = Vec::new();
        d.drain(|i| seen2.push(i));
        assert_eq!(seen2, vec![3]);
    }

    #[test]
    fn saturation_full_sweeps() {
        let mut d = DirtyMap::new(4);
        d.mark(1);
        d.mark_all();
        d.mark(2); // no-op once saturated
        let mut seen = Vec::new();
        d.drain(|i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(d.is_empty());
        // Journal usable again after a saturated drain.
        d.mark(2);
        let mut seen2 = Vec::new();
        d.drain(|i| seen2.push(i));
        assert_eq!(seen2, vec![2]);
    }

    #[test]
    fn out_of_range_mark_ignored() {
        let mut d = DirtyMap::new(2);
        d.mark(7);
        assert!(d.is_empty());
    }
}
