//! Dirty-state journal used by the zero-copy campaign reset path.
//!
//! A [`DirtyMap`] records which elements of an indexed structure (registers,
//! cache sets, RAM pages, …) were mutated during a fault-injection run. The
//! campaign worker then restores *only* those elements from the shared
//! pristine checkpoint instead of deep-cloning the whole `System` per run.
//!
//! Soundness contract: every mutation of journaled state must call
//! [`DirtyMap::mark`] (or [`DirtyMap::mark_all`] for bulk invalidations)
//! before or at the mutation. Over-marking is harmless — resetting a clean
//! element is a no-op copy; under-marking silently corrupts later runs, which
//! the clone-vs-dirty differential tests exist to catch.

/// Set of dirty indices with O(1) mark and O(dirty) drain.
#[derive(Debug, Clone, Default)]
pub struct DirtyMap {
    bits: Vec<bool>,
    touched: Vec<u32>,
    saturated: bool,
}

/// A captured mark set, detached from any journal. Ladder rungs store one
/// per golden segment (the pages/sets/registers the fault-free run dirtied
/// between two consecutive rungs); at a rung crossing the campaign merges it
/// back into the live journal so the convergence compare also covers
/// locations only the *golden* run wrote.
#[derive(Debug, Clone, Default)]
pub struct DirtyMarks {
    saturated: bool,
    touched: Vec<u32>,
}

impl DirtyMarks {
    /// True when the capture recorded no dirty element.
    pub fn is_empty(&self) -> bool {
        !self.saturated && self.touched.is_empty()
    }
}

impl DirtyMap {
    /// Journal for a structure with `len` elements, initially clean.
    pub fn new(len: usize) -> Self {
        DirtyMap { bits: vec![false; len], touched: Vec::new(), saturated: false }
    }

    /// Number of journaled elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no element has been marked.
    pub fn is_empty(&self) -> bool {
        !self.saturated && self.touched.is_empty()
    }

    /// Mark element `i` dirty.
    #[inline]
    pub fn mark(&mut self, i: usize) {
        if self.saturated {
            return;
        }
        if let Some(b) = self.bits.get_mut(i) {
            if !*b {
                *b = true;
                self.touched.push(i as u32);
            }
        }
    }

    /// Mark every element dirty (bulk invalidation); `drain` then does a
    /// full sweep instead of iterating individual indices.
    pub fn mark_all(&mut self) {
        self.saturated = true;
    }

    /// Visit every dirty index *without* clearing the journal. The
    /// convergence compare walks the marks mid-run; they must survive for
    /// the eventual `reset_from` drain.
    pub fn peek(&self, mut f: impl FnMut(usize)) {
        if self.saturated {
            for i in 0..self.bits.len() {
                f(i);
            }
        } else {
            for &i in &self.touched {
                f(i as usize);
            }
        }
    }

    /// Drain the journal into a detached [`DirtyMarks`] capture, leaving
    /// the map clean (ladder construction: per-segment golden mark sets).
    pub fn take_marks(&mut self) -> DirtyMarks {
        let m = DirtyMarks { saturated: self.saturated, touched: std::mem::take(&mut self.touched) };
        if self.saturated {
            self.bits.iter_mut().for_each(|b| *b = false);
            self.saturated = false;
        } else {
            for &i in &m.touched {
                self.bits[i as usize] = false;
            }
        }
        m
    }

    /// Fold a captured mark set back into the journal (rung-crossing merge).
    /// Over-marking is harmless, per the module's soundness contract.
    pub fn merge(&mut self, m: &DirtyMarks) {
        if m.saturated {
            self.mark_all();
        } else {
            for &i in &m.touched {
                self.mark(i as usize);
            }
        }
    }

    /// Visit every dirty index, clearing the journal. After `drain` the map
    /// is clean again and ready for the next run.
    pub fn drain(&mut self, mut f: impl FnMut(usize)) {
        if self.saturated {
            for i in 0..self.bits.len() {
                f(i);
            }
            self.bits.iter_mut().for_each(|b| *b = false);
            self.touched.clear();
            self.saturated = false;
        } else {
            for &i in &self.touched {
                self.bits[i as usize] = false;
                f(i as usize);
            }
            self.touched.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_dedup_and_drain_clears() {
        let mut d = DirtyMap::new(8);
        d.mark(3);
        d.mark(3);
        d.mark(5);
        let mut seen = Vec::new();
        d.drain(|i| seen.push(i));
        assert_eq!(seen, vec![3, 5]);
        assert!(d.is_empty());
        d.mark(3);
        let mut seen2 = Vec::new();
        d.drain(|i| seen2.push(i));
        assert_eq!(seen2, vec![3]);
    }

    #[test]
    fn saturation_full_sweeps() {
        let mut d = DirtyMap::new(4);
        d.mark(1);
        d.mark_all();
        d.mark(2); // no-op once saturated
        let mut seen = Vec::new();
        d.drain(|i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(d.is_empty());
        // Journal usable again after a saturated drain.
        d.mark(2);
        let mut seen2 = Vec::new();
        d.drain(|i| seen2.push(i));
        assert_eq!(seen2, vec![2]);
    }

    #[test]
    fn peek_preserves_marks() {
        let mut d = DirtyMap::new(8);
        d.mark(2);
        d.mark(6);
        let mut seen = Vec::new();
        d.peek(|i| seen.push(i));
        assert_eq!(seen, vec![2, 6]);
        let mut drained = Vec::new();
        d.drain(|i| drained.push(i));
        assert_eq!(drained, vec![2, 6]);
    }

    #[test]
    fn take_marks_round_trips_through_merge() {
        let mut d = DirtyMap::new(8);
        d.mark(1);
        d.mark(4);
        let m = d.take_marks();
        assert!(d.is_empty());
        assert!(!m.is_empty());
        d.mark(4); // overlap dedups on merge
        d.merge(&m);
        let mut seen = Vec::new();
        d.drain(|i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 4]);
        // Saturated captures merge as saturation.
        let mut s = DirtyMap::new(4);
        s.mark_all();
        let sm = s.take_marks();
        assert!(s.is_empty());
        d.merge(&sm);
        let mut all = Vec::new();
        d.drain(|i| all.push(i));
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn out_of_range_mark_ignored() {
        let mut d = DirtyMap::new(2);
        d.mark(7);
        assert!(d.is_empty());
    }
}
