//! Bit-plane lane execution: pack up to 64 single-bit transient faults
//! into one golden pass.
//!
//! A lane pass executes the shared golden control flow once. Each packed
//! fault ("lane") is represented purely as an XOR *diff* against the
//! golden data flow: a 64-bit value whose set bits are where the lane's
//! value differs from golden. Diffs live in three tables — physical
//! registers, in-flight execute events (keyed by sequence number) and ROB
//! result fields — and are propagated through ALU operations either
//! lane-by-lane (sparse) or via bit-plane arithmetic over [`LanePlane`]
//! lane words (dense): plane `i` holds bit `i` of all 64 lanes, so one
//! ripple-carry pass adds all lanes at once.
//!
//! The pass stays byte-identical to scalar runs by construction:
//!
//! * **Golden state is never mutated.** Lane faults are armed as diffs
//!   plus per-lane fate monitors; memory, caches, the store queue and the
//!   fetch stream all remain golden.
//! * **Fork on divergence.** The moment a lane's diff would reach control
//!   flow (branch condition, jump target), a memory address, store data,
//!   or a trap decision — or a cache lane's armed byte is read at all —
//!   the lane is forked: dropped from the pass and re-run as an ordinary
//!   scalar injection. Forking is always safe; packing is only an
//!   optimisation for lanes whose divergence never escapes the data flow.
//! * **Fate bits force forks or retirement.** A cache fault that is read
//!   returns genuinely corrupt bytes the pass does not model — fork. A
//!   fault that is overwritten clean, or armed into an invalid line, can
//!   never diverge again — the lane retires in-pass with the exact record
//!   arithmetic the scalar engine would produce.

use crate::cache::FaultFate;
use marvel_isa::{AluOp, Isa};

/// Hard upper bound on lanes per pass: one bit of a `u64` lane word each.
pub const MAX_LANES: usize = 64;

/// Lane-count threshold at which ALU diff propagation switches from
/// per-lane scalar evaluation to transposed bit-plane arithmetic.
const PLANE_THRESHOLD: u32 = 8;

// ---------------------------------------------------------------------
// Bit-plane primitives
// ---------------------------------------------------------------------

/// 64 lanes of 64-bit values in bit-plane (bit-sliced) form:
/// `planes[i]` bit `l` is bit `i` of lane `l`'s value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LanePlane {
    pub planes: [u64; 64],
}

impl LanePlane {
    pub const ZERO: LanePlane = LanePlane { planes: [0; 64] };

    /// Every lane holds the same value `v`.
    #[inline]
    pub fn broadcast(v: u64) -> Self {
        let mut planes = [0u64; 64];
        for (i, p) in planes.iter_mut().enumerate() {
            if (v >> i) & 1 != 0 {
                *p = !0;
            }
        }
        LanePlane { planes }
    }

    /// Pack lane-major values (`vals[l]` = lane `l`) into planes.
    pub fn from_lanes(vals: &[u64; 64]) -> Self {
        let mut planes = *vals;
        transpose64(&mut planes);
        LanePlane { planes }
    }

    /// Unpack back to lane-major values.
    pub fn to_lanes(&self) -> [u64; 64] {
        let mut vals = self.planes;
        transpose64(&mut vals);
        vals
    }

    /// Extract a single lane's value.
    pub fn lane(&self, l: usize) -> u64 {
        let mut v = 0u64;
        for (i, p) in self.planes.iter().enumerate() {
            v |= ((p >> l) & 1) << i;
        }
        v
    }

    #[inline]
    pub fn xor(&self, o: &Self) -> Self {
        let mut planes = [0u64; 64];
        for (i, p) in planes.iter_mut().enumerate() {
            *p = self.planes[i] ^ o.planes[i];
        }
        LanePlane { planes }
    }

    #[inline]
    pub fn and(&self, o: &Self) -> Self {
        let mut planes = [0u64; 64];
        for (i, p) in planes.iter_mut().enumerate() {
            *p = self.planes[i] & o.planes[i];
        }
        LanePlane { planes }
    }

    #[inline]
    pub fn or(&self, o: &Self) -> Self {
        let mut planes = [0u64; 64];
        for (i, p) in planes.iter_mut().enumerate() {
            *p = self.planes[i] | o.planes[i];
        }
        LanePlane { planes }
    }

    /// Lane-packed wrapping addition: one ripple-carry pass over the
    /// planes adds all 64 lanes simultaneously.
    pub fn add(&self, o: &Self) -> Self {
        let mut planes = [0u64; 64];
        let mut carry = 0u64;
        for (i, p) in planes.iter_mut().enumerate() {
            let (a, b) = (self.planes[i], o.planes[i]);
            *p = a ^ b ^ carry;
            carry = (a & b) | (carry & (a ^ b));
        }
        LanePlane { planes }
    }

    /// Lane-packed wrapping subtraction (`self - o`).
    pub fn sub(&self, o: &Self) -> Self {
        let mut planes = [0u64; 64];
        let mut borrow = 0u64;
        for (i, p) in planes.iter_mut().enumerate() {
            let (a, b) = (self.planes[i], o.planes[i]);
            *p = a ^ b ^ borrow;
            borrow = (!a & (b | borrow)) | (b & borrow);
        }
        LanePlane { planes }
    }

    /// Logical shift left by a constant amount (all lanes): a plane
    /// permutation, no arithmetic at all.
    pub fn shl_const(&self, k: u32) -> Self {
        let k = (k & 63) as usize;
        let mut planes = [0u64; 64];
        planes[k..].copy_from_slice(&self.planes[..64 - k]);
        LanePlane { planes }
    }

    /// Logical shift right by a constant amount (all lanes).
    pub fn shr_const(&self, k: u32) -> Self {
        let k = (k & 63) as usize;
        let mut planes = [0u64; 64];
        planes[..64 - k].copy_from_slice(&self.planes[k..]);
        LanePlane { planes }
    }

    /// Arithmetic shift right by a constant amount (all lanes): vacated
    /// planes replicate the sign plane.
    pub fn sar_const(&self, k: u32) -> Self {
        let k = (k & 63) as usize;
        let mut planes = [0u64; 64];
        planes[..64 - k].copy_from_slice(&self.planes[k..]);
        for p in planes.iter_mut().skip(64 - k).take(k) {
            *p = self.planes[63];
        }
        LanePlane { planes }
    }

    /// Per-lane equality mask: bit `l` set iff lane `l` of `self` equals
    /// lane `l` of `o`.
    pub fn eq_mask(&self, o: &Self) -> u64 {
        let mut ne = 0u64;
        for i in 0..64 {
            ne |= self.planes[i] ^ o.planes[i];
        }
        !ne
    }

    /// Per-lane unsigned less-than mask (`self < o`): the final borrow of
    /// a lane-packed subtraction.
    pub fn lt_u_mask(&self, o: &Self) -> u64 {
        let mut borrow = 0u64;
        for i in 0..64 {
            let (a, b) = (self.planes[i], o.planes[i]);
            borrow = (!a & (b | borrow)) | (b & borrow);
        }
        borrow
    }

    /// Per-lane signed less-than mask: unsigned compare with the sign
    /// plane inverted on both sides.
    pub fn lt_s_mask(&self, o: &Self) -> u64 {
        let mut a = self.clone();
        let mut b = o.clone();
        a.planes[63] = !a.planes[63];
        b.planes[63] = !b.planes[63];
        a.lt_u_mask(&b)
    }
}

/// In-place transpose of a 64×64 bit matrix (`a[row]` bit `col` ↔
/// `a[col]` bit `row`), Hacker's Delight 7-3. Involution: applying it
/// twice is the identity, so the same routine packs lane-major values
/// into planes and unpacks them back.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Result of lane-packed ALU diff propagation: per-lane result diffs plus
/// a mask of lanes whose evaluation diverged in a way data flow cannot
/// express (an ISA that traps on divide-by-zero, where a lane's divisor
/// diff turns a well-defined golden division into a trap).
pub struct AluDiff {
    pub diff: [u64; 64],
    pub fork: u64,
}

/// Propagate lane diffs through one ALU operation.
///
/// `a`/`b` are the golden operands, `golden` the golden result, `da`/`db`
/// the per-lane operand diffs and `mask` the lanes that carry any operand
/// diff (lanes outside `mask` keep a zero result diff by construction:
/// golden operands produce the golden result). Dense masks go through the
/// bit-plane path — one ripple-carry or plane permutation covers every
/// lane — sparse masks evaluate lane-by-lane.
#[allow(clippy::too_many_arguments)]
pub fn alu_diff(
    op: AluOp,
    isa: Isa,
    a: u64,
    b: u64,
    golden: u64,
    da: &[u64; 64],
    db: &[u64; 64],
    mask: u64,
) -> AluDiff {
    let mut out = AluDiff { diff: [0; 64], fork: 0 };
    if mask == 0 {
        return out;
    }
    let plane_ok = match op {
        AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Slt | AluOp::Sltu => true,
        // Shifts stay in plane form only when every lane agrees on the
        // shift amount (no diff on `b`): the shift is then a constant
        // plane permutation.
        AluOp::Sll | AluOp::Srl | AluOp::Sra => (0..64).all(|l| mask & (1 << l) == 0 || db[l] == 0),
        // Multiplication and division mix bits non-locally; per-lane
        // scalar evaluation is both simpler and faster at any density.
        AluOp::Mul | AluOp::Div | AluOp::Rem => false,
    };
    if plane_ok && mask.count_ones() >= PLANE_THRESHOLD {
        let pa = LanePlane::broadcast(a).xor(&LanePlane::from_lanes(da));
        let pb = LanePlane::broadcast(b).xor(&LanePlane::from_lanes(db));
        let res = match op {
            AluOp::Add => pa.add(&pb),
            AluOp::Sub => pa.sub(&pb),
            AluOp::And => pa.and(&pb),
            AluOp::Or => pa.or(&pb),
            AluOp::Xor => pa.xor(&pb),
            AluOp::Sll => pa.shl_const((b & 63) as u32),
            AluOp::Srl => pa.shr_const((b & 63) as u32),
            AluOp::Sra => pa.sar_const((b & 63) as u32),
            AluOp::Slt => {
                let lt = pa.lt_s_mask(&pb);
                mask_to_diff(lt, golden, mask, &mut out.diff);
                return out;
            }
            AluOp::Sltu => {
                let lt = pa.lt_u_mask(&pb);
                mask_to_diff(lt, golden, mask, &mut out.diff);
                return out;
            }
            _ => unreachable!("plane_ok excludes the rest"),
        };
        let dr = res.xor(&LanePlane::broadcast(golden)).to_lanes();
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            out.diff[l] = dr[l];
        }
        return out;
    }
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        match op.eval(a ^ da[l], b ^ db[l], isa) {
            Some(r) => out.diff[l] = r ^ golden,
            None => out.fork |= 1 << l,
        }
    }
    out
}

/// Turn a per-lane 0/1 compare mask into result diffs against the golden
/// 0/1 result, restricted to `mask`.
fn mask_to_diff(bits: u64, golden: u64, mask: u64, diff: &mut [u64; 64]) {
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        diff[l] = ((bits >> l) & 1) ^ golden;
    }
}

// ---------------------------------------------------------------------
// Lane engine state
// ---------------------------------------------------------------------

/// What a lane is armed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneArm {
    /// A PRF bit: `(fp, reg, bit-in-reg)`.
    Prf { fp: bool, reg: u16, bit: u8 },
    /// A ROB result-field bit: `(slot, bit)` — fires at the next
    /// writeback into the slot, exactly like the scalar deferred flip.
    Rob { slot: u16, bit: u8 },
    /// A cache data bit, resolved to `(set, way, byte, bit)` by the
    /// owning cache; the cache-side monitor tracks it.
    Cache,
}

/// A lane-visible event drained by the pass driver after each tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneEvent {
    /// The lane's fault fate latched (first transition only).
    Fate(u8, FaultFate),
    /// The lane must leave the pass and re-run scalar: its divergence
    /// reached control flow, a memory address, store data, a trap
    /// decision, or a corrupt cache byte was actually read.
    Fork(u8),
    /// The lane's committed result stream diverged from the golden trace
    /// (a recorded commit carried a nonzero diff).
    Diverged(u8),
}

/// Per-pass diff and fate state for the packed lanes. Owned by the core;
/// the caches carry their own thin fate monitors and feed
/// [`LaneEvent`]s into the shared drain queue.
#[derive(Debug, Clone)]
pub struct LaneEngine {
    /// Bit `l` set: lane `l` is still live in the pass (not forked).
    pub live: u64,
    /// Lanes whose fate has latched (no longer `Pending`).
    pub fates: [FaultFate; MAX_LANES],
    fate_latched: u64,
    /// Per-physical-register lane diffs, flattened: `reg * 64 + lane`.
    /// `reg_nz[reg]` masks the lanes with a nonzero diff on that reg.
    reg_diffs: Vec<u64>,
    reg_nz: Vec<u64>,
    /// Per-register mask of lanes whose PRF fate monitor is still armed
    /// (Pending): the next read latches `Read`, the next write latches
    /// `Overwritten`, mirroring the scalar `PhysRegFile` armed monitor.
    prf_fate_mask: Vec<u64>,
    fp_base: usize,
    /// In-flight execute-event diffs, keyed by sequence number.
    event_diffs: Vec<(u64, Box<[u64; 64]>, u64)>,
    /// ROB result-field diffs, keyed by sequence number (alive from
    /// writeback — or in-place arm — until commit or flush).
    rob_diffs: Vec<(u64, Box<[u64; 64]>, u64)>,
    /// Pending deferred ROB flips: `(lane, slot, bit)`.
    rob_armed: Vec<(u8, u16, u8)>,
    /// Event drain queue, collected by the pass driver.
    pub events: Vec<LaneEvent>,
    isa: Isa,
}

impl LaneEngine {
    pub fn new(int_regs: usize, fp_regs: usize, isa: Isa) -> Self {
        let n = int_regs + fp_regs;
        LaneEngine {
            live: 0,
            fates: [FaultFate::Pending; MAX_LANES],
            fate_latched: 0,
            reg_diffs: vec![0; n * 64],
            reg_nz: vec![0; n],
            prf_fate_mask: vec![0; n],
            fp_base: int_regs,
            event_diffs: Vec::new(),
            rob_diffs: Vec::new(),
            rob_armed: Vec::new(),
            events: Vec::new(),
            isa,
        }
    }

    #[inline]
    fn reg_index(&self, fp: bool, reg: u16) -> usize {
        reg as usize + if fp { self.fp_base } else { 0 }
    }

    /// Arm a PRF lane: seed the diff bit and the per-register fate
    /// monitor.
    pub fn arm_prf(&mut self, lane: u8, fp: bool, reg: u16, bit: u8) {
        self.live |= 1 << lane;
        let ri = self.reg_index(fp, reg);
        self.reg_diffs[ri * 64 + lane as usize] = 1u64 << bit;
        self.reg_nz[ri] |= 1 << lane;
        self.prf_fate_mask[ri] |= 1 << lane;
    }

    /// A physical register was read through the operand path: lanes with
    /// an armed fate monitor on it latch `Read` (the scalar run consumed
    /// the flipped value here).
    pub fn note_reg_read(&mut self, fp: bool, reg: u16) {
        let ri = self.reg_index(fp, reg);
        let mut m = self.prf_fate_mask[ri];
        if m != 0 {
            self.prf_fate_mask[ri] = 0;
            while m != 0 {
                let l = m.trailing_zeros() as u8;
                m &= m - 1;
                self.note_fate(l, FaultFate::Read);
            }
        }
    }

    /// A physical register was written (writeback): still-armed fate
    /// monitors on it latch `Overwritten` (the flip died unobserved).
    pub fn note_reg_write(&mut self, fp: bool, reg: u16) {
        let ri = self.reg_index(fp, reg);
        let mut m = self.prf_fate_mask[ri];
        if m != 0 {
            self.prf_fate_mask[ri] = 0;
            while m != 0 {
                let l = m.trailing_zeros() as u8;
                m &= m - 1;
                self.note_fate(l, FaultFate::Overwritten);
            }
        }
    }

    /// Arm a cache lane (diffs never enter the data flow — the cache-side
    /// monitor forks the lane if the byte is ever read).
    pub fn arm_cache(&mut self, lane: u8) {
        self.live |= 1 << lane;
    }

    /// Arm a deferred ROB flip for a lane.
    pub fn arm_rob_deferred(&mut self, lane: u8, slot: u16, bit: u8) {
        self.live |= 1 << lane;
        self.rob_armed.push((lane, slot, bit));
    }

    /// Arm an in-place ROB corruption: the slot held a `Done` entry with
    /// sequence number `seq`; the lane's fate latches `Read` immediately
    /// (the flip acted on live state) and the entry's result now carries
    /// the diff until commit.
    pub fn arm_rob_inplace(&mut self, lane: u8, seq: u64, bit: u8) {
        self.live |= 1 << lane;
        self.note_fate(lane, FaultFate::Read);
        let d = self.rob_entry(seq);
        d.1[lane as usize] ^= 1u64 << bit;
        d.2 |= 1 << lane;
    }

    /// Latch a lane's fate (first transition wins, mirroring the scalar
    /// armed-fate monitors) and queue the event.
    pub fn note_fate(&mut self, lane: u8, fate: FaultFate) {
        if self.fate_latched & (1 << lane) != 0 {
            return;
        }
        self.fate_latched |= 1 << lane;
        self.fates[lane as usize] = fate;
        self.events.push(LaneEvent::Fate(lane, fate));
    }

    /// Fork lanes out of the pass: clear them from the live mask and
    /// queue fork events. Their residual diffs are ignored via `live`.
    pub fn fork(&mut self, lanes: u64) {
        let mut m = lanes & self.live;
        self.live &= !lanes;
        while m != 0 {
            let l = m.trailing_zeros() as u8;
            m &= m - 1;
            self.events.push(LaneEvent::Fork(l));
        }
    }

    /// Lanes (within `live`) carrying a nonzero diff on a register.
    #[inline]
    pub fn reg_mask(&self, fp: bool, reg: u16) -> u64 {
        self.reg_nz[self.reg_index(fp, reg)] & self.live
    }

    #[inline]
    pub fn reg_lane_diffs(&self, fp: bool, reg: u16) -> &[u64] {
        let ri = self.reg_index(fp, reg);
        &self.reg_diffs[ri * 64..ri * 64 + 64]
    }

    fn copy_reg_diffs(&self, fp: bool, reg: u16) -> [u64; 64] {
        let ri = self.reg_index(fp, reg);
        self.reg_diffs[ri * 64..ri * 64 + 64].try_into().unwrap()
    }

    /// Read a register's diffs for use as an ALU operand. `PNONE`-style
    /// absent operands should pass `None`.
    pub fn operand_diffs(&self, fp: bool, reg: Option<u16>) -> ([u64; 64], u64) {
        match reg {
            Some(r) => (self.copy_reg_diffs(fp, r), self.reg_mask(fp, r)),
            None => ([0; 64], 0),
        }
    }

    /// Record an execute event's result diffs (nonzero lanes only).
    pub fn push_event(&mut self, seq: u64, diff: [u64; 64], mask: u64) {
        let m = mask & self.live;
        if m != 0 {
            self.event_diffs.push((seq, Box::new(diff), m));
        }
    }

    /// Take an event's diffs at writeback (removed — the diff moves into
    /// the ROB entry and the destination register).
    pub fn take_event(&mut self, seq: u64) -> Option<(Box<[u64; 64]>, u64)> {
        let i = self.event_diffs.iter().position(|e| e.0 == seq)?;
        let (_, d, m) = self.event_diffs.swap_remove(i);
        Some((d, m))
    }

    fn rob_entry(&mut self, seq: u64) -> &mut (u64, Box<[u64; 64]>, u64) {
        if let Some(i) = self.rob_diffs.iter().position(|e| e.0 == seq) {
            &mut self.rob_diffs[i]
        } else {
            self.rob_diffs.push((seq, Box::new([0; 64]), 0));
            self.rob_diffs.last_mut().unwrap()
        }
    }

    /// Writeback of `seq` into ROB slot `slot` with destination `pdst`:
    /// moves the event diff into the ROB entry, fires any deferred ROB
    /// flips armed on the slot, and replaces the destination register's
    /// diffs (a diff-free writeback washes stale diffs away, exactly like
    /// the scalar overwrite). `pdst == None` models `PNONE`.
    pub fn writeback(&mut self, seq: u64, slot: u16, pdst: Option<u16>, fp: bool) {
        let (mut diff, mut mask) = match self.take_event(seq) {
            Some((d, m)) => (*d, m & self.live),
            None => ([0; 64], 0),
        };
        // Deferred ROB flips on this slot fire now, after the event's
        // value lands and before the PRF write — scalar order.
        let mut fired = false;
        let mut i = 0;
        while i < self.rob_armed.len() {
            let (lane, s, bit) = self.rob_armed[i];
            if s == slot {
                self.rob_armed.swap_remove(i);
                if self.live & (1 << lane) != 0 {
                    diff[lane as usize] ^= 1u64 << bit;
                    mask |= 1 << lane;
                    self.note_fate(lane, FaultFate::Read);
                    fired = true;
                }
            } else {
                i += 1;
            }
        }
        mask &= self.live;
        let _ = fired;
        if mask != 0 {
            let e = self.rob_entry(seq);
            *e.1 = diff;
            e.2 = mask;
        }
        if let Some(p) = pdst {
            let ri = self.reg_index(fp, p);
            let old = self.reg_nz[ri];
            if old != 0 || mask != 0 {
                let base = ri * 64;
                for (l, d) in diff.iter().enumerate() {
                    self.reg_diffs[base + l] = if mask & (1 << l) != 0 { *d } else { 0 };
                }
                self.reg_nz[ri] = mask;
            }
        }
    }

    /// Commit of `seq`: the ROB entry dies. If the commit was recorded in
    /// the golden trace with a result field (`records_result`), any lane
    /// diff on the entry is a committed-stream divergence.
    pub fn commit(&mut self, seq: u64, records_result: bool) {
        if let Some(i) = self.rob_diffs.iter().position(|e| e.0 == seq) {
            let (_, _, mask) = self.rob_diffs.swap_remove(i);
            if records_result {
                let mut m = mask & self.live;
                while m != 0 {
                    let l = m.trailing_zeros() as u8;
                    m &= m - 1;
                    self.events.push(LaneEvent::Diverged(l));
                }
            }
        }
    }

    /// Pipeline flush: every in-flight diff dies (events and ROB
    /// entries); register diffs and deferred ROB arms persist, exactly
    /// like the scalar state under `flush_to`.
    pub fn flush(&mut self) {
        self.event_diffs.clear();
        self.rob_diffs.clear();
    }

    /// Propagate diffs through one ALU op; returns the result diffs.
    #[allow(clippy::too_many_arguments)]
    pub fn alu(
        &mut self,
        op: AluOp,
        a: u64,
        b: u64,
        golden: u64,
        da: &[u64; 64],
        dam: u64,
        db: &[u64; 64],
        dbm: u64,
    ) -> ([u64; 64], u64) {
        let mask = (dam | dbm) & self.live;
        if mask == 0 {
            return ([0; 64], 0);
        }
        let r = alu_diff(op, self.isa, a, b, golden, da, db, mask);
        if r.fork != 0 {
            self.fork(r.fork);
        }
        let mut nz = 0u64;
        let mut m = mask & self.live;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if r.diff[l] != 0 {
                nz |= 1 << l;
            }
        }
        (r.diff, nz)
    }

    /// Mask of live lanes that still hold any diff or un-fired arm
    /// anywhere (registers, in-flight events, ROB entries, deferred ROB
    /// flips). A lane absent from this mask has fully re-converged with
    /// golden data flow.
    pub fn diffs_live(&self) -> u64 {
        let mut m = 0u64;
        for &nz in &self.reg_nz {
            m |= nz;
        }
        for &(_, _, em) in &self.event_diffs {
            m |= em;
        }
        for &(_, _, rm) in &self.rob_diffs {
            m |= rm;
        }
        for &(lane, _, _) in &self.rob_armed {
            m |= 1 << lane;
        }
        m & self.live
    }

    /// Drain queued events.
    pub fn drain_events(&mut self) -> Vec<LaneEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_is_involutive_and_matches_naive() {
        let mut vals = [0u64; 64];
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for v in vals.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = x;
        }
        let p = LanePlane::from_lanes(&vals);
        // Naive definition: planes[i] bit l == bit i of vals[l].
        for i in 0..64 {
            for (l, v) in vals.iter().enumerate() {
                assert_eq!((p.planes[i] >> l) & 1, (v >> i) & 1, "plane {i} lane {l}");
            }
        }
        assert_eq!(p.to_lanes(), vals);
        for (l, v) in vals.iter().enumerate() {
            assert_eq!(p.lane(l), *v);
        }
    }

    #[test]
    fn broadcast_matches_from_lanes() {
        let v = 0xDEAD_BEEF_0BAD_F00Du64;
        assert_eq!(LanePlane::broadcast(v), LanePlane::from_lanes(&[v; 64]));
    }

    #[test]
    fn plane_add_sub_match_scalar() {
        let mut a = [0u64; 64];
        let mut b = [0u64; 64];
        let mut x = 7u64;
        for i in 0..64 {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
            a[i] = x;
            x = x.rotate_left(17) ^ i as u64;
            b[i] = x;
        }
        let pa = LanePlane::from_lanes(&a);
        let pb = LanePlane::from_lanes(&b);
        let sum = pa.add(&pb).to_lanes();
        let dif = pa.sub(&pb).to_lanes();
        let ltu = pa.lt_u_mask(&pb);
        let lts = pa.lt_s_mask(&pb);
        let eq = pa.eq_mask(&pb);
        for l in 0..64 {
            assert_eq!(sum[l], a[l].wrapping_add(b[l]), "add lane {l}");
            assert_eq!(dif[l], a[l].wrapping_sub(b[l]), "sub lane {l}");
            assert_eq!((ltu >> l) & 1 != 0, a[l] < b[l], "ltu lane {l}");
            assert_eq!((lts >> l) & 1 != 0, (a[l] as i64) < (b[l] as i64), "lts lane {l}");
            assert_eq!((eq >> l) & 1 != 0, a[l] == b[l], "eq lane {l}");
        }
    }

    #[test]
    fn plane_shifts_match_scalar() {
        let mut a = [0u64; 64];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as u64).wrapping_mul(0xABCD_EF01_2345_6789) ^ (1u64 << 63);
        }
        let pa = LanePlane::from_lanes(&a);
        for k in [0u32, 1, 7, 31, 63] {
            let shl = pa.shl_const(k).to_lanes();
            let shr = pa.shr_const(k).to_lanes();
            let sar = pa.sar_const(k).to_lanes();
            for l in 0..64 {
                assert_eq!(shl[l], a[l] << k, "shl {k} lane {l}");
                assert_eq!(shr[l], a[l] >> k, "shr {k} lane {l}");
                assert_eq!(sar[l], ((a[l] as i64) >> k) as u64, "sar {k} lane {l}");
            }
        }
    }
}
