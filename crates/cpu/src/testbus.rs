//! A minimal RAM + console bus used by unit tests and examples that want a
//! core without the full SoC.

use crate::core::Bus;
use marvel_ir::memmap::{CONSOLE_ADDR, RAM_BASE, RAM_SIZE};

/// RAM plus a console byte sink.
#[derive(Debug, Clone)]
pub struct TestBus {
    pub ram: Vec<u8>,
    pub console: Vec<u8>,
}

impl TestBus {
    pub fn new() -> Self {
        TestBus { ram: vec![0u8; RAM_SIZE as usize], console: Vec::new() }
    }

    /// Load an image at `addr`.
    pub fn load(&mut self, addr: u64, image: &[u8]) {
        let off = (addr - RAM_BASE) as usize;
        self.ram[off..off + image.len()].copy_from_slice(image);
    }
}

impl Default for TestBus {
    fn default() -> Self {
        Self::new()
    }
}

impl Bus for TestBus {
    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> bool {
        if !self.is_cacheable(addr) || !self.is_cacheable(addr + buf.len() as u64 - 1) {
            return false;
        }
        let off = (addr - RAM_BASE) as usize;
        buf.copy_from_slice(&self.ram[off..off + buf.len()]);
        true
    }

    fn write_line(&mut self, addr: u64, data: &[u8]) -> bool {
        if !self.is_cacheable(addr) || !self.is_cacheable(addr + data.len() as u64 - 1) {
            return false;
        }
        let off = (addr - RAM_BASE) as usize;
        self.ram[off..off + data.len()].copy_from_slice(data);
        true
    }

    fn device_read(&mut self, _addr: u64, _size: u8) -> Option<u64> {
        None
    }

    fn device_write(&mut self, addr: u64, _size: u8, val: u64) -> Option<()> {
        if addr == CONSOLE_ADDR {
            self.console.push(val as u8);
            Some(())
        } else {
            None
        }
    }

    fn is_cacheable(&self, addr: u64) -> bool {
        (RAM_BASE..RAM_BASE + RAM_SIZE).contains(&addr)
    }

    fn is_device(&self, addr: u64) -> bool {
        addr == CONSOLE_ADDR
    }
}
