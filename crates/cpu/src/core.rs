//! The out-of-order core: fetch (decoding real bytes from the L1I) →
//! rename → issue → execute → commit, with commit-time squash recovery.
//!
//! Every architectural and microarchitectural value is held as explicit
//! bits in an injectable structure (PRF, caches, LQ/SQ, ROB results,
//! rename map), so injected faults propagate — or are masked — for the
//! same reasons they would in hardware: dead registers, wrong-path
//! execution, overwrites, cache evictions, decode don't-cares.

use crate::bp::BranchPredictor;
use crate::cache::{Cache, CacheLaneEvent, FaultFate};
use crate::config::CoreConfig;
use crate::dirty::DirtyMarks;
use crate::lane::{LaneEngine, LaneEvent};
use crate::lsq::{LoadQueue, StoreQueue};
use crate::prf::{FreeList, PhysRegFile, RenameMap};
use marvel_isa::{AluOp, Isa, MicroOp, Op, Trap, REG_NONE};
use marvel_telemetry::{alu_taint, PipeTracer, TaintAluKind, TaintTracer};
use std::sync::Arc;

/// Backing memory + devices, provided by the SoC.
pub trait Bus {
    /// Read a full cache line from RAM. Returns `false` if unmapped.
    fn read_line(&mut self, addr: u64, buf: &mut [u8]) -> bool;
    /// Write a full cache line back to RAM. Returns `false` if unmapped.
    fn write_line(&mut self, addr: u64, data: &[u8]) -> bool;
    /// Uncached device read.
    fn device_read(&mut self, addr: u64, size: u8) -> Option<u64>;
    /// Uncached device write.
    fn device_write(&mut self, addr: u64, size: u8, val: u64) -> Option<()>;
    /// Address is backed by cacheable RAM.
    fn is_cacheable(&self, addr: u64) -> bool;
    /// Address belongs to a device range.
    fn is_device(&self, addr: u64) -> bool;
    /// marvel-taint: shadow counterpart of [`read_line`](Bus::read_line).
    /// Buses without a RAM shadow report zero taint (the default).
    fn taint_read_line(&mut self, _addr: u64, buf: &mut [u8]) {
        buf.fill(0);
    }
    /// marvel-taint: shadow counterpart of [`write_line`](Bus::write_line).
    fn taint_write_line(&mut self, _addr: u64, _data: &[u8]) {}
}

// Structure names used in taint propagation timelines. Where a structure
// is also an injection target these match `Target::name()`.
const T_PRF: &str = "PhysRegFile(Int)";
const T_ROB: &str = "ROB";
const T_LQ: &str = "LoadQueue";
const T_SQ: &str = "StoreQueue";
const T_L1I: &str = "L1I";
const T_L1D: &str = "L1D";
const T_L2: &str = "L2";
const T_RENAME: &str = "RenameMap";
const T_RAM: &str = "RAM";
const T_DECODE: &str = "Decode";
const T_CONSOLE: &str = "Console";

/// Core-side marvel-taint state: the per-run propagation tracer plus the
/// rename-map taint bits (the PRF/cache shadows live inside those
/// structures). Boxed behind an `Option` on [`Core`] so the disabled
/// case costs one pointer test per hook.
#[derive(Debug, Clone)]
pub struct TaintPlane {
    pub tracer: TaintTracer,
    /// Per architectural register: the speculative rename mapping is
    /// corrupted, so any dispatch reading it yields an unknown value.
    rename: Vec<bool>,
}

/// Detached dirty-mark captures for every journaled core structure: one
/// golden segment of the checkpoint ladder. Produced by
/// [`Core::take_dirty_marks`], folded back by [`Core::merge_dirty_marks`].
#[derive(Debug, Clone, Default)]
pub struct CoreDirtyMarks {
    prf: DirtyMarks,
    prf_fp: DirtyMarks,
    l1i: DirtyMarks,
    l1d: DirtyMarks,
    l2: DirtyMarks,
}

const PNONE: u16 = u16::MAX;
const QNONE: u16 = u16::MAX;

/// Load-pipeline depth between address generation and the cache access
/// made through the buffered LQ request bits.
const REQUEST_DELAY: u64 = 4;

/// What happened during a [`Core::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    None,
    /// A `Halt` committed: the program ended normally.
    Halted,
    /// A trap reached the commit stage (the run is a Crash).
    Trapped(Trap),
    /// A `Checkpoint` marker committed.
    CheckpointHit,
    /// A `SwitchCpu` marker committed.
    SwitchCpuHit,
}

/// One entry of the commit trace (the HVF comparison stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    pub pc: u64,
    pub kind: u8,
    pub result: u64,
    pub addr: u64,
}

/// One committed micro-op's full architectural effect, captured by the
/// opt-in commit-effect log ([`Core::enable_commit_effects`]). This is
/// the stream the `marvel-ref` lockstep oracle replays: everything an
/// architectural interpreter can reproduce, nothing microarchitectural.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEffect {
    /// PC of the macro instruction this micro-op belongs to.
    pub pc: u64,
    pub uop: MicroOp,
    /// Encoded length of the macro instruction (0 for fetch-trap stubs).
    pub macro_len: u8,
    pub last_of_macro: bool,
    /// Destination architectural register, when one was renamed (`None`
    /// for zero-register and no-destination micro-ops).
    pub rd: Option<u8>,
    /// Value written to `rd`, or the store data for stores.
    pub value: u64,
    /// Architectural next-PC after this micro-op's macro instruction.
    pub next_pc: u64,
    /// Effective address for loads/stores, 0 otherwise.
    pub mem_addr: u64,
    /// The trap that ended the run, if this commit trapped.
    pub trap: Option<Trap>,
}

/// Commit-trace mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceMode {
    #[default]
    Off,
    /// Record the trace (golden run).
    Record,
    /// Compare online against a golden trace, noting the first divergence.
    Check(Arc<Vec<CommitRecord>>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    Executing,
    Done,
}

#[derive(Debug, Clone, PartialEq)]
struct RobEntry {
    seq: u64,
    uop: MicroOp,
    pc: u64,
    macro_len: u8,
    first_of_macro: bool,
    last_of_macro: bool,
    predicted_next: u64,
    actual_next: u64,
    taken: bool,
    pdst: u16,
    prev_pdst: u16,
    psrc: [u16; 3],
    state: EState,
    trap: Option<Trap>,
    lq: u16,
    sq: u16,
    result: u64,
    mem_addr: u64,
    /// An older store detected a memory-ordering violation: re-execute
    /// this load from fetch when it reaches the commit head.
    replay: bool,
    /// marvel-taint: shadow mask of `result` (always present, defaults 0).
    result_taint: u64,
    /// marvel-taint: the uop itself is suspect (tainted fetch bytes or a
    /// corrupted rename mapping), so every output is fully tainted.
    ctl_taint: bool,
}

#[derive(Debug, Clone, Copy)]
struct FetchedUop {
    uop: MicroOp,
    pc: u64,
    macro_len: u8,
    first_of_macro: bool,
    last_of_macro: bool,
    predicted_next: u64,
    trap: Option<Trap>,
    /// marvel-taint: decoded from tainted L1I bytes.
    tainted: bool,
    /// Cycle the uop was fetched (pipeline trace only).
    fetched_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at: u64,
    seq: u64,
    result: u64,
    /// For loads: deliver the value from this LQ entry's data field at
    /// writeback time (so LQ faults during the access window propagate).
    from_lq: u16,
    /// marvel-taint: shadow mask of `result` (ALU results; loads re-read
    /// the live LQ taint at writeback).
    taint: u64,
}

/// Execution statistics.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    pub cycles: u64,
    pub committed_uops: u64,
    pub committed_macros: u64,
    pub loads: u64,
    pub stores: u64,
    pub branches: u64,
    pub mispredicts: u64,
    pub lq_occ_accum: u64,
    pub sq_occ_accum: u64,
    pub rob_occ_accum: u64,
    pub iq_occ_accum: u64,
    pub freelist_free_accum: u64,
    pub flushes: u64,
    pub replays: u64,
}

impl CoreStats {
    /// Instructions (macro) per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_macros as f64 / self.cycles as f64
        }
    }
}

/// The out-of-order core.
#[derive(Debug, Clone)]
pub struct Core {
    pub cfg: CoreConfig,
    isa: Isa,
    cycle: u64,
    next_seq: u64,

    // front end
    fetch_pc: u64,
    fetch_halted: bool,
    fetch_stall_until: u64,
    fq: Vec<FetchedUop>,
    bp: BranchPredictor,

    // rename
    rename: RenameMap,
    retire: RenameMap,
    freelist: FreeList,

    // backend
    rob: std::collections::VecDeque<RobEntry>,
    iq: Vec<u64>,
    events: Vec<Event>,
    /// Loads whose AGU has fired but whose cache access (through the
    /// buffered LQ request bits) is still in the load pipeline.
    pending_loads: Vec<(u64, u64)>,
    muldiv_free_at: u64,

    // memory system
    pub prf: PhysRegFile,
    pub prf_fp: PhysRegFile,
    pub l1i: Cache,
    pub l1d: Cache,
    pub l2: Cache,
    pub lq: LoadQueue,
    pub sq: StoreQueue,

    // interrupts
    irq_pending: bool,
    in_irq: bool,
    iret_pc: u64,

    /// Memory-dependence predictor: loads whose PC hashes into a set bit
    /// have violated before and now wait for older store addresses
    /// (store-set style, as in the Alpha 21264 / gem5 O3).
    mdp: Vec<bool>,

    // ROB-result injection
    rob_armed: Option<(u64, FaultFate)>,
    rob_flip: Option<(u64, u64)>, // (entry index within capacity, bit)

    // trace
    pub trace_mode: TraceMode,
    pub trace: Vec<CommitRecord>,
    trace_pos: usize,
    pub divergence: Option<u64>,

    /// Commit-effect log for the lockstep oracle (`None` = off: the hook
    /// is one pointer test per committed uop).
    commit_log: Option<Vec<CommitEffect>>,

    /// marvel-taint plane (`None` = off: every hook is one pointer test).
    taint: Option<Box<TaintPlane>>,
    /// Konata pipeline tracer (`None` = off).
    pipe: Option<Box<PipeTracer>>,
    /// Lane-packed campaign overlay (`None` = scalar run: every hook is
    /// one pointer test). Never survives a reset.
    lanes: Option<Box<LaneEngine>>,

    pub stats: CoreStats,
}

/// Map an ALU op onto its taint-transfer class.
fn taint_kind(op: AluOp) -> TaintAluKind {
    match op {
        AluOp::And | AluOp::Or | AluOp::Xor => TaintAluKind::Bitwise,
        AluOp::Add | AluOp::Sub => TaintAluKind::Arith,
        AluOp::Sll => TaintAluKind::ShiftLeft,
        AluOp::Srl | AluOp::Sra => TaintAluKind::ShiftRight,
        AluOp::Mul | AluOp::Div | AluOp::Rem | AluOp::Slt | AluOp::Sltu => TaintAluKind::Wide,
    }
}

/// Taint mask of an ALU-class result given its operand taints (`b` is
/// the runtime second operand, needed for shift transfer).
fn alu_result_taint(u: &MicroOp, ta: u64, tb: u64, b: u64) -> u64 {
    match u.op {
        Op::Alu(op) => alu_taint(taint_kind(op), ta, tb, b),
        Op::AluImm(op) => alu_taint(taint_kind(op), ta, 0, u.imm as u64),
        Op::MovK(sh) => ta & !(0xFFFFu64 << sh),
        // Link values / immediates derive from the (untainted) PC.
        Op::LoadImm | Op::Auipc | Op::LinkAddr | Op::Jal => 0,
        // A tainted jump target or branch decision poisons the control
        // flow; the result field carries the poison to commit.
        Op::Jalr if ta != 0 => !0,
        Op::Branch(_) if (ta | tb) != 0 => !0,
        _ => 0,
    }
}

fn op_tag(op: Op) -> u8 {
    match op {
        Op::Alu(_) | Op::AluImm(_) | Op::LoadImm | Op::MovK(_) | Op::Auipc | Op::LinkAddr => 1,
        Op::Load { .. } => 2,
        Op::Store { .. } => 3,
        Op::Branch(_) | Op::Jal | Op::Jalr | Op::Iret => 4,
        Op::Halt | Op::Checkpoint | Op::SwitchCpu | Op::Nop => 5,
    }
}

impl Core {
    pub fn new(cfg: CoreConfig) -> Self {
        let spec = cfg.isa.reg_spec();
        let prf = PhysRegFile::new(cfg.int_prf);
        let rename = RenameMap::new(spec.total_regs as usize, cfg.int_prf as u16);
        let retire = RenameMap::new(spec.total_regs as usize, cfg.int_prf as u16);
        let freelist = FreeList::new(cfg.int_prf as u16, &[0]);
        Core {
            isa: cfg.isa,
            cycle: 0,
            next_seq: 1,
            fetch_pc: 0,
            fetch_halted: true,
            fetch_stall_until: 0,
            fq: Vec::new(),
            bp: BranchPredictor::new(cfg.bp_entries, cfg.ras_entries),
            rename,
            retire,
            freelist,
            rob: std::collections::VecDeque::with_capacity(cfg.rob_entries),
            iq: Vec::new(),
            events: Vec::new(),
            pending_loads: Vec::new(),
            muldiv_free_at: 0,
            prf,
            prf_fp: PhysRegFile::new(cfg.fp_prf),
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            irq_pending: false,
            in_irq: false,
            iret_pc: 0,
            mdp: vec![false; 1024],
            rob_armed: None,
            rob_flip: None,
            trace_mode: TraceMode::Off,
            trace: Vec::new(),
            trace_pos: 0,
            divergence: None,
            commit_log: None,
            taint: None,
            pipe: None,
            lanes: None,
            stats: CoreStats::default(),
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // marvel-taint / pipeline trace control
    // ------------------------------------------------------------------

    /// Enable the taint plane (before fault arming). Allocates the PRF
    /// and cache shadows and the propagation tracer; `seed` labels the
    /// injection site in the report.
    pub fn enable_taint(&mut self, seed: &str) {
        self.prf.enable_taint();
        self.prf_fp.enable_taint();
        self.l1i.enable_taint();
        self.l1d.enable_taint();
        self.l2.enable_taint();
        let arch = self.isa.reg_spec().total_regs as usize;
        self.taint =
            Some(Box::new(TaintPlane { tracer: TaintTracer::new(seed), rename: vec![false; arch] }));
    }

    pub fn taint_enabled(&self) -> bool {
        self.taint.is_some()
    }

    /// Mark the architectural register whose speculative rename mapping
    /// holds the injected bit (called by the SoC after a rename-map flip).
    pub fn seed_rename_taint(&mut self, bit: u64) {
        let bpe = self.rename.bits_per_entry();
        let a = (bit / bpe) as usize;
        if let Some(tp) = self.taint.as_deref_mut() {
            if let Some(t) = tp.rename.get_mut(a) {
                *t = true;
            }
        }
    }

    /// Taint everything an already-armed ROB fault will touch (called by
    /// the SoC when the taint plane is enabled after `rob_flip_bit`).
    pub fn seed_rob_taint(&mut self) {
        if let Some((bit, _)) = self.rob_armed {
            let slot = bit / 64;
            let cap = self.cfg.rob_entries as u64;
            for e in &mut self.rob {
                if e.seq % cap == slot {
                    e.result_taint |= 1 << (bit % 64);
                }
            }
        }
    }

    /// The per-run propagation tracer, when taint is enabled.
    pub fn taint_tracer(&self) -> Option<&TaintTracer> {
        self.taint.as_deref().map(|tp| &tp.tracer)
    }

    /// Start recording a Konata pipeline trace.
    pub fn enable_pipe_trace(&mut self) {
        self.pipe = Some(Box::new(PipeTracer::default()));
    }

    pub fn pipe_tracer(&self) -> Option<&PipeTracer> {
        self.pipe.as_deref()
    }

    /// Reset the pipeline and start fetching at `pc`. Cache contents are
    /// preserved (checkpoints capture warm caches).
    pub fn reset_to(&mut self, pc: u64) {
        self.fetch_pc = pc;
        self.fetch_halted = false;
        self.fetch_stall_until = 0;
        self.fq.clear();
        self.rob.clear();
        self.iq.clear();
        self.events.clear();
        self.pending_loads.clear();
        self.lq.clear();
        self.sq = StoreQueue::new(self.cfg.sq_entries);
        let spec = self.isa.reg_spec();
        self.rename = RenameMap::new(spec.total_regs as usize, self.cfg.int_prf as u16);
        self.retire = RenameMap::new(spec.total_regs as usize, self.cfg.int_prf as u16);
        self.freelist = FreeList::new(self.cfg.int_prf as u16, &[0]);
        self.prf.set_all_ready();
    }

    /// Turn on dirty-journaling in the journaled structures (PRFs and
    /// caches) so [`reset_from`](Self::reset_from) restores only what a
    /// run actually touched. Call once on the per-worker reusable core.
    pub fn enable_dirty_tracking(&mut self) {
        self.prf.enable_dirty_tracking();
        self.prf_fp.enable_dirty_tracking();
        self.l1i.enable_dirty_tracking();
        self.l1d.enable_dirty_tracking();
        self.l2.enable_dirty_tracking();
    }

    /// Restore this core to the pristine checkpoint it was cloned from,
    /// undoing journaled state where possible and copying the small
    /// unjournaled structures wholesale (reusing their allocations).
    /// Returns state bytes copied — the perf-guard's cost measure.
    pub fn reset_from(&mut self, pristine: &Core) -> u64 {
        let mut bytes = self.prf.reset_from(&pristine.prf);
        bytes += self.prf_fp.reset_from(&pristine.prf_fp);
        bytes += self.l1i.reset_from(&pristine.l1i);
        bytes += self.l1d.reset_from(&pristine.l1d);
        bytes += self.l2.reset_from(&pristine.l2);
        bytes += self.bp.reset_from(&pristine.bp);

        self.cycle = pristine.cycle;
        self.next_seq = pristine.next_seq;
        self.fetch_pc = pristine.fetch_pc;
        self.fetch_halted = pristine.fetch_halted;
        self.fetch_stall_until = pristine.fetch_stall_until;
        self.fq.clone_from(&pristine.fq);
        self.rename.copy_from(&pristine.rename);
        self.retire.copy_from(&pristine.retire);
        self.freelist.copy_from(&pristine.freelist);
        self.rob.clone_from(&pristine.rob);
        self.iq.clone_from(&pristine.iq);
        self.events.clone_from(&pristine.events);
        self.pending_loads.clone_from(&pristine.pending_loads);
        self.muldiv_free_at = pristine.muldiv_free_at;
        self.lq.entries.clone_from(&pristine.lq.entries);
        self.sq.entries.clone_from(&pristine.sq.entries);
        self.irq_pending = pristine.irq_pending;
        self.in_irq = pristine.in_irq;
        self.iret_pc = pristine.iret_pc;
        self.mdp.copy_from_slice(&pristine.mdp);
        self.rob_armed = pristine.rob_armed;
        self.rob_flip = pristine.rob_flip;
        self.trace_mode = pristine.trace_mode.clone();
        self.trace.clone_from(&pristine.trace);
        self.trace_pos = pristine.trace_pos;
        self.divergence = pristine.divergence;
        // Per-run observers: the pristine checkpoint never carries them,
        // so these normally just drop the run's planes.
        self.commit_log.clone_from(&pristine.commit_log);
        self.taint.clone_from(&pristine.taint);
        self.pipe.clone_from(&pristine.pipe);
        self.lanes = None;
        self.stats = pristine.stats.clone();

        use std::mem::size_of;
        bytes += (self.fq.len() * size_of::<FetchedUop>()
            + self.rob.len() * size_of::<RobEntry>()
            + self.iq.len() * 8
            + self.events.len() * size_of::<Event>()
            + self.pending_loads.len() * 16
            + self.lq.entries.len() * size_of::<crate::lsq::LqEntry>()
            + self.sq.entries.len() * size_of::<crate::lsq::SqEntry>()
            + self.rename.entries().len() * 2 * 2
            + self.freelist.len() * 2
            + self.mdp.len()
            + size_of::<CoreStats>()
            + 96) as u64; // scalar pipeline state
        bytes
    }

    /// Drain every structure journal into a detached capture: one golden
    /// segment of the checkpoint ladder (the registers/sets the fault-free
    /// run dirtied between two consecutive rungs).
    pub fn take_dirty_marks(&mut self) -> CoreDirtyMarks {
        CoreDirtyMarks {
            prf: self.prf.take_marks(),
            prf_fp: self.prf_fp.take_marks(),
            l1i: self.l1i.take_marks(),
            l1d: self.l1d.take_marks(),
            l2: self.l2.take_marks(),
        }
    }

    /// Fold a golden-segment capture into the live journals at a ladder-rung
    /// crossing, so the convergence compare also covers locations only the
    /// golden run wrote (a fault can suppress a golden write).
    pub fn merge_dirty_marks(&mut self, m: &CoreDirtyMarks) {
        self.prf.merge_marks(&m.prf);
        self.prf_fp.merge_marks(&m.prf_fp);
        self.l1i.merge_marks(&m.l1i);
        self.l1d.merge_marks(&m.l1d);
        self.l2.merge_marks(&m.l2);
    }

    /// Functional-state equality against a ladder rung at the same cycle:
    /// true means every future tick of `self` behaves exactly like the
    /// golden run's, so the fault is masked. Journaled structures compare
    /// only their dirty indices; small pipeline structures compare
    /// wholesale. Observational state (stats, armed fates, trace contents,
    /// taint shadows, tracers) is excluded — it cannot steer the data
    /// plane. `fq` entries ignore their `fetched_at` pipeline-trace stamp;
    /// invalid LSQ entries are wildcards (stale payload).
    pub fn state_converged(&self, pristine: &Core) -> bool {
        let fuop_eq = |a: &FetchedUop, b: &FetchedUop| {
            a.uop == b.uop
                && a.pc == b.pc
                && a.macro_len == b.macro_len
                && a.first_of_macro == b.first_of_macro
                && a.last_of_macro == b.last_of_macro
                && a.predicted_next == b.predicted_next
                && a.trap == b.trap
                && a.tainted == b.tainted
        };
        self.cycle == pristine.cycle
            && self.next_seq == pristine.next_seq
            && self.fetch_pc == pristine.fetch_pc
            && self.fetch_halted == pristine.fetch_halted
            && self.fetch_stall_until == pristine.fetch_stall_until
            && self.muldiv_free_at == pristine.muldiv_free_at
            && self.irq_pending == pristine.irq_pending
            && self.in_irq == pristine.in_irq
            && self.iret_pc == pristine.iret_pc
            && self.trace_pos == pristine.trace_pos
            && self.divergence == pristine.divergence
            // A still-pending ROB flip would fire later: never converged.
            && self.rob_flip == pristine.rob_flip
            && self.fq.len() == pristine.fq.len()
            && self.fq.iter().zip(&pristine.fq).all(|(a, b)| fuop_eq(a, b))
            && self.rob == pristine.rob
            && self.iq == pristine.iq
            && self.events == pristine.events
            && self.pending_loads == pristine.pending_loads
            && self.mdp == pristine.mdp
            && self.rename == pristine.rename
            && self.retire == pristine.retire
            && self.freelist == pristine.freelist
            && self.lq.converged_with(&pristine.lq)
            && self.sq.converged_with(&pristine.sq)
            && self.bp.converged_with(&pristine.bp)
            && self.prf.converged_with(&pristine.prf)
            && self.prf_fp.converged_with(&pristine.prf_fp)
            && self.l1i.converged_with(&pristine.l1i)
            && self.l1d.converged_with(&pristine.l1d)
            && self.l2.converged_with(&pristine.l2)
    }

    /// True when no core-side taint shadow carries a set bit, so the
    /// propagation report is frozen (live ROB/LSQ entry taints are covered
    /// by [`state_converged`](Self::state_converged) against a zero-taint
    /// rung).
    pub fn taint_quiescent(&self) -> bool {
        self.taint.as_deref().is_none_or(|tp| tp.rename.iter().all(|&b| !b))
            && self.prf.taint_quiescent()
            && self.prf_fp.taint_quiescent()
            && self.l1i.taint_quiescent()
            && self.l1d.taint_quiescent()
            && self.l2.taint_quiescent()
    }

    pub fn isa(&self) -> Isa {
        self.isa
    }

    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Raise/clear the external interrupt line.
    pub fn set_irq(&mut self, level: bool) {
        self.irq_pending = level;
    }

    pub fn in_irq(&self) -> bool {
        self.in_irq
    }

    /// Advance one cycle.
    pub fn tick(&mut self, bus: &mut dyn Bus) -> StepEvent {
        self.cycle += 1;
        self.stats.cycles += 1;
        self.stats.lq_occ_accum += self.lq.occupancy() as u64;
        self.stats.sq_occ_accum += self.sq.occupancy() as u64;
        self.stats.rob_occ_accum += self.rob.len() as u64;
        self.stats.iq_occ_accum += self.iq.len() as u64;
        self.stats.freelist_free_accum += self.freelist.len() as u64;

        // 1. writeback: deliver due completion events.
        self.writeback();
        // 2. commit.
        let ev = self.commit();
        if matches!(ev, StepEvent::Halted) {
            // Drain every committed store (console output included) before
            // declaring the program finished.
            while self.sq.oldest_senior().is_some() {
                if let Some(t) = self.drain_stores(bus) {
                    return StepEvent::Trapped(t);
                }
            }
            return ev;
        }
        if !matches!(ev, StepEvent::None) {
            return ev;
        }
        // 3. drain senior stores.
        if let Some(t) = self.drain_stores(bus) {
            return StepEvent::Trapped(t);
        }
        // 4. issue/execute.
        self.issue(bus);
        // 5. rename/dispatch.
        self.dispatch();
        // 6. fetch.
        self.fetch(bus);
        StepEvent::None
    }

    // ------------------------------------------------------------------
    // writeback
    // ------------------------------------------------------------------

    fn rob_index_of(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        if idx < self.rob.len() && self.rob[idx].seq == seq {
            Some(idx)
        } else {
            None
        }
    }

    fn writeback(&mut self) {
        let now = self.cycle;
        let mut i = 0;
        while i < self.events.len() {
            if self.events[i].at <= now {
                let e = self.events.swap_remove(i);
                if let Some(idx) = self.rob_index_of(e.seq) {
                    // Loads deliver from the (injectable) LQ data field.
                    let mut from_lq_taint = false;
                    let (value, vtaint) = if e.from_lq != QNONE {
                        let lqe = &self.lq.entries[e.from_lq as usize];
                        if lqe.valid && lqe.seq == e.seq {
                            from_lq_taint = lqe.data_taint != 0;
                            (lqe.data, lqe.data_taint)
                        } else {
                            (e.result, e.taint)
                        }
                    } else {
                        (e.result, e.taint)
                    };
                    let (pdst, rob_base) = {
                        let ent = &mut self.rob[idx];
                        ent.state = EState::Done;
                        ent.result = value;
                        ent.result_taint |= vtaint | if ent.ctl_taint { !0 } else { 0 };
                        (ent.pdst, idx)
                    };
                    // Apply a pending ROB-result fault the moment the value
                    // lands in the entry.
                    self.apply_rob_flip(rob_base);
                    if self.lanes.is_some() {
                        let slot = (e.seq % self.cfg.rob_entries as u64) as u16;
                        let pd = if pdst == PNONE { None } else { Some(pdst) };
                        let le = self.lanes.as_deref_mut().unwrap();
                        le.writeback(e.seq, slot, pd, false);
                        if let Some(p) = pd {
                            le.note_reg_write(false, p);
                        }
                    }
                    let result = self.rob[rob_base].result;
                    let rtaint = self.rob[rob_base].result_taint;
                    if pdst != PNONE {
                        self.prf.write(pdst, result);
                        self.prf.set_ready(pdst, true);
                        self.prf.set_taint(pdst, rtaint);
                    }
                    if let Some(tp) = self.taint.as_deref_mut() {
                        if from_lq_taint {
                            tp.tracer.hop(now, T_LQ, T_ROB);
                        }
                        if rtaint != 0 && pdst != PNONE {
                            tp.tracer.hop(now, T_ROB, T_PRF);
                        }
                    }
                    if let Some(p) = self.pipe.as_deref_mut() {
                        p.complete(e.seq, now);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    fn apply_rob_flip(&mut self, idx: usize) {
        if let Some((slot, bit)) = self.rob_flip {
            let cap = self.cfg.rob_entries as u64;
            let ent_seq = self.rob[idx].seq;
            if ent_seq % cap == slot {
                self.rob[idx].result ^= 1 << bit;
                self.rob[idx].result_taint |= 1 << bit;
                self.rob_flip = None;
                if let Some((_, f)) = &mut self.rob_armed {
                    *f = FaultFate::Read;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit(&mut self) -> StepEvent {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { return StepEvent::None };
            if head.state != EState::Done {
                return StepEvent::None;
            }
            // External interrupt: accept at macro boundaries.
            if self.irq_pending && !self.in_irq && head.first_of_macro && head.trap.is_none() {
                let resume = head.pc;
                self.in_irq = true;
                self.iret_pc = resume;
                self.flush_to(marvel_ir::memmap::IRQ_VECTOR);
                return StepEvent::None;
            }
            let ent = self.rob.front().unwrap().clone();
            if let Some(t) = ent.trap {
                self.log_effect(&ent, Some(t));
                return StepEvent::Trapped(t);
            }
            // Memory-ordering replay: squash from this load (inclusive)
            // and refetch it; the conflicting older store has retired.
            if ent.replay {
                self.stats.replays += 1;
                let pc = ent.pc;
                self.mdp[(pc >> 2) as usize & 1023] = true;
                self.flush_to(pc);
                return StepEvent::None;
            }

            // marvel-taint: a tainted value retiring into architectural
            // state (register write or control-flow decision). Stores are
            // attributed at drain time instead, where the bytes land.
            let tainted_commit = ent.result_taint != 0 || ent.ctl_taint;
            if tainted_commit {
                let arch = ent.pdst != PNONE || op_tag(ent.uop.op) == 4;
                if let Some(tp) = self.taint.as_deref_mut() {
                    if arch {
                        tp.tracer.arch_reach(self.cycle, T_ROB);
                    }
                }
            }
            if let Some(p) = self.pipe.as_deref_mut() {
                p.commit(ent.seq, self.cycle, tainted_commit);
            }

            // Architectural effects.
            if ent.pdst != PNONE {
                let prev = ent.prev_pdst;
                self.retire.set(ent.uop.rd, ent.pdst);
                if prev != PNONE && prev != 0 {
                    self.freelist.release(prev);
                }
            }
            if ent.uop.op.is_store() && ent.sq != QNONE {
                self.sq.entries[ent.sq as usize].senior = true;
                self.stats.stores += 1;
            }
            if ent.uop.op.is_load() && ent.lq != QNONE {
                self.lq.free(ent.lq as usize);
                self.stats.loads += 1;
            }

            // Commit trace (HVF stream).
            let tag = op_tag(ent.uop.op);
            if tag <= 4 && !matches!(ent.uop.op, Op::Nop) {
                let rec = CommitRecord {
                    pc: ent.pc,
                    kind: tag,
                    result: if tag == 4 { ent.actual_next } else { ent.result },
                    addr: ent.mem_addr,
                };
                match &self.trace_mode {
                    TraceMode::Off => {}
                    TraceMode::Record => self.trace.push(rec),
                    TraceMode::Check(golden) => {
                        if self.divergence.is_none() {
                            let ok = golden.get(self.trace_pos) == Some(&rec);
                            if !ok {
                                self.divergence = Some(self.trace_pos as u64);
                            }
                        }
                        self.trace_pos += 1;
                    }
                }
            }

            if let Some(le) = self.lanes.as_deref_mut() {
                // Only tags 1-3 put the result field into the commit
                // record (tag 4 records `actual_next`, which carries no
                // diff for live lanes); a nonzero entry diff on one of
                // those is a committed-stream divergence.
                le.commit(ent.seq, (1..=3).contains(&tag) && !matches!(ent.uop.op, Op::Nop));
            }

            self.log_effect(&ent, None);

            self.stats.committed_uops += 1;
            if ent.last_of_macro {
                self.stats.committed_macros += 1;
            }

            // Simulation markers.
            match ent.uop.op {
                Op::Halt => {
                    self.rob.pop_front();
                    return StepEvent::Halted;
                }
                Op::Checkpoint => {
                    self.rob.pop_front();
                    return StepEvent::CheckpointHit;
                }
                Op::SwitchCpu => {
                    self.rob.pop_front();
                    return StepEvent::SwitchCpuHit;
                }
                Op::Iret => {
                    let target = self.iret_pc;
                    self.in_irq = false;
                    self.rob.pop_front();
                    self.flush_to(target);
                    return StepEvent::None;
                }
                _ => {}
            }

            // Control-flow validation (commit-time squash).
            if ent.uop.op.is_control() && ent.last_of_macro {
                self.stats.branches += 1;
                let mispredicted = ent.actual_next != ent.predicted_next;
                if let Op::Branch(_) = ent.uop.op {
                    self.bp.train(ent.pc, ent.taken, mispredicted);
                }
                self.rob.pop_front();
                if mispredicted {
                    self.stats.mispredicts += 1;
                    let t = ent.actual_next;
                    self.flush_to(t);
                    return StepEvent::None;
                }
                continue;
            }

            self.rob.pop_front();
        }
        StepEvent::None
    }

    /// Full pipeline flush; resume fetching at `pc`.
    fn flush_to(&mut self, pc: u64) {
        self.stats.flushes += 1;
        if let Some(le) = self.lanes.as_deref_mut() {
            // Every in-flight diff is squashed with the pipeline; register
            // diffs and deferred ROB arms survive, like scalar state.
            le.flush();
        }
        // Release in-flight destination registers.
        let pdsts: Vec<u16> = self.rob.iter().filter(|e| e.pdst != PNONE).map(|e| e.pdst).collect();
        for p in pdsts {
            if p != 0 {
                self.freelist.release(p);
                self.prf.set_ready(p, true);
            }
        }
        self.rob.clear();
        self.iq.clear();
        self.events.clear();
        self.pending_loads.clear();
        self.lq.clear();
        self.sq.squash_after(0);
        self.rename.copy_from(&self.retire);
        // Rebuild the free list from the retirement map to stay consistent
        // even after rename-map fault injection.
        self.freelist = FreeList::new(self.cfg.int_prf as u16, self.retire.entries());
        // Speculative rename corruption is wiped by the copy above.
        if let Some(tp) = self.taint.as_deref_mut() {
            tp.rename.iter_mut().for_each(|t| *t = false);
        }
        self.fq.clear();
        self.fetch_pc = pc;
        self.fetch_halted = false;
        self.fetch_stall_until = 0;
    }

    // ------------------------------------------------------------------
    // store drain
    // ------------------------------------------------------------------

    fn drain_stores(&mut self, bus: &mut dyn Bus) -> Option<Trap> {
        for _ in 0..self.isa.store_drain_per_cycle() {
            let idx = self.sq.oldest_senior()?;
            let mut e = self.sq.entries[idx];
            // A fault-corrupted width field saturates at the bus width.
            e.size = e.size.clamp(1, 8);
            // A store with tainted data or a tainted address commits the
            // corruption to architectural memory (or a device).
            let drain_taint = e.data_taint | if e.addr_taint != 0 { !0 } else { 0 };
            if e.device || bus.is_device(e.addr) {
                if bus.device_write(e.addr, e.size, e.data).is_none() {
                    return Some(Trap::MemFault { pc: 0, addr: e.addr });
                }
                if drain_taint != 0 {
                    if let Some(tp) = self.taint.as_deref_mut() {
                        tp.tracer.hop(self.cycle, T_SQ, T_CONSOLE);
                        tp.tracer.arch_reach(self.cycle, T_SQ);
                    }
                }
            } else if bus.is_cacheable(e.addr)
                && bus.is_cacheable(e.addr + e.size.saturating_sub(1) as u64)
            {
                self.data_write(bus, e.addr, e.size, e.data);
                if self.l1d.taint_on() {
                    self.data_write_taint(e.addr, e.size, drain_taint);
                    if drain_taint != 0 {
                        if let Some(tp) = self.taint.as_deref_mut() {
                            tp.tracer.hop(self.cycle, T_SQ, T_L1D);
                            tp.tracer.arch_reach(self.cycle, T_SQ);
                        }
                    }
                }
            } else {
                // A fault-corrupted committed store aimed outside every
                // mapped range: machine-check-style crash.
                return Some(Trap::MemFault { pc: 0, addr: e.addr });
            }
            self.sq.free(idx);
        }
        None
    }

    // ------------------------------------------------------------------
    // cache plumbing
    // ------------------------------------------------------------------

    /// Ensure the line holding `addr` is resident in L1 (`icache` selects
    /// L1I/L1D); returns total access latency.
    fn ensure_line(&mut self, bus: &mut dyn Bus, addr: u64, icache: bool) -> Option<u32> {
        let line = self.cfg.l1d.line as u64;
        let laddr = addr & !(line - 1);
        let (l1, l1_lat) = if icache {
            (&mut self.l1i, self.cfg.l1i.latency)
        } else {
            (&mut self.l1d, self.cfg.l1d.latency)
        };
        if l1.lookup(laddr).is_some() {
            l1.hits += 1;
            return Some(l1_lat);
        }
        l1.misses += 1;
        let taint_on = self.l2.taint_on();
        let l1_name = if icache { T_L1I } else { T_L1D };
        // L2 lookup.
        let mut lat = l1_lat + self.cfg.l2.latency;
        let mut buf = vec![0u8; line as usize];
        // Shadow bytes travelling with `buf` into the L1 (marvel-taint).
        let mut shadow_in: Vec<u8> = Vec::new();
        if let Some(way) = self.l2.lookup(laddr) {
            self.l2.hits += 1;
            let bytes = self.l2.line_bytes(laddr, way, 0, line as usize);
            buf.copy_from_slice(bytes);
            if taint_on {
                shadow_in = self.l2.taint_line(laddr, way).map(|s| s.to_vec()).unwrap_or_default();
            }
        } else {
            self.l2.misses += 1;
            lat += self.cfg.mem_latency;
            if !bus.read_line(laddr, &mut buf) {
                return None;
            }
            let evict_shadow = if taint_on { self.l2.taint_prepare_fill(laddr) } else { None };
            if let Some((eaddr, edata)) = self.l2.fill(laddr, &buf) {
                let _ = bus.write_line(eaddr, &edata);
                if let Some(es) = &evict_shadow {
                    bus.taint_write_line(eaddr, es);
                    if es.iter().any(|&b| b != 0) {
                        self.taint_hop(T_L2, T_RAM);
                    }
                }
            }
            if taint_on {
                shadow_in = vec![0u8; line as usize];
                bus.taint_read_line(laddr, &mut shadow_in);
                if shadow_in.iter().any(|&b| b != 0) {
                    self.taint_hop(T_RAM, T_L2);
                }
                if let Some(way) = self.l2.probe(laddr) {
                    self.l2.set_taint_line(laddr, way, &shadow_in);
                    // Re-read so L2 stuck-at taint rides along into L1.
                    if let Some(s) = self.l2.taint_line(laddr, way) {
                        shadow_in = s.to_vec();
                    }
                }
            }
        }
        let evict1_shadow = if taint_on {
            let l1 = if icache { &self.l1i } else { &self.l1d };
            l1.taint_prepare_fill(laddr)
        } else {
            None
        };
        let l1 = if icache { &mut self.l1i } else { &mut self.l1d };
        if let Some((eaddr, edata)) = l1.fill(laddr, &buf) {
            // Write back dirty L1 victim into L2 (allocate on writeback).
            if let Some(way) = self.l2.lookup(eaddr) {
                let line_sz = edata.len();
                for (i, chunk) in edata.chunks(8).enumerate() {
                    let mut v = [0u8; 8];
                    v[..chunk.len()].copy_from_slice(chunk);
                    self.l2.write(eaddr + (i * 8) as u64, chunk.len(), u64::from_le_bytes(v), way);
                }
                let _ = line_sz;
                if let Some(es) = &evict1_shadow {
                    for (i, chunk) in es.chunks(8).enumerate() {
                        let mut v = [0u8; 8];
                        v[..chunk.len()].copy_from_slice(chunk);
                        self.l2.taint_write(
                            eaddr + (i * 8) as u64,
                            chunk.len(),
                            u64::from_le_bytes(v),
                            way,
                        );
                    }
                    if es.iter().any(|&b| b != 0) {
                        self.taint_hop(l1_name, T_L2);
                    }
                }
            } else {
                let evict2_shadow = if taint_on { self.l2.taint_prepare_fill(eaddr) } else { None };
                if let Some((e2, d2)) = self.l2.fill(eaddr, &edata) {
                    let _ = bus.write_line(e2, &d2);
                    if let Some(es2) = &evict2_shadow {
                        bus.taint_write_line(e2, es2);
                        if es2.iter().any(|&b| b != 0) {
                            self.taint_hop(T_L2, T_RAM);
                        }
                    }
                }
                if taint_on {
                    if let Some(way) = self.l2.probe(eaddr) {
                        let zeros;
                        let es: &[u8] = match &evict1_shadow {
                            Some(es) => es,
                            None => {
                                zeros = vec![0u8; line as usize];
                                &zeros
                            }
                        };
                        self.l2.set_taint_line(eaddr, way, es);
                    }
                    if evict1_shadow.as_ref().is_some_and(|es| es.iter().any(|&b| b != 0)) {
                        self.taint_hop(l1_name, T_L2);
                    }
                }
            }
        }
        if taint_on {
            let l1 = if icache { &self.l1i } else { &self.l1d };
            if let Some(way) = l1.probe(laddr) {
                let l1 = if icache { &mut self.l1i } else { &mut self.l1d };
                l1.set_taint_line(laddr, way, &shadow_in);
                if shadow_in.iter().any(|&b| b != 0) {
                    self.taint_hop(T_L2, l1_name);
                }
            }
        }
        Some(lat)
    }

    fn taint_hop(&mut self, from: &'static str, to: &'static str) {
        if let Some(tp) = self.taint.as_deref_mut() {
            tp.tracer.hop(self.cycle, from, to);
        }
    }

    /// Shadow counterpart of [`data_read`](Self::data_read): gather the
    /// taint mask of `size` resident bytes. Purely observational (uses
    /// `probe`, never touches replacement or fault state).
    fn data_read_taint(&self, addr: u64, size: u8) -> u64 {
        if !self.l1d.taint_on() {
            return 0;
        }
        let line = self.cfg.l1d.line as u64;
        let end = addr + size as u64;
        let mut out: u64 = 0;
        let mut shift = 0;
        let mut a = addr;
        while a < end {
            let seg_end = ((a & !(line - 1)) + line).min(end);
            let n = (seg_end - a) as usize;
            if let Some(way) = self.l1d.probe(a & !(line - 1)) {
                out |= self.l1d.taint_read(a, n, way) << shift;
            }
            shift += 8 * n;
            a = seg_end;
        }
        out
    }

    /// Shadow counterpart of [`data_write`](Self::data_write) (lines are
    /// resident after the data write; a rare cross-line eviction between
    /// the two passes loses taint conservatively).
    fn data_write_taint(&mut self, addr: u64, size: u8, mask: u64) {
        if !self.l1d.taint_on() {
            return;
        }
        let line = self.cfg.l1d.line as u64;
        let end = addr + size as u64;
        let mut a = addr;
        let mut m = mask;
        while a < end {
            let seg_end = ((a & !(line - 1)) + line).min(end);
            let n = (seg_end - a) as usize;
            if let Some(way) = self.l1d.probe(a & !(line - 1)) {
                self.l1d.taint_write(a, n, m, way);
            }
            m = if n < 8 { m >> (8 * n) } else { 0 };
            a = seg_end;
        }
    }

    /// Read `size` bytes from the (resident) L1D, splitting across lines
    /// for misaligned x86 accesses.
    fn data_read(&mut self, bus: &mut dyn Bus, addr: u64, size: u8) -> Option<(u64, u32)> {
        let line = self.cfg.l1d.line as u64;
        let mut lat = 0;
        let end = addr + size as u64;
        let mut out: u64 = 0;
        let mut shift = 0;
        let mut a = addr;
        while a < end {
            let seg_end = ((a & !(line - 1)) + line).min(end);
            let n = (seg_end - a) as usize;
            lat = lat.max(self.ensure_line(bus, a, false)?);
            let way = self.l1d.lookup(a & !(line - 1))?;
            let v = self.l1d.read(a, n, way);
            out |= v << shift;
            shift += 8 * n;
            a = seg_end;
        }
        Some((out, lat))
    }

    fn data_write(&mut self, bus: &mut dyn Bus, addr: u64, size: u8, val: u64) -> Option<u32> {
        let line = self.cfg.l1d.line as u64;
        let mut lat = 0;
        let end = addr + size as u64;
        let mut a = addr;
        let mut v = val;
        while a < end {
            let seg_end = ((a & !(line - 1)) + line).min(end);
            let n = (seg_end - a) as usize;
            lat = lat.max(self.ensure_line(bus, a, false)?);
            let way = self.l1d.lookup(a & !(line - 1))?;
            self.l1d.write(a, n, v, way);
            v = if n < 8 { v >> (8 * n) } else { 0 };
            a = seg_end;
        }
        Some(lat)
    }

    // ------------------------------------------------------------------
    // issue/execute
    // ------------------------------------------------------------------

    fn operand(&mut self, p: u16) -> u64 {
        if p == PNONE {
            0
        } else {
            if let Some(le) = self.lanes.as_deref_mut() {
                le.note_reg_read(false, p);
            }
            self.prf.read(p)
        }
    }

    fn operand_taint(&self, p: u16) -> u64 {
        if p == PNONE {
            0
        } else {
            self.prf.taint_of(p)
        }
    }

    fn issue(&mut self, bus: &mut dyn Bus) {
        let mut alu_left = self.cfg.n_alu;
        let mut mem_left = self.cfg.n_mem_ports;

        // Deferred load accesses first (they own the L1D ports this cycle).
        let due: Vec<(u64, u64)> = {
            let now = self.cycle;
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for &(at, seq) in &self.pending_loads {
                if at <= now {
                    due.push((at, seq));
                } else {
                    keep.push((at, seq));
                }
            }
            self.pending_loads = keep;
            due
        };
        for (_, seq) in due {
            if mem_left == 0 {
                self.pending_loads.push((self.cycle + 1, seq));
                continue;
            }
            if self.finish_load_access(bus, seq) {
                mem_left -= 1;
            } else {
                self.pending_loads.push((self.cycle + REQUEST_DELAY, seq));
            }
        }
        let mut issued = 0usize;
        let mut i = 0;
        // IQ is kept in ascending seq order (oldest first).
        while i < self.iq.len() && issued < self.cfg.issue_width {
            let seq = self.iq[i];
            let Some(idx) = self.rob_index_of(seq) else {
                self.iq.remove(i);
                continue;
            };
            let ent = self.rob[idx].clone();
            let ready = ent.psrc.iter().all(|&p| p == PNONE || self.prf.is_ready(p));
            if !ready {
                i += 1;
                continue;
            }
            let is_mem = ent.uop.op.is_load() || ent.uop.op.is_store();
            let needs_muldiv = matches!(ent.uop.op, Op::Alu(o) | Op::AluImm(o) if o.needs_muldiv_unit());
            if is_mem {
                // Address generation borrows an ALU; the L1D ports are
                // consumed by the deferred accesses above.
                if alu_left == 0 {
                    i += 1;
                    continue;
                }
            } else if needs_muldiv {
                if self.muldiv_free_at > self.cycle {
                    i += 1;
                    continue;
                }
            } else if alu_left == 0 {
                i += 1;
                continue;
            }

            let fired = if is_mem {
                let ok = self.issue_mem(bus, idx);
                if ok {
                    alu_left -= 1;
                }
                ok
            } else {
                if needs_muldiv {
                    let lat = match ent.uop.op {
                        Op::Alu(o) | Op::AluImm(o) => o.latency(),
                        _ => 1,
                    };
                    self.muldiv_free_at = self.cycle + lat as u64;
                } else {
                    alu_left -= 1;
                }
                self.issue_alu(idx);
                true
            };
            if fired {
                self.iq.remove(i);
                issued += 1;
            } else {
                i += 1;
            }
        }
    }

    fn issue_alu(&mut self, idx: usize) {
        let ent = self.rob[idx].clone();
        let a = self.operand(ent.psrc[0]);
        let b = self.operand(ent.psrc[1]);
        let (result, next, taken, trap, lat) = self.exec_alu(&ent, a, b);
        if self.lanes.is_some() {
            self.lane_issue_alu(&ent, a, b, result, trap);
        }
        let taint = if self.taint.is_some() {
            let ta = self.operand_taint(ent.psrc[0]);
            let tb = self.operand_taint(ent.psrc[1]);
            let t = alu_result_taint(&ent.uop, ta, tb, b);
            if (ta | tb) != 0 {
                self.taint_hop(T_PRF, T_ROB);
            }
            t
        } else {
            0
        };
        let e = &mut self.rob[idx];
        e.state = EState::Executing;
        e.actual_next = next;
        e.taken = taken;
        e.trap = e.trap.or(trap);
        let seq = e.seq;
        self.events.push(Event { at: self.cycle + lat as u64, seq, result, from_lq: QNONE, taint });
        if let Some(p) = self.pipe.as_deref_mut() {
            p.issue(seq, self.cycle);
        }
    }

    /// Lane overlay for [`issue_alu`](Self::issue_alu): propagate operand
    /// diffs into a result diff attached to the execute event, or fork
    /// lanes whose divergence reaches control flow or a trap decision.
    fn lane_issue_alu(&mut self, ent: &RobEntry, a: u64, b: u64, golden: u64, trap: Option<Trap>) {
        let le = self.lanes.as_deref_mut().unwrap();
        let src = |p: u16| if p == PNONE { None } else { Some(p) };
        let (da, dam) = le.operand_diffs(false, src(ent.psrc[0]));
        let (db, dbm) = le.operand_diffs(false, src(ent.psrc[1]));
        if (dam | dbm) & le.live == 0 {
            return;
        }
        match ent.uop.op {
            Op::Alu(op) | Op::AluImm(op) => {
                if trap.is_some() {
                    // Golden divided by zero here: an operand diff could
                    // turn the trap into a value (or vice versa) — the
                    // data-flow overlay cannot express that.
                    le.fork(dam | dbm);
                    return;
                }
                let (diff, nz) = if matches!(ent.uop.op, Op::Alu(_)) {
                    le.alu(op, a, b, golden, &da, dam, &db, dbm)
                } else {
                    le.alu(op, a, ent.uop.imm as u64, golden, &da, dam, &[0; 64], 0)
                };
                le.push_event(ent.seq, diff, nz);
            }
            Op::MovK(sh) => {
                let keep = !(0xFFFFu64 << sh);
                let mut diff = [0u64; 64];
                let mut nz = 0u64;
                let mut m = dam & le.live;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    diff[l] = da[l] & keep;
                    if diff[l] != 0 {
                        nz |= 1 << l;
                    }
                }
                le.push_event(ent.seq, diff, nz);
            }
            // Result and next-PC derive from the PC alone: no register
            // diff can flow in.
            Op::LoadImm | Op::Auipc | Op::LinkAddr | Op::Jal => {}
            // Any diff on the target register moves the jump target.
            Op::Jalr => le.fork(dam),
            Op::Branch(c) => {
                // Fork exactly the lanes whose branch outcome flips; a
                // diff that leaves the decision unchanged never escapes
                // (branches produce no result).
                let golden_taken = c.eval(a, b);
                let mut forkm = 0u64;
                let mut m = (dam | dbm) & le.live;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if c.eval(a ^ da[l], b ^ db[l]) != golden_taken {
                        forkm |= 1 << l;
                    }
                }
                le.fork(forkm);
            }
            // Nothing else reaches issue_alu with register operands.
            _ => {}
        }
    }

    fn exec_alu(&mut self, ent: &RobEntry, a: u64, b: u64) -> (u64, u64, bool, Option<Trap>, u32) {
        let u = &ent.uop;
        let fallthrough = ent.pc.wrapping_add(ent.macro_len as u64);
        match u.op {
            Op::Alu(op) => match op.eval(a, b, self.isa) {
                Some(v) => (v, fallthrough, false, None, op.latency()),
                None => (0, fallthrough, false, Some(Trap::DivideByZero { pc: ent.pc }), 1),
            },
            Op::AluImm(op) => match op.eval(a, u.imm as u64, self.isa) {
                Some(v) => (v, fallthrough, false, None, op.latency()),
                None => (0, fallthrough, false, Some(Trap::DivideByZero { pc: ent.pc }), 1),
            },
            Op::LoadImm => (u.imm as u64, fallthrough, false, None, 1),
            Op::MovK(sh) => {
                let mask = 0xFFFFu64 << sh;
                ((a & !mask) | (((u.imm as u64) & 0xFFFF) << sh), fallthrough, false, None, 1)
            }
            Op::Auipc => (ent.pc.wrapping_add(u.imm as u64), fallthrough, false, None, 1),
            Op::LinkAddr => (fallthrough, fallthrough, false, None, 1),
            Op::Jal => (fallthrough, ent.pc.wrapping_add(u.imm as u64), true, None, 1),
            Op::Jalr => (fallthrough, a.wrapping_add(u.imm as u64), true, None, 1),
            Op::Branch(c) => {
                let taken = c.eval(a, b);
                let next = if taken { ent.pc.wrapping_add(u.imm as u64) } else { fallthrough };
                (0, next, taken, None, 1)
            }
            _ => (0, fallthrough, false, None, 1),
        }
    }

    /// Try to issue a memory micro-op; returns `false` to retry later.
    fn issue_mem(&mut self, bus: &mut dyn Bus, idx: usize) -> bool {
        let ent = self.rob[idx].clone();
        let base = self.operand(ent.psrc[0]);
        let index = self.operand(ent.psrc[1]);
        let addr = if ent.uop.reg_offset {
            base.wrapping_add(index)
        } else {
            base.wrapping_add(ent.uop.imm as u64)
        };
        // Tainted base/index bits can move the effective address anywhere
        // above the lowest tainted bit: conservative arithmetic spread.
        let addr_taint = if self.taint.is_some() {
            let t = self.operand_taint(ent.psrc[0])
                | if ent.uop.reg_offset { self.operand_taint(ent.psrc[1]) } else { 0 };
            alu_taint(TaintAluKind::Arith, t, 0, 0) | if ent.ctl_taint { !0 } else { 0 }
        } else {
            0
        };
        if let Some(le) = self.lanes.as_deref_mut() {
            // A diff feeding the effective address moves the access: the
            // overlay cannot follow a lane to a different location.
            let mut m = if ent.psrc[0] == PNONE { 0 } else { le.reg_mask(false, ent.psrc[0]) };
            if ent.uop.reg_offset && ent.psrc[1] != PNONE {
                m |= le.reg_mask(false, ent.psrc[1]);
            }
            le.fork(m);
        }

        let (w, is_load) = match ent.uop.op {
            Op::Load { w, .. } => (w, true),
            Op::Store { w } => (w, false),
            _ => unreachable!("issue_mem on non-memory uop"),
        };
        let size = w.bytes() as u8;
        let seq = ent.seq;

        // Alignment / mapping checks produce precise traps.
        let misaligned = addr % size as u64 != 0;
        let device = bus.is_device(addr);
        let mapped = device || (bus.is_cacheable(addr) && bus.is_cacheable(addr + size as u64 - 1));
        let mut trap = None;
        if misaligned && self.isa.traps_on_misaligned() {
            trap = Some(Trap::Misaligned { pc: ent.pc, addr });
        } else if !mapped {
            trap = Some(Trap::MemFault { pc: ent.pc, addr });
        }
        if let Some(t) = trap {
            let e = &mut self.rob[idx];
            e.trap = Some(t);
            e.state = EState::Done;
            e.mem_addr = addr;
            if is_load && e.lq != QNONE {
                let lqe = &mut self.lq.entries[e.lq as usize];
                lqe.addr = addr;
                lqe.addr_ready = true;
                lqe.size = size;
                lqe.done = true;
            }
            if !is_load && e.sq != QNONE {
                let sqe = &mut self.sq.entries[e.sq as usize];
                sqe.addr = addr;
                sqe.addr_ready = true;
                sqe.size = size;
                sqe.data_ready = true;
            }
            return true;
        }

        if is_load {
            // AGU phase: buffer the request in the LQ (LSQ request
            // buffering). The cache access happens REQUEST_DELAY cycles
            // later *through the buffered — injectable — bits*, so the
            // request stays architecturally live in the queue, as in
            // gem5's LSQ.
            // Loads issue speculatively past older stores with unknown
            // addresses and rely on store-snoop replay, unless the
            // memory-dependence predictor has seen this PC violate.
            if self.mdp[(ent.pc >> 2) as usize & 1023] && self.sq.older_unknown_addr(seq) {
                return false;
            }
            if ent.lq != QNONE {
                let lqe = &mut self.lq.entries[ent.lq as usize];
                lqe.addr = addr;
                lqe.addr_ready = true;
                lqe.size = size;
                lqe.addr_taint |= addr_taint;
            }
            if addr_taint != 0 {
                self.taint_hop(T_PRF, T_LQ);
            }
            {
                let e = &mut self.rob[idx];
                e.state = EState::Executing;
                e.mem_addr = addr;
            }
            self.pending_loads.push((self.cycle + REQUEST_DELAY, seq));
            if let Some(p) = self.pipe.as_deref_mut() {
                p.issue(seq, self.cycle);
            }
            true
        } else {
            // Store: snoop the LQ for younger loads that already executed
            // to an overlapping address — a memory-ordering violation;
            // they must replay (gem5 O3's LSQ violation check).
            let lo = addr;
            let hi = addr + size as u64;
            let violators: Vec<u64> = self
                .lq
                .entries
                .iter()
                .filter(|l| {
                    l.valid && l.seq > seq && l.addr_ready && l.done && {
                        let llo = l.addr;
                        let lhi = l.addr + l.size.clamp(1, 8) as u64;
                        llo < hi && lo < lhi
                    }
                })
                .map(|l| l.seq)
                .collect();
            for vseq in violators {
                if let Some(vidx) = self.rob_index_of(vseq) {
                    self.rob[vidx].replay = true;
                }
            }
            // Capture address and data into the SQ.
            let data = self.operand(ent.psrc[2]);
            if let Some(le) = self.lanes.as_deref_mut() {
                // Diverged store data would land in golden memory.
                if ent.psrc[2] != PNONE {
                    let m = le.reg_mask(false, ent.psrc[2]);
                    le.fork(m);
                }
            }
            let data_taint = if self.taint.is_some() {
                self.operand_taint(ent.psrc[2]) | if ent.ctl_taint { !0 } else { 0 }
            } else {
                0
            };
            let e = &mut self.rob[idx];
            e.mem_addr = addr;
            e.state = EState::Done;
            e.result = data;
            e.result_taint |= data_taint;
            if e.sq != QNONE {
                let sqe = &mut self.sq.entries[e.sq as usize];
                sqe.addr = addr;
                sqe.addr_ready = true;
                sqe.size = size;
                sqe.data = data;
                sqe.data_ready = true;
                sqe.device = device;
                sqe.addr_taint |= addr_taint;
                sqe.data_taint |= data_taint;
            }
            if addr_taint != 0 || data_taint != 0 {
                self.taint_hop(T_PRF, T_SQ);
            }
            if let Some(p) = self.pipe.as_deref_mut() {
                p.issue(seq, self.cycle);
            }
            true
        }
    }

    /// Perform the deferred cache access of a load through its buffered
    /// LQ request bits. Returns `false` when the access must be retried
    /// (store-forwarding conflict not yet drained).
    fn finish_load_access(&mut self, bus: &mut dyn Bus, seq: u64) -> bool {
        let Some(idx) = self.rob_index_of(seq) else { return true }; // squashed
        let ent = self.rob[idx].clone();
        if ent.state != EState::Executing {
            return true;
        }
        let (eff_addr, eff_size) = if ent.lq != QNONE {
            let lqe = self.lq.entries[ent.lq as usize];
            if !lqe.valid || lqe.seq != seq {
                return true; // entry lost to a fault: writeback never comes
            }
            (lqe.addr, lqe.size.clamp(1, 8))
        } else {
            (ent.mem_addr, 8)
        };
        // Re-validate: the buffered request may have been corrupted.
        if eff_addr % eff_size.max(1) as u64 != 0 && self.isa.traps_on_misaligned() {
            let e = &mut self.rob[idx];
            e.trap = Some(Trap::Misaligned { pc: ent.pc, addr: eff_addr });
            e.state = EState::Done;
            return true;
        }
        let device = bus.is_device(eff_addr);
        let (raw, raw_taint, lat) = match self.sq.forwarding_candidate(seq, eff_addr, eff_size) {
            Some((sidx, covers)) => {
                let se = self.sq.entries[sidx];
                if !covers || !se.data_ready {
                    return false; // partial overlap: wait for drain
                }
                let shift = (eff_addr - se.addr) * 8;
                let t = (se.data_taint >> shift) | if se.addr_taint != 0 { !0 } else { 0 };
                if t != 0 {
                    self.taint_hop(T_SQ, T_LQ);
                }
                (se.data >> shift, t, 1u32)
            }
            None => {
                if device {
                    match bus.device_read(eff_addr, eff_size) {
                        Some(v) => (v, 0, 10),
                        None => {
                            let e = &mut self.rob[idx];
                            e.trap = Some(Trap::MemFault { pc: ent.pc, addr: eff_addr });
                            e.state = EState::Done;
                            return true;
                        }
                    }
                } else if !bus.is_cacheable(eff_addr)
                    || !bus.is_cacheable(eff_addr + eff_size as u64 - 1)
                {
                    let e = &mut self.rob[idx];
                    e.trap = Some(Trap::MemFault { pc: ent.pc, addr: eff_addr });
                    e.state = EState::Done;
                    return true;
                } else {
                    match self.data_read(bus, eff_addr, eff_size) {
                        Some((v, lat)) => {
                            let t = self.data_read_taint(eff_addr, eff_size);
                            if t != 0 {
                                self.taint_hop(T_L1D, T_LQ);
                            }
                            (v, t, lat)
                        }
                        None => {
                            let e = &mut self.rob[idx];
                            e.trap = Some(Trap::MemFault { pc: ent.pc, addr: eff_addr });
                            e.state = EState::Done;
                            return true;
                        }
                    }
                }
            }
        };
        let value = match ent.uop.op {
            Op::Load { w, signed } => {
                let mut raw_masked = raw;
                if eff_size as u64 != w.bytes() {
                    let bits = (eff_size as u32 * 8).min(63);
                    raw_masked &= (1u64 << bits) - 1;
                }
                w.extend(raw_masked, signed)
            }
            _ => raw,
        };
        // marvel-taint: mask the shadow like the value, then account for
        // sign-extension (a tainted sign bit taints every upper bit) and
        // a tainted request address (any byte could have been fetched).
        let value_taint = if self.taint.is_some() {
            let mut t = raw_taint;
            if let Op::Load { signed, .. } = ent.uop.op {
                if eff_size < 8 {
                    let bits = eff_size as u32 * 8;
                    t &= (1u64 << bits) - 1;
                    if signed && t & (1u64 << (bits - 1)) != 0 {
                        t |= !0u64 << (bits - 1);
                    }
                }
            }
            let addr_t = if ent.lq != QNONE { self.lq.entries[ent.lq as usize].addr_taint } else { 0 };
            t | if addr_t != 0 || ent.ctl_taint { !0 } else { 0 }
        } else {
            0
        };
        let e = &mut self.rob[idx];
        e.mem_addr = eff_addr;
        let from_lq = e.lq;
        if e.lq != QNONE {
            let lqe = &mut self.lq.entries[e.lq as usize];
            lqe.done = true;
            lqe.data = value;
            // The access overwrites the buffered data field, taint included
            // (an earlier flip into it is masked by the fresh value).
            lqe.data_taint = value_taint;
        }
        self.events.push(Event {
            at: self.cycle + lat as u64,
            seq,
            result: value,
            from_lq,
            taint: value_taint,
        });
        true
    }

    // ------------------------------------------------------------------
    // rename / dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        let spec = self.isa.reg_spec();
        let zero = spec.zero;
        let mut width = self.cfg.issue_width;
        while width > 0 && !self.fq.is_empty() {
            if self.rob.len() >= self.cfg.rob_entries || self.iq.len() >= self.cfg.iq_entries {
                return;
            }
            let fu = self.fq[0];

            // Resource checks before consuming.
            let is_load = fu.uop.op.is_load();
            let is_store = fu.uop.op.is_store();
            let needs_dst = fu.uop.rd != REG_NONE && Some(fu.uop.rd) != zero && fu.trap.is_none();
            if needs_dst && self.freelist.is_empty() {
                return;
            }
            let lq_idx = if is_load && fu.trap.is_none() {
                match self.lq.alloc(self.next_seq) {
                    Some(i) => i as u16,
                    None => return,
                }
            } else {
                QNONE
            };
            let sq_idx = if is_store && fu.trap.is_none() {
                match self.sq.alloc(self.next_seq) {
                    Some(i) => i as u16,
                    None => {
                        if lq_idx != QNONE {
                            self.lq.free(lq_idx as usize);
                        }
                        return;
                    }
                }
            } else {
                QNONE
            };

            self.fq.remove(0);
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut psrc = [PNONE; 3];
            for (k, rs) in [fu.uop.rs1, fu.uop.rs2, fu.uop.rs3].into_iter().enumerate() {
                if rs != REG_NONE {
                    psrc[k] = if Some(rs) == zero { 0 } else { self.rename.get(rs) };
                }
            }
            let (pdst, prev_pdst) = if needs_dst {
                let p = self.freelist.alloc().expect("checked non-empty");
                let prev = self.rename.get(fu.uop.rd);
                self.rename.set(fu.uop.rd, p);
                self.prf.set_ready(p, false);
                (p, prev)
            } else {
                (PNONE, PNONE)
            };

            // marvel-taint: a uop decoded from tainted bytes, or one whose
            // source mapping was corrupted, is suspect end to end.
            let mut ctl_taint = fu.tainted;
            let cyc = self.cycle;
            if let Some(tp) = self.taint.as_deref_mut() {
                if fu.tainted {
                    tp.tracer.hop(cyc, T_DECODE, T_ROB);
                }
                for rs in [fu.uop.rs1, fu.uop.rs2, fu.uop.rs3] {
                    if rs != REG_NONE
                        && Some(rs) != zero
                        && tp.rename.get(rs as usize).copied().unwrap_or(false)
                    {
                        ctl_taint = true;
                        tp.tracer.hop(cyc, T_RENAME, T_ROB);
                    }
                }
                if needs_dst {
                    // A fresh mapping overwrites (masks) a corrupted one.
                    if let Some(t) = tp.rename.get_mut(fu.uop.rd as usize) {
                        *t = false;
                    }
                }
            }

            let needs_exec = fu.trap.is_none()
                && !matches!(fu.uop.op, Op::Halt | Op::Checkpoint | Op::SwitchCpu | Op::Nop | Op::Iret);

            let ent = RobEntry {
                seq,
                uop: fu.uop,
                pc: fu.pc,
                macro_len: fu.macro_len,
                first_of_macro: fu.first_of_macro,
                last_of_macro: fu.last_of_macro,
                predicted_next: fu.predicted_next,
                actual_next: fu.pc.wrapping_add(fu.macro_len as u64),
                taken: false,
                pdst,
                prev_pdst,
                psrc,
                state: if needs_exec { EState::Waiting } else { EState::Done },
                trap: fu.trap,
                lq: lq_idx,
                sq: sq_idx,
                result: 0,
                mem_addr: 0,
                replay: false,
                result_taint: 0,
                ctl_taint,
            };
            self.rob.push_back(ent);
            if let Some(p) = self.pipe.as_deref_mut() {
                p.dispatch(seq, fu.pc, format!("{:?}", fu.uop.op), fu.fetched_at, cyc);
                if !needs_exec {
                    // Markers/traps never issue: close their stages now.
                    p.issue(seq, cyc);
                    p.complete(seq, cyc);
                }
            }
            if needs_exec {
                self.iq.push(seq);
            }
            width -= 1;
        }
    }

    // ------------------------------------------------------------------
    // fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self, bus: &mut dyn Bus) {
        if self.fetch_halted || self.cycle < self.fetch_stall_until {
            return;
        }
        let mut budget = self.cfg.fetch_width;
        while budget > 0 {
            if self.fq.len() + 4 > self.cfg.fetch_queue {
                return;
            }
            let pc = self.fetch_pc;
            // Gather up to max_inst_len bytes across at most two lines.
            let max_len = self.isa.max_inst_len();
            let mut window = [0u8; 16];
            let line = self.cfg.l1i.line as u64;
            let off = (pc % line) as usize;
            let avail0 = (line as usize - off).min(max_len);

            if !bus.is_cacheable(pc) {
                self.push_trap_uop(pc, Trap::FetchFault { pc });
                return;
            }
            match self.ensure_line(bus, pc, true) {
                Some(lat) if lat > self.cfg.l1i.latency => {
                    self.fetch_stall_until = self.cycle + lat as u64;
                    return;
                }
                Some(_) => {}
                None => {
                    self.push_trap_uop(pc, Trap::FetchFault { pc });
                    return;
                }
            }
            let mut win_tainted = false;
            {
                let way = self.l1i.lookup(pc & !(line - 1)).expect("resident");
                let bytes = self.l1i.line_bytes(pc & !(line - 1), way, off, avail0);
                window[..avail0].copy_from_slice(&bytes[off..off + avail0]);
                win_tainted |= self.l1i.taint_range_any(pc & !(line - 1), way, off, avail0);
            }
            let mut avail = avail0;
            let mut decoded = self.isa.decode(&window[..avail]);
            if matches!(decoded, Err(marvel_isa::trap::DecodeError::Truncated)) && avail < max_len {
                // Need bytes from the next line.
                let npc = (pc & !(line - 1)) + line;
                if !bus.is_cacheable(npc) {
                    self.push_trap_uop(pc, Trap::FetchFault { pc: npc });
                    return;
                }
                match self.ensure_line(bus, npc, true) {
                    Some(lat) if lat > self.cfg.l1i.latency => {
                        self.fetch_stall_until = self.cycle + lat as u64;
                        return;
                    }
                    Some(_) => {}
                    None => {
                        self.push_trap_uop(pc, Trap::FetchFault { pc: npc });
                        return;
                    }
                }
                let need = max_len - avail;
                {
                    let way = self.l1i.lookup(npc).expect("resident");
                    let bytes = self.l1i.line_bytes(npc, way, 0, need);
                    window[avail..avail + need].copy_from_slice(&bytes[..need]);
                    win_tainted |= self.l1i.taint_range_any(npc, way, 0, need);
                }
                avail += need;
                decoded = self.isa.decode(&window[..avail]);
            }

            let d = match decoded {
                Ok(d) => d,
                Err(_) => {
                    self.push_trap_uop(pc, Trap::IllegalInstruction { pc });
                    return;
                }
            };

            // Predict the next fetch address.
            let len = d.len as u64;
            let fallthrough = pc.wrapping_add(len);
            let last = d.uops.as_slice().last().copied().unwrap_or(MicroOp::bare(Op::Nop));
            let predicted_next = match last.op {
                Op::Jal => {
                    if d.call {
                        self.bp.ras_push(fallthrough);
                    }
                    pc.wrapping_add(last.imm as u64)
                }
                Op::Jalr => {
                    if d.ret {
                        self.bp.ras_pop().unwrap_or(fallthrough)
                    } else {
                        if d.call {
                            self.bp.ras_push(fallthrough);
                        }
                        fallthrough
                    }
                }
                Op::Branch(_) => {
                    if self.bp.predict(pc) {
                        pc.wrapping_add(last.imm as u64)
                    } else {
                        fallthrough
                    }
                }
                _ => fallthrough,
            };

            if win_tainted {
                self.taint_hop(T_L1I, T_DECODE);
            }
            let n = d.uops.len();
            for (k, &u) in d.uops.as_slice().iter().enumerate() {
                self.fq.push(FetchedUop {
                    uop: u,
                    pc,
                    macro_len: d.len,
                    first_of_macro: k == 0,
                    last_of_macro: k == n - 1,
                    predicted_next: if k == n - 1 { predicted_next } else { fallthrough },
                    trap: None,
                    tainted: win_tainted,
                    fetched_at: self.cycle,
                });
            }
            budget = budget.saturating_sub(n);
            self.fetch_pc = predicted_next;
            // Stop fetching past a Halt marker.
            if matches!(last.op, Op::Halt) {
                self.fetch_halted = true;
                return;
            }
        }
    }

    fn push_trap_uop(&mut self, pc: u64, trap: Trap) {
        self.fq.push(FetchedUop {
            uop: MicroOp::bare(Op::Nop),
            pc,
            macro_len: 0,
            first_of_macro: true,
            last_of_macro: true,
            predicted_next: pc,
            trap: Some(trap),
            tainted: false,
            fetched_at: self.cycle,
        });
        self.fetch_halted = true;
    }

    // ------------------------------------------------------------------
    // commit-effect log (lockstep oracle) & architectural state transfer
    // ------------------------------------------------------------------

    fn log_effect(&mut self, ent: &RobEntry, trap: Option<Trap>) {
        if let Some(log) = self.commit_log.as_mut() {
            log.push(CommitEffect {
                pc: ent.pc,
                uop: ent.uop,
                macro_len: ent.macro_len,
                last_of_macro: ent.last_of_macro,
                rd: if ent.pdst != PNONE { Some(ent.uop.rd) } else { None },
                value: ent.result,
                next_pc: ent.actual_next,
                mem_addr: ent.mem_addr,
                trap,
            });
        }
    }

    /// Start logging every committed micro-op's architectural effects
    /// (drained by the SoC into the lockstep oracle).
    pub fn enable_commit_effects(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    pub fn commit_effects_enabled(&self) -> bool {
        self.commit_log.is_some()
    }

    /// Take the effects committed since the previous drain.
    pub fn drain_commit_effects(&mut self) -> Vec<CommitEffect> {
        self.commit_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The architectural PC. Only meaningful when the pipeline is empty
    /// (right after [`reset_to`](Self::reset_to) or a committed marker).
    pub fn arch_pc(&self) -> u64 {
        self.fetch_pc
    }

    /// Snapshot the architectural register file through the retirement
    /// rename map (observational: no fault monitoring side effects).
    pub fn arch_regs(&self) -> Vec<u64> {
        let n = self.isa.reg_spec().total_regs;
        (0..n).map(|a| self.prf.peek(self.retire.get(a))).collect()
    }

    /// Adopt an externally computed architectural state: reset the
    /// pipeline to `pc` and install `regs` as the committed register
    /// values. Used by the reference-model fast-forward to skip the
    /// cycle-level warmup. The zero register (where the ISA has one)
    /// keeps its hardwired phys-0 mapping.
    pub fn transplant_arch_state(&mut self, pc: u64, regs: &[u64]) {
        self.reset_to(pc);
        let spec = self.isa.reg_spec();
        let mut in_use: Vec<u16> = vec![0];
        for (a, &v) in regs.iter().enumerate().take(spec.total_regs as usize) {
            if Some(a as u8) == spec.zero {
                continue;
            }
            // Deterministic dense mapping: arch reg a → phys a+1.
            let p = (a + 1) as u16;
            self.prf.write(p, v);
            self.rename.set(a as u8, p);
            self.retire.set(a as u8, p);
            in_use.push(p);
        }
        self.freelist = FreeList::new(self.cfg.int_prf as u16, &in_use);
        self.prf.set_all_ready();
    }

    /// Replay a recorded `(line_addr, icache)` access trace through the
    /// cache hierarchy — ordered oldest-last-touch first, so recently
    /// used lines win the replacement race — then zero the hit/miss
    /// counters so the warmup itself is not counted.
    pub fn warm_caches(&mut self, bus: &mut dyn Bus, lines: &[(u64, bool)]) {
        for &(addr, icache) in lines {
            let _ = self.ensure_line(bus, addr, icache);
        }
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2] {
            c.hits = 0;
            c.misses = 0;
        }
    }

    // ------------------------------------------------------------------
    // ROB fault injection
    // ------------------------------------------------------------------

    /// Injectable ROB bit space: 64 result bits per entry slot.
    pub fn rob_bit_len(&self) -> u64 {
        self.cfg.rob_entries as u64 * 64
    }

    /// Arm a flip of a result bit in ROB slot `bit/64`; it fires when the
    /// next result lands in that slot (or corrupts a live result at once).
    pub fn rob_flip_bit(&mut self, bit: u64) -> FaultFate {
        let slot = bit / 64;
        let b = bit % 64;
        // If the slot currently holds a done entry, corrupt it in place.
        let cap = self.cfg.rob_entries as u64;
        for e in &mut self.rob {
            if e.seq % cap == slot && e.state == EState::Done {
                e.result ^= 1 << b;
                e.result_taint |= 1 << b;
                self.rob_armed = Some((bit, FaultFate::Read));
                return FaultFate::Pending;
            }
        }
        self.rob_flip = Some((slot, b));
        self.rob_armed = Some((bit, FaultFate::Pending));
        FaultFate::Pending
    }

    /// Fate of the armed ROB fault.
    pub fn rob_fate(&self) -> Option<FaultFate> {
        self.rob_armed.map(|(_, f)| f)
    }

    // ------------------------------------------------------------------
    // lane-packed campaign passes
    // ------------------------------------------------------------------

    /// Attach the lane overlay engine: the next run is a lane pass.
    pub fn lane_begin(&mut self) {
        self.lanes = Some(Box::new(LaneEngine::new(self.prf.len(), self.prf_fp.len(), self.isa)));
    }

    /// Tear the overlay down and drop every cache-side lane monitor.
    pub fn lane_end(&mut self) {
        self.lanes = None;
        self.l1i.lane_clear();
        self.l1d.lane_clear();
        self.l2.lane_clear();
    }

    /// The live overlay, for the pass driver's retirement arithmetic.
    pub fn lane_engine(&self) -> Option<&LaneEngine> {
        self.lanes.as_deref()
    }

    /// Arm lane `lane` on a PRF bit (`fp` selects the FP file): the diff
    /// overlay and fate monitor are seeded; golden values stay untouched.
    /// Mirrors [`PhysRegFile::flip_bit`]'s initial `Pending` fate.
    pub fn lane_arm_prf(&mut self, lane: u8, fp: bool, bit: u64) -> FaultFate {
        let le = self.lanes.as_deref_mut().expect("lane_begin before lane_arm_prf");
        le.arm_prf(lane, fp, (bit / 64) as u16, (bit % 64) as u8);
        FaultFate::Pending
    }

    /// Arm lane `lane` on a ROB result bit, with the same in-place /
    /// deferred split as [`rob_flip_bit`](Self::rob_flip_bit): a `Done`
    /// entry in the slot is corrupted at once (fate `Read`), otherwise
    /// the flip fires at the next writeback into the slot.
    pub fn lane_arm_rob(&mut self, lane: u8, bit: u64) -> FaultFate {
        let slot = bit / 64;
        let b = (bit % 64) as u8;
        let cap = self.cfg.rob_entries as u64;
        let inplace =
            self.rob.iter().find(|e| e.seq % cap == slot && e.state == EState::Done).map(|e| e.seq);
        let le = self.lanes.as_deref_mut().expect("lane_begin before lane_arm_rob");
        match inplace {
            Some(seq) => le.arm_rob_inplace(lane, seq, b),
            None => le.arm_rob_deferred(lane, slot as u16, b),
        }
        FaultFate::Pending
    }

    /// Register a cache-armed lane with the overlay (the cache's own
    /// monitor was armed via [`Cache::lane_arm`], which returned `fate`).
    pub fn lane_note_cache_arm(&mut self, lane: u8, fate: FaultFate) {
        let le = self.lanes.as_deref_mut().expect("lane_begin before cache arming");
        le.arm_cache(lane);
        if fate != FaultFate::Pending {
            le.note_fate(lane, fate);
        }
    }

    /// Drain lane events from the overlay and every cache monitor.
    pub fn lane_drain_events(&mut self) -> Vec<LaneEvent> {
        let Some(le) = self.lanes.as_deref_mut() else { return Vec::new() };
        for c in [&mut self.l1i, &mut self.l1d, &mut self.l2] {
            for ev in c.drain_lane_events() {
                match ev {
                    CacheLaneEvent::Fork(l) => le.fork(1u64 << l),
                    CacheLaneEvent::Fate(l, f) => le.note_fate(l, f),
                }
            }
        }
        le.drain_events()
    }

    /// Access the speculative rename map (fault-injection target).
    pub fn rename_map_mut(&mut self) -> &mut RenameMap {
        &mut self.rename
    }

    pub fn rename_map(&self) -> &RenameMap {
        &self.rename
    }

    /// Export per-structure counters into a telemetry registry under
    /// `scope` (e.g. `cpu.l1d.miss`, `cpu.rob.occ_avg_x100`). Purely
    /// observational: reads stats, never touches simulation state.
    pub fn publish_metrics(&self, reg: &marvel_telemetry::Registry, scope: &marvel_telemetry::Scope) {
        if !reg.is_enabled() {
            return;
        }
        let s = &self.stats;
        reg.publish_scoped(scope, "cycles", s.cycles);
        reg.publish_scoped(scope, "committed_uops", s.committed_uops);
        reg.publish_scoped(scope, "committed_macros", s.committed_macros);
        reg.publish_scoped(scope, "loads", s.loads);
        reg.publish_scoped(scope, "stores", s.stores);
        reg.publish_scoped(scope, "branches", s.branches);
        reg.publish_scoped(scope, "mispredicts", s.mispredicts);
        reg.publish_scoped(scope, "flushes", s.flushes);
        reg.publish_scoped(scope, "replays", s.replays);
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            let sc = scope.child(name);
            reg.publish_scoped(&sc, "hit", c.hits);
            reg.publish_scoped(&sc, "miss", c.misses);
            reg.publish_scoped(&sc, "valid_lines", c.valid_lines());
        }
        // Time-averaged occupancies, scaled x100 to keep two decimals in
        // integer counters.
        let avg = |accum: u64| (accum * 100).checked_div(s.cycles).unwrap_or(0);
        reg.publish_scoped(&scope.child("rob"), "occ_avg_x100", avg(s.rob_occ_accum));
        reg.publish_scoped(&scope.child("iq"), "occ_avg_x100", avg(s.iq_occ_accum));
        reg.publish_scoped(&scope.child("lq"), "occ_avg_x100", avg(s.lq_occ_accum));
        reg.publish_scoped(&scope.child("sq"), "occ_avg_x100", avg(s.sq_occ_accum));
        let prf = scope.child("prf");
        reg.publish_scoped(&prf, "int_regs", self.prf.len() as u64);
        reg.publish_scoped(&prf, "fp_regs", self.prf_fp.len() as u64);
        reg.publish_scoped(&prf, "freelist_free", self.freelist.len() as u64);
        reg.publish_scoped(&prf, "freelist_free_avg_x100", avg(s.freelist_free_accum));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_isa::AluOp;

    #[test]
    fn op_tags_cover_classes() {
        assert_eq!(op_tag(Op::Alu(AluOp::Add)), 1);
        assert_eq!(op_tag(Op::Load { w: marvel_isa::MemWidth::D, signed: false }), 2);
        assert_eq!(op_tag(Op::Store { w: marvel_isa::MemWidth::B }), 3);
        assert_eq!(op_tag(Op::Jal), 4);
        assert_eq!(op_tag(Op::Halt), 5);
    }

    #[test]
    fn core_constructs_for_all_isas() {
        for isa in Isa::ALL {
            let c = Core::new(CoreConfig::table2(isa));
            assert_eq!(c.prf.len(), 128);
            assert_eq!(c.lq.entries.len(), 32);
            assert_eq!(c.rob_bit_len(), 128 * 64);
        }
    }
}
