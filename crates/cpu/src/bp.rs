//! Branch prediction: bimodal 2-bit counters plus a return-address stack.
//!
//! Direction prediction drives wrong-path fetch, one of the
//! microarchitectural masking mechanisms (faults consumed only by squashed
//! wrong-path instructions are benign).

/// Bimodal predictor + RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    ras: Vec<u64>,
    ras_max: usize,
    pub lookups: u64,
    pub mispredicts: u64,
}

impl BranchPredictor {
    pub fn new(entries: usize, ras_max: usize) -> Self {
        assert!(entries.is_power_of_two());
        BranchPredictor {
            counters: vec![2; entries], // weakly taken
            ras: Vec::new(),
            ras_max,
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predict the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        self.counters[self.idx(pc)] >= 2
    }

    /// Train with the resolved outcome.
    pub fn train(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        if mispredicted {
            self.mispredicts += 1;
        }
        let i = self.idx(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Push a return address (on a predicted call).
    pub fn ras_push(&mut self, addr: u64) {
        if self.ras.len() == self.ras_max {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pop the predicted return target.
    pub fn ras_pop(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Functional-state equality for the convergence exit: counters and the
    /// RAS steer future fetch, so both must match; the lookup/mispredict
    /// tallies are observational and excluded.
    pub fn converged_with(&self, pristine: &BranchPredictor) -> bool {
        self.counters == pristine.counters && self.ras == pristine.ras
    }

    /// Restore from `pristine`, reusing this predictor's allocations.
    /// Returns state bytes copied (zero-copy campaign reset accounting).
    pub fn reset_from(&mut self, pristine: &BranchPredictor) -> u64 {
        self.counters.clone_from(&pristine.counters);
        self.ras.clone_from(&pristine.ras);
        self.ras_max = pristine.ras_max;
        self.lookups = pristine.lookups;
        self.mispredicts = pristine.mispredicts;
        (self.counters.len() + self.ras.len() * 8 + 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_learn_direction() {
        let mut bp = BranchPredictor::new(16, 4);
        let pc = 0x4000_0040;
        for _ in 0..4 {
            bp.train(pc, false, false);
        }
        assert!(!bp.predict(pc));
        for _ in 0..4 {
            bp.train(pc, true, false);
        }
        assert!(bp.predict(pc));
    }

    #[test]
    fn ras_lifo_and_bounded() {
        let mut bp = BranchPredictor::new(16, 2);
        bp.ras_push(1);
        bp.ras_push(2);
        bp.ras_push(3); // evicts 1
        assert_eq!(bp.ras_pop(), Some(3));
        assert_eq!(bp.ras_pop(), Some(2));
        assert_eq!(bp.ras_pop(), None);
    }

    #[test]
    fn mispredict_counter() {
        let mut bp = BranchPredictor::new(16, 4);
        bp.train(0, true, true);
        bp.train(0, true, false);
        assert_eq!(bp.mispredicts, 1);
    }
}
