//! Write-back, write-allocate caches with tree-PLRU replacement and
//! bit-accurate line contents.
//!
//! Cache lines hold the **actual program bytes**, so a flipped bit in the
//! L1I data array really changes what the decoder sees, and a flipped bit
//! in the L1D really changes loaded values — the property the whole
//! fault-injection methodology rests on.

use crate::config::CacheConfig;
use crate::dirty::{DirtyMap, DirtyMarks};

/// Monitoring state for the single armed (injected) bit, used for the
/// paper's early-termination optimisation and fault-propagation reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultFate {
    /// Not yet read or overwritten.
    #[default]
    Pending,
    /// The faulty storage was read before being overwritten (the fault was
    /// activated; the run must complete to classify it).
    Read,
    /// The faulty storage was overwritten/refilled before any read: the
    /// fault is definitively masked.
    Overwritten,
    /// The fault targeted an invalid/unused entry: masked immediately.
    InvalidAtInjection,
}

impl FaultFate {
    /// True when the outcome is already known to be Masked.
    pub fn is_masked_early(self) -> bool {
        matches!(self, FaultFate::Overwritten | FaultFate::InvalidAtInjection)
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    data: Box<[u8]>,
}

#[derive(Debug, Clone, Copy)]
struct Armed {
    set: usize,
    way: usize,
    byte: usize,
    fate: FaultFate,
}

/// One lane-packed armed bit: like [`Armed`] but the data plane is NOT
/// mutated — the pass runs pure golden execution and this entry only
/// watches for the access that would make the scalar run diverge.
#[derive(Debug, Clone, Copy)]
struct LaneArmed {
    lane: u8,
    set: usize,
    way: usize,
    byte: usize,
    fate: FaultFate,
}

/// Events the lane monitor reports to the campaign pass driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLaneEvent {
    /// The armed byte was consumed while the flip was still live: a
    /// scalar run would have seen corrupt data here (read overlap), or
    /// would have written the flipped byte downstream (dirty eviction).
    /// The lane can no longer ride the golden pass and must fork.
    Fork(u8),
    /// Fate transition that keeps the lane packed (the flip died without
    /// ever being observed: clean overwrite or clean refill).
    Fate(u8, FaultFate),
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    /// Tree-PLRU state bits, one word per set (supports assoc ≤ 8).
    plru: Vec<u8>,
    /// Permanent stuck-at faults on data bits: (bit index, value).
    stuck: Vec<(u64, bool)>,
    armed: Option<Armed>,
    /// Lane-packed armed bits (campaign lane passes). Empty in scalar
    /// runs, so the hot-path hook is a single `is_empty` test.
    lane_armed: Vec<LaneArmed>,
    lane_events: Vec<CacheLaneEvent>,
    pub hits: u64,
    pub misses: u64,
    /// marvel-taint shadow plane: one shadow byte array per line
    /// (bit-for-bit with `data`). Empty = taint tracking off. Shadow
    /// accessors never touch PLRU, fate monitoring or hit counters, so
    /// enabling taint cannot perturb the simulation.
    shadow: Vec<Box<[u8]>>,
    /// Per-set dirty journal for the zero-copy campaign reset (`None` =
    /// tracking off). A set is marked whenever its lines or PLRU bits
    /// change; armed-fate and shadow updates are not journaled because
    /// `reset_from` restores them wholesale from the pristine checkpoint.
    journal: Option<Box<DirtyMap>>,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two() && cfg.line.is_power_of_two());
        assert!(cfg.assoc <= 8, "tree-PLRU model supports up to 8 ways");
        let lines = (0..sets * cfg.assoc)
            .map(|_| Line {
                tag: 0,
                valid: false,
                dirty: false,
                data: vec![0u8; cfg.line].into_boxed_slice(),
            })
            .collect();
        Cache {
            cfg,
            sets,
            lines,
            plru: vec![0; sets],
            stuck: Vec::new(),
            armed: None,
            lane_armed: Vec::new(),
            lane_events: Vec::new(),
            hits: 0,
            misses: 0,
            shadow: Vec::new(),
            journal: None,
        }
    }

    #[inline]
    fn mark_set(&mut self, set: usize) {
        if let Some(j) = &mut self.journal {
            j.mark(set);
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line as u64) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.line as u64 * self.sets as u64)
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.cfg.assoc + way
    }

    /// Look up `addr`; returns the way on a hit (and updates PLRU).
    pub fn lookup(&mut self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for way in 0..self.cfg.assoc {
            let l = &self.lines[self.idx(set, way)];
            if l.valid && l.tag == tag {
                self.touch(set, way);
                return Some(way);
            }
        }
        None
    }

    /// Tree-PLRU touch: flip tree bits towards `way`.
    fn touch(&mut self, set: usize, way: usize) {
        self.mark_set(set);
        // For associativity w (power of two ≤ 8) the tree has w-1 internal
        // nodes stored breadth-first in a byte.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.cfg.assoc;
        let mut bits = self.plru[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                bits |= 1 << node; // next victim search goes right
                node = 2 * node + 1;
                hi = mid;
            } else {
                bits &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
        self.plru[set] = bits;
    }

    /// Tree-PLRU victim selection (prefers invalid ways first).
    pub fn victim(&self, set: usize) -> usize {
        for way in 0..self.cfg.assoc {
            if !self.lines[self.idx(set, way)].valid {
                return way;
            }
        }
        let bits = self.plru[set];
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.cfg.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1 << node) != 0 {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    /// Read `n` bytes at `addr` from a resident line. Caller must have hit.
    pub fn read(&mut self, addr: u64, n: usize, way: usize) -> u64 {
        let set = self.set_of(addr);
        let off = (addr as usize) & (self.cfg.line - 1);
        debug_assert!(off + n <= self.cfg.line);
        self.note_access(set, way, off, n, false);
        let l = &self.lines[self.idx(set, way)];
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(&l.data[off..off + n]);
        u64::from_le_bytes(out)
    }

    /// Borrow the raw bytes of a resident line (instruction fetch path).
    /// `note_range` marks the byte range as read for fault monitoring.
    pub fn line_bytes(&mut self, addr: u64, way: usize, note_from: usize, note_len: usize) -> &[u8] {
        let set = self.set_of(addr);
        self.note_access(set, way, note_from, note_len, false);
        &self.lines[self.idx(set, way)].data
    }

    /// Write `n` bytes at `addr` into a resident line, marking it dirty.
    pub fn write(&mut self, addr: u64, n: usize, val: u64, way: usize) {
        let set = self.set_of(addr);
        let off = (addr as usize) & (self.cfg.line - 1);
        debug_assert!(off + n <= self.cfg.line);
        self.mark_set(set);
        self.note_access(set, way, off, n, true);
        let idx = self.idx(set, way);
        let l = &mut self.lines[idx];
        l.data[off..off + n].copy_from_slice(&val.to_le_bytes()[..n]);
        l.dirty = true;
        self.apply_stuck_to_line(set, way);
    }

    /// Install a line; returns the evicted dirty line `(addr, data)` if a
    /// write-back is required.
    pub fn fill(&mut self, addr: u64, data: &[u8]) -> Option<(u64, Vec<u8>)> {
        let set = self.set_of(addr);
        let way = self.victim(set);
        self.mark_set(set);
        // Filling over the armed line without it having been read masks it.
        if let Some(a) = &mut self.armed {
            if a.set == set && a.way == way && a.fate == FaultFate::Pending {
                a.fate = FaultFate::Overwritten;
            }
        }
        if !self.lane_armed.is_empty() {
            // A clean victim discards the flip with the line (the pass's
            // golden fill data is the scalar run's fill data — addresses
            // and PLRU are identical for live lanes). A dirty victim is
            // written back, carrying the flipped byte downstream where the
            // overlay cannot follow it: the lane forks.
            let dirty_escape = {
                let l = &self.lines[self.idx(set, way)];
                l.valid && l.dirty
            };
            for a in &mut self.lane_armed {
                if a.fate == FaultFate::Pending && a.set == set && a.way == way {
                    if dirty_escape {
                        a.fate = FaultFate::Read;
                        self.lane_events.push(CacheLaneEvent::Fork(a.lane));
                    } else {
                        a.fate = FaultFate::Overwritten;
                        self.lane_events.push(CacheLaneEvent::Fate(a.lane, FaultFate::Overwritten));
                    }
                }
            }
        }
        let line_size = self.cfg.line as u64;
        let sets = self.sets as u64;
        let new_tag = self.tag_of(addr);
        let idx = self.idx(set, way);
        let l = &mut self.lines[idx];
        let evicted = if l.valid && l.dirty {
            let eaddr = (l.tag * sets + set as u64) * line_size;
            Some((eaddr, l.data.to_vec()))
        } else {
            None
        };
        l.tag = new_tag;
        l.valid = true;
        l.dirty = false;
        l.data.copy_from_slice(data);
        if !self.shadow.is_empty() {
            // The incoming line starts untainted (the caller re-taints it
            // from the source level's shadow); stale victim taint dies.
            self.shadow[idx].fill(0);
            self.reapply_stuck_taint(set, way);
        }
        self.apply_stuck_to_line(set, way);
        self.touch(set, way);
        evicted
    }

    /// Number of currently valid lines (occupancy gauge).
    pub fn valid_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Invalidate every line, writing back nothing (test/reset helper).
    pub fn invalidate_all(&mut self) {
        if let Some(j) = &mut self.journal {
            j.mark_all();
        }
        for l in &mut self.lines {
            l.valid = false;
            l.dirty = false;
        }
    }

    fn note_access(&mut self, set: usize, way: usize, off: usize, n: usize, is_write: bool) {
        if let Some(a) = &mut self.armed {
            if a.set == set
                && a.way == way
                && a.fate == FaultFate::Pending
                && a.byte >= off
                && a.byte < off + n
            {
                a.fate = if is_write { FaultFate::Overwritten } else { FaultFate::Read };
            }
        }
        if !self.lane_armed.is_empty() {
            self.note_lane_access(set, way, off, n, is_write);
        }
    }

    /// Lane-pass mirror of the armed-byte transitions. A write of golden
    /// store data restores the byte exactly (live lanes never diverge
    /// store data — they fork first), so a write overlap kills the flip in
    /// place and the lane stays packed. A read overlap is the moment the
    /// scalar run would have consumed the corrupt byte: the lane forks.
    fn note_lane_access(&mut self, set: usize, way: usize, off: usize, n: usize, is_write: bool) {
        for a in &mut self.lane_armed {
            if a.fate == FaultFate::Pending
                && a.set == set
                && a.way == way
                && a.byte >= off
                && a.byte < off + n
            {
                if is_write {
                    a.fate = FaultFate::Overwritten;
                    self.lane_events.push(CacheLaneEvent::Fate(a.lane, FaultFate::Overwritten));
                } else {
                    a.fate = FaultFate::Read;
                    self.lane_events.push(CacheLaneEvent::Fork(a.lane));
                }
            }
        }
    }

    // ---- fault injection ----

    /// Total injectable data-array bits.
    pub fn bit_len(&self) -> u64 {
        (self.lines.len() * self.cfg.line * 8) as u64
    }

    /// Flip one data-array bit (transient fault). Arms fate monitoring.
    pub fn flip_bit(&mut self, bit: u64) -> FaultFate {
        let (set, way, byte, mask) = self.locate(bit);
        self.mark_set(set);
        let idx = self.idx(set, way);
        let valid = self.lines[idx].valid;
        self.lines[idx].data[byte] ^= mask;
        let fate = if valid { FaultFate::Pending } else { FaultFate::InvalidAtInjection };
        self.armed = Some(Armed { set, way, byte, fate });
        if let Some(s) = self.shadow.get_mut(idx) {
            s[byte] |= mask;
        }
        fate
    }

    /// Install a permanent stuck-at fault on a data-array bit.
    pub fn set_stuck(&mut self, bit: u64, value: bool) {
        self.stuck.push((bit, value));
        let (set, way, byte, mask) = self.locate(bit);
        self.mark_set(set);
        let idx = self.idx(set, way);
        if value {
            self.lines[idx].data[byte] |= mask;
        } else {
            self.lines[idx].data[byte] &= !mask;
        }
        let valid = self.lines[idx].valid;
        self.armed = Some(Armed {
            set,
            way,
            byte,
            fate: if valid { FaultFate::Pending } else { FaultFate::InvalidAtInjection },
        });
        if let Some(s) = self.shadow.get_mut(idx) {
            s[byte] |= mask;
        }
    }

    /// Current fate of the armed fault (if any).
    pub fn fate(&self) -> Option<FaultFate> {
        self.armed.map(|a| a.fate)
    }

    // ---- lane-packed arming (campaign lane passes) ----

    /// Arm lane `lane`'s transient flip at data-array bit `bit` WITHOUT
    /// touching the data plane: the pass executes golden data and this
    /// monitor reports the first access that would make the scalar run
    /// observable. Returns the initial fate (`InvalidAtInjection` when
    /// the bit lands in an invalid line, exactly like
    /// [`flip_bit`](Self::flip_bit)).
    pub fn lane_arm(&mut self, lane: u8, bit: u64) -> FaultFate {
        let (set, way, byte, _) = self.locate(bit);
        let valid = self.lines[self.idx(set, way)].valid;
        let fate = if valid { FaultFate::Pending } else { FaultFate::InvalidAtInjection };
        self.lane_armed.push(LaneArmed { lane, set, way, byte, fate });
        fate
    }

    /// Drop all lane monitors and queued events (pass teardown).
    pub fn lane_clear(&mut self) {
        self.lane_armed.clear();
        self.lane_events.clear();
    }

    /// Drain events queued since the last call.
    pub fn drain_lane_events(&mut self) -> Vec<CacheLaneEvent> {
        std::mem::take(&mut self.lane_events)
    }

    fn locate(&self, bit: u64) -> (usize, usize, usize, u8) {
        let line_bits = (self.cfg.line * 8) as u64;
        let line_idx = (bit / line_bits) as usize;
        let set = line_idx / self.cfg.assoc;
        let way = line_idx % self.cfg.assoc;
        let bit_in_line = bit % line_bits;
        let byte = (bit_in_line / 8) as usize;
        let mask = 1u8 << (bit_in_line % 8);
        (set, way, byte, mask)
    }

    fn apply_stuck_to_line(&mut self, set: usize, way: usize) {
        if self.stuck.is_empty() {
            return;
        }
        let stuck = self.stuck.clone();
        for (bit, value) in stuck {
            let (s, w, byte, mask) = self.locate(bit);
            if s == set && w == way {
                let idx = self.idx(set, way);
                if value {
                    self.lines[idx].data[byte] |= mask;
                } else {
                    self.lines[idx].data[byte] &= !mask;
                }
            }
        }
    }

    /// Whether the line holding `bit` is currently valid (used to report
    /// immediate masking for faults into invalid entries).
    pub fn bit_in_valid_line(&self, bit: u64) -> bool {
        let (set, way, _, _) = self.locate(bit);
        self.lines[self.idx(set, way)].valid
    }

    // ---- marvel-taint shadow plane ----
    //
    // Every accessor below is observational: no PLRU touches, no fate
    // transitions, no hit/miss counting. The taint plane rides along
    // with the data plane but can never change what the simulation does.

    /// Allocate the shadow plane; later `flip_bit`/`set_stuck` calls
    /// self-seed it at the injected bit.
    pub fn enable_taint(&mut self) {
        if self.shadow.is_empty() {
            self.shadow =
                self.lines.iter().map(|_| vec![0u8; self.cfg.line].into_boxed_slice()).collect();
        }
        // Enabled after arming: re-seed what we can still see.
        if let Some(a) = self.armed {
            let idx = self.idx(a.set, a.way);
            self.shadow[idx][a.byte] = 0xFF;
        }
        let stuck = self.stuck.clone();
        for (bit, _) in stuck {
            let (set, way, byte, mask) = self.locate(bit);
            let idx = self.idx(set, way);
            self.shadow[idx][byte] |= mask;
        }
    }

    #[inline]
    pub fn taint_on(&self) -> bool {
        !self.shadow.is_empty()
    }

    /// Way holding `addr`, with no PLRU side effect (taint paths only —
    /// the data path must keep using [`lookup`](Self::lookup)).
    pub fn probe(&self, addr: u64) -> Option<usize> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        (0..self.cfg.assoc).find(|&way| {
            let l = &self.lines[self.idx(set, way)];
            l.valid && l.tag == tag
        })
    }

    /// Taint mask (LE bit order, like [`read`](Self::read)) of `n` bytes
    /// at `addr` in a resident line.
    pub fn taint_read(&self, addr: u64, n: usize, way: usize) -> u64 {
        if self.shadow.is_empty() {
            return 0;
        }
        let set = self.set_of(addr);
        let off = (addr as usize) & (self.cfg.line - 1);
        let s = &self.shadow[self.idx(set, way)];
        let mut out = [0u8; 8];
        out[..n].copy_from_slice(&s[off..off + n]);
        u64::from_le_bytes(out)
    }

    /// Overwrite the taint of `n` bytes at `addr` (mirrors
    /// [`write`](Self::write): stored data replaces the bytes' taint).
    pub fn taint_write(&mut self, addr: u64, n: usize, mask: u64, way: usize) {
        if self.shadow.is_empty() {
            return;
        }
        let set = self.set_of(addr);
        let off = (addr as usize) & (self.cfg.line - 1);
        let idx = self.idx(set, way);
        self.shadow[idx][off..off + n].copy_from_slice(&mask.to_le_bytes()[..n]);
        self.reapply_stuck_taint(set, way);
    }

    /// Any tainted bit in `[off, off+n)` of the resident line holding
    /// `addr`? (Instruction-fetch window check.)
    pub fn taint_range_any(&self, addr: u64, way: usize, off: usize, n: usize) -> bool {
        if self.shadow.is_empty() {
            return false;
        }
        let set = self.set_of(addr);
        let s = &self.shadow[self.idx(set, way)];
        s[off..(off + n).min(self.cfg.line)].iter().any(|&b| b != 0)
    }

    /// Whole-line shadow of a resident line (level-to-level transfers).
    pub fn taint_line(&self, addr: u64, way: usize) -> Option<&[u8]> {
        if self.shadow.is_empty() {
            return None;
        }
        let set = self.set_of(addr);
        Some(&self.shadow[self.idx(set, way)])
    }

    /// Replace a resident line's shadow (after a fill from a source
    /// level whose shadow was `src`).
    pub fn set_taint_line(&mut self, addr: u64, way: usize, src: &[u8]) {
        if self.shadow.is_empty() {
            return;
        }
        let set = self.set_of(addr);
        let idx = self.idx(set, way);
        self.shadow[idx].copy_from_slice(src);
        self.reapply_stuck_taint(set, way);
    }

    /// Shadow of the line [`fill`](Self::fill) would write back, captured
    /// *before* the fill (mirrors fill's dirty-eviction condition).
    /// Returns `None` when taint is off or no write-back would happen.
    pub fn taint_prepare_fill(&self, addr: u64) -> Option<Vec<u8>> {
        if self.shadow.is_empty() {
            return None;
        }
        let set = self.set_of(addr);
        let way = self.victim(set);
        let idx = self.idx(set, way);
        let l = &self.lines[idx];
        if l.valid && l.dirty {
            Some(self.shadow[idx].to_vec())
        } else {
            None
        }
    }

    // ---- zero-copy campaign reset ----

    /// Start journaling per-set mutations so [`reset_from`](Self::reset_from)
    /// can restore only the dirtied sets.
    pub fn enable_dirty_tracking(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Box::new(DirtyMap::new(self.sets)));
        }
    }

    /// Restore this cache to `pristine` by undoing only the journaled sets
    /// (full sweep when tracking is off). Returns the number of state bytes
    /// copied, the currency of the campaign perf-guard.
    ///
    /// `pristine` must be the checkpoint this cache was cloned from (same
    /// geometry); per-run fault state (armed fate, stuck list, taint shadow)
    /// is restored wholesale since the pristine checkpoint never carries it.
    pub fn reset_from(&mut self, pristine: &Cache) -> u64 {
        debug_assert_eq!(self.lines.len(), pristine.lines.len());
        let assoc = self.cfg.assoc;
        let line_bytes = self.cfg.line as u64;
        // tag + valid + dirty bookkeeping ≈ 10 bytes per line, 1 PLRU byte
        // per set — counted so the perf-guard sees metadata traffic too.
        let per_line = line_bytes + 10;
        let mut bytes = 0u64;
        if let Some(mut j) = self.journal.take() {
            j.drain(|set| {
                for way in 0..assoc {
                    let idx = set * assoc + way;
                    let src = &pristine.lines[idx];
                    let dst = &mut self.lines[idx];
                    dst.tag = src.tag;
                    dst.valid = src.valid;
                    dst.dirty = src.dirty;
                    dst.data.copy_from_slice(&src.data);
                }
                self.plru[set] = pristine.plru[set];
                bytes += assoc as u64 * per_line + 1;
            });
            self.journal = Some(j);
        } else {
            for (dst, src) in self.lines.iter_mut().zip(&pristine.lines) {
                dst.tag = src.tag;
                dst.valid = src.valid;
                dst.dirty = src.dirty;
                dst.data.copy_from_slice(&src.data);
            }
            self.plru.copy_from_slice(&pristine.plru);
            bytes += self.lines.len() as u64 * per_line + self.plru.len() as u64;
        }
        self.hits = pristine.hits;
        self.misses = pristine.misses;
        self.stuck.clone_from(&pristine.stuck);
        self.armed = pristine.armed;
        self.lane_armed.clear();
        self.lane_events.clear();
        if pristine.shadow.is_empty() {
            self.shadow.clear();
        } else {
            self.shadow.clone_from(&pristine.shadow);
        }
        bytes
    }

    /// Drain the set journal into a detached capture (ladder construction).
    pub fn take_marks(&mut self) -> DirtyMarks {
        self.journal.as_mut().map(|j| j.take_marks()).unwrap_or_default()
    }

    /// Fold a captured golden-segment mark set into the live journal.
    pub fn merge_marks(&mut self, m: &DirtyMarks) {
        if let Some(j) = &mut self.journal {
            j.merge(m);
        }
    }

    /// Functional-state equality against the rung snapshot `pristine`,
    /// restricted to the journaled dirty sets (clean sets are equal by the
    /// journal's soundness contract; full sweep when tracking is off).
    ///
    /// Deliberately ignores observational state — hit/miss counters, armed
    /// fate, the stuck list and the taint shadow — none of which can change
    /// future data-plane behaviour for a transient fault (the taint plane is
    /// checked separately via [`taint_quiescent`](Self::taint_quiescent)).
    pub fn converged_with(&self, pristine: &Cache) -> bool {
        debug_assert_eq!(self.lines.len(), pristine.lines.len());
        let assoc = self.cfg.assoc;
        let set_eq = |set: usize| {
            if self.plru[set] != pristine.plru[set] {
                return false;
            }
            (0..assoc).all(|way| {
                let a = &self.lines[set * assoc + way];
                let b = &pristine.lines[set * assoc + way];
                a.valid == b.valid
                    && (!a.valid || (a.tag == b.tag && a.dirty == b.dirty && a.data == b.data))
            })
        };
        match &self.journal {
            Some(j) => {
                let mut ok = true;
                j.peek(|set| ok = ok && set_eq(set));
                ok
            }
            None => (0..self.sets).all(set_eq),
        }
    }

    /// True when the taint shadow plane carries no set bit (or is off):
    /// the propagation report can no longer change.
    pub fn taint_quiescent(&self) -> bool {
        self.shadow.iter().all(|l| l.iter().all(|&b| b == 0))
    }

    fn reapply_stuck_taint(&mut self, set: usize, way: usize) {
        if self.stuck.is_empty() {
            return;
        }
        let stuck = self.stuck.clone();
        for (bit, _) in stuck {
            let (s, w, byte, mask) = self.locate(bit);
            if s == set && w == way {
                let idx = self.idx(set, way);
                self.shadow[idx][byte] |= mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 1 KiB, 4-way, 64 B lines → 4 sets.
        Cache::new(CacheConfig { size: 1024, assoc: 4, line: 64, latency: 1 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.lookup(0x4000_0000).is_none());
        c.fill(0x4000_0000, &[7u8; 64]);
        let way = c.lookup(0x4000_0000).expect("hit after fill");
        assert_eq!(c.read(0x4000_0008, 8, way), 0x0707_0707_0707_0707);
    }

    #[test]
    fn write_sets_dirty_and_evicts() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        let way = c.lookup(0x4000_0000).unwrap();
        c.write(0x4000_0000, 8, 0xDEAD_BEEF, way);
        // Fill 4 more lines mapping to set 0 (set stride = 4 * 64 = 256).
        let mut evicted = None;
        for i in 1..=4u64 {
            if let Some(e) = c.fill(0x4000_0000 + i * 256, &[0u8; 64]) {
                evicted = Some(e);
            }
        }
        let (addr, data) = evicted.expect("dirty line written back");
        assert_eq!(addr, 0x4000_0000);
        assert_eq!(&data[..4], &0xDEAD_BEEFu32.to_le_bytes());
    }

    #[test]
    fn plru_victim_changes_with_touches() {
        let mut c = small();
        for i in 0..4u64 {
            c.fill(0x4000_0000 + i * 256, &[0u8; 64]);
        }
        // Touch ways 0..3 in order; victim should not be the most recent.
        for i in 0..4u64 {
            c.lookup(0x4000_0000 + i * 256);
        }
        let v = c.victim(0);
        assert_ne!(v, 3, "most recently used way must not be the victim");
    }

    #[test]
    fn flip_changes_data_and_tracks_fate() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        // bit 3 of set 0 way 0 byte 0
        let fate = c.flip_bit(3);
        assert_eq!(fate, FaultFate::Pending);
        let way = c.lookup(0x4000_0000).unwrap();
        let v = c.read(0x4000_0000, 1, way);
        assert_eq!(v, 0b1000);
        assert_eq!(c.fate(), Some(FaultFate::Read));
    }

    #[test]
    fn flip_invalid_line_masked_immediately() {
        let mut c = small();
        let fate = c.flip_bit(0);
        assert_eq!(fate, FaultFate::InvalidAtInjection);
        assert!(fate.is_masked_early());
    }

    #[test]
    fn overwrite_before_read_is_masked() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        c.flip_bit(0);
        let way = c.lookup(0x4000_0000).unwrap();
        c.write(0x4000_0000, 1, 0xFF, way);
        assert_eq!(c.fate(), Some(FaultFate::Overwritten));
    }

    #[test]
    fn stuck_at_survives_writes() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        c.set_stuck(0, true); // bit 0 of byte 0 stuck at 1
        let way = c.lookup(0x4000_0000).unwrap();
        c.write(0x4000_0000, 1, 0x00, way);
        let v = c.read(0x4000_0000, 1, way);
        assert_eq!(v & 1, 1, "stuck-at-1 must survive the write of 0");
    }

    #[test]
    fn stuck_at_survives_refill() {
        let mut c = small();
        c.set_stuck(7, true); // byte 0 bit 7 of set0/way0
        c.fill(0x4000_0000, &[0u8; 64]);
        let way = c.lookup(0x4000_0000).unwrap();
        assert_eq!(c.read(0x4000_0000, 1, way) & 0x80, 0x80);
    }

    #[test]
    fn taint_follows_flip_write_and_fill() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        c.enable_taint();
        c.flip_bit(3);
        let way = c.probe(0x4000_0000).unwrap();
        assert_eq!(c.taint_read(0x4000_0000, 1, way), 0b1000);
        assert!(c.taint_range_any(0x4000_0000, way, 0, 8));
        assert!(!c.taint_range_any(0x4000_0000, way, 8, 8));
        // A store of clean data over the byte washes the taint out.
        c.taint_write(0x4000_0000, 1, 0, way);
        assert_eq!(c.taint_read(0x4000_0000, 1, way), 0);
        // A tainted store marks exactly its bits.
        c.taint_write(0x4000_0008, 8, 0xFF00, way);
        assert_eq!(c.taint_read(0x4000_0008, 8, way), 0xFF00);
        // Refill clears the line's shadow until the caller re-taints it.
        c.invalidate_all();
        c.fill(0x4000_0000, &[0u8; 64]);
        let way = c.probe(0x4000_0000).unwrap();
        assert_eq!(c.taint_read(0x4000_0008, 8, way), 0);
        c.set_taint_line(0x4000_0000, way, &[0xAA; 64]);
        assert_eq!(c.taint_line(0x4000_0000, way).unwrap()[5], 0xAA);
    }

    #[test]
    fn probe_does_not_touch_plru() {
        let mut c = small();
        for i in 0..4u64 {
            c.fill(0x4000_0000 + i * 256, &[0u8; 64]);
        }
        let before = c.victim(0);
        // Probing the would-be victim must not promote it.
        c.probe(0x4000_0000 + before as u64 * 256).unwrap();
        assert_eq!(c.victim(0), before);
    }

    #[test]
    fn taint_prepare_fill_matches_eviction() {
        let mut c = small();
        c.enable_taint();
        c.fill(0x4000_0000, &[0u8; 64]);
        let way = c.probe(0x4000_0000).unwrap();
        c.write(0x4000_0000, 8, 0xBEEF, way); // dirty the line
        c.taint_write(0x4000_0000, 8, 0xF0, way);
        // Fill 4 more lines into set 0: way 0 eventually evicts.
        for i in 1..=4u64 {
            let a = 0x4000_0000 + i * 256;
            let shadow = c.taint_prepare_fill(a);
            let evicted = c.fill(a, &[0u8; 64]);
            assert_eq!(shadow.is_some(), evicted.is_some(), "shadow/evict mismatch");
            if let (Some(s), Some((eaddr, _))) = (shadow, evicted) {
                assert_eq!(eaddr, 0x4000_0000);
                assert_eq!(s[0], 0xF0);
            }
        }
    }

    #[test]
    fn stuck_taint_reasserts_like_stuck_bits() {
        let mut c = small();
        c.fill(0x4000_0000, &[0u8; 64]);
        c.enable_taint();
        c.set_stuck(0, true);
        let way = c.probe(0x4000_0000).unwrap();
        c.taint_write(0x4000_0000, 1, 0, way);
        assert_eq!(c.taint_read(0x4000_0000, 1, way) & 1, 1);
        c.fill(0x4000_0000, &[0u8; 64]);
        let way = c.probe(0x4000_0000).unwrap();
        assert_eq!(c.taint_read(0x4000_0000, 1, way) & 1, 1);
    }

    #[test]
    fn bit_len_matches_geometry() {
        let c = small();
        assert_eq!(c.bit_len(), 1024 * 8);
    }

    #[test]
    fn dirty_reset_matches_fresh_clone() {
        let mut pristine = small();
        pristine.fill(0x4000_0000, &[7u8; 64]);
        pristine.fill(0x4000_0100, &[9u8; 64]);
        let mut c = pristine.clone();
        c.enable_dirty_tracking();
        let way = c.lookup(0x4000_0000).unwrap();
        c.write(0x4000_0000, 8, 0xDEAD, way);
        c.flip_bit(3);
        c.enable_taint();
        let bytes = c.reset_from(&pristine);
        assert!(bytes > 0);
        assert_eq!(c.fate(), None);
        assert!(!c.taint_on());
        let mut fresh = pristine.clone();
        for addr in [0x4000_0000u64, 0x4000_0100] {
            let wa = c.lookup(addr).expect("line resident after reset");
            let wb = fresh.lookup(addr).unwrap();
            assert_eq!(c.read(addr, 8, wa), fresh.read(addr, 8, wb));
        }
        assert_eq!((c.hits, c.misses), (fresh.hits, fresh.misses));
    }

    #[test]
    fn dirty_reset_touches_only_dirty_sets() {
        let mut pristine = small();
        for i in 0..4u64 {
            pristine.fill(0x4000_0000 + i * 64, &[1u8; 64]); // 4 distinct sets
        }
        let mut c = pristine.clone();
        c.enable_dirty_tracking();
        let _ = c.reset_from(&pristine); // flush the clone's clean journal
        let way = c.lookup(0x4000_0000).unwrap();
        c.write(0x4000_0000, 1, 0xFF, way);
        let one_set = c.reset_from(&pristine);
        c.invalidate_all();
        let all_sets = c.reset_from(&pristine);
        assert!(one_set < all_sets, "one dirty set ({one_set}B) vs full sweep ({all_sets}B)");
    }
}
