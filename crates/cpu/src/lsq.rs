//! Load queue and store queue with explicit, fault-injectable entry bits.
//!
//! Entry layouts (the injectable bit space):
//!
//! * LQ entry: 136 bits = address (64) + return data (64) + meta (8:
//!   size\[0..4\], valid\[4\], addr_ready\[5\], done\[6\]). The
//!   return-data field holds the loaded value between cache access and
//!   writeback, so cache misses open a long exposure window.
//! * SQ entry: 136 bits = address (64) + data (64) + meta (8:
//!   size\[0..4\], valid\[4\], addr_ready\[5\], data_ready\[6\],
//!   senior\[7\]).
//!
//! Flips into invalid entries are masked immediately (the paper's
//! early-termination optimisation); flips into live entries corrupt
//! addresses, data, widths or control state and propagate through the
//! memory system.

use crate::cache::FaultFate;

/// One load-queue entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LqEntry {
    pub valid: bool,
    pub seq: u64,
    pub addr: u64,
    /// Loaded value awaiting writeback.
    pub data: u64,
    pub size: u8,
    pub addr_ready: bool,
    pub done: bool,
    /// marvel-taint shadow masks for `addr`/`data`. Always present (they
    /// default to 0 and cost nothing); only read when the core's taint
    /// plane is enabled.
    pub addr_taint: u64,
    pub data_taint: u64,
}

/// One store-queue entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqEntry {
    pub valid: bool,
    pub seq: u64,
    pub addr: u64,
    pub data: u64,
    pub size: u8,
    pub addr_ready: bool,
    pub data_ready: bool,
    /// Committed (retired) but not yet drained to the memory system.
    pub senior: bool,
    /// Store targets an uncached device address.
    pub device: bool,
    /// marvel-taint shadow masks for `addr`/`data` (see [`LqEntry`]).
    pub addr_taint: u64,
    pub data_taint: u64,
}

pub const LQ_ENTRY_BITS: u64 = 136;
pub const SQ_ENTRY_BITS: u64 = 136;

/// The load queue.
#[derive(Debug, Clone)]
pub struct LoadQueue {
    pub entries: Vec<LqEntry>,
}

impl LoadQueue {
    pub fn new(n: usize) -> Self {
        LoadQueue { entries: vec![LqEntry::default(); n] }
    }

    pub fn alloc(&mut self, seq: u64) -> Option<usize> {
        let i = self.entries.iter().position(|e| !e.valid)?;
        self.entries[i] = LqEntry { valid: true, seq, ..Default::default() };
        Some(i)
    }

    pub fn free(&mut self, idx: usize) {
        self.entries[idx].valid = false;
    }

    /// Drop every entry with `seq > keep_upto` (squash).
    pub fn squash_after(&mut self, keep_upto: u64) {
        for e in &mut self.entries {
            if e.valid && e.seq > keep_upto {
                e.valid = false;
            }
        }
    }

    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| e.valid = false);
    }

    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    pub fn bit_len(&self) -> u64 {
        self.entries.len() as u64 * LQ_ENTRY_BITS
    }

    /// Functional-state equality for the convergence exit: invalid entries
    /// are wildcards — `free`/squash only clear `valid`, leaving stale
    /// payload (and stale taint) that the next `alloc` fully overwrites, so
    /// it can never influence future behaviour.
    pub fn converged_with(&self, pristine: &LoadQueue) -> bool {
        self.entries.len() == pristine.entries.len()
            && self.entries.iter().zip(&pristine.entries).all(|(a, b)| (!a.valid && !b.valid) || a == b)
    }

    /// Flip a bit of the queue's flat bit space.
    pub fn flip_bit(&mut self, bit: u64) -> FaultFate {
        let idx = (bit / LQ_ENTRY_BITS) as usize;
        let b = bit % LQ_ENTRY_BITS;
        let e = &mut self.entries[idx];
        if !e.valid {
            return FaultFate::InvalidAtInjection;
        }
        if b < 64 {
            e.addr ^= 1 << b;
            e.addr_taint |= 1 << b;
        } else if b < 128 {
            e.data ^= 1 << (b - 64);
            e.data_taint |= 1 << (b - 64);
        } else {
            match b - 128 {
                0..=3 => e.size ^= 1 << (b - 128),
                4 => e.valid = !e.valid,
                5 => e.addr_ready = !e.addr_ready,
                6 => e.done = !e.done,
                _ => {}
            }
            // Corrupted control/size state poisons the whole access.
            e.addr_taint = !0;
            e.data_taint = !0;
        }
        FaultFate::Pending
    }
}

/// The store queue.
#[derive(Debug, Clone)]
pub struct StoreQueue {
    pub entries: Vec<SqEntry>,
}

impl StoreQueue {
    pub fn new(n: usize) -> Self {
        StoreQueue { entries: vec![SqEntry::default(); n] }
    }

    pub fn alloc(&mut self, seq: u64) -> Option<usize> {
        let i = self.entries.iter().position(|e| !e.valid)?;
        self.entries[i] = SqEntry { valid: true, seq, ..Default::default() };
        Some(i)
    }

    pub fn free(&mut self, idx: usize) {
        self.entries[idx].valid = false;
    }

    /// Drop non-senior entries with `seq > keep_upto`; senior (committed)
    /// stores always survive squashes.
    pub fn squash_after(&mut self, keep_upto: u64) {
        for e in &mut self.entries {
            if e.valid && !e.senior && e.seq > keep_upto {
                e.valid = false;
            }
        }
    }

    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Oldest senior store (next to drain).
    pub fn oldest_senior(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid && e.senior)
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| i)
    }

    /// Any valid older (lower-seq) store than `seq` with an unresolved
    /// address?
    pub fn older_unknown_addr(&self, seq: u64) -> bool {
        self.entries.iter().any(|e| e.valid && e.seq < seq && !e.addr_ready)
    }

    /// Youngest older store overlapping `[addr, addr+size)`. Returns
    /// `(index, covers)` where `covers` means the store fully covers the
    /// load's bytes.
    pub fn forwarding_candidate(&self, seq: u64, addr: u64, size: u8) -> Option<(usize, bool)> {
        let lo = addr;
        let hi = addr + size as u64;
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.valid && e.seq < seq && e.addr_ready && {
                    let slo = e.addr;
                    let shi = e.addr + e.size as u64;
                    slo < hi && lo < shi
                }
            })
            .max_by_key(|(_, e)| e.seq)
            .map(|(i, e)| {
                let covers = e.addr <= lo && (e.addr + e.size as u64) >= hi;
                (i, covers)
            })
    }

    pub fn bit_len(&self) -> u64 {
        self.entries.len() as u64 * SQ_ENTRY_BITS
    }

    /// Functional-state equality for the convergence exit (see
    /// [`LoadQueue::converged_with`] for the invalid-entry wildcard rule).
    pub fn converged_with(&self, pristine: &StoreQueue) -> bool {
        self.entries.len() == pristine.entries.len()
            && self.entries.iter().zip(&pristine.entries).all(|(a, b)| (!a.valid && !b.valid) || a == b)
    }

    pub fn flip_bit(&mut self, bit: u64) -> FaultFate {
        let idx = (bit / SQ_ENTRY_BITS) as usize;
        let b = bit % SQ_ENTRY_BITS;
        let e = &mut self.entries[idx];
        if !e.valid {
            return FaultFate::InvalidAtInjection;
        }
        if b < 64 {
            e.addr ^= 1 << b;
            e.addr_taint |= 1 << b;
        } else if b < 128 {
            e.data ^= 1 << (b - 64);
            e.data_taint |= 1 << (b - 64);
        } else {
            match b - 128 {
                0..=3 => e.size ^= 1 << (b - 128),
                4 => e.valid = !e.valid,
                5 => e.addr_ready = !e.addr_ready,
                6 => e.data_ready = !e.data_ready,
                7 => e.senior = !e.senior,
                _ => {}
            }
            e.addr_taint = !0;
            e.data_taint = !0;
        }
        FaultFate::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_occupancy() {
        let mut lq = LoadQueue::new(4);
        let a = lq.alloc(1).unwrap();
        let _b = lq.alloc(2).unwrap();
        assert_eq!(lq.occupancy(), 2);
        lq.free(a);
        assert_eq!(lq.occupancy(), 1);
    }

    #[test]
    fn lq_full_returns_none() {
        let mut lq = LoadQueue::new(2);
        lq.alloc(1).unwrap();
        lq.alloc(2).unwrap();
        assert!(lq.alloc(3).is_none());
    }

    #[test]
    fn squash_preserves_senior_stores() {
        let mut sq = StoreQueue::new(4);
        let a = sq.alloc(1).unwrap();
        let b = sq.alloc(5).unwrap();
        sq.entries[a].senior = true;
        sq.squash_after(0);
        assert!(sq.entries[a].valid);
        assert!(!sq.entries[b].valid);
    }

    #[test]
    fn forwarding_picks_youngest_older_cover() {
        let mut sq = StoreQueue::new(4);
        let a = sq.alloc(1).unwrap();
        sq.entries[a].addr = 0x1000;
        sq.entries[a].size = 8;
        sq.entries[a].addr_ready = true;
        let b = sq.alloc(3).unwrap();
        sq.entries[b].addr = 0x1000;
        sq.entries[b].size = 4;
        sq.entries[b].addr_ready = true;
        // Load seq 5 of 4 bytes at 0x1000: youngest older overlapping is b.
        let (i, covers) = sq.forwarding_candidate(5, 0x1000, 4).unwrap();
        assert_eq!(i, b);
        assert!(covers);
        // 8-byte load: b overlaps but does not cover.
        let (i, covers) = sq.forwarding_candidate(5, 0x1000, 8).unwrap();
        assert_eq!(i, b);
        assert!(!covers);
        // Older load (seq 0) sees nothing.
        assert!(sq.forwarding_candidate(0, 0x1000, 4).is_none());
    }

    #[test]
    fn older_unknown_addr_detection() {
        let mut sq = StoreQueue::new(4);
        let a = sq.alloc(2).unwrap();
        assert!(sq.older_unknown_addr(5));
        sq.entries[a].addr_ready = true;
        assert!(!sq.older_unknown_addr(5));
        assert!(!sq.older_unknown_addr(1));
    }

    #[test]
    fn flip_invalid_entry_masked() {
        let mut lq = LoadQueue::new(4);
        assert_eq!(lq.flip_bit(0), FaultFate::InvalidAtInjection);
        let mut sq = StoreQueue::new(4);
        assert_eq!(sq.flip_bit(200), FaultFate::InvalidAtInjection);
    }

    #[test]
    fn flip_valid_entry_fields() {
        let mut sq = StoreQueue::new(4);
        let a = sq.alloc(1).unwrap();
        sq.entries[a].addr = 0x100;
        sq.entries[a].data = 0xFF;
        assert_eq!(sq.flip_bit(4), FaultFate::Pending); // addr bit 4
        assert_eq!(sq.entries[a].addr, 0x110);
        sq.flip_bit(64); // data bit 0
        assert_eq!(sq.entries[a].data, 0xFE);
        sq.flip_bit(128 + 7); // senior flag
        assert!(sq.entries[a].senior);
    }

    #[test]
    fn flips_seed_entry_taint_masks() {
        let mut sq = StoreQueue::new(4);
        let a = sq.alloc(1).unwrap();
        sq.flip_bit(4); // addr bit 4
        assert_eq!(sq.entries[a].addr_taint, 1 << 4);
        assert_eq!(sq.entries[a].data_taint, 0);
        sq.flip_bit(64 + 9); // data bit 9
        assert_eq!(sq.entries[a].data_taint, 1 << 9);
        let mut lq = LoadQueue::new(4);
        let b = lq.alloc(1).unwrap();
        lq.flip_bit(128); // size bit: control corruption poisons all
        assert_eq!(lq.entries[b].addr_taint, !0);
        assert_eq!(lq.entries[b].data_taint, !0);
        // Reallocation resets taint with the rest of the entry.
        lq.free(b);
        let c = lq.alloc(2).unwrap();
        assert_eq!(lq.entries[c].data_taint, 0);
    }

    #[test]
    fn bit_lens() {
        assert_eq!(LoadQueue::new(32).bit_len(), 32 * 136);
        assert_eq!(StoreQueue::new(32).bit_len(), 32 * 136);
    }
}
