//! Core configuration — defaults reproduce the paper's Table II.

use marvel_isa::Isa;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: usize,
    /// Associativity (ways).
    pub assoc: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }
}

/// Out-of-order core configuration.
///
/// The defaults are the paper's Table II: 64-bit 8-issue OoO; 32 KiB 4-way
/// L1I and L1D (64 B lines, 128 sets); 1 MiB 8-way L2 (2048 sets); 128
/// integer + 128 FP physical registers; LQ/SQ/IQ/ROB = 32/32/64/128.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    pub isa: Isa,
    pub fetch_width: usize,
    pub issue_width: usize,
    pub commit_width: usize,
    pub rob_entries: usize,
    pub iq_entries: usize,
    pub lq_entries: usize,
    pub sq_entries: usize,
    /// Integer physical register file size.
    pub int_prf: usize,
    /// Floating-point physical register file size (modelled as injectable
    /// storage; the integer workloads never read it).
    pub fp_prf: usize,
    pub l1i: CacheConfig,
    pub l1d: CacheConfig,
    pub l2: CacheConfig,
    /// Main-memory access latency (beyond L2) in cycles.
    pub mem_latency: u32,
    /// Number of simple integer ALUs.
    pub n_alu: usize,
    /// Number of (unpipelined) multiply/divide units.
    pub n_muldiv: usize,
    /// Load/store ports into the L1D per cycle.
    pub n_mem_ports: usize,
    /// Bimodal predictor entries (2-bit counters).
    pub bp_entries: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
    /// Fetch-queue capacity in micro-ops.
    pub fetch_queue: usize,
}

impl CoreConfig {
    /// The paper's Table II configuration for `isa`.
    pub fn table2(isa: Isa) -> Self {
        CoreConfig {
            isa,
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 128,
            iq_entries: 64,
            lq_entries: 32,
            sq_entries: 32,
            int_prf: 128,
            fp_prf: 128,
            l1i: CacheConfig { size: 32 * 1024, assoc: 4, line: 64, latency: 2 },
            l1d: CacheConfig { size: 32 * 1024, assoc: 4, line: 64, latency: 2 },
            l2: CacheConfig { size: 1024 * 1024, assoc: 8, line: 64, latency: 14 },
            mem_latency: 80,
            n_alu: 4,
            n_muldiv: 1,
            n_mem_ports: 2,
            bp_entries: 4096,
            ras_entries: 16,
            fetch_queue: 24,
        }
    }

    /// Table II variant with a different integer PRF size (the paper's
    /// Fig. 15 sensitivity study uses 96/128/192).
    pub fn with_int_prf(isa: Isa, int_prf: usize) -> Self {
        let mut c = Self::table2(isa);
        c.int_prf = int_prf;
        c
    }

    /// Render the configuration as the paper's Table II rows.
    pub fn table2_rows() -> Vec<(&'static str, String)> {
        let c = Self::table2(Isa::RiscV);
        vec![
            ("ISA", "RISC-V / Arm / x86".to_string()),
            ("Pipeline", format!("64-bit OoO ({}-issue)", c.issue_width)),
            (
                "L1 Instruction Cache",
                format!(
                    "{}KB, {}B line, {} sets, {}-way",
                    c.l1i.size / 1024,
                    c.l1i.line,
                    c.l1i.sets(),
                    c.l1i.assoc
                ),
            ),
            (
                "L1 Data Cache",
                format!(
                    "{}KB, {}B line, {} sets, {}-way",
                    c.l1d.size / 1024,
                    c.l1d.line,
                    c.l1d.sets(),
                    c.l1d.assoc
                ),
            ),
            (
                "L2 Cache",
                format!(
                    "{}MB, {}B line, {} sets, {}-way",
                    c.l2.size / 1024 / 1024,
                    c.l2.line,
                    c.l2.sets(),
                    c.l2.assoc
                ),
            ),
            ("Physical Register File", format!("{} Int; {} FP", c.int_prf, c.fp_prf)),
            (
                "LQ/SQ/IQ/ROB entries",
                format!("{}/{}/{}/{}", c.lq_entries, c.sq_entries, c.iq_entries, c.rob_entries),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let c = CoreConfig::table2(Isa::Arm);
        assert_eq!(c.l1i.sets(), 128);
        assert_eq!(c.l1i.assoc, 4);
        assert_eq!(c.l1d.size, 32 * 1024);
        assert_eq!(c.l2.sets(), 2048);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.int_prf, 128);
        assert_eq!((c.lq_entries, c.sq_entries, c.iq_entries, c.rob_entries), (32, 32, 64, 128));
        assert_eq!(c.issue_width, 8);
    }

    #[test]
    fn table2_rows_render() {
        let rows = CoreConfig::table2_rows();
        assert_eq!(rows.len(), 7);
        assert!(rows[2].1.contains("32KB"));
        assert!(rows[6].1.contains("32/32/64/128"));
    }

    #[test]
    fn prf_override() {
        let c = CoreConfig::with_int_prf(Isa::RiscV, 96);
        assert_eq!(c.int_prf, 96);
        assert_eq!(c.fp_prf, 128);
    }
}
