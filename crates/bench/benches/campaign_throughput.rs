//! Campaign throughput rig: for each scenario, a *base* mode against an
//! *opt* mode — clone-per-run vs the zero-copy dirty reset on the CPU
//! side, the cycle-exact oracle vs the event-driven static-schedule
//! engine on the DSA side, and the full-prefix oracle vs the checkpoint
//! ladder + dirty-diff convergence exit — over transient and permanent
//! faults on both the CPU and DSA sides.
//!
//! Not a criterion target: the clone/dirty scenarios time every injection
//! run individually so they can report runs/sec plus p50/p95 per-run
//! latency, while the ladder scenarios time whole campaigns (the ladder
//! build is a per-campaign cost and must be charged to the optimised
//! mode). Results are written as machine-readable JSON
//! (`BENCH_campaign.json` at the workspace root, or `$BENCH_CAMPAIGN_JSON`)
//! for CI to archive.
//!
//! Three headline scenarios:
//!   * `cpu_prf_transient` — transient faults into the integer PRF of a
//!     short-window kernel, where most runs terminate early: under clone
//!     mode the checkpoint memcpy dominates wall-clock.
//!   * `dsa_spm_transient` — transient SPM faults on the FFT accelerator,
//!     cycle-exact oracle vs the event-driven engine with memoized golden
//!     replay on a shared dirty reset. The event engine must buy ≥10×
//!     (enforced at the bottom of `main`); exports stay byte-identical
//!     (see `tests/dsa_engine_differential.rs`).
//!   * `dsa_spm_late_transient` — transients windowed into the late 20% of
//!     the accelerator run, where the full-prefix engine re-simulates ≥80%
//!     of the golden run fault-free before the flip even lands. The
//!     checkpoint ladder must buy ≥2× here (enforced at the bottom of
//!     `main`); exports stay byte-identical to `--ladder-rungs 0` (see
//!     `tests/ladder_differential.rs`).

use marvel_core::{
    campaign_masks, run_dsa_masks, run_masks, run_one_in, CampaignConfig, DsaEngine, DsaGolden,
    DsaHarness, FaultKind, FaultMask, Golden, MaskGenerator, ResetMode, Target, TelemetryConfig,
    WorkerCtx,
};
use marvel_cpu::CoreConfig;
use marvel_ir::{assemble, FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};
use marvel_soc::System;
use marvel_telemetry::{render_phase_object, Registry, SpanCollector};
use marvel_workloads::{accel, mibench};
use std::time::Instant;

/// Short post-checkpoint kernel (~a few thousand cycles): squares into a
/// buffer, then streams it to the console. Small enough that per-run
/// state handling, not simulation, dominates campaign wall-clock.
fn short_kernel() -> Module {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 256, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    b.checkpoint();
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.bin(AluOp::Mul, i, i);
    b.store_idx(MemWidth::D, v, base, i);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 32, top);
    let j = b.li(0);
    let top2 = b.new_label();
    b.bind(top2);
    let v2 = b.load_idx(MemWidth::D, false, base, j);
    b.out_byte(v2);
    let j2 = b.bin(AluOp::Add, j, 1);
    b.assign(j, j2);
    b.br(Cond::Lt, j, 32, top2);
    b.halt();
    m.define(f, b.build());
    m
}

/// One mode's measurement. Per-run latency percentiles are only available
/// when the rig drives runs one at a time; campaign-level modes report
/// throughput alone.
struct Sample {
    runs_per_sec: f64,
    p50_us: Option<f64>,
    p95_us: Option<f64>,
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn sample(mut run: impl FnMut(), n: usize) -> Sample {
    let mut us: Vec<f64> = Vec::with_capacity(n);
    let t_all = Instant::now();
    for _ in 0..n {
        let t = Instant::now();
        run();
        us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
    }
    let total = t_all.elapsed().as_secs_f64();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        runs_per_sec: n as f64 / total.max(1e-9),
        p50_us: Some(quantile(&us, 0.50)),
        p95_us: Some(quantile(&us, 0.95)),
    }
}

/// Time one whole campaign of `n` runs (used for the ladder scenarios,
/// where the per-campaign ladder build must be charged to the mode).
fn sample_campaign(n: usize, run: impl FnOnce()) -> Sample {
    let t = Instant::now();
    run();
    let total = t.elapsed().as_secs_f64();
    Sample { runs_per_sec: n as f64 / total.max(1e-9), p50_us: None, p95_us: None }
}

struct Mode {
    label: &'static str,
    /// Which DSA simulation engine drove the mode (`None` on the CPU
    /// side, where the knob does not exist).
    engine: Option<&'static str>,
    s: Sample,
}

/// Lane-packed campaign leg: the scalar oracle (`--lane-width 0`) against
/// the 64-wide bit-plane engine on the same masks, dirty reset and worker
/// count, so the ratio isolates the lane packing itself. Occupancy and
/// fork counts come from the campaign registry
/// (`campaign.lane_runs_packed / campaign.lane_passes`).
struct LaneLeg {
    scalar: Sample,
    lane: Sample,
    mean_occupancy: f64,
    passes: u64,
    forks: u64,
}

impl LaneLeg {
    fn speedup(&self) -> f64 {
        self.lane.runs_per_sec / self.scalar.runs_per_sec.max(1e-9)
    }
}

struct Scenario {
    name: &'static str,
    side: &'static str,
    target: String,
    kind: &'static str,
    runs: usize,
    base: Mode,
    opt: Mode,
    /// Scalar-vs-lane-packed campaign comparison; only present where the
    /// faults are lane-packable (single-bit CPU transients).
    lane: Option<LaneLeg>,
    /// Per-phase wall-time attribution for the opt mode, as a rendered
    /// JSON object (`{"SimStepCpu": {"calls": .., "self_us": ..}, ..}`) —
    /// a spans-enabled re-run at workers=1 so self-times sum sensibly.
    phases: String,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.opt.s.runs_per_sec / self.base.s.runs_per_sec.max(1e-9)
    }
}

fn lane_leg(golden: &Golden, masks: &[FaultMask], kind: FaultKind) -> LaneLeg {
    let cc = |lane_width: usize, registry: Registry| CampaignConfig {
        kind,
        workers: 1,
        reset_mode: ResetMode::Dirty,
        lane_width,
        telemetry: TelemetryConfig { registry, ..Default::default() },
        ..Default::default()
    };
    let n = masks.len();
    let scalar = sample_campaign(n, || {
        run_masks(golden, masks, &cc(0, Registry::disabled()));
    });
    let registry = Registry::new();
    let lane = sample_campaign(n, || {
        run_masks(golden, masks, &cc(64, registry.clone()));
    });
    let passes = registry.counter("campaign.lane_passes").get();
    let packed = registry.counter("campaign.lane_runs_packed").get();
    let forks = registry.counter("campaign.lane_forks").get();
    LaneLeg {
        scalar,
        lane,
        mean_occupancy: if passes > 0 { packed as f64 / passes as f64 } else { 0.0 },
        passes,
        forks,
    }
}

/// Config for the per-scenario profiling pass: the opt mode's state
/// handling (dirty reset; ladder when the scenario uses one) with span
/// tracing enabled, single-threaded so per-phase self-times attribute
/// the scenario's whole wall clock.
fn profile_config(
    kind: FaultKind,
    rungs: usize,
    engine: DsaEngine,
    spans: &SpanCollector,
) -> CampaignConfig {
    CampaignConfig {
        kind,
        workers: 1,
        reset_mode: ResetMode::Dirty,
        ladder_rungs: rungs,
        convergence_exit: rungs > 0,
        dsa_engine: engine,
        telemetry: TelemetryConfig { spans: spans.clone(), ..Default::default() },
        ..Default::default()
    }
}

fn profile_cpu(golden: &Golden, masks: &[FaultMask], kind: FaultKind, rungs: usize) -> String {
    let spans = SpanCollector::enabled();
    run_masks(golden, masks, &profile_config(kind, rungs, DsaEngine::Cycle, &spans));
    render_phase_object(&spans.report())
}

fn profile_dsa(
    golden: &DsaGolden,
    target: Target,
    masks: &[FaultMask],
    kind: FaultKind,
    rungs: usize,
    engine: DsaEngine,
) -> String {
    let spans = SpanCollector::enabled();
    run_dsa_masks(golden, target, masks, &profile_config(kind, rungs, engine, &spans));
    render_phase_object(&spans.report())
}

fn cpu_scenario(
    name: &'static str,
    golden: &Golden,
    target: Target,
    kind: FaultKind,
    n: usize,
) -> Scenario {
    let cc = CampaignConfig { n_faults: n, kind, ..Default::default() };
    let masks = campaign_masks(golden, target, &cc);

    // Clone mode: every run deep-copies the checkpoint (ctx = None).
    let mut it = masks.iter().cycle();
    let clone = sample(
        || {
            run_one_in(golden, it.next().unwrap(), &cc, None);
        },
        n,
    );

    // Dirty mode: one reusable context; prime it so the first run's
    // unavoidable clone stays out of the timings.
    let mut ctx = WorkerCtx::new();
    run_one_in(golden, &masks[0], &cc, Some(&mut ctx));
    let mut it = masks.iter().cycle();
    let dirty = sample(
        || {
            run_one_in(golden, it.next().unwrap(), &cc, Some(&mut ctx));
        },
        n,
    );

    // Lane leg only where the faults can pack: single-bit transients on a
    // lane-packable structure. Permanents stay scalar (`lane: null`).
    let lane = (kind == FaultKind::Transient).then(|| lane_leg(golden, &masks, kind));

    Scenario {
        name,
        side: "cpu",
        target: target.name(),
        kind: kind_name(kind),
        runs: n,
        base: Mode { label: "clone", engine: None, s: clone },
        opt: Mode { label: "dirty", engine: None, s: dirty },
        lane,
        phases: profile_cpu(golden, &masks, kind, 0),
    }
}

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Permanent => "permanent",
        FaultKind::PermanentStuck0 => "stuck0",
        FaultKind::PermanentStuck1 => "stuck1",
    }
}

/// Cycle-exact oracle vs the event-driven static-schedule engine with
/// memoized golden replay, both on the zero-copy dirty reset so the
/// measured ratio isolates the simulation engine itself. This is the
/// headline DSA comparison: the event engine must buy ≥10× on
/// `dsa_spm_transient` (enforced at the bottom of `main`) while staying
/// byte-identical to the oracle (`tests/dsa_engine_differential.rs`).
fn dsa_scenario(name: &'static str, golden: &DsaGolden, kind: FaultKind, n: usize) -> Scenario {
    let target = Target::Spm { accel: 0, mem: 0 };
    let bit_len = golden.harness.accel.spms[0].bit_len();
    let mut gen = MaskGenerator::new(0xC0FFEE ^ 0xD5A);
    let masks = gen.single_bit(target, bit_len, kind, 1..golden.cycles.max(2), n);
    let watchdog = golden.cycles * 3 + 10_000;

    let mut reusable: Box<DsaHarness> = Box::new(golden.harness.clone());
    let mut it = masks.iter().cycle();
    let cycle = sample(
        || {
            reusable.reset_from(&golden.harness);
            let _ = reusable.run(Some(it.next().unwrap()), watchdog);
        },
        n,
    );

    // Event mode: the reset restores the base harness's cycle engine, so
    // each run re-selects the event engine and re-arms the taint planes
    // the replay memoizer keys on — exactly what the campaign driver does
    // per run.
    let mut reusable: Box<DsaHarness> = Box::new(golden.harness.clone());
    let mut it = masks.iter().cycle();
    let tname = target.name();
    let event = sample(
        || {
            reusable.reset_from(&golden.harness);
            reusable.accel.set_engine_event();
            reusable.accel.enable_taint(&tname);
            let _ = reusable.run(Some(it.next().unwrap()), watchdog);
        },
        n,
    );

    Scenario {
        name,
        side: "dsa",
        target: target.name(),
        kind: kind_name(kind),
        runs: n,
        base: Mode { label: "dirty", engine: Some("cycle"), s: cycle },
        opt: Mode { label: "dirty", engine: Some("event"), s: event },
        lane: None,
        phases: profile_dsa(golden, target, &masks, kind, 0, DsaEngine::Event),
    }
}

/// Full-prefix oracle vs checkpoint ladder + convergence exit, with all
/// injections windowed into the late 20% of the run — the ladder's
/// headline case. Both modes share the dirty reset and worker count, so
/// the measured ratio isolates the prefix elimination itself.
fn ladder_config(rungs: usize) -> CampaignConfig {
    CampaignConfig {
        workers: 2,
        reset_mode: ResetMode::Dirty,
        ladder_rungs: rungs,
        convergence_exit: rungs > 0,
        // Pinned to the cycle oracle on both sides of the comparison so
        // the ≥2× ladder floor keeps measuring prefix elimination alone,
        // not the (much larger) event-engine win measured above. Lane
        // packing is pinned off for the same reason.
        dsa_engine: DsaEngine::Cycle,
        lane_width: 0,
        ..Default::default()
    }
}

fn cpu_ladder_scenario(name: &'static str, golden: &Golden, n: usize) -> Scenario {
    let w = golden.injection_window();
    let late = (w.start + (w.end - w.start) * 4 / 5)..w.end;
    let mut gen = MaskGenerator::new(0xBE7C4);
    let masks = gen.single_bit(
        Target::PrfInt,
        golden.ckpt.bit_len(Target::PrfInt),
        FaultKind::Transient,
        late,
        n,
    );

    let base = sample_campaign(n, || {
        run_masks(golden, &masks, &ladder_config(0));
    });
    let opt = sample_campaign(n, || {
        run_masks(golden, &masks, &ladder_config(8));
    });

    Scenario {
        name,
        side: "cpu",
        target: Target::PrfInt.name(),
        kind: "transient",
        runs: n,
        base: Mode { label: "full_prefix", engine: None, s: base },
        opt: Mode { label: "ladder8+conv", engine: None, s: opt },
        lane: None,
        phases: profile_cpu(golden, &masks, FaultKind::Transient, 8),
    }
}

fn dsa_ladder_scenario(name: &'static str, golden: &DsaGolden, n: usize) -> Scenario {
    let target = Target::Spm { accel: 0, mem: 0 };
    let bit_len = golden.harness.accel.spms[0].bit_len();
    let late = (golden.cycles * 4 / 5).max(1)..golden.cycles.max(2);
    let mut gen = MaskGenerator::new(0xBE7C4 ^ 0xD5A);
    let masks = gen.single_bit(target, bit_len, FaultKind::Transient, late, n);

    let base = sample_campaign(n, || {
        run_dsa_masks(golden, target, &masks, &ladder_config(0));
    });
    let opt = sample_campaign(n, || {
        run_dsa_masks(golden, target, &masks, &ladder_config(8));
    });

    Scenario {
        name,
        side: "dsa",
        target: target.name(),
        kind: "transient",
        runs: n,
        base: Mode { label: "full_prefix", engine: Some("cycle"), s: base },
        opt: Mode { label: "ladder8+conv", engine: Some("cycle"), s: opt },
        lane: None,
        phases: profile_dsa(golden, target, &masks, FaultKind::Transient, 8, DsaEngine::Cycle),
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |v| format!("{v:.1}"))
}

fn emit_json(scenarios: &[Scenario], path: &str) {
    // v5: lane-packable scenarios carry a "lane" leg — the scalar oracle
    // vs the 64-wide bit-plane engine on the same masks, with
    // mean_lane_occupancy and fork counts from the campaign registry;
    // scenarios without packable faults record "lane": null.
    // (v4 added per-mode DSA "engine" keys; v3 the "phases" object.)
    let mut out = String::from("{\n  \"schema_version\": 5,\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 < scenarios.len() { "," } else { "" };
        let mode = |m: &Mode| {
            let engine = m.engine.map_or_else(String::new, |e| format!("\"engine\": \"{e}\", "));
            format!(
                "{{\"mode\": \"{}\", {}\"runs_per_sec\": {:.1}, \"p50_us\": {}, \"p95_us\": {}}}",
                m.label,
                engine,
                m.s.runs_per_sec,
                json_opt(m.s.p50_us),
                json_opt(m.s.p95_us),
            )
        };
        let lane = s.lane.as_ref().map_or_else(
            || "null".into(),
            |l| {
                format!(
                    "{{\"lane_width\": 64, \"scalar_runs_per_sec\": {:.1}, \
                     \"lane_runs_per_sec\": {:.1}, \"mean_lane_occupancy\": {:.2}, \
                     \"passes\": {}, \"forks\": {}, \"speedup\": {:.2}}}",
                    l.scalar.runs_per_sec,
                    l.lane.runs_per_sec,
                    l.mean_occupancy,
                    l.passes,
                    l.forks,
                    l.speedup(),
                )
            },
        );
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"side\": \"{}\", \"target\": \"{}\", \"kind\": \"{}\", \"runs\": {},\n      \
             \"base\": {},\n      \
             \"opt\": {},\n      \
             \"lane\": {},\n      \
             \"phases\": {},\n      \
             \"speedup\": {:.2}}}{}\n",
            s.name,
            s.side,
            s.target,
            s.kind,
            s.runs,
            mode(&s.base),
            mode(&s.opt),
            lane,
            s.phases,
            s.speedup(),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let bin = assemble(&short_kernel(), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let cpu_golden = Golden::prepare(sys, 3_000_000).unwrap();

    // A real kernel with a long injection window for the ladder scenarios:
    // on the short kernel the fault-free prefix is a few thousand cycles,
    // so there is nothing worth eliminating.
    let bin = assemble(&mibench::build("crc32"), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let crc_golden = Golden::prepare(sys, 80_000_000).unwrap();

    let d = accel::design("FFT");
    let dsa_golden = DsaGolden::prepare((d.make)(marvel_accel::FuConfig::default()), 50_000_000);

    // DSA runs simulate tens of thousands of accelerator cycles each, so
    // they get fewer samples — they measure that state handling is *not*
    // the bottleneck there (speedup ≈ 1), unlike the CPU scenarios.
    let n_cpu = 200;
    let n_dsa = 150;
    let scenarios = vec![
        cpu_scenario("cpu_prf_transient", &cpu_golden, Target::PrfInt, FaultKind::Transient, n_cpu),
        cpu_scenario("cpu_prf_permanent", &cpu_golden, Target::PrfInt, FaultKind::Permanent, n_cpu),
        cpu_scenario("cpu_l1d_transient", &cpu_golden, Target::L1D, FaultKind::Transient, n_cpu),
        dsa_scenario("dsa_spm_transient", &dsa_golden, FaultKind::Transient, n_dsa),
        dsa_scenario("dsa_spm_permanent", &dsa_golden, FaultKind::Permanent, n_dsa),
        cpu_ladder_scenario("cpu_crc32_late_transient", &crc_golden, 32),
        dsa_ladder_scenario("dsa_spm_late_transient", &dsa_golden, 96),
    ];

    println!(
        "{:<26} {:>6} {:>13} {:>13} {:>9} {:>9} {:>8}",
        "scenario", "runs", "base r/s", "opt r/s", "p50 µs", "p95 µs", "speedup"
    );
    for s in &scenarios {
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".into(), |v: f64| format!("{v:.1}"));
        println!(
            "{:<26} {:>6} {:>13.0} {:>13.0} {:>9} {:>9} {:>7.2}x",
            s.name,
            s.runs,
            s.base.s.runs_per_sec,
            s.opt.s.runs_per_sec,
            fmt(s.opt.s.p50_us),
            fmt(s.opt.s.p95_us),
            s.speedup()
        );
    }
    for s in scenarios.iter().filter(|s| s.lane.is_some()) {
        let l = s.lane.as_ref().unwrap();
        println!(
            "{:<26} lane64 {:>12.0} -> {:>.0} r/s  occ {:>5.1}/64  passes {:>3}  forks {:>3}  {:>6.2}x",
            s.name,
            l.scalar.runs_per_sec,
            l.lane.runs_per_sec,
            l.mean_occupancy,
            l.passes,
            l.forks,
            l.speedup()
        );
    }

    let path = std::env::var("BENCH_CAMPAIGN_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json").into());
    emit_json(&scenarios, &path);
    eprintln!("wrote {path}");

    // Acceptance floor: the checkpoint ladder must buy at least 2× on the
    // late-injection DSA campaign. The margin is wide (the base mode
    // re-simulates ≥80% of the run fault-free), so this does not flake on
    // loaded CI runners.
    let dsa_late = scenarios.iter().find(|s| s.name == "dsa_spm_late_transient").unwrap();
    assert!(
        dsa_late.speedup() >= 2.0,
        "checkpoint ladder speedup regressed: {:.2}x < 2.0x on dsa_spm_late_transient",
        dsa_late.speedup()
    );

    // Acceptance floor for the event-driven engine: ≥10× the cycle-exact
    // oracle on the headline transient-SPM campaign. The margin is wide —
    // the oracle scans every node every cycle while replay memoizes all
    // but the taint cone — so this too holds on loaded CI runners.
    let dsa_t = scenarios.iter().find(|s| s.name == "dsa_spm_transient").unwrap();
    assert!(
        dsa_t.speedup() >= 10.0,
        "event-engine speedup regressed: {:.2}x < 10.0x on dsa_spm_transient",
        dsa_t.speedup()
    );

    // Acceptance floor for the lane-packed engine: ≥4× the scalar oracle
    // on the headline PRF-transient campaign. The margin is wide — a full
    // pass retires up to 64 masked lanes on one golden execution, and
    // PRF transients on the short kernel are overwhelmingly masked — so
    // this holds on loaded CI runners.
    let prf = scenarios.iter().find(|s| s.name == "cpu_prf_transient").unwrap();
    let lane = prf.lane.as_ref().expect("cpu_prf_transient must record a lane leg");
    assert!(
        lane.speedup() >= 4.0,
        "lane-packed speedup regressed: {:.2}x < 4.0x on cpu_prf_transient \
         (mean occupancy {:.1}, {} forks)",
        lane.speedup(),
        lane.mean_occupancy,
        lane.forks
    );
}
