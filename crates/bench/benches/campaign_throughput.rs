//! Campaign throughput rig: clone-per-run vs the zero-copy dirty reset,
//! over transient and permanent faults on both the CPU and DSA sides.
//!
//! Not a criterion target: each scenario times every injection run
//! individually so it can report runs/sec plus p50/p95 per-run latency,
//! and the results are written as machine-readable JSON
//! (`BENCH_campaign.json` at the workspace root, or `$BENCH_CAMPAIGN_JSON`)
//! for CI to archive. The headline scenario — transient faults into the
//! integer PRF of a short-window kernel, where most runs terminate early —
//! is the case the dirty-reset engine is built around: the run is over in
//! a few thousand simulated cycles, so under clone mode the checkpoint
//! memcpy dominates wall-clock.

use marvel_core::{
    campaign_masks, run_one_in, CampaignConfig, DsaGolden, DsaHarness, FaultKind, Golden, MaskGenerator,
    Target, WorkerCtx,
};
use marvel_cpu::CoreConfig;
use marvel_ir::{assemble, FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};
use marvel_soc::System;
use marvel_workloads::accel;
use std::time::Instant;

/// Short post-checkpoint kernel (~a few thousand cycles): squares into a
/// buffer, then streams it to the console. Small enough that per-run
/// state handling, not simulation, dominates campaign wall-clock.
fn short_kernel() -> Module {
    let mut m = Module::new();
    let buf = m.global_zeroed("buf", 256, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    b.checkpoint();
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.bin(AluOp::Mul, i, i);
    b.store_idx(MemWidth::D, v, base, i);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 32, top);
    let j = b.li(0);
    let top2 = b.new_label();
    b.bind(top2);
    let v2 = b.load_idx(MemWidth::D, false, base, j);
    b.out_byte(v2);
    let j2 = b.bin(AluOp::Add, j, 1);
    b.assign(j, j2);
    b.br(Cond::Lt, j, 32, top2);
    b.halt();
    m.define(f, b.build());
    m
}

/// Per-mode measurement of one scenario.
struct Sample {
    runs_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
}

fn quantile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

fn sample(mut run: impl FnMut(), n: usize) -> Sample {
    let mut us: Vec<f64> = Vec::with_capacity(n);
    let t_all = Instant::now();
    for _ in 0..n {
        let t = Instant::now();
        run();
        us.push(t.elapsed().as_nanos() as f64 / 1_000.0);
    }
    let total = t_all.elapsed().as_secs_f64();
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        runs_per_sec: n as f64 / total.max(1e-9),
        p50_us: quantile(&us, 0.50),
        p95_us: quantile(&us, 0.95),
    }
}

struct Scenario {
    name: &'static str,
    side: &'static str,
    target: String,
    kind: &'static str,
    runs: usize,
    clone: Sample,
    dirty: Sample,
}

fn cpu_scenario(
    name: &'static str,
    golden: &Golden,
    target: Target,
    kind: FaultKind,
    n: usize,
) -> Scenario {
    let cc = CampaignConfig { n_faults: n, kind, ..Default::default() };
    let masks = campaign_masks(golden, target, &cc);

    // Clone mode: every run deep-copies the checkpoint (ctx = None).
    let mut it = masks.iter().cycle();
    let clone = sample(
        || {
            run_one_in(golden, it.next().unwrap(), &cc, None);
        },
        n,
    );

    // Dirty mode: one reusable context; prime it so the first run's
    // unavoidable clone stays out of the timings.
    let mut ctx = WorkerCtx::new();
    run_one_in(golden, &masks[0], &cc, Some(&mut ctx));
    let mut it = masks.iter().cycle();
    let dirty = sample(
        || {
            run_one_in(golden, it.next().unwrap(), &cc, Some(&mut ctx));
        },
        n,
    );

    Scenario { name, side: "cpu", target: target.name(), kind: kind_name(kind), runs: n, clone, dirty }
}

fn kind_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Transient => "transient",
        FaultKind::Permanent => "permanent",
        FaultKind::PermanentStuck0 => "stuck0",
        FaultKind::PermanentStuck1 => "stuck1",
    }
}

fn dsa_scenario(name: &'static str, golden: &DsaGolden, kind: FaultKind, n: usize) -> Scenario {
    let target = Target::Spm { accel: 0, mem: 0 };
    let bit_len = golden.harness.accel.spms[0].bit_len();
    let mut gen = MaskGenerator::new(0xC0FFEE ^ 0xD5A);
    let masks = gen.single_bit(target, bit_len, kind, 1..golden.cycles.max(2), n);
    let watchdog = golden.cycles * 3 + 10_000;

    let mut it = masks.iter().cycle();
    let clone = sample(
        || {
            let mut h = golden.harness.clone();
            let _ = h.run(Some(it.next().unwrap()), watchdog);
        },
        n,
    );

    let mut reusable: Box<DsaHarness> = Box::new(golden.harness.clone());
    let mut it = masks.iter().cycle();
    let dirty = sample(
        || {
            reusable.reset_from(&golden.harness);
            let _ = reusable.run(Some(it.next().unwrap()), watchdog);
        },
        n,
    );

    Scenario { name, side: "dsa", target: target.name(), kind: kind_name(kind), runs: n, clone, dirty }
}

fn emit_json(scenarios: &[Scenario], path: &str) {
    let mut out = String::from("{\n  \"schema_version\": 1,\n  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 < scenarios.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"side\": \"{}\", \"target\": \"{}\", \"kind\": \"{}\", \"runs\": {},\n      \
             \"clone\": {{\"runs_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}}},\n      \
             \"dirty\": {{\"runs_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}}},\n      \
             \"speedup\": {:.2}}}{}\n",
            s.name,
            s.side,
            s.target,
            s.kind,
            s.runs,
            s.clone.runs_per_sec,
            s.clone.p50_us,
            s.clone.p95_us,
            s.dirty.runs_per_sec,
            s.dirty.p50_us,
            s.dirty.p95_us,
            s.dirty.runs_per_sec / s.clone.runs_per_sec.max(1e-9),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
}

fn main() {
    let bin = assemble(&short_kernel(), Isa::RiscV).unwrap();
    let mut sys = System::new(CoreConfig::table2(Isa::RiscV));
    sys.load_binary(&bin);
    let cpu_golden = Golden::prepare(sys, 3_000_000).unwrap();

    let d = accel::design("FFT");
    let dsa_golden = DsaGolden::prepare((d.make)(marvel_accel::FuConfig::default()), 50_000_000);

    // DSA runs simulate tens of thousands of accelerator cycles each, so
    // they get fewer samples — they measure that state handling is *not*
    // the bottleneck there (speedup ≈ 1), unlike the CPU scenarios.
    let n_cpu = 200;
    let n_dsa = 150;
    let scenarios = vec![
        cpu_scenario("cpu_prf_transient", &cpu_golden, Target::PrfInt, FaultKind::Transient, n_cpu),
        cpu_scenario("cpu_prf_permanent", &cpu_golden, Target::PrfInt, FaultKind::Permanent, n_cpu),
        cpu_scenario("cpu_l1d_transient", &cpu_golden, Target::L1D, FaultKind::Transient, n_cpu),
        dsa_scenario("dsa_spm_transient", &dsa_golden, FaultKind::Transient, n_dsa),
        dsa_scenario("dsa_spm_permanent", &dsa_golden, FaultKind::Permanent, n_dsa),
    ];

    println!(
        "{:<20} {:>6} {:>12} {:>12} {:>9} {:>9} {:>8}",
        "scenario", "runs", "clone r/s", "dirty r/s", "p50 µs", "p95 µs", "speedup"
    );
    for s in &scenarios {
        println!(
            "{:<20} {:>6} {:>12.0} {:>12.0} {:>9.1} {:>9.1} {:>7.2}x",
            s.name,
            s.runs,
            s.clone.runs_per_sec,
            s.dirty.runs_per_sec,
            s.dirty.p50_us,
            s.dirty.p95_us,
            s.dirty.runs_per_sec / s.clone.runs_per_sec.max(1e-9)
        );
    }

    let path = std::env::var("BENCH_CAMPAIGN_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json").into());
    emit_json(&scenarios, &path);
    eprintln!("wrote {path}");
}
