//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * checkpoint-clone restore vs full re-execution of the warm-up phase,
//! * early-termination optimisation on vs off (the paper's campaign
//!   speed-up feature).

use criterion::{criterion_group, criterion_main, Criterion};
use marvel_bench::golden;
use marvel_core::{run_campaign, CampaignConfig, Golden};
use marvel_cpu::CoreConfig;
use marvel_ir::assemble;
use marvel_isa::Isa;
use marvel_soc::{SysEvent, System};

/// Checkpoint restore: clone vs re-running warm-up from reset.
fn checkpoint_vs_rerun(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_vs_rerun");
    g.sample_size(10);
    let gold = golden("bitcount", Isa::Arm);
    g.bench_function("clone_restore", |b| {
        b.iter(|| {
            let sys = gold.ckpt.clone();
            sys.cycle
        })
    });
    let bin = assemble(&marvel_workloads::mibench::build("bitcount"), Isa::Arm).unwrap();
    g.bench_function("rerun_warmup", |b| {
        b.iter(|| {
            let mut sys = System::new(CoreConfig::table2(Isa::Arm));
            sys.load_binary(&bin);
            loop {
                match sys.tick() {
                    SysEvent::Checkpoint => break sys.cycle,
                    SysEvent::Halted | SysEvent::Trapped(_) => unreachable!(),
                    _ => {}
                }
            }
        })
    });
    g.finish();
}

/// Early termination on vs off over a small PRF campaign.
fn early_termination(c: &mut Criterion) {
    let mut g = c.benchmark_group("early_termination");
    g.sample_size(10);
    let gold: Golden = golden("qsort", Isa::RiscV);
    for (label, et) in [("on", true), ("off", false)] {
        let cc = CampaignConfig { n_faults: 8, workers: 1, early_termination: et, ..Default::default() };
        g.bench_function(label, |b| {
            b.iter(|| run_campaign(&gold, marvel_soc::Target::PrfInt, &cc).avf())
        });
    }
    g.finish();
}

criterion_group!(benches, checkpoint_vs_rerun, early_termination);
criterion_main!(benches);
