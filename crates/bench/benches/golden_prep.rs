//! Golden-run preparation cost: cycle-level simulation to the checkpoint
//! (`Golden::prepare`) vs the marvel-ref architectural fast-forward
//! (`Golden::prepare_fast`). The ratio between the two groups is the
//! campaign-setup speedup quoted in EXPERIMENTS.md; both paths end in the
//! same post-checkpoint golden run, so the delta is purely the cost of
//! simulating the pre-checkpoint warm-up cycle by cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use marvel_bench::{golden, golden_fast, golden_warmup};
use marvel_isa::Isa;

/// Warm-up iterations for the synthetic init-heavy workload (~0.3M
/// pre-checkpoint instructions against a ~3k-instruction kernel).
const WARM_ITERS: i64 = 40_000;

fn prep_cycle_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_prep_cycle");
    g.sample_size(10);
    for isa in Isa::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(isa.name()), &isa, |b, &isa| {
            b.iter(|| golden("crc32", isa).exec_cycles)
        });
    }
    g.finish();
}

fn prep_reference_fast_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_prep_ref");
    g.sample_size(10);
    for isa in Isa::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(isa.name()), &isa, |b, &isa| {
            b.iter(|| golden_fast("crc32", isa).exec_cycles)
        });
    }
    g.finish();
}

fn prep_cycle_level_warmup_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_prep_cycle_warmup");
    g.sample_size(10);
    for isa in Isa::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(isa.name()), &isa, |b, &isa| {
            b.iter(|| golden_warmup(WARM_ITERS, isa, false).exec_cycles)
        });
    }
    g.finish();
}

fn prep_reference_fast_forward_warmup_heavy(c: &mut Criterion) {
    let mut g = c.benchmark_group("golden_prep_ref_warmup");
    g.sample_size(10);
    for isa in Isa::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(isa.name()), &isa, |b, &isa| {
            b.iter(|| golden_warmup(WARM_ITERS, isa, true).exec_cycles)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    prep_cycle_level,
    prep_reference_fast_forward,
    prep_cycle_level_warmup_heavy,
    prep_reference_fast_forward_warmup_heavy
);
criterion_main!(benches);
