//! Telemetry overhead benchmarks: the observability subsystem must stay
//! under ~2% on the simulator hot path, and a disabled registry must be
//! near-free.
//!
//! Three comparisons:
//! * `injection_run/{off,on,taint}` — one full injection run with
//!   telemetry disabled vs registry + flight recorder enabled vs the
//!   full marvel-taint shadow plane on top.
//! * `counter/{noop,enabled}` — the raw `Counter::inc` hot path.
//! * `histogram_record` — `Histogram::record` cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use marvel_bench::golden;
use marvel_core::{run_one, CampaignConfig, FaultMask, FaultModel, TelemetryConfig};
use marvel_isa::Isa;
use marvel_soc::Target;
use marvel_telemetry::{Counter, Registry};

fn injection_run_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("injection_run");
    g.sample_size(10);
    let gold = golden("qsort", Isa::RiscV);
    let mask = FaultMask {
        target: Target::L1D,
        bits: vec![4321],
        model: FaultModel::Transient { cycle: gold.ckpt_cycle + gold.exec_cycles / 2 },
    };
    let off = CampaignConfig { n_faults: 1, ..Default::default() };
    let on = CampaignConfig {
        n_faults: 1,
        telemetry: TelemetryConfig {
            registry: Registry::new(),
            progress_interval_ms: 0,
            flight_capacity: 64,
            taint: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let taint = CampaignConfig {
        n_faults: 1,
        telemetry: TelemetryConfig {
            registry: Registry::new(),
            progress_interval_ms: 0,
            flight_capacity: 64,
            taint: true,
            ..Default::default()
        },
        ..Default::default()
    };
    g.bench_function("off", |b| b.iter(|| run_one(&gold, &mask, &off)));
    g.bench_function("on", |b| b.iter(|| run_one(&gold, &mask, &on)));
    g.bench_function("taint", |b| b.iter(|| run_one(&gold, &mask, &taint)));
    g.finish();
}

fn counter_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    let noop = Counter::noop();
    g.bench_function("noop", |b| {
        b.iter(|| {
            for i in 0..N {
                black_box(&noop).add(black_box(i));
            }
        })
    });
    let reg = Registry::new();
    let live = reg.counter("bench.n");
    g.bench_function("enabled", |b| {
        b.iter(|| {
            for i in 0..N {
                black_box(&live).add(black_box(i));
            }
        })
    });
    g.finish();
}

fn histogram_record(c: &mut Criterion) {
    const N: u64 = 100_000;
    let reg = Registry::new();
    let h = reg.histogram("bench.h").unwrap();
    let mut g = c.benchmark_group("histogram");
    g.throughput(Throughput::Elements(N));
    g.bench_function("record", |b| {
        b.iter(|| {
            for i in 0..N {
                h.record(black_box(i));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, injection_run_overhead, counter_hot_path, histogram_record);
criterion_main!(benches);
