//! Simulator micro-benchmarks: core cycle throughput per ISA, accelerator
//! throughput, cache and PRF hot paths, checkpoint clone cost, and
//! single-injection-run latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use marvel_accel::FuConfig;
use marvel_bench::golden;
use marvel_core::{run_one, CampaignConfig, FaultMask, FaultModel};
use marvel_cpu::{Cache, CacheConfig, PhysRegFile};
use marvel_isa::Isa;
use marvel_soc::Target;
use marvel_workloads::accel::design;

fn core_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_cycles");
    g.sample_size(10);
    for isa in Isa::ALL {
        let gold = golden("crc32", isa);
        g.throughput(Throughput::Elements(20_000));
        g.bench_with_input(BenchmarkId::from_parameter(isa.name()), &gold, |b, gold| {
            b.iter(|| {
                let mut sys = gold.ckpt.clone();
                for _ in 0..20_000 {
                    sys.tick();
                }
                sys.cycle
            })
        });
    }
    g.finish();
}

fn accel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("accel_cycles");
    g.sample_size(10);
    let d = design("FFT");
    let h = (d.make)(FuConfig::default());
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("fft_dsa", |b| {
        b.iter(|| {
            let mut h = h.clone();
            h.run(None, 20_000)
        })
    });
    g.finish();
}

fn checkpoint_clone(c: &mut Criterion) {
    let gold = golden("qsort", Isa::RiscV);
    c.bench_function("checkpoint_clone", |b| b.iter(|| gold.ckpt.clone()));
}

fn injection_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_injection_run");
    g.sample_size(10);
    let gold = golden("qsort", Isa::RiscV);
    let cc = CampaignConfig { n_faults: 1, ..Default::default() };
    let mask = FaultMask {
        target: Target::PrfInt,
        bits: vec![1234],
        model: FaultModel::Transient { cycle: gold.ckpt_cycle + gold.exec_cycles / 2 },
    };
    g.bench_function("prf_transient", |b| b.iter(|| run_one(&gold, &mask, &cc)));
    g.finish();
}

fn cache_hot_path(c: &mut Criterion) {
    let mut cache = Cache::new(CacheConfig { size: 32 * 1024, assoc: 4, line: 64, latency: 2 });
    for i in 0..512u64 {
        cache.fill(0x4000_0000 + i * 64, &[0u8; 64]);
    }
    c.bench_function("cache_lookup_read", |b| {
        let mut a = 0x4000_0000u64;
        b.iter(|| {
            a = 0x4000_0000 + ((a + 64) & 0x7FFF);
            let way = cache.lookup(a & !63).unwrap();
            cache.read(a & !7, 8, way)
        })
    });
}

fn prf_hot_path(c: &mut Criterion) {
    let mut prf = PhysRegFile::new(128);
    c.bench_function("prf_write_read", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 128;
            prf.write(i, i as u64 * 3);
            prf.read(i)
        })
    });
}

criterion_group!(
    benches,
    core_throughput,
    accel_throughput,
    checkpoint_clone,
    injection_run,
    cache_hot_path,
    prf_hot_path
);
criterion_main!(benches);
