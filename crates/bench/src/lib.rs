//! # marvel-bench
//!
//! Criterion micro-benchmarks for the simulator stack plus the ablation
//! studies called out in DESIGN.md (checkpoint-clone vs re-execution,
//! early termination on/off). The headline figure/table reproductions
//! live in `marvel-experiments`.

use marvel_core::Golden;
use marvel_cpu::CoreConfig;
use marvel_ir::assemble;
use marvel_isa::Isa;
use marvel_soc::System;

/// Build a checkpointed golden for a benchmark (shared by bench targets).
pub fn golden(bench: &str, isa: Isa) -> Golden {
    let m = marvel_workloads::mibench::build(bench);
    let bin = assemble(&m, isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}
