//! # marvel-bench
//!
//! Criterion micro-benchmarks for the simulator stack plus the ablation
//! studies called out in DESIGN.md (checkpoint-clone vs re-execution,
//! early termination on/off). The headline figure/table reproductions
//! live in `marvel-experiments`.

use marvel_core::Golden;
use marvel_cpu::CoreConfig;
use marvel_ir::{assemble, FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};
use marvel_soc::System;

/// Build a checkpointed golden for a benchmark (shared by bench targets).
pub fn golden(bench: &str, isa: Isa) -> Golden {
    let m = marvel_workloads::mibench::build(bench);
    let bin = assemble(&m, isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare(sys, 80_000_000).unwrap()
}

/// Same golden, prepared by fast-forwarding to the checkpoint with the
/// marvel-ref architectural interpreter instead of the cycle-level core.
pub fn golden_fast(bench: &str, isa: Isa) -> Golden {
    let m = marvel_workloads::mibench::build(bench);
    let bin = assemble(&m, isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    Golden::prepare_fast(sys, 80_000_000).unwrap()
}

/// Synthetic workload whose runtime is dominated by a pre-checkpoint
/// warm-up phase: `warm_iters` iterations of an LCG churning a 512-entry
/// table, then a short post-checkpoint checksum kernel. The MiBench ports
/// all reach their checkpoint within the first ~30% of the run, so they
/// understate what the reference-model fast-forward buys on workloads
/// with a long initialisation phase — this is that shape, isolated.
pub fn warmup_heavy_module(warm_iters: i64) -> Module {
    let mut m = Module::new();
    let buf = m.global_zeroed("tbl", 4096, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let base = b.addr_of(buf);
    let mulc = b.li(6364136223846793005);
    let addc = b.li(1442695040888963407);
    let lim = b.li(warm_iters);
    let acc = b.li(0x2545_f491);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let mixed = b.bin(AluOp::Mul, acc, mulc);
    let next = b.bin(AluOp::Add, mixed, addc);
    b.assign(acc, next);
    let slot = b.bin(AluOp::And, i, 511);
    b.store_idx(MemWidth::D, acc, base, slot);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, lim, top);
    b.checkpoint();
    let j = b.li(0);
    let sum = b.li(0);
    let top2 = b.new_label();
    b.bind(top2);
    let v = b.load_idx(MemWidth::D, false, base, j);
    let s = b.bin(AluOp::Xor, sum, v);
    b.assign(sum, s);
    let j2 = b.bin(AluOp::Add, j, 1);
    b.assign(j, j2);
    b.br(Cond::Lt, j, 512, top2);
    b.out_byte(sum);
    let hi = b.bin(AluOp::Srl, sum, 8);
    b.out_byte(hi);
    b.halt();
    m.define(f, b.build());
    m
}

/// Golden for [`warmup_heavy_module`], via either prep path.
pub fn golden_warmup(warm_iters: i64, isa: Isa, fast: bool) -> Golden {
    let bin = assemble(&warmup_heavy_module(warm_iters), isa).unwrap();
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    if fast {
        Golden::prepare_fast(sys, 80_000_000).unwrap()
    } else {
        Golden::prepare(sys, 80_000_000).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_heavy_preps_agree() {
        for isa in Isa::ALL {
            let slow = golden_warmup(4_000, isa, false);
            let fast = golden_warmup(4_000, isa, true);
            assert!(!slow.ref_prepped && fast.ref_prepped, "{isa}");
            assert_eq!(fast.output, slow.output, "{isa}: golden output");
            assert_eq!(fast.trace, slow.trace, "{isa}: commit trace");
        }
    }
}
