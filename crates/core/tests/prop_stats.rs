//! Property tests on the statistical machinery and fault-mask generator.

use marvel_core::{error_margin, required_samples, weighted_avf, FaultKind, MaskGenerator, Target};
use proptest::prelude::*;

proptest! {
    #[test]
    fn margin_monotone_in_samples(n1 in 10usize..5000, n2 in 10usize..5000) {
        let (lo, hi) = (n1.min(n2), n1.max(n2));
        prop_assume!(lo != hi);
        prop_assert!(error_margin(hi, u64::MAX, 0.95) <= error_margin(lo, u64::MAX, 0.95));
    }

    #[test]
    fn margin_bounded(n in 1usize..100_000, pop in 1u64..u64::MAX) {
        let e = error_margin(n, pop, 0.95);
        prop_assert!((0.0..=1.0).contains(&e), "margin {e}");
    }

    #[test]
    fn required_samples_achieves_margin(e in 0.01f64..0.2) {
        let n = required_samples(e, u64::MAX / 2, 0.95);
        prop_assert!(error_margin(n, u64::MAX / 2, 0.95) <= e + 1e-6);
        // And one fewer sample would miss it (tightness up to rounding).
        if n > 2 {
            prop_assert!(error_margin(n - 2, u64::MAX / 2, 0.95) > e - 0.002);
        }
    }

    #[test]
    fn weighted_avf_within_hull(avfs in prop::collection::vec((0.0f64..1.0, 0.001f64..100.0), 1..20)) {
        let w = weighted_avf(&avfs);
        let lo = avfs.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
        let hi = avfs.iter().map(|(a, _)| *a).fold(0.0, f64::max);
        prop_assert!(w >= lo - 1e-12 && w <= hi + 1e-12, "{lo} <= {w} <= {hi}");
    }

    #[test]
    fn masks_respect_bounds(seed in any::<u64>(), bit_len in 1u64..1_000_000, n in 1usize..200) {
        let mut g = MaskGenerator::new(seed);
        let masks = g.single_bit(Target::L1D, bit_len, FaultKind::Transient, 5..105, n);
        prop_assert_eq!(masks.len(), n);
        for m in &masks {
            prop_assert!(m.bits[0] < bit_len);
            match m.model {
                marvel_core::FaultModel::Transient { cycle } => prop_assert!((5..105).contains(&cycle)),
                _ => prop_assert!(false, "wrong model"),
            }
        }
    }

    #[test]
    fn adjacent_bursts_in_bounds(seed in any::<u64>(), bit_len in 64u64..100_000, burst in 1u64..16) {
        let mut g = MaskGenerator::new(seed);
        let masks = g.adjacent_multi_bit(Target::L1I, bit_len, burst, FaultKind::Permanent, 0..1, 50);
        for m in &masks {
            prop_assert_eq!(m.bits.len() as u64, burst);
            prop_assert!(*m.bits.last().unwrap() < bit_len);
        }
    }
}
