//! Fault models and fault masks (the paper's Table III).
//!
//! * **Transient**: a storage element's bit is flipped at a chosen clock
//!   cycle of the execution; position and cycle can be random or directed.
//! * **Permanent**: a storage element's bit is stuck at 0 or 1 from the
//!   checkpoint onward.
//!
//! Single- and multi-bit variants of both are supported, as are mixed
//! multi-fault scenarios (several masks applied to one run).

use marvel_soc::Target;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault model of one mask (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModel {
    /// Flip at `cycle` (absolute system cycle).
    Transient { cycle: u64 },
    /// Stuck-at `value` from the checkpoint onward.
    Permanent { value: bool },
}

impl FaultModel {
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultModel::Transient { .. })
    }

    /// Paper-style description row.
    pub fn describe(&self) -> &'static str {
        match self {
            FaultModel::Transient { .. } => {
                "A storage element's bit value is flipped in a clock cycle of the program \
                 execution; the bit position and the cycle can be set arbitrarily"
            }
            FaultModel::Permanent { .. } => {
                "A storage element's bit value is permanently set to '0' or to '1'; the bit \
                 position can be set arbitrarily"
            }
        }
    }
}

/// A fault mask: which bits of which structure, under which model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMask {
    pub target: Target,
    /// Bit indices within the target's flat bit space (one for single-bit
    /// faults, several for multi-bit faults).
    pub bits: Vec<u64>,
    pub model: FaultModel,
}

/// Shorthand for the model axis of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Transient,
    /// Stuck-at with randomly chosen polarity per fault.
    Permanent,
    PermanentStuck0,
    PermanentStuck1,
}

/// Deterministic, seeded generator of statistically sampled fault masks
/// (uniform distribution over bits × cycles, per Leveugle et al.).
#[derive(Debug)]
pub struct MaskGenerator {
    rng: StdRng,
}

impl MaskGenerator {
    pub fn new(seed: u64) -> Self {
        MaskGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    /// `n` single-bit masks for `target` with `bit_len` injectable bits.
    /// Transient cycles are drawn uniformly from `window`.
    pub fn single_bit(
        &mut self,
        target: Target,
        bit_len: u64,
        kind: FaultKind,
        window: std::ops::Range<u64>,
        n: usize,
    ) -> Vec<FaultMask> {
        assert!(bit_len > 0, "target has no injectable bits");
        (0..n)
            .map(|_| FaultMask {
                target,
                bits: vec![self.rng.gen_range(0..bit_len)],
                model: self.model(kind, &window),
            })
            .collect()
    }

    /// `n` multi-bit masks of `burst` adjacent bits each (spatial
    /// multi-bit upsets).
    pub fn adjacent_multi_bit(
        &mut self,
        target: Target,
        bit_len: u64,
        burst: u64,
        kind: FaultKind,
        window: std::ops::Range<u64>,
        n: usize,
    ) -> Vec<FaultMask> {
        assert!(burst >= 1 && burst <= bit_len);
        (0..n)
            .map(|_| {
                let start = self.rng.gen_range(0..bit_len - burst + 1);
                FaultMask {
                    target,
                    bits: (start..start + burst).collect(),
                    model: self.model(kind, &window),
                }
            })
            .collect()
    }

    fn model(&mut self, kind: FaultKind, window: &std::ops::Range<u64>) -> FaultModel {
        match kind {
            FaultKind::Transient => FaultModel::Transient {
                cycle: if window.is_empty() { window.start } else { self.rng.gen_range(window.clone()) },
            },
            FaultKind::Permanent => FaultModel::Permanent { value: self.rng.gen_bool(0.5) },
            FaultKind::PermanentStuck0 => FaultModel::Permanent { value: false },
            FaultKind::PermanentStuck1 => FaultModel::Permanent { value: true },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let mk = |seed| {
            MaskGenerator::new(seed).single_bit(Target::PrfInt, 8192, FaultKind::Transient, 100..200, 50)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn masks_within_ranges() {
        let masks =
            MaskGenerator::new(1).single_bit(Target::L1D, 1000, FaultKind::Transient, 10..20, 200);
        for m in &masks {
            assert!(m.bits[0] < 1000);
            match m.model {
                FaultModel::Transient { cycle } => assert!((10..20).contains(&cycle)),
                _ => panic!("wrong model"),
            }
        }
    }

    #[test]
    fn adjacent_bursts_are_contiguous() {
        let masks = MaskGenerator::new(2).adjacent_multi_bit(
            Target::L1D,
            512,
            4,
            FaultKind::PermanentStuck1,
            0..1,
            100,
        );
        for m in &masks {
            assert_eq!(m.bits.len(), 4);
            for w in m.bits.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
            assert!(*m.bits.last().unwrap() < 512);
            assert_eq!(m.model, FaultModel::Permanent { value: true });
        }
    }

    #[test]
    fn stuck_polarity_mix() {
        let masks = MaskGenerator::new(3).single_bit(Target::L1I, 100, FaultKind::Permanent, 0..1, 200);
        let ones =
            masks.iter().filter(|m| matches!(m.model, FaultModel::Permanent { value: true })).count();
        assert!(ones > 50 && ones < 150, "polarities should be mixed: {ones}");
    }
}
