//! The framework capability matrix — regenerates the paper's Table I row
//! for "This Work" alongside the state-of-the-art rows.

/// One framework's capabilities (Table I columns).
#[derive(Debug, Clone)]
pub struct FrameworkRow {
    pub name: &'static str,
    pub sim_uarch: bool,
    pub sim_gem5: bool,
    pub full_system: bool,
    pub fi_cpu: bool,
    pub fi_dsa: bool,
    pub fi_soc: bool,
    pub isa_x86: bool,
    pub isa_arm: bool,
    pub isa_riscv: bool,
    pub fm_transient: bool,
    pub fm_permanent: bool,
    pub bits_single: bool,
    pub bits_multiple: bool,
    pub metric_avf: bool,
    pub metric_hvf: bool,
}

impl FrameworkRow {
    fn flags(&self) -> [bool; 15] {
        [
            self.sim_uarch,
            self.sim_gem5,
            self.full_system,
            self.fi_cpu,
            self.fi_dsa,
            self.fi_soc,
            self.isa_x86,
            self.isa_arm,
            self.isa_riscv,
            self.fm_transient,
            self.fm_permanent,
            self.bits_single,
            self.bits_multiple,
            self.metric_avf,
            self.metric_hvf,
        ]
    }

    /// Number of supported capabilities.
    pub fn score(&self) -> usize {
        self.flags().iter().filter(|&&f| f).count()
    }
}

/// Column headers, paper order.
pub const COLUMNS: [&str; 15] = [
    "uArch",
    "gem5",
    "FS",
    "FI:CPU",
    "FI:DSA",
    "FI:SoC",
    "x86",
    "Arm",
    "RISC-V",
    "Transient",
    "Permanent",
    "Single",
    "Multiple",
    "AVF",
    "HVF",
];

/// The paper's Table I, including the "This Work" row this repository
/// implements. ("gem5" is read as "cycle-level full-featured simulator
/// substrate" for this reproduction.)
pub fn table1() -> Vec<FrameworkRow> {
    let f = false;
    let t = true;
    vec![
        FrameworkRow {
            name: "FIMSIM",
            sim_uarch: t,
            sim_gem5: t,
            full_system: f,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: f,
            isa_arm: f,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: t,
            bits_single: t,
            bits_multiple: t,
            metric_avf: t,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "GeFIN",
            sim_uarch: t,
            sim_gem5: t,
            full_system: t,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: t,
            isa_arm: t,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: t,
            bits_single: t,
            bits_multiple: t,
            metric_avf: t,
            metric_hvf: t,
        },
        FrameworkRow {
            name: "MaFIN",
            sim_uarch: t,
            sim_gem5: f,
            full_system: t,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: t,
            isa_arm: f,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: t,
            bits_single: t,
            bits_multiple: t,
            metric_avf: t,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "GemFI",
            sim_uarch: f,
            sim_gem5: t,
            full_system: f,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: t,
            isa_arm: f,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: t,
            bits_single: t,
            bits_multiple: f,
            metric_avf: f,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "Thales/Fidelity",
            sim_uarch: f,
            sim_gem5: f,
            full_system: f,
            fi_cpu: f,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: f,
            isa_arm: f,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: f,
            bits_single: t,
            bits_multiple: t,
            metric_avf: f,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "LLFI/LLTFI",
            sim_uarch: f,
            sim_gem5: f,
            full_system: f,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: t,
            isa_arm: t,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: f,
            bits_single: t,
            bits_multiple: f,
            metric_avf: f,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "gem5-Approxilyzer",
            sim_uarch: f,
            sim_gem5: t,
            full_system: t,
            fi_cpu: t,
            fi_dsa: f,
            fi_soc: f,
            isa_x86: t,
            isa_arm: f,
            isa_riscv: f,
            fm_transient: t,
            fm_permanent: f,
            bits_single: t,
            bits_multiple: f,
            metric_avf: f,
            metric_hvf: f,
        },
        FrameworkRow {
            name: "This Work",
            sim_uarch: t,
            sim_gem5: t,
            full_system: t,
            fi_cpu: t,
            fi_dsa: t,
            fi_soc: t,
            isa_x86: t,
            isa_arm: t,
            isa_riscv: t,
            fm_transient: t,
            fm_permanent: t,
            bits_single: t,
            bits_multiple: t,
            metric_avf: t,
            metric_hvf: t,
        },
    ]
}

/// Render Table I as text.
pub fn render_table1() -> String {
    let rows = table1();
    let mut out = String::new();
    out.push_str(&format!("{:<20}", "Framework"));
    for c in COLUMNS {
        out.push_str(&format!("{c:>10}"));
    }
    out.push('\n');
    for r in &rows {
        out.push_str(&format!("{:<20}", r.name));
        for f in r.flags() {
            out.push_str(&format!("{:>10}", if f { "x" } else { "" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_work_supports_everything() {
        let rows = table1();
        let this = rows.iter().find(|r| r.name == "This Work").unwrap();
        assert_eq!(this.score(), COLUMNS.len());
        // And strictly dominates every prior framework.
        for r in &rows {
            if r.name != "This Work" {
                assert!(r.score() < this.score(), "{} should not match This Work", r.name);
            }
        }
    }

    #[test]
    fn table_renders() {
        let s = render_table1();
        assert!(s.contains("This Work"));
        assert!(s.contains("GeFIN"));
        assert_eq!(s.lines().count(), table1().len() + 1);
    }
}
