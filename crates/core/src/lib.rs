//! # marvel-core
//!
//! The gem5-MARVEL fault-injection framework (the paper's primary
//! contribution): microarchitecture-level statistical fault injection for
//! heterogeneous SoCs — CPUs of all three prevailing 64-bit ISA flavours
//! plus SALAM-style domain-specific accelerators — under transient and
//! permanent fault models, reporting both AVF and HVF.
//!
//! Layout mirrors the paper's Fig. 2 campaign pipeline:
//!
//! 1. [`fault::MaskGenerator`] draws statistically sampled fault masks;
//! 2. [`campaign::Golden::prepare`] builds the checkpoint + fault-free
//!    reference (output and commit trace);
//! 3. [`campaign::run_campaign`] fans injection runs out over parallel
//!    workers with early termination for definitively masked faults;
//! 4. results classify into Masked/SDC/Crash (AVF) and Masked/Corruption
//!    (HVF), with [`stats`] providing error margins, weighted AVF and the
//!    OPF performance-reliability metric.
//!
//! Accelerator-side campaigns use [`dsa::run_dsa_campaign`] on a
//! [`dsa::DsaHarness`] (DMA-in → compute → DMA-out, cycle-timed
//! injection).

pub mod campaign;
pub mod dsa;
pub mod fault;
pub mod features;
pub mod report;
pub mod stats;

pub use campaign::{
    build_campaign_ladder, campaign_masks, drive_masks, run_campaign, run_masks, run_one, run_one_in,
    run_one_laddered, run_one_spanned, trace_pipeline_pair, CampaignConfig, CampaignResult,
    DriveOutcome, DsaEngine, FaultEffect, Golden, GoldenError, HvfEffect, Ladder, LadderRung, ResetMode,
    RunRecord, TelemetryConfig, WorkerCtx,
};
pub use dsa::{
    build_dsa_ladder, drive_dsa_masks, dsa_campaign_masks, run_dsa_campaign, run_dsa_masks,
    DsaCampaignResult, DsaGolden, DsaHarness, DsaLadder, DsaLadderRung, DsaOutcome, DsaSimState,
};
pub use fault::{FaultKind, FaultMask, FaultModel, MaskGenerator};
pub use marvel_soc::Target;
pub use report::{
    attribution_by_structure, attribution_csv, attribution_jsonl, crash_breakdown, csv_row,
    render_attribution, render_campaign, PropagationMatrix, StructureAttribution, CSV_HEADER,
};
pub use stats::{error_margin, opf, required_samples, weighted_avf};
