//! Standalone DSA fault-injection harness: DMA-in → compute → DMA-out with
//! cycle-accurate injection timing, used for the paper's Table IV /
//! Fig. 14 / Fig. 17 accelerator campaigns.
//!
//! For SPM/RegBank targets, HVF and AVF are identical (Section IV-D): any
//! non-masked fault is architecturally visible, so only the AVF classes
//! are reported.

use crate::campaign::{
    taint_finish, CampaignConfig, DriveOutcome, DsaEngine, FaultEffect, ResetMode, RunRecord,
};
use crate::fault::{FaultMask, FaultModel, MaskGenerator};
use crate::stats::error_margin;
use marvel_accel::{AccelState, Accelerator, DmaEngine, DmaJob, SramFate};
use marvel_soc::Target;
use marvel_telemetry::{Event, FlightRecorder, PhaseId, ProgressMeter, Scope, SpanCollector, SpanLane};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A self-contained accelerator experiment: the accelerator, a private RAM
/// buffer, DMA plans and entry arguments.
#[derive(Debug, Clone)]
pub struct DsaHarness {
    pub accel: Accelerator,
    pub ram: Vec<u8>,
    pub jobs_in: Vec<DmaJob>,
    pub jobs_out: Vec<DmaJob>,
    pub args: Vec<u64>,
    /// Byte range of `ram` holding the result after DMA-out.
    pub output: std::ops::Range<usize>,
}

/// Outcome of one harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsaOutcome {
    Done {
        output: Vec<u8>,
        cycles: u64,
    },
    /// Datapath error (out-of-bounds access) or DMA failure.
    Error {
        cycles: u64,
    },
    Timeout,
}

impl DsaHarness {
    /// Apply a fault mask to this harness's accelerator.
    fn apply(&mut self, mask: &FaultMask, permanent_value: Option<bool>) {
        for &bit in &mask.bits {
            match (mask.target, permanent_value) {
                (Target::Spm { mem, .. }, None) => {
                    self.accel.spms[mem].flip_bit(bit);
                }
                (Target::Spm { mem, .. }, Some(v)) => self.accel.spms[mem].set_stuck(bit, v),
                (Target::RegBank { mem, .. }, None) => {
                    self.accel.regbanks[mem].flip_bit(bit);
                }
                (Target::RegBank { mem, .. }, Some(v)) => self.accel.regbanks[mem].set_stuck(bit, v),
                (Target::Mmr { .. }, None) => {
                    self.accel.mmr.flip_bit(bit);
                }
                (Target::Mmr { .. }, Some(v)) => self.accel.mmr.set_stuck(bit, v),
                _ => panic!("{:?} is not a DSA target", mask.target),
            }
        }
    }

    fn bit_len(&self, target: Target) -> u64 {
        match target {
            Target::Spm { mem, .. } => self.accel.spms[mem].bit_len(),
            Target::RegBank { mem, .. } => self.accel.regbanks[mem].bit_len(),
            Target::Mmr { .. } => self.accel.mmr.bit_len(),
            _ => panic!("{target:?} is not a DSA target"),
        }
    }

    /// Fate of the armed (injected) bit for `target`, if any.
    pub fn fault_fate(&self, target: Target) -> Option<SramFate> {
        match target {
            Target::Spm { mem, .. } => self.accel.spms[mem].fate(),
            Target::RegBank { mem, .. } => self.accel.regbanks[mem].fate(),
            Target::Mmr { .. } => self.accel.mmr.fate(),
            _ => None,
        }
    }

    /// Restore this harness to the pristine golden copy it was cloned
    /// from (zero-copy campaign reset). The accelerator resets through
    /// its SPM write watermarks; the private RAM buffer is copied
    /// wholesale — DSA RAM is a few hundred bytes, not the SoC's
    /// megabytes. Returns state bytes copied.
    pub fn reset_from(&mut self, pristine: &DsaHarness) -> u64 {
        let mut bytes = self.accel.reset_from(&pristine.accel);
        self.ram.clone_from(&pristine.ram);
        bytes += self.ram.len() as u64;
        self.jobs_in.clone_from(&pristine.jobs_in);
        self.jobs_out.clone_from(&pristine.jobs_out);
        self.args.clone_from(&pristine.args);
        self.output = pristine.output.clone();
        bytes + 16
    }

    /// Run the full DMA-in → compute → DMA-out sequence, optionally
    /// injecting `mask` at its transient cycle (permanent faults are
    /// applied before the run).
    pub fn run(&mut self, mask: Option<&FaultMask>, watchdog: u64) -> DsaOutcome {
        self.run_recorded(mask, watchdog, &mut FlightRecorder::disabled())
    }

    /// [`DsaHarness::run`] with a flight recorder capturing the phase
    /// timeline and fault lifecycle. Recording is observational only — the
    /// run is cycle-identical to an unrecorded one.
    pub fn run_recorded(
        &mut self,
        mask: Option<&FaultMask>,
        watchdog: u64,
        fr: &mut FlightRecorder,
    ) -> DsaOutcome {
        // Permanent faults apply immediately.
        if let Some(m) = mask {
            if let FaultModel::Permanent { value } = m.model {
                self.apply(&{ m.clone() }, Some(value));
                fr.record(
                    0,
                    Event::FaultArmed {
                        target: m.target.name(),
                        bit: m.bits.first().copied().unwrap_or(0),
                        model: "permanent",
                    },
                );
            }
        }
        let inject_at = mask.and_then(|m| match m.model {
            FaultModel::Transient { cycle } => Some(cycle),
            _ => None,
        });

        let mut st = DsaSimState::start(self);
        let mut armed = inject_at.is_none();
        loop {
            // Bulk-advance to the next special cycle; every special cycle
            // itself goes through the single-cycle path below so event
            // ordering matches the historical per-cycle loop exactly.
            let mut stop = watchdog;
            if !armed {
                if let Some(c) = inject_at {
                    stop = stop.min(c.saturating_sub(1));
                }
            }
            if stop > st.cycle {
                if let Some(o) = self.advance_sim(&mut st, stop, fr) {
                    return o;
                }
            }
            if st.cycle + 1 > watchdog {
                st.cycle += 1;
                fr.record(st.cycle, Event::Trap { tag: "watchdog" });
                return DsaOutcome::Timeout;
            }
            if !armed && inject_at == Some(st.cycle + 1) {
                let m = mask.unwrap().clone();
                self.apply(&m, None);
                fr.record(
                    st.cycle + 1,
                    Event::FaultArmed {
                        target: m.target.name(),
                        bit: m.bits.first().copied().unwrap_or(0),
                        model: "transient",
                    },
                );
                armed = true;
            }
            let one = st.cycle + 1;
            if let Some(o) = self.advance_sim(&mut st, one, fr) {
                return o;
            }
        }
    }

    /// Advance the run one cycle (the phase action for `st.cycle`, which
    /// the caller has already incremented); returns the outcome once the
    /// run finishes. Split from [`run_recorded`](Self::run_recorded) so
    /// campaign drivers can snapshot/resume mid-run state for the
    /// checkpoint ladder.
    fn step_sim(&mut self, st: &mut DsaSimState, fr: &mut FlightRecorder) -> Option<DsaOutcome> {
        let shadow = (!st.ram_shadow.is_empty()).then_some(&mut st.ram_shadow[..]);
        match st.phase {
            0 => {
                if st.dma.busy() {
                    if !st.dma.tick_tainted(&mut self.ram, shadow, &mut self.accel) {
                        fr.record(st.cycle, Event::Trap { tag: "dma-error" });
                        return Some(DsaOutcome::Error { cycles: st.cycle });
                    }
                } else {
                    fr.record(
                        st.cycle,
                        Event::Note { label: "dma_in_bytes", value: st.dma.bytes_moved },
                    );
                    st.phase = 1;
                }
            }
            1 => match self.accel.tick() {
                AccelState::Done => {
                    fr.record(
                        st.cycle,
                        Event::Note { label: "compute_cycles", value: self.accel.stats.compute_cycles },
                    );
                    for j in &self.jobs_out {
                        st.dma.push(*j);
                    }
                    st.phase = 2;
                }
                AccelState::Error(_) => {
                    fr.record(st.cycle, Event::Trap { tag: "accel-error" });
                    return Some(DsaOutcome::Error { cycles: st.cycle });
                }
                _ => {}
            },
            _ => {
                if st.dma.busy() {
                    if !st.dma.tick_tainted(&mut self.ram, shadow, &mut self.accel) {
                        fr.record(st.cycle, Event::Trap { tag: "dma-error" });
                        return Some(DsaOutcome::Error { cycles: st.cycle });
                    }
                } else {
                    return Some(DsaOutcome::Done {
                        output: self.ram[self.output.clone()].to_vec(),
                        cycles: st.cycle,
                    });
                }
            }
        }
        None
    }

    /// Advance the run up to absolute cycle `limit` (or a terminal
    /// outcome, whichever comes first). Semantically identical to calling
    /// [`step_sim`](Self::step_sim) once per cycle; when the accelerator
    /// is on the event engine, the compute phase instead jumps between
    /// schedule events via [`Accelerator::advance`], bulk-charging the
    /// skipped cycles. DMA phases move bytes every cycle and stay
    /// cycle-stepped either way.
    fn advance_sim(
        &mut self,
        st: &mut DsaSimState,
        limit: u64,
        fr: &mut FlightRecorder,
    ) -> Option<DsaOutcome> {
        if !self.accel.event_engine() {
            while st.cycle < limit {
                st.cycle += 1;
                if let Some(o) = self.step_sim(st, fr) {
                    return Some(o);
                }
            }
            return None;
        }
        while st.cycle < limit {
            if st.phase != 1 {
                st.cycle += 1;
                if let Some(o) = self.step_sim(st, fr) {
                    return Some(o);
                }
                continue;
            }
            let (state, used) = self.accel.advance(limit - st.cycle);
            st.cycle += used;
            match state {
                AccelState::Done => {
                    fr.record(
                        st.cycle,
                        Event::Note { label: "compute_cycles", value: self.accel.stats.compute_cycles },
                    );
                    for j in &self.jobs_out {
                        st.dma.push(*j);
                    }
                    st.phase = 2;
                }
                AccelState::Error(_) => {
                    fr.record(st.cycle, Event::Trap { tag: "accel-error" });
                    return Some(DsaOutcome::Error { cycles: st.cycle });
                }
                _ => {}
            }
        }
        None
    }
}

/// Mid-run simulation state of a harness run — the DMA engine, phase
/// machine, cycle count and RAM taint shadow that used to live on
/// `run_recorded`'s stack. Split out so checkpoint-ladder rungs can
/// snapshot a fault-free run in flight and campaign workers can resume
/// from it.
#[derive(Debug, Clone)]
pub struct DsaSimState {
    dma: DmaEngine,
    /// 0 = dma-in, 1 = compute, 2 = dma-out.
    phase: u8,
    cycle: u64,
    /// RAM taint shadow (marvel-taint): allocated only when the
    /// accelerator's shadow planes are on, so plain runs pay nothing.
    ram_shadow: Vec<u8>,
}

impl DsaSimState {
    /// Queue the DMA-in plan and start the accelerator: the cycle-0 state
    /// of a run on `h`.
    fn start(h: &mut DsaHarness) -> DsaSimState {
        let mut dma = DmaEngine::new(8);
        for j in &h.jobs_in {
            dma.push(*j);
        }
        let ram_shadow = if h.accel.taint_enabled() { vec![0u8; h.ram.len()] } else { Vec::new() };
        h.accel.start(&h.args.clone());
        DsaSimState { dma, phase: 0, cycle: 0, ram_shadow }
    }

    /// True when no taint is latched in the run-local state.
    fn taint_quiescent(&self) -> bool {
        self.ram_shadow.iter().all(|&b| b == 0)
    }
}

/// Golden reference for a DSA campaign.
#[derive(Debug, Clone)]
pub struct DsaGolden {
    pub harness: DsaHarness,
    pub output: Vec<u8>,
    pub cycles: u64,
}

impl DsaGolden {
    /// Execute the fault-free run, then arm the event engine: build the
    /// static CDFG schedule, record the golden node-firing trace with an
    /// event-engine run (self-checked bit-for-bit against the cycle
    /// oracle), and install both on the stored pristine harness. The
    /// harness itself stays on the cycle engine — campaign drivers opt
    /// runs into the event engine per [`CampaignConfig::dsa_engine`].
    /// Designs the schedule builder rejects simply stay cycle-only.
    ///
    /// # Panics
    /// Panics if the fault-free run errors or times out (a design bug),
    /// or if the event engine disagrees with the cycle oracle.
    pub fn prepare(harness: DsaHarness, watchdog: u64) -> DsaGolden {
        Self::prepare_spanned(harness, watchdog, &SpanCollector::disabled())
    }

    /// [`prepare`](Self::prepare) with phase spans: the cycle-oracle run
    /// lands in [`PhaseId::GoldenPrep`], the schedule build plus trace
    /// recording in [`PhaseId::ScheduleBuild`].
    pub fn prepare_spanned(mut harness: DsaHarness, watchdog: u64, spans: &SpanCollector) -> DsaGolden {
        let (output, cycles) = spans.time(PhaseId::GoldenPrep, || {
            let mut h = harness.clone();
            match h.run(None, watchdog) {
                DsaOutcome::Done { output, cycles } => (output, cycles),
                o => panic!("fault-free DSA run failed: {o:?}"),
            }
        });
        spans.time(PhaseId::ScheduleBuild, || {
            if harness.accel.prepare_event_engine() {
                let mut h = harness.clone();
                h.accel.set_engine_event();
                h.accel.begin_trace_recording();
                match h.run(None, watchdog) {
                    DsaOutcome::Done { output: o2, cycles: c2 } => {
                        assert!(
                            o2 == output && c2 == cycles,
                            "event engine diverged from the cycle oracle on the golden run \
                             (cycles {c2} vs {cycles})"
                        );
                        let trace = h.accel.take_trace().expect("trace recording was armed");
                        harness.accel.arm_replay(Arc::new(trace));
                    }
                    o => panic!("event-engine golden run failed: {o:?}"),
                }
            }
        });
        DsaGolden { harness, output, cycles }
    }

    /// Replay the fault-free run once more, freezing `n_rungs` evenly
    /// spaced [`DsaLadderRung`]s strictly inside the injection window.
    /// Built once per campaign and shared read-only across workers.
    pub fn build_ladder(&self, n_rungs: usize) -> DsaLadder {
        self.build_ladder_engine(n_rungs, false)
    }

    /// [`build_ladder`](Self::build_ladder), optionally replayed on the
    /// event engine. Rungs must be frozen by the same engine that later
    /// drives runs from them: the engines agree on architectural state at
    /// every cycle, but the event engine retires lazily, so mid-block
    /// bookkeeping (and the replay cursors) only line up engine-to-engine.
    /// The event ladder also enables the taint shadow planes, which event
    /// runs need for replay memoization.
    pub fn build_ladder_engine(&self, n_rungs: usize, event: bool) -> DsaLadder {
        let mut ladder = DsaLadder::default();
        if n_rungs == 0 || self.cycles < 2 {
            return ladder;
        }
        let mut cycles: Vec<u64> = (1..=n_rungs as u64)
            .map(|i| i * self.cycles / (n_rungs as u64 + 1))
            .filter(|&c| c > 0 && c < self.cycles)
            .collect();
        cycles.dedup();
        let mut h = self.harness.clone();
        if event && h.accel.set_engine_event() {
            h.accel.enable_taint("ladder");
        }
        let mut st = DsaSimState::start(&mut h);
        let mut fr = FlightRecorder::disabled();
        for &c in &cycles {
            if h.advance_sim(&mut st, c, &mut fr).is_some() {
                // Fault-free run ended before the window did (cannot
                // happen for rungs < self.cycles); stop defensively.
                return ladder;
            }
            ladder.rungs.push(DsaLadderRung { cycle: c, harness: h.clone(), sim: st.clone() });
        }
        ladder
    }
}

/// One rung of a [`DsaLadder`]: the harness plus run-local state of the
/// fault-free run, frozen right after the step for `cycle` completed. A
/// run injecting at cycle `c` may start from the deepest rung with
/// `cycle < c` — the injection applies at the top of cycle `c`, before
/// that cycle's step, so a rung at exactly `c` is already past it.
#[derive(Debug, Clone)]
pub struct DsaLadderRung {
    pub cycle: u64,
    harness: DsaHarness,
    sim: DsaSimState,
}

/// Checkpoint ladder for DSA campaigns: intermediate snapshots of the
/// fault-free run at evenly spaced cycles. Workers restore the nearest
/// rung below each injection cycle instead of re-simulating the
/// fault-free prefix from cycle 0, and the convergence exit compares
/// post-injection state against the rung frozen at the same cycle.
#[derive(Debug, Clone, Default)]
pub struct DsaLadder {
    rungs: Vec<DsaLadderRung>,
}

impl DsaLadder {
    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    /// Rung cycles, ascending.
    pub fn cycles(&self) -> Vec<u64> {
        self.rungs.iter().map(|r| r.cycle).collect()
    }
}

/// DSA campaign result (AVF == HVF for these targets).
#[derive(Debug, Clone)]
pub struct DsaCampaignResult {
    pub target: Target,
    pub records: Vec<RunRecord>,
    pub bit_population: u64,
    pub golden_cycles: u64,
    pub confidence: f64,
}

impl DsaCampaignResult {
    fn frac(&self, e: FaultEffect) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.effect == e).count() as f64 / self.records.len() as f64
    }

    pub fn avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc) + self.frac(FaultEffect::Crash)
    }

    pub fn sdc_avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc)
    }

    pub fn crash_avf(&self) -> f64 {
        self.frac(FaultEffect::Crash)
    }

    pub fn margin(&self) -> f64 {
        error_margin(
            self.records.len().max(1),
            self.bit_population.saturating_mul(self.golden_cycles.max(1)),
            self.confidence,
        )
    }

    /// Fraction of runs cut short by the fate-poll early termination.
    pub fn early_termination_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.early_terminated).count() as f64 / self.records.len() as f64
    }

    /// Fraction of runs ended by the ladder convergence exit.
    pub fn convergence_exit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.converged).count() as f64 / self.records.len() as f64
    }
}

/// How a campaign-driven DSA run ended.
enum DsaRunEnd {
    /// Ran to a terminal outcome (done / error / timeout).
    Finished(DsaOutcome),
    /// The fate poll saw the armed bit overwritten before any read — the
    /// fault is architecturally dead, the run is definitively Masked.
    MaskedEarly { cycles: u64 },
    /// Post-injection state matched the golden rung frozen at the same
    /// cycle — the rest of the run is bit-identical to the fault-free
    /// one, so the record is Masked with the golden cycle count.
    Converged,
}

/// Drive one masked campaign run on `h`/`st` (already positioned at the
/// base cycle, fault-free) to an end. `next_rung` indexes the first
/// ladder rung strictly above the base cycle.
#[allow(clippy::too_many_arguments)]
fn drive_run(
    h: &mut DsaHarness,
    st: &mut DsaSimState,
    mask: &FaultMask,
    inject_at: Option<u64>,
    ladder: Option<&DsaLadder>,
    mut next_rung: usize,
    cc: &CampaignConfig,
    watchdog: u64,
    taint: bool,
    fr: &mut FlightRecorder,
    lane: &mut SpanLane,
) -> DsaRunEnd {
    if let FaultModel::Permanent { value } = mask.model {
        lane.enter(PhaseId::Inject);
        h.apply(mask, Some(value));
        lane.exit(PhaseId::Inject);
        fr.record(
            0,
            Event::FaultArmed {
                target: mask.target.name(),
                bit: mask.bits.first().copied().unwrap_or(0),
                model: "permanent",
            },
        );
    }
    let mut armed = inject_at.is_none();
    lane.enter(PhaseId::SimStepDsa);
    let event = h.accel.event_engine();
    if event {
        // Sub-attribute event-driven stepping (schedule jumps + golden
        // replay) under the sim-step lane so the span report separates
        // the two drive paths.
        lane.enter(PhaseId::TraceReplay);
    }
    let end = loop {
        // Bulk-advance to the next special cycle (injection, ladder rung,
        // fate poll, watchdog); each special cycle then goes through the
        // single-cycle path so check ordering matches the historical
        // per-cycle loop exactly.
        let mut stop = watchdog;
        if !armed {
            if let Some(c) = inject_at {
                stop = stop.min(c.saturating_sub(1));
            }
        }
        if let Some(l) = ladder {
            if next_rung < l.rungs.len() {
                stop = stop.min(l.rungs[next_rung].cycle.saturating_sub(1));
            }
        }
        if cc.early_termination && armed && mask.model.is_transient() {
            stop = stop.min((st.cycle / 1024 + 1) * 1024 - 1);
        }
        if stop > st.cycle {
            if let Some(o) = h.advance_sim(st, stop, fr) {
                break DsaRunEnd::Finished(o);
            }
        }
        if st.cycle + 1 > watchdog {
            st.cycle += 1;
            fr.record(st.cycle, Event::Trap { tag: "watchdog" });
            break DsaRunEnd::Finished(DsaOutcome::Timeout);
        }
        if !armed && inject_at == Some(st.cycle + 1) {
            lane.enter(PhaseId::Inject);
            h.apply(mask, None);
            lane.exit(PhaseId::Inject);
            armed = true;
            fr.record(
                st.cycle + 1,
                Event::FaultArmed {
                    target: mask.target.name(),
                    bit: mask.bits.first().copied().unwrap_or(0),
                    model: "transient",
                },
            );
        }
        let one = st.cycle + 1;
        if let Some(o) = h.advance_sim(st, one, fr) {
            break DsaRunEnd::Finished(o);
        }
        // Ladder-rung crossing: dirty-diff convergence exit. DSA state is
        // a few KiB, so the "diff" is a wholesale functional compare.
        if let Some(l) = ladder {
            if next_rung < l.rungs.len() && st.cycle == l.rungs[next_rung].cycle {
                let rung = &l.rungs[next_rung];
                next_rung += 1;
                if cc.convergence_exit && armed && mask.model.is_transient() {
                    // Fate split: if the early-termination poll would also
                    // catch this run (bit overwritten before any read),
                    // defer to it — the poll fires at the same absolute
                    // cycles with or without the ladder, keeping records
                    // bit-identical across configurations.
                    let skip =
                        cc.early_termination && h.fault_fate(mask.target) == Some(SramFate::Overwritten);
                    lane.enter(PhaseId::ConvergenceDiff);
                    let converged = !skip
                        && (!taint || (h.accel.taint_quiescent() && st.taint_quiescent()))
                        && st.phase == rung.sim.phase
                        && st.dma.state_eq(&rung.sim.dma)
                        && h.ram == rung.harness.ram
                        && h.accel.state_eq(&rung.harness.accel);
                    lane.exit(PhaseId::ConvergenceDiff);
                    if converged {
                        fr.record(st.cycle, Event::Converged);
                        break DsaRunEnd::Converged;
                    }
                }
            }
        }
        // Early termination: poll the armed bit's fate on a coarse,
        // absolute-cycle cadence (deterministic across reset modes,
        // worker counts and ladder bases). Overwritten-before-read is
        // definitively Masked.
        if cc.early_termination
            && armed
            && mask.model.is_transient()
            && st.cycle.is_multiple_of(1024)
            && h.fault_fate(mask.target) == Some(SramFate::Overwritten)
        {
            fr.record(st.cycle, Event::EarlyTerminated);
            break DsaRunEnd::MaskedEarly { cycles: st.cycle };
        }
    };
    if event {
        lane.exit(PhaseId::TraceReplay);
    }
    lane.exit(PhaseId::SimStepDsa);
    end
}

/// Run a statistical campaign on one DSA memory target.
pub fn run_dsa_campaign(golden: &DsaGolden, target: Target, cc: &CampaignConfig) -> DsaCampaignResult {
    let masks = dsa_campaign_masks(golden, target, cc);
    run_dsa_masks(golden, target, &masks, cc)
}

/// The deterministic mask population a DSA campaign injects: a pure
/// function of the golden run, the target and the config seed, so
/// resumable drivers (journaled CLI runs, the campaign service) can
/// regenerate the exact mask list a crashed campaign was executing.
pub fn dsa_campaign_masks(golden: &DsaGolden, target: Target, cc: &CampaignConfig) -> Vec<FaultMask> {
    let bit_len = golden.harness.bit_len(target);
    let mut gen = MaskGenerator::new(cc.seed ^ 0xD5A);
    gen.single_bit(target, bit_len, cc.kind, 1..golden.cycles.max(2), cc.n_faults)
}

/// Build the DSA checkpoint ladder per `cc.ladder_rungs` and publish its
/// build metrics; empty when the ladder is disabled. Split out (like
/// [`crate::campaign::build_campaign_ladder`]) so long-lived drivers can
/// build once and reuse across many incremental [`drive_dsa_masks`] calls.
pub fn build_dsa_ladder(golden: &DsaGolden, cc: &CampaignConfig) -> DsaLadder {
    if cc.ladder_rungs == 0 {
        return DsaLadder::default();
    }
    cc.telemetry.spans.time(PhaseId::LadderBuild, || {
        let t0 = std::time::Instant::now();
        // Rungs must be frozen by the engine that will drive runs from
        // them — see `build_ladder_engine`.
        let ladder = golden.build_ladder_engine(cc.ladder_rungs, dsa_event_engine(golden, cc));
        if !ladder.is_empty() {
            let reg = &cc.telemetry.registry;
            let scope = Scope::new("dsa");
            reg.publish_scoped(&scope, "ladder_rungs", ladder.len() as u64);
            reg.publish_scoped(&scope, "ladder_build_ns", t0.elapsed().as_nanos() as u64);
        }
        ladder
    })
}

/// Run one injection per caller-supplied mask. `run_dsa_campaign` is this
/// plus uniform mask sampling over the whole run; calling it directly lets
/// harnesses window injections (e.g. into the late tail of the run, where
/// the checkpoint ladder pays off most).
pub fn run_dsa_masks(
    golden: &DsaGolden,
    target: Target,
    masks: &[FaultMask],
    cc: &CampaignConfig,
) -> DsaCampaignResult {
    let ladder = build_dsa_ladder(golden, cc);
    let ladder_ref = (!ladder.is_empty()).then_some(&ladder);
    let skip = vec![false; masks.len()];
    let slots: Vec<std::sync::Mutex<Option<RunRecord>>> =
        masks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    drive_dsa_masks(golden, target, ladder_ref, masks, cc, &skip, None, &|i, rec| {
        *slots[i].lock().unwrap() = Some(rec);
    });

    let tel = &cc.telemetry;
    if tel.registry.is_enabled() {
        // One extra fault-free run to export the accelerator's structure
        // counters (SPM/RegBank traffic, node/block execution).
        let watchdog = golden.cycles * cc.watchdog_factor + 10_000;
        let mut h = golden.harness.clone();
        let _ = h.run(None, watchdog);
        h.accel.publish_metrics(&tel.registry, &Scope::new("dsa").child("golden_accel"));
    }

    let records =
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("all masks executed")).collect();
    DsaCampaignResult {
        target,
        records,
        bit_population: golden.harness.bit_len(target),
        golden_cycles: golden.cycles,
        confidence: cc.confidence,
    }
}

/// Whether a campaign drives runs on the event engine: the config opted
/// in *and* golden prep armed a schedule + replay trace (designs the
/// schedule builder rejects fall back to the cycle oracle silently —
/// both engines are bit-identical, so the fallback is purely a speed
/// question).
fn dsa_event_engine(golden: &DsaGolden, cc: &CampaignConfig) -> bool {
    cc.dsa_engine == DsaEngine::Event && golden.harness.accel.replay_armed()
}

/// Incrementally drive the subset of `masks` *not* marked in `skip`
/// through the DSA worker pool, handing each finished [`RunRecord`] to
/// `sink` as it lands (completion order, tagged with its mask index).
/// The DSA counterpart of [`crate::campaign::drive_masks`] — same
/// skip/cancel/sink contract, same per-mask determinism guarantee.
#[allow(clippy::too_many_arguments)]
pub fn drive_dsa_masks(
    golden: &DsaGolden,
    target: Target,
    ladder_ref: Option<&DsaLadder>,
    masks: &[FaultMask],
    cc: &CampaignConfig,
    skip: &[bool],
    cancel: Option<&AtomicBool>,
    sink: &(dyn Fn(usize, RunRecord) + Sync),
) -> DriveOutcome {
    assert_eq!(skip.len(), masks.len(), "skip flags must cover every mask");
    let bit_len = golden.harness.bit_len(target);
    let next = AtomicUsize::new(0);
    let watchdog = golden.cycles * cc.watchdog_factor + 10_000;
    let event = dsa_event_engine(golden, cc);

    let tel = &cc.telemetry;
    let scope = Scope::new("dsa");
    let population = bit_len.saturating_mul(golden.cycles.max(1));
    tel.registry.publish_scoped(&scope, "bit_population", bit_len);
    tel.registry.publish_scoped(&scope, "golden_cycles", golden.cycles);

    let done = AtomicU64::new(0);
    let sdc_n = AtomicU64::new(0);
    let crash_n = AtomicU64::new(0);
    let early_n = AtomicU64::new(0);
    let conv_n = AtomicU64::new(0);
    let cancelled = AtomicBool::new(false);
    let run_cycles = tel.registry.histogram("dsa.run_cycles");
    let prefix_cycles = tel.registry.histogram("dsa.prefix_cycles");
    let prefix_skipped = tel.registry.histogram("dsa.prefix_cycles_skipped");

    // Rung-monotone claim order (permanents first — their base is always
    // the checkpoint — then transients by injection cycle), so each worker
    // walks the ladder upward and pays at most one reclone per rung.
    // Results are tagged with the original mask index, so record order —
    // and thus every export — is identical to the unsorted schedule.
    let mut order: Vec<usize> = (0..masks.len()).filter(|&i| !skip[i]).collect();
    if ladder_ref.is_some() {
        order.sort_by_key(|&i| (crate::campaign::schedule_key(&masks[i]), i));
    }
    let order = order.as_slice();
    let total = order.len() as u64;
    let workers = if cc.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cc.workers
    };
    let workers = workers.min(order.len().max(1));
    let active = AtomicUsize::new(workers);
    // Wakes the progress reporter the moment the last worker exits (see
    // the matching pattern in `drive_masks`).
    let finish_wake = (std::sync::Mutex::new(false), std::sync::Condvar::new());

    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let worker_runs = tel.registry.scoped_counter(&scope.indexed("worker", w), "runs");
            let next = &next;
            let (done, sdc_n, crash_n) = (&done, &sdc_n, &crash_n);
            let (early_n, conv_n) = (&early_n, &conv_n);
            let (cancelled, active) = (&cancelled, &active);
            let finish_wake = &finish_wake;
            let run_cycles = run_cycles.clone();
            let prefix_cycles = prefix_cycles.clone();
            let prefix_skipped = prefix_skipped.clone();
            let flight_capacity = tel.flight_capacity;
            let taint = tel.taint;
            s.spawn(move |_| {
                // Reusable per-worker harness for the dirty reset mode.
                // The dirty reset is only valid against the snapshot the
                // harness was cloned from, so a rung switch recloned.
                let mut reusable: Option<Box<DsaHarness>> = None;
                let mut reusable_base: u64 = 0;
                let mut lane = tel.spans.lane(&format!("dsa-worker-{w}"));
                const BATCH: u64 = 32;
                let (mut b_runs, mut b_sdc, mut b_crash, mut b_early, mut b_conv) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                let mut b_cycles: Vec<u64> = Vec::new();
                loop {
                    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                    // Spanned only when the claim succeeds (see the CPU
                    // worker): Schedule calls equal completed runs.
                    lane.enter(PhaseId::Schedule);
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= order.len() {
                        lane.cancel(PhaseId::Schedule);
                        break;
                    }
                    let i = order[k];
                    lane.exit(PhaseId::Schedule);
                    lane.begin_run(i as u64);
                    let mask = &masks[i];
                    let mut fr = if flight_capacity > 0 {
                        FlightRecorder::new(flight_capacity)
                    } else {
                        FlightRecorder::disabled()
                    };
                    let inject_at = match mask.model {
                        FaultModel::Transient { cycle } => Some(cycle),
                        _ => None,
                    };
                    // Deepest rung strictly below the injection cycle; the
                    // cycle-0 harness for permanents and early injections.
                    let (base, next_rung) = match (ladder_ref, inject_at) {
                        (Some(l), Some(c)) => {
                            let r = l.rungs.partition_point(|r| r.cycle < c);
                            (r.checked_sub(1).map(|r| &l.rungs[r]), r)
                        }
                        _ => (None, 0),
                    };
                    let (base_h, base_cycle) =
                        base.map_or((&golden.harness, 0), |r| (&r.harness, r.cycle));
                    let mut fresh: Option<DsaHarness> = None;
                    let h: &mut DsaHarness = match cc.reset_mode {
                        ResetMode::Dirty => {
                            let reset_start = tel.registry.is_enabled().then(std::time::Instant::now);
                            if let Some(h) = reusable.as_mut().filter(|_| reusable_base == base_cycle) {
                                lane.enter(PhaseId::DirtyReset);
                                let bytes = h.reset_from(base_h);
                                lane.exit(PhaseId::DirtyReset);
                                if let Some(t0) = reset_start {
                                    if let Some(hist) = tel.registry.histogram("dsa.reset_ns") {
                                        hist.record(t0.elapsed().as_nanos() as u64);
                                    }
                                    if let Some(hist) = tel.registry.histogram("dsa.reset_bytes") {
                                        hist.record(bytes);
                                    }
                                }
                            } else {
                                // First run, or the base rung changed: pay
                                // one full clone of the new base.
                                lane.enter(PhaseId::RungRestore);
                                reusable = Some(Box::new(base_h.clone()));
                                lane.exit(PhaseId::RungRestore);
                                reusable_base = base_cycle;
                            }
                            reusable.as_mut().expect("populated above")
                        }
                        ResetMode::Clone => {
                            lane.enter(PhaseId::RungRestore);
                            let h = fresh.insert(base_h.clone());
                            lane.exit(PhaseId::RungRestore);
                            h
                        }
                    };
                    // Pin the drive engine after positioning — resets copy
                    // the base's engine, and the pristine golden harness
                    // stays on the cycle oracle.
                    if event {
                        h.accel.set_engine_event();
                    } else {
                        h.accel.set_engine_cycle();
                    }
                    // The event engine needs the shadow planes even in
                    // non-taint campaigns: replay memoization is gated on
                    // untainted inputs.
                    let planes = taint || event;
                    if planes {
                        // Before arming: the injection seeds the shadow
                        // planes. The fault-free prefix carries no taint,
                        // so enabling at a rung matches enabling at cycle 0.
                        h.accel.enable_taint(&target.name());
                    }
                    let mut st = match base {
                        Some(r) => {
                            let mut st = r.sim.clone();
                            if planes && st.ram_shadow.is_empty() {
                                st.ram_shadow = vec![0u8; h.ram.len()];
                            }
                            st
                        }
                        None => DsaSimState::start(h),
                    };
                    if let Some(c) = inject_at {
                        if let Some(hist) = &prefix_cycles {
                            hist.record(c - base_cycle);
                        }
                        if let Some(hist) = &prefix_skipped {
                            hist.record(base_cycle);
                        }
                    }
                    let end = drive_run(
                        h, &mut st, mask, inject_at, ladder_ref, next_rung, cc, watchdog, taint,
                        &mut fr, &mut lane,
                    );
                    let (effect, trap, cycles, early_terminated, converged) = match end {
                        DsaRunEnd::Finished(outcome) => {
                            let (effect, trap) = match &outcome {
                                DsaOutcome::Done { output, .. } => {
                                    if *output == golden.output {
                                        (FaultEffect::Masked, None)
                                    } else {
                                        (FaultEffect::Sdc, None)
                                    }
                                }
                                DsaOutcome::Error { .. } => (FaultEffect::Crash, Some("accel-error")),
                                DsaOutcome::Timeout => (FaultEffect::Crash, Some("watchdog")),
                            };
                            let cycles = match outcome {
                                DsaOutcome::Done { cycles, .. } | DsaOutcome::Error { cycles } => cycles,
                                DsaOutcome::Timeout => watchdog,
                            };
                            (effect, trap, cycles, false, false)
                        }
                        DsaRunEnd::MaskedEarly { cycles } => {
                            (FaultEffect::Masked, None, cycles, true, false)
                        }
                        DsaRunEnd::Converged => (FaultEffect::Masked, None, golden.cycles, false, true),
                    };
                    if fr.is_enabled() {
                        match h.fault_fate(target) {
                            Some(SramFate::Read) => fr.record(cycles, Event::BitRead),
                            Some(SramFate::Overwritten) => fr.record(cycles, Event::BitOverwritten),
                            _ => {}
                        }
                        let tag = match effect {
                            FaultEffect::Masked => "Masked",
                            FaultEffect::Sdc => "SDC",
                            FaultEffect::Crash => "Crash",
                        };
                        fr.record(cycles, Event::Classified { effect: tag });
                    }
                    b_runs += 1;
                    match effect {
                        FaultEffect::Sdc => b_sdc += 1,
                        FaultEffect::Crash => b_crash += 1,
                        FaultEffect::Masked => {}
                    }
                    if early_terminated {
                        b_early += 1;
                    }
                    if converged {
                        b_conv += 1;
                    }
                    if run_cycles.is_some() {
                        b_cycles.push(cycles);
                    }
                    // Attribution only when the user asked for taint —
                    // planes enabled solely for replay memoization must
                    // not change exports vs the cycle oracle.
                    let attribution = if taint {
                        taint_finish(h.accel.taint_tracer().map(|t| t.report()), &mut fr)
                    } else {
                        None
                    };
                    let forensics =
                        (fr.is_enabled() && effect != FaultEffect::Masked).then(|| fr.take());
                    lane.enter(PhaseId::ExportRecord);
                    sink(
                        i,
                        RunRecord {
                            effect,
                            hvf: None,
                            trap,
                            early_terminated,
                            converged,
                            cycles,
                            forensics,
                            attribution,
                        },
                    );
                    lane.exit(PhaseId::ExportRecord);
                    lane.end_run();
                    done.fetch_add(1, Ordering::Relaxed);
                    if b_runs >= BATCH {
                        worker_runs.add(b_runs);
                        sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                        crash_n.fetch_add(b_crash, Ordering::Relaxed);
                        early_n.fetch_add(b_early, Ordering::Relaxed);
                        conv_n.fetch_add(b_conv, Ordering::Relaxed);
                        if let Some(hist) = &run_cycles {
                            b_cycles.drain(..).for_each(|c| hist.record(c));
                        }
                        (b_runs, b_sdc, b_crash, b_early, b_conv) = (0, 0, 0, 0, 0);
                    }
                }
                if b_runs > 0 {
                    worker_runs.add(b_runs);
                    sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                    crash_n.fetch_add(b_crash, Ordering::Relaxed);
                    early_n.fetch_add(b_early, Ordering::Relaxed);
                    conv_n.fetch_add(b_conv, Ordering::Relaxed);
                    if let Some(hist) = &run_cycles {
                        b_cycles.drain(..).for_each(|c| hist.record(c));
                    }
                }
                // Last worker out (normal drain or cancellation) wakes
                // the progress reporter for its final line.
                if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let (lock, cvar) = finish_wake;
                    *lock.lock().unwrap() = true;
                    cvar.notify_all();
                }
            });
        }
        if tel.progress_interval_ms > 0 {
            let (done, sdc_n, crash_n, early_n) = (&done, &sdc_n, &crash_n, &early_n);
            let finish_wake = &finish_wake;
            let interval = std::time::Duration::from_millis(tel.progress_interval_ms);
            let confidence = cc.confidence;
            s.spawn(move |_| {
                let meter = ProgressMeter::new("dsa", total);
                let (lock, cvar) = finish_wake;
                let mut finished = lock.lock().unwrap();
                loop {
                    let d = done.load(Ordering::Relaxed);
                    let margin = error_margin(d.max(1) as usize, population, confidence);
                    eprintln!(
                        "{}",
                        meter.line(
                            d,
                            sdc_n.load(Ordering::Relaxed),
                            crash_n.load(Ordering::Relaxed),
                            early_n.load(Ordering::Relaxed),
                            margin
                        )
                    );
                    // `finished` covers both normal completion and a
                    // cancelled drive whose workers have all exited.
                    if d >= total || *finished {
                        break;
                    }
                    finished = cvar.wait_timeout(finished, interval).unwrap().0;
                }
            });
        }
    })
    .expect("dsa campaign worker panicked");

    let completed = done.into_inner();
    let (sdc, crash) = (sdc_n.into_inner(), crash_n.into_inner());
    tel.registry.publish_scoped(&scope, "runs", completed);
    tel.registry.publish_scoped(&scope, "sdc", sdc);
    tel.registry.publish_scoped(&scope, "crash", crash);
    tel.registry.publish_scoped(&scope, "masked", completed - sdc - crash);
    tel.registry.publish_scoped(&scope, "early_terminated", early_n.into_inner());
    tel.registry.publish_scoped(&scope, "convergence_exits", conv_n.into_inner());

    DriveOutcome { completed: completed as usize, cancelled: cancelled.into_inner() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_accel::air::{CdfgBuilder, MemRef};
    use marvel_accel::{DmaDir, FuConfig, Sram, SramKind};
    use marvel_isa::AluOp;

    /// OUT[i] = IN[i] * 3, i in 0..8 (u64).
    fn triple_harness() -> DsaHarness {
        let mut g = CdfgBuilder::new();
        let entry = g.block(0);
        let body = g.block(1);
        let done = g.block(0);
        g.select(entry);
        let z = g.konst(0);
        g.jump(body, &[z]);
        g.select(body);
        let i = g.arg(0);
        let eight = g.konst(8);
        let addr = g.alu(AluOp::Mul, i, eight);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let three = g.konst(3);
        let v3 = g.alu(AluOp::Mul, v, three);
        g.store(MemRef::Spm(1), 8, addr, v3);
        let one = g.konst(1);
        let i2 = g.alu(AluOp::Add, i, one);
        let n = g.konst(8);
        let more = g.alu(AluOp::Sltu, i2, n);
        g.branch(more, body, &[i2], done, &[]);
        g.select(done);
        g.finish();
        let accel = Accelerator::new(
            "triple",
            g.build().unwrap(),
            FuConfig::default(),
            vec![Sram::new("IN", SramKind::Spm, 64, 2), Sram::new("OUT", SramKind::Spm, 64, 2)],
            vec![],
            0,
        );
        let mut ram = vec![0u8; 256];
        for i in 0..8u64 {
            ram[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&(i + 1).to_le_bytes());
        }
        DsaHarness {
            accel,
            ram,
            jobs_in: vec![DmaJob {
                dir: DmaDir::ToSram,
                ram_off: 0,
                mem: MemRef::Spm(0),
                mem_off: 0,
                len: 64,
            }],
            jobs_out: vec![DmaJob {
                dir: DmaDir::ToRam,
                ram_off: 128,
                mem: MemRef::Spm(1),
                mem_off: 0,
                len: 64,
            }],
            args: vec![],
            output: 128..192,
        }
    }

    #[test]
    fn golden_run_correct() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        for i in 0..8u64 {
            let off = (i * 8) as usize;
            let v = u64::from_le_bytes(g.output[off..off + 8].try_into().unwrap());
            assert_eq!(v, (i + 1) * 3);
        }
        assert!(g.cycles > 10);
    }

    #[test]
    fn input_spm_campaign_mostly_sdc() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig { n_faults: 60, workers: 4, ..Default::default() };
        let res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        assert_eq!(res.records.len(), 60);
        // Data SPM faults corrupt outputs but never addresses: SDC-heavy,
        // crash-free (the paper's Observation #6 for FFT/GEMM-style SPMs).
        assert!(res.crash_avf() < 1e-9);
        assert!(res.sdc_avf() > 0.2, "sdc {}", res.sdc_avf());
        assert!(res.avf() < 1.0);
    }

    #[test]
    fn permanent_dsa_faults() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig {
            n_faults: 30,
            kind: crate::fault::FaultKind::Permanent,
            workers: 4,
            ..Default::default()
        };
        let res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 1 }, &cc);
        assert_eq!(res.records.len(), 30);
    }

    #[test]
    fn reset_modes_produce_identical_records() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let mk = |mode, kind| CampaignConfig {
            n_faults: 24,
            kind,
            workers: 3,
            reset_mode: mode,
            ..Default::default()
        };
        for kind in [crate::fault::FaultKind::Transient, crate::fault::FaultKind::Permanent] {
            let rc = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &mk(ResetMode::Clone, kind));
            let rd = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &mk(ResetMode::Dirty, kind));
            let key = |r: &RunRecord| (r.effect, r.trap, r.cycles);
            let kc: Vec<_> = rc.records.iter().map(key).collect();
            let kd: Vec<_> = rd.records.iter().map(key).collect();
            assert_eq!(kc, kd, "{kind:?}");
        }
    }

    #[test]
    fn ladder_and_convergence_match_oracle() {
        // Ladder prefix elimination + convergence exit must not change a
        // single record relative to the full-prefix oracle, in either
        // reset mode and for both fault models.
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let mk = |rungs: usize, conv, mode, kind| CampaignConfig {
            n_faults: 24,
            kind,
            workers: 3,
            reset_mode: mode,
            ladder_rungs: rungs,
            convergence_exit: conv,
            ..Default::default()
        };
        let key = |r: &RunRecord| (r.effect, r.trap, r.early_terminated, r.cycles);
        for kind in [crate::fault::FaultKind::Transient, crate::fault::FaultKind::Permanent] {
            let oracle = run_dsa_campaign(
                &g,
                Target::Spm { accel: 0, mem: 0 },
                &mk(0, false, ResetMode::Clone, kind),
            );
            let ko: Vec<_> = oracle.records.iter().map(key).collect();
            for mode in [ResetMode::Clone, ResetMode::Dirty] {
                let fast =
                    run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &mk(6, true, mode, kind));
                let kf: Vec<_> = fast.records.iter().map(key).collect();
                assert_eq!(ko, kf, "{kind:?} {mode:?}");
            }
        }
        // Rungs are ascending and strictly inside the injection window.
        let ladder = g.build_ladder(6);
        let cycles = ladder.cycles();
        assert!(!cycles.is_empty());
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(cycles.iter().all(|&c| c > 0 && c < g.cycles));
    }

    #[test]
    fn deterministic() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig { n_faults: 16, workers: 3, ..Default::default() };
        let r1 = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        let r2 = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        let e1: Vec<_> = r1.records.iter().map(|r| r.effect).collect();
        let e2: Vec<_> = r2.records.iter().map(|r| r.effect).collect();
        assert_eq!(e1, e2);
    }
}
