//! Standalone DSA fault-injection harness: DMA-in → compute → DMA-out with
//! cycle-accurate injection timing, used for the paper's Table IV /
//! Fig. 14 / Fig. 17 accelerator campaigns.
//!
//! For SPM/RegBank targets, HVF and AVF are identical (Section IV-D): any
//! non-masked fault is architecturally visible, so only the AVF classes
//! are reported.

use crate::campaign::{taint_finish, CampaignConfig, FaultEffect, ResetMode, RunRecord};
use crate::fault::{FaultMask, FaultModel, MaskGenerator};
use crate::stats::error_margin;
use marvel_accel::{AccelState, Accelerator, DmaEngine, DmaJob, SramFate};
use marvel_soc::Target;
use marvel_telemetry::{Event, FlightRecorder, ProgressMeter, Scope};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A self-contained accelerator experiment: the accelerator, a private RAM
/// buffer, DMA plans and entry arguments.
#[derive(Debug, Clone)]
pub struct DsaHarness {
    pub accel: Accelerator,
    pub ram: Vec<u8>,
    pub jobs_in: Vec<DmaJob>,
    pub jobs_out: Vec<DmaJob>,
    pub args: Vec<u64>,
    /// Byte range of `ram` holding the result after DMA-out.
    pub output: std::ops::Range<usize>,
}

/// Outcome of one harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsaOutcome {
    Done {
        output: Vec<u8>,
        cycles: u64,
    },
    /// Datapath error (out-of-bounds access) or DMA failure.
    Error {
        cycles: u64,
    },
    Timeout,
}

impl DsaHarness {
    /// Apply a fault mask to this harness's accelerator.
    fn apply(&mut self, mask: &FaultMask, permanent_value: Option<bool>) {
        for &bit in &mask.bits {
            match (mask.target, permanent_value) {
                (Target::Spm { mem, .. }, None) => {
                    self.accel.spms[mem].flip_bit(bit);
                }
                (Target::Spm { mem, .. }, Some(v)) => self.accel.spms[mem].set_stuck(bit, v),
                (Target::RegBank { mem, .. }, None) => {
                    self.accel.regbanks[mem].flip_bit(bit);
                }
                (Target::RegBank { mem, .. }, Some(v)) => self.accel.regbanks[mem].set_stuck(bit, v),
                (Target::Mmr { .. }, None) => {
                    self.accel.mmr.flip_bit(bit);
                }
                (Target::Mmr { .. }, Some(v)) => self.accel.mmr.set_stuck(bit, v),
                _ => panic!("{:?} is not a DSA target", mask.target),
            }
        }
    }

    fn bit_len(&self, target: Target) -> u64 {
        match target {
            Target::Spm { mem, .. } => self.accel.spms[mem].bit_len(),
            Target::RegBank { mem, .. } => self.accel.regbanks[mem].bit_len(),
            Target::Mmr { .. } => self.accel.mmr.bit_len(),
            _ => panic!("{target:?} is not a DSA target"),
        }
    }

    /// Fate of the armed (injected) bit for `target`, if any.
    pub fn fault_fate(&self, target: Target) -> Option<SramFate> {
        match target {
            Target::Spm { mem, .. } => self.accel.spms[mem].fate(),
            Target::RegBank { mem, .. } => self.accel.regbanks[mem].fate(),
            Target::Mmr { .. } => self.accel.mmr.fate(),
            _ => None,
        }
    }

    /// Restore this harness to the pristine golden copy it was cloned
    /// from (zero-copy campaign reset). The accelerator resets through
    /// its SPM write watermarks; the private RAM buffer is copied
    /// wholesale — DSA RAM is a few hundred bytes, not the SoC's
    /// megabytes. Returns state bytes copied.
    pub fn reset_from(&mut self, pristine: &DsaHarness) -> u64 {
        let mut bytes = self.accel.reset_from(&pristine.accel);
        self.ram.clone_from(&pristine.ram);
        bytes += self.ram.len() as u64;
        self.jobs_in.clone_from(&pristine.jobs_in);
        self.jobs_out.clone_from(&pristine.jobs_out);
        self.args.clone_from(&pristine.args);
        self.output = pristine.output.clone();
        bytes + 16
    }

    /// Run the full DMA-in → compute → DMA-out sequence, optionally
    /// injecting `mask` at its transient cycle (permanent faults are
    /// applied before the run).
    pub fn run(&mut self, mask: Option<&FaultMask>, watchdog: u64) -> DsaOutcome {
        self.run_recorded(mask, watchdog, &mut FlightRecorder::disabled())
    }

    /// [`DsaHarness::run`] with a flight recorder capturing the phase
    /// timeline and fault lifecycle. Recording is observational only — the
    /// run is cycle-identical to an unrecorded one.
    pub fn run_recorded(
        &mut self,
        mask: Option<&FaultMask>,
        watchdog: u64,
        fr: &mut FlightRecorder,
    ) -> DsaOutcome {
        // Permanent faults apply immediately.
        if let Some(m) = mask {
            if let FaultModel::Permanent { value } = m.model {
                self.apply(&{ m.clone() }, Some(value));
                fr.record(
                    0,
                    Event::FaultArmed {
                        target: m.target.name(),
                        bit: m.bits.first().copied().unwrap_or(0),
                        model: "permanent",
                    },
                );
            }
        }
        let inject_at = mask.and_then(|m| match m.model {
            FaultModel::Transient { cycle } => Some(cycle),
            _ => None,
        });

        let mut cycle: u64 = 0;
        let mut dma = DmaEngine::new(8);
        for j in &self.jobs_in {
            dma.push(*j);
        }
        // RAM taint shadow (marvel-taint): allocated only when the
        // accelerator's shadow planes are on, so plain runs pay nothing.
        let mut ram_shadow =
            if self.accel.taint_enabled() { vec![0u8; self.ram.len()] } else { Vec::new() };
        let mut phase = 0u8; // 0 = dma-in, 1 = compute, 2 = dma-out
        self.accel.start(&self.args.clone());

        loop {
            cycle += 1;
            if cycle > watchdog {
                fr.record(cycle, Event::Trap { tag: "watchdog" });
                return DsaOutcome::Timeout;
            }
            if let Some(c) = inject_at {
                if cycle == c {
                    let m = mask.unwrap().clone();
                    self.apply(&m, None);
                    fr.record(
                        cycle,
                        Event::FaultArmed {
                            target: m.target.name(),
                            bit: m.bits.first().copied().unwrap_or(0),
                            model: "transient",
                        },
                    );
                }
            }
            let shadow = (!ram_shadow.is_empty()).then_some(&mut ram_shadow[..]);
            match phase {
                0 => {
                    if dma.busy() {
                        if !dma.tick_tainted(&mut self.ram, shadow, &mut self.accel) {
                            fr.record(cycle, Event::Trap { tag: "dma-error" });
                            return DsaOutcome::Error { cycles: cycle };
                        }
                    } else {
                        fr.record(cycle, Event::Note { label: "dma_in_bytes", value: dma.bytes_moved });
                        phase = 1;
                    }
                }
                1 => match self.accel.tick() {
                    AccelState::Done => {
                        fr.record(
                            cycle,
                            Event::Note {
                                label: "compute_cycles",
                                value: self.accel.stats.compute_cycles,
                            },
                        );
                        for j in &self.jobs_out {
                            dma.push(*j);
                        }
                        phase = 2;
                    }
                    AccelState::Error(_) => {
                        fr.record(cycle, Event::Trap { tag: "accel-error" });
                        return DsaOutcome::Error { cycles: cycle };
                    }
                    _ => {}
                },
                _ => {
                    if dma.busy() {
                        if !dma.tick_tainted(&mut self.ram, shadow, &mut self.accel) {
                            fr.record(cycle, Event::Trap { tag: "dma-error" });
                            return DsaOutcome::Error { cycles: cycle };
                        }
                    } else {
                        return DsaOutcome::Done {
                            output: self.ram[self.output.clone()].to_vec(),
                            cycles: cycle,
                        };
                    }
                }
            }
        }
    }
}

/// Golden reference for a DSA campaign.
#[derive(Debug, Clone)]
pub struct DsaGolden {
    pub harness: DsaHarness,
    pub output: Vec<u8>,
    pub cycles: u64,
}

impl DsaGolden {
    /// Execute the fault-free run.
    ///
    /// # Panics
    /// Panics if the fault-free run errors or times out (a design bug).
    pub fn prepare(harness: DsaHarness, watchdog: u64) -> DsaGolden {
        let mut h = harness.clone();
        match h.run(None, watchdog) {
            DsaOutcome::Done { output, cycles } => DsaGolden { harness, output, cycles },
            o => panic!("fault-free DSA run failed: {o:?}"),
        }
    }
}

/// DSA campaign result (AVF == HVF for these targets).
#[derive(Debug, Clone)]
pub struct DsaCampaignResult {
    pub target: Target,
    pub records: Vec<RunRecord>,
    pub bit_population: u64,
    pub golden_cycles: u64,
    pub confidence: f64,
}

impl DsaCampaignResult {
    fn frac(&self, e: FaultEffect) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.effect == e).count() as f64 / self.records.len() as f64
    }

    pub fn avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc) + self.frac(FaultEffect::Crash)
    }

    pub fn sdc_avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc)
    }

    pub fn crash_avf(&self) -> f64 {
        self.frac(FaultEffect::Crash)
    }

    pub fn margin(&self) -> f64 {
        error_margin(
            self.records.len().max(1),
            self.bit_population.saturating_mul(self.golden_cycles.max(1)),
            self.confidence,
        )
    }
}

/// Run a statistical campaign on one DSA memory target.
pub fn run_dsa_campaign(golden: &DsaGolden, target: Target, cc: &CampaignConfig) -> DsaCampaignResult {
    let bit_len = golden.harness.bit_len(target);
    let mut gen = MaskGenerator::new(cc.seed ^ 0xD5A);
    let masks = gen.single_bit(target, bit_len, cc.kind, 1..golden.cycles.max(2), cc.n_faults);

    let workers = if cc.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cc.workers
    };
    let workers = workers.min(masks.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<RunRecord>>> =
        masks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let watchdog = golden.cycles * cc.watchdog_factor + 10_000;

    let tel = &cc.telemetry;
    let scope = Scope::new("dsa");
    let population = bit_len.saturating_mul(golden.cycles.max(1));
    tel.registry.publish_scoped(&scope, "bit_population", bit_len);
    tel.registry.publish_scoped(&scope, "golden_cycles", golden.cycles);
    let done = AtomicU64::new(0);
    let sdc_n = AtomicU64::new(0);
    let crash_n = AtomicU64::new(0);
    let run_cycles = tel.registry.histogram("dsa.run_cycles");
    let masks = masks.as_slice();
    let total = masks.len() as u64;
    // Wakes the progress reporter as soon as the last run lands (see the
    // matching pattern in `run_masks_with_population`).
    let finish_wake = (std::sync::Mutex::new(false), std::sync::Condvar::new());

    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let worker_runs = tel.registry.scoped_counter(&scope.indexed("worker", w), "runs");
            let (next, slots) = (&next, &slots);
            let (done, sdc_n, crash_n) = (&done, &sdc_n, &crash_n);
            let finish_wake = &finish_wake;
            let run_cycles = run_cycles.clone();
            let flight_capacity = tel.flight_capacity;
            let taint = tel.taint;
            s.spawn(move |_| {
                // Reusable per-worker harness for the dirty reset mode.
                let mut reusable: Option<Box<DsaHarness>> = None;
                const BATCH: u64 = 32;
                let (mut b_runs, mut b_sdc, mut b_crash) = (0u64, 0u64, 0u64);
                let mut b_cycles: Vec<u64> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= masks.len() {
                        break;
                    }
                    let mut fr = if flight_capacity > 0 {
                        FlightRecorder::new(flight_capacity)
                    } else {
                        FlightRecorder::disabled()
                    };
                    let mut fresh: Option<DsaHarness> = None;
                    let h: &mut DsaHarness = match cc.reset_mode {
                        ResetMode::Dirty => {
                            let reset_start = tel.registry.is_enabled().then(std::time::Instant::now);
                            if let Some(h) = reusable.as_mut() {
                                let bytes = h.reset_from(&golden.harness);
                                if let Some(t0) = reset_start {
                                    if let Some(hist) = tel.registry.histogram("dsa.reset_ns") {
                                        hist.record(t0.elapsed().as_nanos() as u64);
                                    }
                                    if let Some(hist) = tel.registry.histogram("dsa.reset_bytes") {
                                        hist.record(bytes);
                                    }
                                }
                            } else {
                                reusable = Some(Box::new(golden.harness.clone()));
                            }
                            reusable.as_mut().expect("populated above")
                        }
                        ResetMode::Clone => fresh.insert(golden.harness.clone()),
                    };
                    if taint {
                        // Before arming: the injection inside `run_recorded`
                        // seeds the shadow planes.
                        h.accel.enable_taint(&target.name());
                    }
                    let outcome = h.run_recorded(Some(&masks[i]), watchdog, &mut fr);
                    let (effect, trap) = match &outcome {
                        DsaOutcome::Done { output, .. } => {
                            if *output == golden.output {
                                (FaultEffect::Masked, None)
                            } else {
                                (FaultEffect::Sdc, None)
                            }
                        }
                        DsaOutcome::Error { .. } => (FaultEffect::Crash, Some("accel-error")),
                        DsaOutcome::Timeout => (FaultEffect::Crash, Some("watchdog")),
                    };
                    let cycles = match outcome {
                        DsaOutcome::Done { cycles, .. } | DsaOutcome::Error { cycles } => cycles,
                        DsaOutcome::Timeout => watchdog,
                    };
                    if fr.is_enabled() {
                        match h.fault_fate(target) {
                            Some(SramFate::Read) => fr.record(cycles, Event::BitRead),
                            Some(SramFate::Overwritten) => fr.record(cycles, Event::BitOverwritten),
                            _ => {}
                        }
                        let tag = match effect {
                            FaultEffect::Masked => "Masked",
                            FaultEffect::Sdc => "SDC",
                            FaultEffect::Crash => "Crash",
                        };
                        fr.record(cycles, Event::Classified { effect: tag });
                    }
                    b_runs += 1;
                    match effect {
                        FaultEffect::Sdc => b_sdc += 1,
                        FaultEffect::Crash => b_crash += 1,
                        FaultEffect::Masked => {}
                    }
                    if run_cycles.is_some() {
                        b_cycles.push(cycles);
                    }
                    let attribution = taint_finish(h.accel.taint_tracer().map(|t| t.report()), &mut fr);
                    let forensics =
                        (fr.is_enabled() && effect != FaultEffect::Masked).then(|| fr.take());
                    *slots[i].lock().unwrap() = Some(RunRecord {
                        effect,
                        hvf: None,
                        trap,
                        early_terminated: false,
                        cycles,
                        forensics,
                        attribution,
                    });
                    let last = done.fetch_add(1, Ordering::Relaxed) + 1 == total;
                    if b_runs >= BATCH || last {
                        worker_runs.add(b_runs);
                        sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                        crash_n.fetch_add(b_crash, Ordering::Relaxed);
                        if let Some(hist) = &run_cycles {
                            b_cycles.drain(..).for_each(|c| hist.record(c));
                        }
                        (b_runs, b_sdc, b_crash) = (0, 0, 0);
                    }
                    if last {
                        let (lock, cvar) = finish_wake;
                        *lock.lock().unwrap() = true;
                        cvar.notify_all();
                    }
                }
                if b_runs > 0 {
                    worker_runs.add(b_runs);
                    sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                    crash_n.fetch_add(b_crash, Ordering::Relaxed);
                    if let Some(hist) = &run_cycles {
                        b_cycles.drain(..).for_each(|c| hist.record(c));
                    }
                }
            });
        }
        if tel.progress_interval_ms > 0 {
            let (done, sdc_n, crash_n) = (&done, &sdc_n, &crash_n);
            let finish_wake = &finish_wake;
            let interval = std::time::Duration::from_millis(tel.progress_interval_ms);
            let confidence = cc.confidence;
            s.spawn(move |_| {
                let meter = ProgressMeter::new("dsa", total);
                let (lock, cvar) = finish_wake;
                let mut finished = lock.lock().unwrap();
                loop {
                    let d = done.load(Ordering::Relaxed);
                    let margin = error_margin(d.max(1) as usize, population, confidence);
                    eprintln!(
                        "{}",
                        meter.line(
                            d,
                            sdc_n.load(Ordering::Relaxed),
                            crash_n.load(Ordering::Relaxed),
                            0,
                            margin
                        )
                    );
                    if d >= total {
                        break;
                    }
                    if !*finished {
                        finished = cvar.wait_timeout(finished, interval).unwrap().0;
                    }
                }
            });
        }
    })
    .expect("dsa campaign worker panicked");

    let (sdc, crash) = (sdc_n.into_inner(), crash_n.into_inner());
    tel.registry.publish_scoped(&scope, "runs", total);
    tel.registry.publish_scoped(&scope, "sdc", sdc);
    tel.registry.publish_scoped(&scope, "crash", crash);
    tel.registry.publish_scoped(&scope, "masked", total - sdc - crash);
    if tel.registry.is_enabled() {
        // One extra fault-free run to export the accelerator's structure
        // counters (SPM/RegBank traffic, node/block execution).
        let mut h = golden.harness.clone();
        let _ = h.run(None, watchdog);
        h.accel.publish_metrics(&tel.registry, &scope.child("golden_accel"));
    }

    let records = slots.into_iter().map(|s| s.into_inner().unwrap().unwrap()).collect();
    DsaCampaignResult {
        target,
        records,
        bit_population: bit_len,
        golden_cycles: golden.cycles,
        confidence: cc.confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_accel::air::{CdfgBuilder, MemRef};
    use marvel_accel::{DmaDir, FuConfig, Sram, SramKind};
    use marvel_isa::AluOp;

    /// OUT[i] = IN[i] * 3, i in 0..8 (u64).
    fn triple_harness() -> DsaHarness {
        let mut g = CdfgBuilder::new();
        let entry = g.block(0);
        let body = g.block(1);
        let done = g.block(0);
        g.select(entry);
        let z = g.konst(0);
        g.jump(body, &[z]);
        g.select(body);
        let i = g.arg(0);
        let eight = g.konst(8);
        let addr = g.alu(AluOp::Mul, i, eight);
        let v = g.load(MemRef::Spm(0), 8, addr);
        let three = g.konst(3);
        let v3 = g.alu(AluOp::Mul, v, three);
        g.store(MemRef::Spm(1), 8, addr, v3);
        let one = g.konst(1);
        let i2 = g.alu(AluOp::Add, i, one);
        let n = g.konst(8);
        let more = g.alu(AluOp::Sltu, i2, n);
        g.branch(more, body, &[i2], done, &[]);
        g.select(done);
        g.finish();
        let accel = Accelerator::new(
            "triple",
            g.build().unwrap(),
            FuConfig::default(),
            vec![Sram::new("IN", SramKind::Spm, 64, 2), Sram::new("OUT", SramKind::Spm, 64, 2)],
            vec![],
            0,
        );
        let mut ram = vec![0u8; 256];
        for i in 0..8u64 {
            ram[(i * 8) as usize..(i * 8 + 8) as usize].copy_from_slice(&(i + 1).to_le_bytes());
        }
        DsaHarness {
            accel,
            ram,
            jobs_in: vec![DmaJob {
                dir: DmaDir::ToSram,
                ram_off: 0,
                mem: MemRef::Spm(0),
                mem_off: 0,
                len: 64,
            }],
            jobs_out: vec![DmaJob {
                dir: DmaDir::ToRam,
                ram_off: 128,
                mem: MemRef::Spm(1),
                mem_off: 0,
                len: 64,
            }],
            args: vec![],
            output: 128..192,
        }
    }

    #[test]
    fn golden_run_correct() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        for i in 0..8u64 {
            let off = (i * 8) as usize;
            let v = u64::from_le_bytes(g.output[off..off + 8].try_into().unwrap());
            assert_eq!(v, (i + 1) * 3);
        }
        assert!(g.cycles > 10);
    }

    #[test]
    fn input_spm_campaign_mostly_sdc() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig { n_faults: 60, workers: 4, ..Default::default() };
        let res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        assert_eq!(res.records.len(), 60);
        // Data SPM faults corrupt outputs but never addresses: SDC-heavy,
        // crash-free (the paper's Observation #6 for FFT/GEMM-style SPMs).
        assert!(res.crash_avf() < 1e-9);
        assert!(res.sdc_avf() > 0.2, "sdc {}", res.sdc_avf());
        assert!(res.avf() < 1.0);
    }

    #[test]
    fn permanent_dsa_faults() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig {
            n_faults: 30,
            kind: crate::fault::FaultKind::Permanent,
            workers: 4,
            ..Default::default()
        };
        let res = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 1 }, &cc);
        assert_eq!(res.records.len(), 30);
    }

    #[test]
    fn reset_modes_produce_identical_records() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let mk = |mode, kind| CampaignConfig {
            n_faults: 24,
            kind,
            workers: 3,
            reset_mode: mode,
            ..Default::default()
        };
        for kind in [crate::fault::FaultKind::Transient, crate::fault::FaultKind::Permanent] {
            let rc = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &mk(ResetMode::Clone, kind));
            let rd = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &mk(ResetMode::Dirty, kind));
            let key = |r: &RunRecord| (r.effect, r.trap, r.cycles);
            let kc: Vec<_> = rc.records.iter().map(key).collect();
            let kd: Vec<_> = rd.records.iter().map(key).collect();
            assert_eq!(kc, kd, "{kind:?}");
        }
    }

    #[test]
    fn deterministic() {
        let g = DsaGolden::prepare(triple_harness(), 100_000);
        let cc = CampaignConfig { n_faults: 16, workers: 3, ..Default::default() };
        let r1 = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        let r2 = run_dsa_campaign(&g, Target::Spm { accel: 0, mem: 0 }, &cc);
        let e1: Vec<_> = r1.records.iter().map(|r| r.effect).collect();
        let e2: Vec<_> = r2.records.iter().map(|r| r.effect).collect();
        assert_eq!(e1, e2);
    }
}
