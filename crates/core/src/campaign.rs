//! CPU-side statistical fault-injection campaigns (the paper's Fig. 2
//! layout): checkpoint preparation, parallel workers, early termination,
//! and AVF/HVF classification.

use crate::fault::{FaultKind, FaultMask, FaultModel, MaskGenerator};
use crate::stats::error_margin;
use marvel_cpu::{CoreStats, FaultFate, LaneEvent, TraceMode, MAX_LANES};
use marvel_soc::{RunOutcome, SysDirtyMarks, SysEvent, System, Target};
use marvel_telemetry::{
    Attribution, Event, FlightDump, FlightRecorder, PhaseId, ProgressMeter, Registry, Scope,
    SpanCollector, SpanLane, TaintReport,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// AVF fault-effect classes (Section IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEffect {
    /// No observable deviation from the fault-free run.
    Masked,
    /// Completed normally with different program output.
    Sdc,
    /// Trap, hang or other catastrophic interruption.
    Crash,
}

/// HVF fault-effect classes (Section IV-D): did the fault become visible
/// at the commit stage?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HvfEffect {
    Masked,
    Corruption,
}

/// Result of one injection run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub effect: FaultEffect,
    /// HVF classification (when the campaign collects it) — computed from
    /// the *same run*, enabling the paper's fault-propagation correlation.
    pub hvf: Option<HvfEffect>,
    /// Trap tag for crashes.
    pub trap: Option<&'static str>,
    /// The run was cut short by the early-termination optimisation.
    pub early_terminated: bool,
    /// The run was cut short by the dirty-diff convergence exit: its state
    /// matched the golden run's at a ladder rung, so the remaining tail
    /// was skipped and `cycles` reports the golden execution length the
    /// full run would have reached.
    pub converged: bool,
    /// Simulated cycles of this run (from checkpoint).
    pub cycles: u64,
    /// Flight-recorder timeline, retained only for SDC/Crash runs of
    /// campaigns that enabled the recorder.
    pub forensics: Option<FlightDump>,
    /// marvel-taint attribution: where the fault first became
    /// architecturally visible (or where it was last seen before being
    /// masked). Present only when the campaign enabled taint tracking.
    pub attribution: Option<Attribution>,
}

/// Observability settings carried by [`CampaignConfig`]. The default is
/// fully off: a disabled registry, no progress line, no flight recorder —
/// zero cost on the injection hot path.
///
/// Telemetry is strictly observational: enabling any of it never changes
/// fault classifications (the determinism regression test pins this).
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Registry campaign metrics are published to.
    pub registry: Registry,
    /// Print a live progress line to stderr every this-many milliseconds
    /// (0 = off).
    pub progress_interval_ms: u64,
    /// Per-run flight-recorder event capacity (0 = off). Timelines are
    /// kept only for SDC/Crash runs.
    pub flight_capacity: usize,
    /// Enable marvel-taint shadow tracking: per-run propagation timelines
    /// (into the flight recorder) and per-structure AVF attribution.
    /// Strictly observational — classifications stay bit-identical.
    pub taint: bool,
    /// marvel-spans phase tracing: per-worker span stacks attributing wall
    /// time to campaign phases ([`PhaseId`]), exportable as a Chrome trace
    /// and a per-phase attribution table. Disabled by default (the
    /// enter/exit hot path is then a single branch).
    pub spans: SpanCollector,
}

/// How each injection run obtains its starting state.
///
/// Both modes produce bit-identical campaign results at any worker count
/// (the differential regression tests pin this); they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetMode {
    /// Deep-clone the golden checkpoint for every run. The original path,
    /// kept selectable as an oracle for the dirty-reset journal.
    Clone,
    /// Zero-copy: each worker keeps one reusable [`System`] and undoes
    /// dirty state (journaled RAM pages, cache sets, registers) against
    /// the shared pristine checkpoint between runs.
    #[default]
    Dirty,
}

impl ResetMode {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<ResetMode> {
        match s {
            "clone" => Some(ResetMode::Clone),
            "dirty" => Some(ResetMode::Dirty),
            _ => None,
        }
    }
}

/// Which stepping engine DSA campaigns drive the accelerator with.
///
/// Both engines produce bit-identical campaign results (the engine
/// differential test pins this); they differ only in cost. Event falls
/// back to Cycle automatically when a design is unschedulable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DsaEngine {
    /// Tick-every-cycle CDFG execution — the original oracle, kept
    /// selectable for differential testing.
    Cycle,
    /// Event-driven stepping over the precomputed static schedule with
    /// memoized golden-trace replay.
    #[default]
    Event,
}

impl DsaEngine {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<DsaEngine> {
        match s {
            "cycle" => Some(DsaEngine::Cycle),
            "event" => Some(DsaEngine::Event),
            _ => None,
        }
    }
}

/// Campaign-wide configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub n_faults: usize,
    pub kind: FaultKind,
    pub seed: u64,
    /// Collect the HVF classification alongside AVF (same runs).
    pub collect_hvf: bool,
    /// Worker threads (0 = all available cores).
    pub workers: usize,
    /// Watchdog = checkpoint + `watchdog_factor` × golden exec cycles.
    pub watchdog_factor: u64,
    /// Enable the fault-overwritten/invalid-entry early termination.
    pub early_termination: bool,
    pub confidence: f64,
    /// Run-state reset strategy (zero-copy dirty reset vs. deep clone).
    pub reset_mode: ResetMode,
    /// Intermediate checkpoint-ladder rungs snapshotted across the
    /// injection window. Transient runs start from the nearest rung at or
    /// below their injection cycle instead of replaying the whole prefix.
    /// 0 = off: the full-prefix oracle path.
    pub ladder_rungs: usize,
    /// Dirty-diff convergence exit: at each rung crossing after injection,
    /// compare the run's dirty state against the golden snapshot at the
    /// same cycle and terminate as Masked on exact match. Requires a
    /// ladder (`ladder_rungs > 0`) to have any effect.
    pub convergence_exit: bool,
    /// Accelerator stepping engine for DSA campaigns (ignored by CPU
    /// campaigns). Event by default; Cycle is the differential oracle.
    pub dsa_engine: DsaEngine,
    /// Lane-packed execution width for CPU campaigns: up to this many
    /// single-bit transient faults on the same target and ladder segment
    /// share one golden pass as bit-plane lanes, each forked out to an
    /// ordinary scalar run the moment its divergence could touch control
    /// flow, a memory address or store data. `0` disables packing (the
    /// scalar oracle); values are clamped to `2..=64`. Records are
    /// bit-identical to the scalar path at any width (the lane
    /// differential test pins this).
    pub lane_width: usize,
    /// Observability (metrics, progress line, flight recorder).
    pub telemetry: TelemetryConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_faults: 1000,
            kind: FaultKind::Transient,
            seed: 0xC0FFEE,
            collect_hvf: false,
            workers: 0,
            watchdog_factor: 3,
            early_termination: true,
            confidence: 0.95,
            reset_mode: ResetMode::default(),
            ladder_rungs: 0,
            convergence_exit: false,
            dsa_engine: DsaEngine::default(),
            lane_width: 64,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Errors preparing the golden reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenError {
    /// The program crashed or timed out fault-free.
    BadGoldenRun(String),
}

impl std::fmt::Display for GoldenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GoldenError::BadGoldenRun(s) => write!(f, "golden run failed: {s}"),
        }
    }
}

impl std::error::Error for GoldenError {}

/// Golden reference: the checkpointed system plus the fault-free outcome.
#[derive(Debug, Clone)]
pub struct Golden {
    /// System state at the checkpoint marker (warm caches included).
    pub ckpt: System,
    pub ckpt_cycle: u64,
    /// Cycles from checkpoint to halt in the fault-free run.
    pub exec_cycles: u64,
    pub output: Vec<u8>,
    /// Golden commit trace for HVF comparison.
    pub trace: Arc<Vec<marvel_cpu::CommitRecord>>,
    pub stats: CoreStats,
    /// Cycle at which the `SwitchCpu` marker committed in the golden run
    /// (used for directed injection windows, e.g. the Listing 1 sanity
    /// check).
    pub switch_cycle: Option<u64>,
    /// The checkpoint was produced by the reference-model fast-forward
    /// ([`Golden::prepare_fast`]) rather than cycle-level warmup.
    pub ref_prepped: bool,
}

impl Golden {
    /// Run `sys` (already loaded) to its checkpoint marker, snapshot it,
    /// then complete the fault-free run recording output + commit trace.
    ///
    /// Programs without a `Checkpoint` marker are checkpointed at cycle 0.
    ///
    /// # Errors
    /// [`GoldenError::BadGoldenRun`] if the fault-free run traps or
    /// exceeds `max_cycles`.
    pub fn prepare(mut sys: System, max_cycles: u64) -> Result<Golden, GoldenError> {
        loop {
            match sys.tick() {
                SysEvent::Checkpoint => break,
                SysEvent::Halted => {
                    return Err(GoldenError::BadGoldenRun("halted before checkpoint".into()))
                }
                SysEvent::Trapped(t) => {
                    return Err(GoldenError::BadGoldenRun(format!("trapped before checkpoint: {t}")))
                }
                _ => {}
            }
            if sys.cycle >= max_cycles {
                // No checkpoint marker within budget. Re-running the
                // initial state could only time out again (halting or
                // trapping inside the budget would have been caught
                // above), so report that outcome without the re-run.
                return Err(GoldenError::BadGoldenRun("golden run timed out".into()));
            }
        }
        // Snapshot exactly once, at the marker, then continue the same
        // system as the golden run: its state *is* the checkpoint, so
        // recording from here matches a fresh clone bit for bit.
        let ckpt_cycle = sys.cycle;
        let ckpt = sys.clone();
        sys.core.trace_mode = TraceMode::Record;
        match sys.run(max_cycles) {
            RunOutcome::Halted { cycles } => {
                let trace = Arc::new(std::mem::take(&mut sys.core.trace));
                Ok(Golden {
                    ckpt,
                    ckpt_cycle,
                    exec_cycles: cycles - ckpt_cycle,
                    output: sys.bus.console.clone(),
                    trace,
                    stats: sys.core.stats.clone(),
                    switch_cycle: sys.switch_cycle,
                    ref_prepped: false,
                })
            }
            RunOutcome::Crashed { trap, .. } => {
                Err(GoldenError::BadGoldenRun(format!("golden run trapped: {trap}")))
            }
            RunOutcome::Timeout => Err(GoldenError::BadGoldenRun("golden run timed out".into())),
        }
    }

    /// Reference-model fast-forward variant of [`prepare`](Self::prepare):
    /// the pre-checkpoint warmup runs on the architectural interpreter
    /// (`marvel-ref`) instead of the cycle-level core, then the
    /// architectural state is transplanted into the O3 core and the
    /// caches are warmed by replaying the recorded line-access trace.
    /// Campaign setup skips the expensive cycle-level warmup entirely —
    /// the golden run itself (and every injection run) is still fully
    /// cycle-level.
    ///
    /// `max_cycles` bounds the fast-forward in *instructions* and the
    /// golden run in cycles, mirroring `prepare`'s budget. The resulting
    /// `ckpt_cycle` is 0: injection windows and watchdogs are expressed
    /// relative to the (cycle-level) post-checkpoint execution, exactly
    /// as with a marker-less program under `prepare`.
    ///
    /// Falls back to `prepare` when the system hosts accelerators — the
    /// reference model executes only the CPU side.
    pub fn prepare_fast(mut sys: System, max_cycles: u64) -> Result<Golden, GoldenError> {
        if !sys.bus.accels.is_empty() {
            return Self::prepare(sys, max_cycles);
        }
        let line = sys.core.cfg.l1i.line as u64;
        let mut mem = marvel_ref::RefMem::new(sys.bus.ram.clone());
        mem.enable_trace(line);
        let mut cpu = marvel_ref::RefCpu::with_line(sys.core.isa(), sys.core.arch_pc(), line);
        cpu.set_regs(&sys.core.arch_regs());
        match cpu.run_to_checkpoint(&mut mem, max_cycles) {
            marvel_ref::RefRunOutcome::Checkpoint { .. } => {
                sys.bus.console = std::mem::take(&mut mem.console);
                sys.bus.ram = std::mem::take(&mut mem.ram);
                sys.core.transplant_arch_state(cpu.pc(), cpu.regs());
                let lines = mem.trace_lines();
                let System { core, bus, .. } = &mut sys;
                core.warm_caches(bus, &lines);
                sys.checkpoint_cycle = Some(0);
            }
            marvel_ref::RefRunOutcome::Halted { .. } => {
                return Err(GoldenError::BadGoldenRun("halted before checkpoint".into()))
            }
            marvel_ref::RefRunOutcome::Trapped { trap, .. } => {
                return Err(GoldenError::BadGoldenRun(format!("trapped before checkpoint: {trap}")))
            }
            // No checkpoint marker within budget: keep the untouched
            // initial state, matching `prepare`'s marker-less contract
            // (the interpreter ran on a RAM copy).
            marvel_ref::RefRunOutcome::OutOfBudget => {}
        }
        Self::finish(sys, 0, max_cycles, true)
    }

    /// Tail of [`prepare_fast`](Self::prepare_fast): clone the transplanted
    /// checkpoint and run the fault-free golden execution from it,
    /// recording the commit trace. ([`prepare`](Self::prepare) avoids this
    /// extra clone by continuing the warmup system in place.)
    fn finish(
        ckpt: System,
        ckpt_cycle: u64,
        max_cycles: u64,
        ref_prepped: bool,
    ) -> Result<Golden, GoldenError> {
        let mut golden_run = ckpt.clone();
        golden_run.core.trace_mode = TraceMode::Record;
        match golden_run.run(max_cycles) {
            RunOutcome::Halted { cycles } => {
                let trace = Arc::new(std::mem::take(&mut golden_run.core.trace));
                Ok(Golden {
                    ckpt,
                    ckpt_cycle,
                    exec_cycles: cycles - ckpt_cycle,
                    output: golden_run.bus.console.clone(),
                    trace,
                    stats: golden_run.core.stats.clone(),
                    switch_cycle: golden_run.switch_cycle,
                    ref_prepped,
                })
            }
            RunOutcome::Crashed { trap, .. } => {
                Err(GoldenError::BadGoldenRun(format!("golden run trapped: {trap}")))
            }
            RunOutcome::Timeout => Err(GoldenError::BadGoldenRun("golden run timed out".into())),
        }
    }

    /// Injection window: every cycle of the post-checkpoint execution.
    pub fn injection_window(&self) -> std::ops::Range<u64> {
        self.ckpt_cycle..self.ckpt_cycle + self.exec_cycles
    }

    /// Export golden-run facts and checkpoint-state structure metrics
    /// under `golden.*` (warm caches, occupancies at the checkpoint).
    pub fn publish_metrics(&self, reg: &Registry) {
        if !reg.is_enabled() {
            return;
        }
        let scope = Scope::new("golden");
        reg.publish_scoped(&scope, "ckpt_cycle", self.ckpt_cycle);
        reg.publish_scoped(&scope, "exec_cycles", self.exec_cycles);
        reg.publish_scoped(&scope, "output_bytes", self.output.len() as u64);
        reg.publish_scoped(&scope, "trace_commits", self.trace.len() as u64);
        self.ckpt.publish_metrics(reg, &scope.child("soc"));
    }

    /// Build a checkpoint ladder: `n_rungs` evenly spaced snapshots of the
    /// golden run across the injection window, each carrying the dirty
    /// marks of the golden segment since the previous rung.
    ///
    /// The builder replays the golden run once with dirty tracking on;
    /// `collect_hvf` must match the campaign's setting so rung snapshots
    /// carry the same trace-checking state as the faulty runs they are
    /// compared against. Rung cycles are strictly inside the window and
    /// deduplicated, so a short window simply yields fewer rungs.
    pub fn build_ladder(&self, n_rungs: usize, collect_hvf: bool) -> Ladder {
        if n_rungs == 0 || self.exec_cycles < 2 {
            return Ladder::default();
        }
        let span = self.exec_cycles;
        let mut cycles: Vec<u64> = (1..=n_rungs as u64)
            .map(|i| self.ckpt_cycle + i * span / (n_rungs as u64 + 1))
            .filter(|&c| c > self.ckpt_cycle && c < self.ckpt_cycle + span)
            .collect();
        cycles.dedup();
        let mut sys = Box::new(self.ckpt.clone());
        sys.enable_dirty_tracking();
        if collect_hvf {
            sys.core.trace_mode = TraceMode::Check(self.trace.clone());
        }
        let mut rungs = Vec::with_capacity(cycles.len());
        for &c in &cycles {
            while sys.cycle < c {
                match sys.tick() {
                    // The golden run completing inside the window would
                    // contradict `exec_cycles`; stop laddering defensively.
                    SysEvent::Halted | SysEvent::Trapped(_) => return Ladder { rungs },
                    _ => {}
                }
            }
            let seg = sys.take_dirty_marks();
            rungs.push(LadderRung { cycle: c, sys: (*sys).clone(), seg });
        }
        Ladder { rungs }
    }
}

/// One ladder rung: the golden system snapshot at `cycle` plus the dirty
/// marks of the golden segment `(previous rung, cycle]`.
#[derive(Debug, Clone)]
pub struct LadderRung {
    pub cycle: u64,
    sys: System,
    seg: SysDirtyMarks,
}

/// A checkpoint ladder shared read-only across campaign workers: evenly
/// spaced golden-run snapshots that let transient injection runs skip the
/// fault-free prefix below their injection cycle, and serve as comparison
/// points for the dirty-diff convergence exit.
#[derive(Debug, Clone, Default)]
pub struct Ladder {
    rungs: Vec<LadderRung>,
}

impl Ladder {
    pub fn is_empty(&self) -> bool {
        self.rungs.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rungs.len()
    }

    /// Rung cycles, ascending.
    pub fn cycles(&self) -> Vec<u64> {
        self.rungs.iter().map(|r| r.cycle).collect()
    }

    /// Index of the first rung strictly above `cycle` (also the count of
    /// rungs usable as a starting point for an injection at `cycle`).
    fn partition_at(&self, cycle: u64) -> usize {
        self.rungs.partition_point(|r| r.cycle <= cycle)
    }
}

/// Record the first observed fate transition of the armed bit.
fn note_fate(fr: &mut FlightRecorder, cycle: u64, fate: Option<FaultFate>, seen: &mut bool) {
    if *seen || !fr.is_enabled() {
        return;
    }
    match fate {
        Some(FaultFate::Read) => {
            fr.record(cycle, Event::BitRead);
            *seen = true;
        }
        Some(FaultFate::Overwritten) => {
            fr.record(cycle, Event::BitOverwritten);
            *seen = true;
        }
        Some(FaultFate::InvalidAtInjection) => {
            fr.record(cycle, Event::InvalidEntry);
            *seen = true;
        }
        _ => {}
    }
}

fn effect_tag(e: FaultEffect) -> &'static str {
    match e {
        FaultEffect::Masked => "Masked",
        FaultEffect::Sdc => "SDC",
        FaultEffect::Crash => "Crash",
    }
}

/// Replay a taint report into the flight recorder (hop timeline plus the
/// arch-reach / masked terminal event) and reduce it to an attribution.
pub(crate) fn taint_finish(rep: Option<TaintReport>, fr: &mut FlightRecorder) -> Option<Attribution> {
    let rep = rep?;
    if fr.is_enabled() {
        for h in &rep.hops {
            fr.record(h.cycle, Event::TaintHop { from: h.from, to: h.to });
        }
        match &rep.first_arch {
            Some((c, s)) => fr.record(*c, Event::TaintArch { structure: s.clone() }),
            None => {
                let (c, s) = rep.last_loc.clone().unwrap_or((0, rep.seed.clone()));
                fr.record(c, Event::TaintMasked { structure: s });
            }
        }
    }
    Some(rep.attribution())
}

/// Reusable per-worker run state for [`ResetMode::Dirty`]: one `System`
/// kept alive across runs and reset against the shared pristine
/// checkpoint, instead of a deep clone per run.
#[derive(Debug, Default)]
pub struct WorkerCtx {
    sys: Option<Box<System>>,
    /// Cycle of the pristine base the reusable system was cloned from
    /// (checkpoint or ladder rung). A dirty reset is only sound against
    /// the *same* base; switching rungs forces a reclone.
    base_cycle: u64,
}

impl WorkerCtx {
    pub fn new() -> Self {
        WorkerCtx::default()
    }
}

/// Execute one injection run (always via a fresh deep clone of the
/// checkpoint — the oracle path; campaigns route through [`run_one_in`]).
pub fn run_one(golden: &Golden, mask: &FaultMask, cc: &CampaignConfig) -> RunRecord {
    run_one_in(golden, mask, cc, None)
}

/// Execute one injection run inside an optional reusable worker context.
///
/// With `ctx = None` (or on a context's first run) the checkpoint is deep
/// cloned; afterwards the context's system is dirty-reset from the shared
/// pristine checkpoint, recording `campaign.reset_ns` / `campaign.reset_bytes`
/// when the registry is live. Classifications are bit-identical either way.
pub fn run_one_in(
    golden: &Golden,
    mask: &FaultMask,
    cc: &CampaignConfig,
    ctx: Option<&mut WorkerCtx>,
) -> RunRecord {
    run_one_laddered(golden, None, mask, cc, ctx)
}

/// [`run_one_in`] with an optional checkpoint ladder: transient
/// runs start from the nearest rung at or below their injection cycle
/// (skipping the fault-free prefix), and — when `cc.convergence_exit` is
/// set — compare dirty state against golden rung snapshots at each later
/// rung crossing, exiting as Masked on exact convergence. Classifications
/// and exported records stay identical to the ladder-less oracle.
pub fn run_one_laddered(
    golden: &Golden,
    ladder: Option<&Ladder>,
    mask: &FaultMask,
    cc: &CampaignConfig,
    ctx: Option<&mut WorkerCtx>,
) -> RunRecord {
    run_one_spanned(golden, ladder, mask, cc, ctx, &mut SpanLane::disabled())
}

/// How the post-injection simulation loop ended — lets the span around it
/// close before the record is built, whichever exit path fired.
enum LoopEnd {
    Outcome(RunOutcome),
    /// Dirty-diff convergence exit at a ladder rung.
    Converged,
    /// Early termination: the fate monitor proved the fault dead.
    MaskedEarly,
}

/// Establish a run's (or lane pass's) starting system: dirty-reset the
/// worker's reusable system when its base matches, otherwise pay one
/// deep clone (into the context, or into `owned` for context-less runs).
/// Shared by the scalar path and the lane-pass driver so both pay
/// byte-identical reset behaviour.
fn acquire_system<'a>(
    base_sys: &System,
    base_cycle: u64,
    tel: &TelemetryConfig,
    ctx: Option<&'a mut WorkerCtx>,
    owned: &'a mut Option<Box<System>>,
    lane: &mut SpanLane,
) -> &'a mut System {
    let reset_start = tel.registry.is_enabled().then(std::time::Instant::now);
    match ctx {
        Some(c) => {
            match &mut c.sys {
                Some(s) if c.base_cycle == base_cycle => {
                    lane.enter(PhaseId::DirtyReset);
                    let bytes = s.reset_from(base_sys);
                    lane.exit(PhaseId::DirtyReset);
                    if let Some(t0) = reset_start {
                        if let Some(h) = tel.registry.histogram("campaign.reset_ns") {
                            h.record(t0.elapsed().as_nanos() as u64);
                        }
                        if let Some(h) = tel.registry.histogram("campaign.reset_bytes") {
                            h.record(bytes);
                        }
                    }
                }
                slot => {
                    // First run on this worker, or the base rung changed:
                    // pay the one clone, then arm the dirty journals for
                    // every later same-base reset. (Campaign scheduling
                    // sorts runs by injection cycle, so each worker pays
                    // at most one reclone per rung.)
                    lane.enter(PhaseId::RungRestore);
                    let mut s = Box::new(base_sys.clone());
                    s.enable_dirty_tracking();
                    lane.exit(PhaseId::RungRestore);
                    *slot = Some(s);
                    c.base_cycle = base_cycle;
                }
            }
            c.sys.as_mut().expect("worker context populated above")
        }
        None => {
            lane.enter(PhaseId::RungRestore);
            let s = Box::new(base_sys.clone());
            lane.exit(PhaseId::RungRestore);
            if let Some(t0) = reset_start {
                if let Some(h) = tel.registry.histogram("campaign.ckpt_restore_ns") {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
            }
            owned.insert(s)
        }
    }
}

/// [`run_one_laddered`] with an explicit span lane: campaign workers pass
/// their lane so the run's phases (reset, inject, simulate, convergence
/// diffs) land in the marvel-spans trace. `SpanLane::disabled()` makes
/// this identical to the un-traced path.
pub fn run_one_spanned(
    golden: &Golden,
    ladder: Option<&Ladder>,
    mask: &FaultMask,
    cc: &CampaignConfig,
    ctx: Option<&mut WorkerCtx>,
    lane: &mut SpanLane,
) -> RunRecord {
    let tel = &cc.telemetry;
    let mut fr = if tel.flight_capacity > 0 {
        FlightRecorder::new(tel.flight_capacity)
    } else {
        FlightRecorder::disabled()
    };
    let mut fate_seen = false;

    // Base selection: permanents apply at the checkpoint; transients start
    // from the nearest rung at or below their injection cycle. `next_rung`
    // is the first rung the run will cross after injection.
    let inject_cycle = match mask.model {
        FaultModel::Transient { cycle } => Some(cycle),
        FaultModel::Permanent { .. } => None,
    };
    let (base_sys, base_cycle, mut next_rung) = match (ladder, inject_cycle) {
        (Some(l), Some(c)) if !l.is_empty() => match l.partition_at(c) {
            0 => (&golden.ckpt, golden.ckpt_cycle, 0),
            k => (&l.rungs[k - 1].sys, l.rungs[k - 1].cycle, k),
        },
        _ => (&golden.ckpt, golden.ckpt_cycle, 0),
    };
    if tel.registry.is_enabled() {
        if let Some(h) = tel.registry.histogram("campaign.prefix_cycles_skipped") {
            h.record(base_cycle - golden.ckpt_cycle);
        }
        if let Some(c) = inject_cycle {
            if let Some(h) = tel.registry.histogram("campaign.prefix_cycles") {
                h.record(c.saturating_sub(base_cycle));
            }
        }
    }

    let mut owned: Option<Box<System>> = None;
    let sys: &mut System = acquire_system(base_sys, base_cycle, tel, ctx, &mut owned, lane);
    if cc.collect_hvf {
        sys.core.trace_mode = TraceMode::Check(golden.trace.clone());
    }
    let watchdog = golden.ckpt_cycle + golden.exec_cycles.saturating_mul(cc.watchdog_factor) + 50_000;

    // Arm the fault.
    let model_tag = match mask.model {
        FaultModel::Permanent { .. } => "permanent",
        FaultModel::Transient { .. } => "transient",
    };
    lane.enter(PhaseId::Inject);
    match mask.model {
        FaultModel::Permanent { value } => {
            if tel.taint {
                sys.enable_taint(mask.target);
            }
            for &b in &mask.bits {
                sys.set_stuck(mask.target, b, value);
            }
        }
        FaultModel::Transient { cycle } => {
            while sys.cycle < cycle {
                match sys.tick() {
                    SysEvent::Halted | SysEvent::Trapped(_) => break,
                    _ => {}
                }
                if sys.cycle >= watchdog {
                    break;
                }
            }
            // Enable just before arming: the flip itself seeds the shadow
            // planes, and the fault-free prefix carries no taint anyway.
            if tel.taint {
                sys.enable_taint(mask.target);
            }
            for &b in &mask.bits {
                sys.flip(mask.target, b);
            }
        }
    }
    lane.exit(PhaseId::Inject);
    fr.record(
        sys.cycle,
        Event::FaultArmed {
            target: mask.target.name(),
            bit: mask.bits.first().copied().unwrap_or(0),
            model: model_tag,
        },
    );

    // If the fault landed in an invalid entry, it is masked immediately.
    if cc.early_termination {
        if let Some(f) = sys.fault_fate(mask.target) {
            if f.is_masked_early() {
                note_fate(&mut fr, sys.cycle, Some(f), &mut fate_seen);
                fr.record(sys.cycle, Event::EarlyTerminated);
                return RunRecord {
                    effect: FaultEffect::Masked,
                    hvf: cc.collect_hvf.then_some(HvfEffect::Masked),
                    trap: None,
                    early_terminated: true,
                    converged: false,
                    cycles: sys.cycle - golden.ckpt_cycle,
                    forensics: None,
                    attribution: taint_finish(sys.taint_report(), &mut fr),
                };
            }
        }
    }

    // Run to completion with periodic early-termination/fate checks. The
    // fate poll is read-only, so the flight recorder never perturbs the
    // simulation.
    let poll_fate = cc.early_termination || fr.is_enabled();
    let mut check_at = sys.cycle + 256;
    lane.enter(PhaseId::SimStepCpu);
    let end = loop {
        match sys.tick() {
            SysEvent::Halted => break LoopEnd::Outcome(RunOutcome::Halted { cycles: sys.cycle }),
            SysEvent::Trapped(t) => {
                break LoopEnd::Outcome(RunOutcome::Crashed { trap: t, cycles: sys.cycle })
            }
            _ => {}
        }
        if sys.cycle >= watchdog {
            break LoopEnd::Outcome(RunOutcome::Timeout);
        }
        // Ladder-rung crossing: merge the golden segment's dirty marks so
        // the journals cover everything *either* run wrote since the base
        // rung, then (optionally) try the dirty-diff convergence exit.
        if let Some(l) = ladder {
            if next_rung < l.rungs.len() && sys.cycle == l.rungs[next_rung].cycle {
                let rung = &l.rungs[next_rung];
                sys.merge_dirty_marks(&rung.seg);
                next_rung += 1;
                if cc.convergence_exit && mask.model.is_transient() && sys.core.divergence.is_none() {
                    // Fate split: when the fate monitor already knows the
                    // fault is dead and early termination is on, leave the
                    // exit to the fate poll — it reports the same cycle
                    // count the ladder-less oracle would. Otherwise a
                    // converged run is Masked with the golden run length.
                    let skip = cc.early_termination
                        && sys.fault_fate(mask.target).is_some_and(|f| f.is_masked_early());
                    lane.enter(PhaseId::ConvergenceDiff);
                    let converged =
                        !skip && (!tel.taint || sys.taint_quiescent()) && sys.state_converged(&rung.sys);
                    lane.exit(PhaseId::ConvergenceDiff);
                    if converged {
                        fr.record(sys.cycle, Event::Converged);
                        break LoopEnd::Converged;
                    }
                }
            }
        }
        if poll_fate && sys.cycle >= check_at {
            check_at = sys.cycle + 1024;
            let fate = sys.fault_fate(mask.target);
            note_fate(&mut fr, sys.cycle, fate, &mut fate_seen);
            if cc.early_termination && mask.model.is_transient() {
                if let Some(f) = fate {
                    if f.is_masked_early() && sys.core.divergence.is_none() {
                        fr.record(sys.cycle, Event::EarlyTerminated);
                        break LoopEnd::MaskedEarly;
                    }
                }
            }
        }
    };
    lane.exit(PhaseId::SimStepCpu);
    let outcome = match end {
        LoopEnd::Outcome(o) => o,
        LoopEnd::Converged => {
            return RunRecord {
                effect: FaultEffect::Masked,
                hvf: cc.collect_hvf.then_some(HvfEffect::Masked),
                trap: None,
                early_terminated: false,
                converged: true,
                cycles: golden.exec_cycles,
                forensics: None,
                attribution: taint_finish(sys.taint_report(), &mut fr),
            }
        }
        LoopEnd::MaskedEarly => {
            return RunRecord {
                effect: FaultEffect::Masked,
                hvf: cc.collect_hvf.then_some(HvfEffect::Masked),
                trap: None,
                early_terminated: true,
                converged: false,
                cycles: sys.cycle - golden.ckpt_cycle,
                forensics: None,
                attribution: taint_finish(sys.taint_report(), &mut fr),
            }
        }
    };
    note_fate(&mut fr, sys.cycle, sys.fault_fate(mask.target), &mut fate_seen);
    if fr.is_enabled() {
        if let Some(seq) = sys.core.divergence {
            fr.record(sys.cycle, Event::FirstDivergence { seq });
        }
    }

    // Classify.
    let (effect, trap) = match &outcome {
        RunOutcome::Halted { .. } => {
            if sys.bus.console == golden.output {
                (FaultEffect::Masked, None)
            } else {
                (FaultEffect::Sdc, None)
            }
        }
        RunOutcome::Crashed { trap, .. } => (FaultEffect::Crash, Some(trap.tag())),
        RunOutcome::Timeout => (FaultEffect::Crash, Some("watchdog")),
    };
    if let Some(tag) = trap {
        fr.record(sys.cycle, Event::Trap { tag });
    }
    let attribution = taint_finish(sys.taint_report(), &mut fr);
    fr.record(sys.cycle, Event::Classified { effect: effect_tag(effect) });
    let hvf = cc.collect_hvf.then(|| {
        // Any commit-stage divergence — or a crash/SDC, which by
        // definition became architecturally visible — counts as
        // Corruption.
        if sys.core.divergence.is_some() || effect != FaultEffect::Masked {
            HvfEffect::Corruption
        } else {
            HvfEffect::Masked
        }
    });
    // Keep the timeline only when the run turned out interesting.
    let forensics = (fr.is_enabled() && effect != FaultEffect::Masked).then(|| fr.take());
    RunRecord {
        effect,
        hvf,
        trap,
        early_terminated: false,
        converged: false,
        cycles: sys.cycle - golden.ckpt_cycle,
        forensics,
        attribution,
    }
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    pub target: Target,
    pub records: Vec<RunRecord>,
    /// Injectable-bit population (for margin reporting).
    pub bit_population: u64,
    pub golden_exec_cycles: u64,
    pub confidence: f64,
}

impl CampaignResult {
    pub fn n(&self) -> usize {
        self.records.len()
    }

    fn frac(&self, e: FaultEffect) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.effect == e).count() as f64 / self.records.len() as f64
    }

    /// Total AVF = P(SDC) + P(Crash).
    pub fn avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc) + self.frac(FaultEffect::Crash)
    }

    /// SDC-only AVF (the paper's Section V-C).
    pub fn sdc_avf(&self) -> f64 {
        self.frac(FaultEffect::Sdc)
    }

    /// Crash-only AVF.
    pub fn crash_avf(&self) -> f64 {
        self.frac(FaultEffect::Crash)
    }

    /// HVF (fraction of runs whose fault reached the commit stage); `None`
    /// if the campaign did not collect it.
    pub fn hvf(&self) -> Option<f64> {
        if self.records.iter().all(|r| r.hvf.is_none()) {
            return None;
        }
        let n = self.records.len() as f64;
        Some(self.records.iter().filter(|r| r.hvf == Some(HvfEffect::Corruption)).count() as f64 / n)
    }

    /// Fraction of runs cut short by early termination.
    pub fn early_termination_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.early_terminated).count() as f64 / self.records.len() as f64
    }

    /// Fraction of runs cut short by the dirty-diff convergence exit.
    pub fn convergence_exit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.converged).count() as f64 / self.records.len() as f64
    }

    /// Statistical error margin of the AVF estimate.
    pub fn margin(&self) -> f64 {
        error_margin(
            self.records.len().max(1),
            self.bit_population.saturating_mul(self.golden_exec_cycles.max(1)),
            self.confidence,
        )
    }
}

/// The mask list a campaign over `target` will execute (same seed
/// derivation as [`run_campaign`]) — lets directed re-runs (pipeline
/// trace pairs, forensics replays) target the exact same faults.
pub fn campaign_masks(golden: &Golden, target: Target, cc: &CampaignConfig) -> Vec<FaultMask> {
    let bit_len = golden.ckpt.bit_len(target);
    let mut gen = MaskGenerator::new(cc.seed ^ (target_hash(target)));
    gen.single_bit(target, bit_len, cc.kind, golden.injection_window(), cc.n_faults)
}

/// Re-run one fault as a golden/faulty pair with Konata pipeline tracing
/// enabled, returning the two trace texts. The faulty run also enables
/// taint tracking so corrupted commits are flagged (flushed in red /
/// tainted label in Konata-compatible viewers).
pub fn trace_pipeline_pair(golden: &Golden, mask: &FaultMask, cc: &CampaignConfig) -> (String, String) {
    let watchdog = golden.ckpt_cycle + golden.exec_cycles.saturating_mul(cc.watchdog_factor) + 50_000;

    let mut gsys = golden.ckpt.clone();
    gsys.enable_pipe_trace();
    let _ = gsys.run(watchdog);
    let gtrace = gsys.core.pipe_tracer().map(|p| p.render_kanata()).unwrap_or_default();

    let mut fsys = golden.ckpt.clone();
    fsys.enable_pipe_trace();
    match mask.model {
        FaultModel::Permanent { value } => {
            fsys.enable_taint(mask.target);
            for &b in &mask.bits {
                fsys.set_stuck(mask.target, b, value);
            }
        }
        FaultModel::Transient { cycle } => {
            while fsys.cycle < cycle {
                match fsys.tick() {
                    SysEvent::Halted | SysEvent::Trapped(_) => break,
                    _ => {}
                }
                if fsys.cycle >= watchdog {
                    break;
                }
            }
            fsys.enable_taint(mask.target);
            for &b in &mask.bits {
                fsys.flip(mask.target, b);
            }
        }
    }
    let _ = fsys.run(watchdog);
    let ftrace = fsys.core.pipe_tracer().map(|p| p.render_kanata()).unwrap_or_default();
    (gtrace, ftrace)
}

/// Run a full campaign over `target` with parallel workers.
pub fn run_campaign(golden: &Golden, target: Target, cc: &CampaignConfig) -> CampaignResult {
    let bit_len = golden.ckpt.bit_len(target);
    let masks = campaign_masks(golden, target, cc);
    let population = bit_len.saturating_mul(golden.exec_cycles.max(1));
    let reg = &cc.telemetry.registry;
    reg.publish("campaign.bit_population", bit_len);
    reg.publish("campaign.golden_exec_cycles", golden.exec_cycles);
    let records = run_masks_with_population(golden, &masks, cc, population);
    CampaignResult {
        target,
        records,
        bit_population: bit_len,
        golden_exec_cycles: golden.exec_cycles,
        confidence: cc.confidence,
    }
}

/// Run an explicit mask list (directed experiments, multi-bit studies).
pub fn run_masks(golden: &Golden, masks: &[FaultMask], cc: &CampaignConfig) -> Vec<RunRecord> {
    // No single-target bit population here; u64::MAX drives the progress
    // margin toward the pure 1/sqrt(n) regime.
    run_masks_with_population(golden, masks, cc, u64::MAX)
}

/// Mask sort key for rung-monotone scheduling: permanents first (their
/// base is always the checkpoint), then transients by injection cycle, so
/// each worker walks the ladder upward and pays at most one reclone per
/// rung. Ties keep the original index for determinism.
pub(crate) fn schedule_key(mask: &FaultMask) -> u64 {
    match mask.model {
        FaultModel::Permanent { .. } => 0,
        FaultModel::Transient { cycle } => cycle.saturating_add(1),
    }
}

// ----------------------------------------------------------------------
// lane-packed execution
// ----------------------------------------------------------------------

/// Effective lane width: `0`/`1` disable packing, everything else clamps
/// to the bit-plane word width.
fn effective_lane_width(cc: &CampaignConfig) -> usize {
    if cc.lane_width < 2 {
        0
    } else {
        cc.lane_width.min(MAX_LANES)
    }
}

/// Can this mask ride in a lane pass? Packing requires a single-bit
/// transient on a structure whose corruption stays in the data plane
/// until the divergence monitor catches it, and a run with no per-run
/// observational state (taint shadows, flight timelines) that the shared
/// golden pass could not keep per-lane.
fn lane_packable_mask(mask: &FaultMask, cc: &CampaignConfig) -> bool {
    effective_lane_width(cc) >= 2
        && mask.bits.len() == 1
        && matches!(mask.model, FaultModel::Transient { .. })
        && !cc.telemetry.taint
        && cc.telemetry.flight_capacity == 0
        && System::lane_packable(mask.target)
}

/// One claimable work item of a campaign drive: an ordinary scalar run,
/// or a lane pass packing up to [`MAX_LANES`] masks that share a target
/// and a ladder segment into one golden execution.
enum Unit {
    Scalar(usize),
    Pass(Vec<usize>),
}

impl Unit {
    fn first(&self) -> usize {
        match self {
            Unit::Scalar(i) => *i,
            Unit::Pass(v) => v[0],
        }
    }
}

/// Partition the claimable masks into scheduling units. Eligible masks
/// are grouped by (target, ladder segment) — every member of a pass
/// shares the base rung and the same rung-crossing sequence — and chunked
/// to the lane width; everything else stays scalar. Unit order is
/// rung-monotone so each worker still pays at most one reclone per rung.
fn build_units(
    masks: &[FaultMask],
    order: &[usize],
    ladder: Option<&Ladder>,
    cc: &CampaignConfig,
) -> Vec<Unit> {
    let width = effective_lane_width(cc);
    let mut units: Vec<Unit> = Vec::new();
    let mut groups: Vec<((Target, usize), Vec<usize>)> = Vec::new();
    for &i in order {
        let m = &masks[i];
        if width == 0 || !lane_packable_mask(m, cc) {
            units.push(Unit::Scalar(i));
            continue;
        }
        let FaultModel::Transient { cycle } = m.model else { unreachable!("packable ⇒ transient") };
        let seg = ladder.map(|l| l.partition_at(cycle)).unwrap_or(0);
        match groups.iter_mut().find(|(k, _)| *k == (m.target, seg)) {
            Some((_, v)) => v.push(i),
            None => groups.push(((m.target, seg), vec![i])),
        }
    }
    if groups.is_empty() {
        return units;
    }
    for (_, v) in groups {
        for chunk in v.chunks(width) {
            if chunk.len() >= 2 {
                units.push(Unit::Pass(chunk.to_vec()));
            } else {
                units.push(Unit::Scalar(chunk[0]));
            }
        }
    }
    units.sort_by_key(|u| (schedule_key(&masks[u.first()]), u.first()));
    units
}

/// A [`RunRecord`] retired inside a lane pass: always `Masked` (anything
/// that could have produced output divergence, a trap or a timeout forks
/// to a scalar run first), differing only in which shortcut fired.
fn lane_record(
    cc: &CampaignConfig,
    cycles: u64,
    early: bool,
    converged: bool,
    diverged: bool,
) -> RunRecord {
    RunRecord {
        effect: FaultEffect::Masked,
        hvf: cc.collect_hvf.then_some(if diverged { HvfEffect::Corruption } else { HvfEffect::Masked }),
        trap: None,
        early_terminated: early,
        converged,
        cycles,
        forensics: None,
        attribution: None,
    }
}

/// Per-lane bookkeeping of one pass.
struct LaneRun {
    /// Mask index in the campaign order.
    idx: usize,
    inject: u64,
    armed: bool,
    /// Next early-termination fate-poll cycle (mirrors the scalar run's
    /// `inject + 256`, then `+1024` cadence, so a lane retired by the
    /// poll reports the exact cycle count the scalar run would).
    check_at: u64,
    /// Retired in-pass or handed to a scalar re-run.
    done: bool,
}

/// Execute one lane pass: run the shared golden control flow once from
/// the pack's base rung, arming each mask as a bit-plane lane at its
/// injection cycle. Lanes retire in place through the same shortcuts as
/// scalar runs (arm-time early termination, fate-poll early termination,
/// rung convergence, halt) with identical records; lanes whose divergence
/// reaches beyond the data plane fork out and are returned for ordinary
/// scalar re-runs. Pushes `(mask index, record)` pairs for every lane
/// retired in-pass onto `out`.
#[allow(clippy::too_many_arguments)]
fn run_lane_pass(
    golden: &Golden,
    ladder: Option<&Ladder>,
    masks: &[FaultMask],
    pack: &[usize],
    cc: &CampaignConfig,
    ctx: Option<&mut WorkerCtx>,
    lane: &mut SpanLane,
    out: &mut Vec<(usize, RunRecord)>,
) -> Vec<usize> {
    debug_assert!((2..=MAX_LANES).contains(&pack.len()));
    let tel = &cc.telemetry;
    let target = masks[pack[0]].target;
    let inject_of = |i: usize| match masks[i].model {
        FaultModel::Transient { cycle } => cycle,
        FaultModel::Permanent { .. } => unreachable!("lane passes are transient-only"),
    };

    // Base selection: identical to the scalar path; every pack member
    // shares the segment, so the first mask picks the rung for all.
    let (base_sys, base_cycle, mut next_rung) = match ladder {
        Some(l) if !l.is_empty() => match l.partition_at(inject_of(pack[0])) {
            0 => (&golden.ckpt, golden.ckpt_cycle, 0),
            k => (&l.rungs[k - 1].sys, l.rungs[k - 1].cycle, k),
        },
        _ => (&golden.ckpt, golden.ckpt_cycle, 0),
    };
    if tel.registry.is_enabled() {
        for &i in pack {
            if let Some(h) = tel.registry.histogram("campaign.prefix_cycles_skipped") {
                h.record(base_cycle - golden.ckpt_cycle);
            }
            if let Some(h) = tel.registry.histogram("campaign.prefix_cycles") {
                h.record(inject_of(i).saturating_sub(base_cycle));
            }
        }
    }

    let mut owned: Option<Box<System>> = None;
    let sys: &mut System = acquire_system(base_sys, base_cycle, tel, ctx, &mut owned, lane);
    if cc.collect_hvf {
        sys.core.trace_mode = TraceMode::Check(golden.trace.clone());
    }
    let watchdog = golden.ckpt_cycle + golden.exec_cycles.saturating_mul(cc.watchdog_factor) + 50_000;
    let cache_target = matches!(target, Target::L1I | Target::L1D | Target::L2);

    let mut lanes: Vec<LaneRun> = pack
        .iter()
        .map(|&i| LaneRun {
            idx: i,
            inject: inject_of(i),
            armed: false,
            check_at: u64::MAX,
            done: false,
        })
        .collect();
    let mut forked: Vec<usize> = Vec::new();
    let mut diverged: u64 = 0;
    let mut remaining = lanes.len();

    sys.lane_begin();
    lane.enter(PhaseId::SimStepLane);

    // Arm every lane due at `sys.cycle` — mirrors the scalar prefix loop
    // (`while cycle < inject { tick }` then flip), including the
    // immediate early termination of a flip landing in an invalid entry.
    #[allow(clippy::too_many_arguments)]
    fn arm_due(
        sys: &mut System,
        lanes: &mut [LaneRun],
        masks: &[FaultMask],
        target: Target,
        cc: &CampaignConfig,
        golden: &Golden,
        out: &mut Vec<(usize, RunRecord)>,
        remaining: &mut usize,
    ) {
        let now = sys.cycle;
        for (l, lr) in lanes.iter_mut().enumerate() {
            if lr.armed || lr.inject != now {
                continue;
            }
            lr.armed = true;
            lr.check_at = now + 256;
            let fate = sys.lane_arm(l as u8, target, masks[lr.idx].bits[0]);
            if cc.early_termination && fate.is_masked_early() {
                lr.done = true;
                *remaining -= 1;
                out.push((lr.idx, lane_record(cc, now - golden.ckpt_cycle, true, false, false)));
            }
        }
    }

    arm_due(sys, &mut lanes, masks, target, cc, golden, out, &mut remaining);
    let mut halted = false;
    while remaining > 0 {
        let ev = sys.tick();
        // Divergence monitor first: forks triggered by this very tick
        // leave the pass before any retirement below could misclaim them.
        for e in sys.lane_drain_events() {
            match e {
                LaneEvent::Fork(l) => {
                    let lr = &mut lanes[l as usize];
                    if !lr.done {
                        lr.done = true;
                        remaining -= 1;
                        forked.push(lr.idx);
                    }
                }
                LaneEvent::Diverged(l) => diverged |= 1u64 << l,
                LaneEvent::Fate(..) => {}
            }
        }
        match ev {
            SysEvent::Halted => {
                halted = true;
                break;
            }
            SysEvent::Trapped(_) => {
                // The golden control flow never traps (the golden run
                // halted); defensively hand every straggler to scalar.
                break;
            }
            _ => {}
        }
        if sys.cycle >= watchdog {
            break;
        }
        // Ladder-rung crossing: merge golden segment marks (journal union
        // covers everything either side wrote), then retire every lane
        // whose diffs are provably dead — exactly the lanes whose scalar
        // run would pass the dirty-diff convergence check here.
        if let Some(l) = ladder {
            if next_rung < l.rungs.len() && sys.cycle == l.rungs[next_rung].cycle {
                let rung = &l.rungs[next_rung];
                sys.merge_dirty_marks(&rung.seg);
                next_rung += 1;
                if cc.convergence_exit {
                    let eng = sys.lane_engine().expect("pass engine armed");
                    let diffs = eng.diffs_live();
                    let mut cand: Vec<usize> = Vec::new();
                    for (li, lr) in lanes.iter().enumerate() {
                        if lr.done || !lr.armed || eng.live & (1u64 << li) == 0 {
                            continue;
                        }
                        let fate = eng.fates[li];
                        // Fate split (scalar parity): a dead fault with
                        // early termination on exits at the fate poll,
                        // which reports the shorter cycle count.
                        if cc.early_termination && fate.is_masked_early() {
                            continue;
                        }
                        if cc.collect_hvf && diverged & (1u64 << li) != 0 {
                            continue;
                        }
                        let diff_alive =
                            diffs & (1u64 << li) != 0 || (cache_target && fate == FaultFate::Pending);
                        if !diff_alive {
                            cand.push(li);
                        }
                    }
                    if !cand.is_empty() {
                        lane.enter(PhaseId::ConvergenceDiff);
                        let golden_matches = sys.state_converged(&rung.sys);
                        lane.exit(PhaseId::ConvergenceDiff);
                        if golden_matches {
                            for li in cand {
                                let lr = &mut lanes[li];
                                lr.done = true;
                                remaining -= 1;
                                out.push((
                                    lr.idx,
                                    lane_record(cc, golden.exec_cycles, false, true, false),
                                ));
                            }
                        }
                    }
                }
            }
        }
        // Early-termination fate polls, on each lane's own scalar cadence.
        if cc.early_termination {
            let (fates, live) = {
                let eng = sys.lane_engine().expect("pass engine armed");
                (eng.fates, eng.live)
            };
            for (li, lr) in lanes.iter_mut().enumerate() {
                if lr.done || !lr.armed || sys.cycle < lr.check_at || live & (1u64 << li) == 0 {
                    continue;
                }
                lr.check_at = sys.cycle + 1024;
                if fates[li].is_masked_early() && !(cc.collect_hvf && diverged & (1u64 << li) != 0) {
                    lr.done = true;
                    remaining -= 1;
                    out.push((
                        lr.idx,
                        lane_record(cc, sys.cycle - golden.ckpt_cycle, true, false, false),
                    ));
                }
            }
        }
        arm_due(sys, &mut lanes, masks, target, cc, golden, out, &mut remaining);
    }
    lane.exit(PhaseId::SimStepLane);

    if halted {
        // Live lanes surviving to halt ran the golden execution to the
        // letter: identical console output (store-data diffs fork before
        // reaching memory), so the scalar classification is Masked, with
        // HVF Corruption exactly for lanes that committed a corrupt
        // result along the way.
        debug_assert_eq!(sys.bus.console, golden.output, "live lanes must replay golden output");
        for (li, lr) in lanes.iter_mut().enumerate() {
            if lr.done {
                continue;
            }
            lr.done = true;
            remaining -= 1;
            if lr.armed {
                out.push((
                    lr.idx,
                    lane_record(
                        cc,
                        sys.cycle - golden.ckpt_cycle,
                        false,
                        false,
                        diverged & (1u64 << li) != 0,
                    ),
                ));
            } else {
                forked.push(lr.idx);
            }
        }
    } else {
        // Trap/watchdog escape (defensive — golden execution does
        // neither): every unfinished lane re-runs scalar.
        for lr in lanes.iter_mut().filter(|lr| !lr.done) {
            lr.done = true;
            remaining -= 1;
            forked.push(lr.idx);
        }
    }
    debug_assert_eq!(remaining, 0);
    sys.lane_end();
    forked
}

/// Outcome of one incremental [`drive_masks`]/[`crate::dsa::drive_dsa_masks`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Runs completed (and handed to the sink) by this call.
    pub completed: usize,
    /// The cancel flag was observed: workers stopped claiming new runs
    /// before the pending set was drained.
    pub cancelled: bool,
}

/// Build the campaign's checkpoint ladder per `cc.ladder_rungs` and
/// publish its build metrics; `None` when the ladder is disabled.
///
/// Split out of the campaign entry points so long-lived drivers (the
/// campaign service, journaled CLI runs) can build the ladder once and
/// reuse it across many incremental [`drive_masks`] calls.
pub fn build_campaign_ladder(golden: &Golden, cc: &CampaignConfig) -> Option<Ladder> {
    if cc.ladder_rungs == 0 {
        return None;
    }
    cc.telemetry.spans.time(PhaseId::LadderBuild, || {
        let t0 = std::time::Instant::now();
        let l = golden.build_ladder(cc.ladder_rungs, cc.collect_hvf);
        let reg = &cc.telemetry.registry;
        reg.publish("campaign.ladder_rungs", l.len() as u64);
        reg.publish("campaign.ladder_build_ns", t0.elapsed().as_nanos() as u64);
        Some(l)
    })
}

/// Incrementally drive the subset of `masks` *not* marked in `skip`
/// through the worker pool, handing each finished [`RunRecord`] to `sink`
/// the moment it lands (in completion order, tagged with its mask index).
///
/// This is the resumable core that the one-shot wrappers and the campaign
/// service share. A journaling caller marks the indices already on disk
/// in `skip`, passes an optional `cancel` flag for graceful shutdown
/// (workers stop claiming new runs; in-flight runs still complete and
/// reach the sink), and rebuilds exports from the sink stream. Every
/// record is per-mask deterministic — independent of worker count, reset
/// mode, ladder and interruption points (the differential tests pin
/// this) — so any skip/resume partition reproduces the same record for a
/// given index.
#[allow(clippy::too_many_arguments)]
pub fn drive_masks(
    golden: &Golden,
    ladder: Option<&Ladder>,
    masks: &[FaultMask],
    cc: &CampaignConfig,
    population: u64,
    skip: &[bool],
    cancel: Option<&AtomicBool>,
    sink: &(dyn Fn(usize, RunRecord) + Sync),
) -> DriveOutcome {
    assert_eq!(skip.len(), masks.len(), "skip flags must cover every mask");
    // Rung-monotone claim order (identity when no ladder: runs at any
    // worker count stay bit-identical either way, only locality changes).
    let mut order: Vec<usize> = (0..masks.len()).filter(|&i| !skip[i]).collect();
    if ladder.is_some() {
        order.sort_by_key(|&i| (schedule_key(&masks[i]), i));
    }
    let total = order.len() as u64;
    // Lane packing: eligible masks fold into shared-pass units; every
    // record stays per-mask deterministic, so unit shape only affects
    // cost, never results (the lane differential test pins this).
    let units = build_units(masks, &order, ladder, cc);
    let units = &units;
    let workers = if cc.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cc.workers
    };
    let workers = workers.min(units.len().max(1));
    let next = AtomicUsize::new(0);

    let tel = &cc.telemetry;
    let scope = Scope::new("campaign");
    let done = AtomicU64::new(0);
    let sdc_n = AtomicU64::new(0);
    let crash_n = AtomicU64::new(0);
    let early_n = AtomicU64::new(0);
    let conv_n = AtomicU64::new(0);
    let cancelled = AtomicBool::new(false);
    let active = AtomicUsize::new(workers);
    let run_cycles = tel.registry.histogram("campaign.run_cycles");
    let lane_occupancy = tel.registry.histogram("campaign.lane_occupancy");
    let (lane_passes, lane_packed, lane_forks) =
        (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
    // Wakes the progress reporter the moment the last worker exits
    // (normal completion or cancellation), instead of letting it sleep
    // out a full interval after the workers are done.
    let finish_wake = (std::sync::Mutex::new(false), std::sync::Condvar::new());

    crossbeam::thread::scope(|s| {
        for w in 0..workers {
            let worker_runs = tel.registry.scoped_counter(&scope.indexed("worker", w), "runs");
            let next = &next;
            let (done, sdc_n, crash_n, early_n, conv_n) = (&done, &sdc_n, &crash_n, &early_n, &conv_n);
            let (cancelled, active) = (&cancelled, &active);
            let finish_wake = &finish_wake;
            let run_cycles = run_cycles.clone();
            let lane_occupancy = lane_occupancy.clone();
            let (lane_passes, lane_packed, lane_forks) = (&lane_passes, &lane_packed, &lane_forks);
            s.spawn(move |_| {
                let mut ctx = WorkerCtx::new();
                let mut lane = tel.spans.lane(&format!("cpu-worker-{w}"));
                // Shared-counter traffic is batched: the effect tallies
                // and cycle samples accumulate locally and flush every
                // BATCH runs (plus once at exit). Only `done` — which
                // drives progress — bumps per run.
                const BATCH: u64 = 32;
                let (mut b_runs, mut b_sdc, mut b_crash, mut b_early, mut b_conv) =
                    (0u64, 0u64, 0u64, 0u64, 0u64);
                let mut b_cycles: Vec<u64> = Vec::new();
                loop {
                    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                        cancelled.store(true, Ordering::Relaxed);
                        break;
                    }
                    // The claim itself is spanned only when it succeeds: a
                    // drained-schedule probe is cancelled, so Schedule call
                    // counts equal completed runs at any worker count.
                    lane.enter(PhaseId::Schedule);
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= units.len() {
                        lane.cancel(PhaseId::Schedule);
                        break;
                    }
                    let unit = &units[k];
                    lane.exit(PhaseId::Schedule);
                    let mut retired: Vec<(usize, RunRecord)> = Vec::new();
                    match unit {
                        Unit::Scalar(i) => {
                            lane.begin_run(*i as u64);
                            let c = (cc.reset_mode == ResetMode::Dirty).then_some(&mut ctx);
                            let rec = run_one_spanned(golden, ladder, &masks[*i], cc, c, &mut lane);
                            lane.end_run();
                            retired.push((*i, rec));
                        }
                        Unit::Pass(pack) => {
                            lane.begin_run(pack[0] as u64);
                            let c = (cc.reset_mode == ResetMode::Dirty).then_some(&mut ctx);
                            let fk = run_lane_pass(
                                golden,
                                ladder,
                                masks,
                                pack,
                                cc,
                                c,
                                &mut lane,
                                &mut retired,
                            );
                            lane.end_run();
                            lane_passes.fetch_add(1, Ordering::Relaxed);
                            lane_packed.fetch_add(pack.len() as u64, Ordering::Relaxed);
                            lane_forks.fetch_add(fk.len() as u64, Ordering::Relaxed);
                            if let Some(h) = &lane_occupancy {
                                h.record(pack.len() as u64);
                            }
                            // Forked lanes fall back to ordinary scalar
                            // runs — same mask, same worker context, same
                            // record the pure scalar path would produce.
                            for i in fk {
                                lane.enter(PhaseId::LaneFork);
                                lane.begin_run(i as u64);
                                let c = (cc.reset_mode == ResetMode::Dirty).then_some(&mut ctx);
                                let rec = run_one_spanned(golden, ladder, &masks[i], cc, c, &mut lane);
                                lane.end_run();
                                lane.exit(PhaseId::LaneFork);
                                retired.push((i, rec));
                            }
                        }
                    }
                    for (i, rec) in retired {
                        b_runs += 1;
                        match rec.effect {
                            FaultEffect::Sdc => b_sdc += 1,
                            FaultEffect::Crash => b_crash += 1,
                            FaultEffect::Masked => {}
                        }
                        if rec.early_terminated {
                            b_early += 1;
                        }
                        if rec.converged {
                            b_conv += 1;
                        }
                        if run_cycles.is_some() {
                            b_cycles.push(rec.cycles);
                        }
                        lane.enter(PhaseId::ExportRecord);
                        sink(i, rec);
                        lane.exit(PhaseId::ExportRecord);
                        // Progress rate/ETA counts retired *runs*, not
                        // passes: a 64-wide pass advances the meter by
                        // up to 64 the moment its lanes land.
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    if b_runs >= BATCH {
                        worker_runs.add(b_runs);
                        sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                        crash_n.fetch_add(b_crash, Ordering::Relaxed);
                        early_n.fetch_add(b_early, Ordering::Relaxed);
                        conv_n.fetch_add(b_conv, Ordering::Relaxed);
                        if let Some(h) = &run_cycles {
                            b_cycles.drain(..).for_each(|c| h.record(c));
                        }
                        (b_runs, b_sdc, b_crash, b_early, b_conv) = (0, 0, 0, 0, 0);
                    }
                }
                if b_runs > 0 {
                    worker_runs.add(b_runs);
                    sdc_n.fetch_add(b_sdc, Ordering::Relaxed);
                    crash_n.fetch_add(b_crash, Ordering::Relaxed);
                    early_n.fetch_add(b_early, Ordering::Relaxed);
                    conv_n.fetch_add(b_conv, Ordering::Relaxed);
                    if let Some(h) = &run_cycles {
                        b_cycles.drain(..).for_each(|c| h.record(c));
                    }
                }
                // Last worker out (normal drain or cancellation) wakes
                // the progress reporter for its final line.
                if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let (lock, cvar) = finish_wake;
                    *lock.lock().unwrap() = true;
                    cvar.notify_all();
                }
            });
        }
        if tel.progress_interval_ms > 0 {
            let (done, sdc_n, crash_n, early_n) = (&done, &sdc_n, &crash_n, &early_n);
            let finish_wake = &finish_wake;
            let interval = std::time::Duration::from_millis(tel.progress_interval_ms);
            let confidence = cc.confidence;
            s.spawn(move |_| {
                let meter = ProgressMeter::new("campaign", total);
                let (lock, cvar) = finish_wake;
                let mut finished = lock.lock().unwrap();
                loop {
                    let d = done.load(Ordering::Relaxed);
                    let margin = error_margin(d.max(1) as usize, population, confidence);
                    eprintln!(
                        "{}",
                        meter.line(
                            d,
                            sdc_n.load(Ordering::Relaxed),
                            crash_n.load(Ordering::Relaxed),
                            early_n.load(Ordering::Relaxed),
                            margin
                        )
                    );
                    // `finished` covers both normal completion and a
                    // cancelled drive whose workers have all exited.
                    if d >= total || *finished {
                        break;
                    }
                    // Interval tick, cut short by the workers' notify
                    // (checked under the lock, so the wake can't be lost).
                    finished = cvar.wait_timeout(finished, interval).unwrap().0;
                }
            });
        }
    })
    .expect("campaign worker panicked");

    // In-flight effect tallies were flushed at worker exit; the scope join
    // above means the atomics now hold this drive's totals.
    let completed = done.into_inner();
    let (sdc, crash) = (sdc_n.into_inner(), crash_n.into_inner());
    tel.registry.publish_scoped(&scope, "runs", completed);
    tel.registry.publish_scoped(&scope, "sdc", sdc);
    tel.registry.publish_scoped(&scope, "crash", crash);
    tel.registry.publish_scoped(&scope, "masked", completed - sdc - crash);
    tel.registry.publish_scoped(&scope, "early_terminated", early_n.into_inner());
    tel.registry.publish_scoped(&scope, "convergence_exits", conv_n.into_inner());
    tel.registry.publish_scoped(&scope, "lane_passes", lane_passes.into_inner());
    tel.registry.publish_scoped(&scope, "lane_runs_packed", lane_packed.into_inner());
    tel.registry.publish_scoped(&scope, "lane_forks", lane_forks.into_inner());

    DriveOutcome { completed: completed as usize, cancelled: cancelled.into_inner() }
}

fn run_masks_with_population(
    golden: &Golden,
    masks: &[FaultMask],
    cc: &CampaignConfig,
    population: u64,
) -> Vec<RunRecord> {
    let ladder = build_campaign_ladder(golden, cc);
    let skip = vec![false; masks.len()];
    let slots: Vec<std::sync::Mutex<Option<RunRecord>>> =
        masks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    drive_masks(golden, ladder.as_ref(), masks, cc, population, &skip, None, &|i, rec| {
        *slots[i].lock().unwrap() = Some(rec);
    });
    slots.into_iter().map(|slot| slot.into_inner().unwrap().expect("all masks executed")).collect()
}

fn target_hash(t: Target) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_cpu::CoreConfig;
    use marvel_ir::{assemble, FuncBuilder, Module};
    use marvel_isa::{AluOp, Cond, Isa};

    fn bench_module() -> Module {
        let mut m = Module::new();
        let buf = m.global_zeroed("buf", 256, 8);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let base = b.addr_of(buf);
        b.checkpoint();
        let i = b.li(0);
        let top = b.new_label();
        b.bind(top);
        let v = b.bin(AluOp::Mul, i, i);
        b.store_idx(marvel_isa::MemWidth::D, v, base, i);
        let i2 = b.bin(AluOp::Add, i, 1);
        b.assign(i, i2);
        b.br(Cond::Lt, i, 32, top);
        let j = b.li(0);
        let top2 = b.new_label();
        b.bind(top2);
        let v2 = b.load_idx(marvel_isa::MemWidth::D, false, base, j);
        b.out_byte(v2);
        let j2 = b.bin(AluOp::Add, j, 1);
        b.assign(j, j2);
        b.br(Cond::Lt, j, 32, top2);
        b.halt();
        m.define(f, b.build());
        m
    }

    fn golden_for(isa: Isa) -> Golden {
        let bin = assemble(&bench_module(), isa).unwrap();
        let mut sys = System::new(CoreConfig::table2(isa));
        sys.load_binary(&bin);
        Golden::prepare(sys, 3_000_000).unwrap()
    }

    #[test]
    fn fast_prep_matches_cycle_level_golden() {
        for isa in Isa::ALL {
            let bin = assemble(&bench_module(), isa).unwrap();
            let mk = || {
                let mut sys = System::new(CoreConfig::table2(isa));
                sys.load_binary(&bin);
                sys
            };
            let slow = Golden::prepare(mk(), 3_000_000).unwrap();
            let fast = Golden::prepare_fast(mk(), 3_000_000).unwrap();
            assert!(fast.ref_prepped && !slow.ref_prepped);
            assert_eq!(fast.ckpt_cycle, 0);
            // The committed architectural stream after the checkpoint is
            // identical: same output bytes, same commit trace record for
            // record — microarchitectural timing is all that may differ.
            assert_eq!(fast.output, slow.output, "{isa:?}");
            assert_eq!(fast.trace, slow.trace, "{isa:?}");
            assert!(fast.exec_cycles > 0);
        }
    }

    #[test]
    fn golden_prepares_and_checkpoint_is_before_halt() {
        let g = golden_for(Isa::RiscV);
        assert!(g.exec_cycles > 100);
        assert_eq!(g.output.len(), 32);
        assert!(!g.trace.is_empty());
    }

    #[test]
    fn small_campaign_classifies_all_runs() {
        let g = golden_for(Isa::RiscV);
        let cc = CampaignConfig { n_faults: 24, collect_hvf: true, workers: 4, ..Default::default() };
        let res = run_campaign(&g, Target::PrfInt, &cc);
        assert_eq!(res.n(), 24);
        let total = res.avf() + res.frac(FaultEffect::Masked);
        assert!((total - 1.0).abs() < 1e-9);
        // HVF ≥ AVF by definition.
        assert!(res.hvf().unwrap() + 1e-9 >= res.avf());
        assert!(res.margin() > 0.0);
    }

    #[test]
    fn fp_prf_faults_always_masked() {
        // Integer workloads never read the FP register file.
        let g = golden_for(Isa::Arm);
        let cc = CampaignConfig { n_faults: 10, workers: 2, ..Default::default() };
        let res = run_campaign(&g, Target::PrfFp, &cc);
        assert!((res.avf() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = golden_for(Isa::RiscV);
        let cc = CampaignConfig { n_faults: 12, workers: 3, ..Default::default() };
        let r1 = run_campaign(&g, Target::L1D, &cc);
        let r2 = run_campaign(&g, Target::L1D, &cc);
        let e1: Vec<_> = r1.records.iter().map(|r| r.effect).collect();
        let e2: Vec<_> = r2.records.iter().map(|r| r.effect).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn reset_modes_produce_identical_records() {
        let g = golden_for(Isa::RiscV);
        let mk = |mode| CampaignConfig {
            n_faults: 16,
            collect_hvf: true,
            workers: 3,
            reset_mode: mode,
            ..Default::default()
        };
        for target in [Target::PrfInt, Target::L1D] {
            let rc = run_campaign(&g, target, &mk(ResetMode::Clone));
            let rd = run_campaign(&g, target, &mk(ResetMode::Dirty));
            let key = |r: &RunRecord| (r.effect, r.hvf, r.trap, r.early_terminated, r.cycles);
            let kc: Vec<_> = rc.records.iter().map(key).collect();
            let kd: Vec<_> = rd.records.iter().map(key).collect();
            assert_eq!(kc, kd, "{target:?}");
        }
    }

    #[test]
    fn ladder_and_convergence_match_oracle() {
        // The checkpoint ladder + convergence exit are pure optimisations:
        // every record must be identical to the full-prefix oracle, for
        // both reset modes. `converged` itself is excluded — it marks
        // which runs took the shortcut.
        let g = golden_for(Isa::RiscV);
        let mk = |rungs, conv, mode| CampaignConfig {
            n_faults: 16,
            collect_hvf: true,
            workers: 3,
            reset_mode: mode,
            ladder_rungs: rungs,
            convergence_exit: conv,
            ..Default::default()
        };
        let key = |r: &RunRecord| (r.effect, r.hvf, r.trap, r.early_terminated, r.cycles);
        for target in [Target::PrfInt, Target::L1D] {
            let oracle = run_campaign(&g, target, &mk(0, false, ResetMode::Clone));
            let ko: Vec<_> = oracle.records.iter().map(key).collect();
            for mode in [ResetMode::Clone, ResetMode::Dirty] {
                let fast = run_campaign(&g, target, &mk(6, true, mode));
                let kf: Vec<_> = fast.records.iter().map(key).collect();
                assert_eq!(ko, kf, "{target:?} {mode:?}");
            }
        }
        // The ladder itself covers the injection window with ascending
        // rungs strictly inside it.
        let ladder = g.build_ladder(6, true);
        let cycles = ladder.cycles();
        assert!(!cycles.is_empty());
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(cycles.iter().all(|&c| c > g.ckpt_cycle && c < g.ckpt_cycle + g.exec_cycles));
    }

    #[test]
    fn permanent_campaign_runs() {
        let g = golden_for(Isa::RiscV);
        let cc = CampaignConfig {
            n_faults: 10,
            kind: FaultKind::Permanent,
            workers: 2,
            ..Default::default()
        };
        let res = run_campaign(&g, Target::L1D, &cc);
        assert_eq!(res.n(), 10);
    }
}
