//! Statistical machinery: Leveugle-style sampling error margins, weighted
//! AVF aggregation (Section V-A) and the OPF metric (Section V-G).

/// Two-sided normal quantile for common confidence levels.
fn z_for_confidence(confidence: f64) -> f64 {
    if (confidence - 0.90).abs() < 1e-9 {
        1.645
    } else if (confidence - 0.95).abs() < 1e-9 {
        1.960
    } else if (confidence - 0.99).abs() < 1e-9 {
        2.576
    } else {
        // Acklam-style rough inverse CDF for other levels.
        let p = 1.0 - (1.0 - confidence) / 2.0;
        inverse_normal_cdf(p)
    }
}

#[allow(clippy::excessive_precision)] // coefficients verbatim from the published table
fn inverse_normal_cdf(p: f64) -> f64 {
    // Beasley-Springer-Moro approximation, adequate for reporting.
    let a = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    let b = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    let c = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    let d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00];
    let plow = 0.02425;
    if p < plow {
        let q = (-2.0 * p.ln()).sqrt();
        (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    } else if p <= 1.0 - plow {
        let q = p - 0.5;
        let r = q * q;
        (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

/// Error margin `e` of an SFI campaign with `n` samples drawn from a
/// population of `population` fault sites (bits × cycles), at the given
/// confidence, assuming worst-case p = 0.5 (Leveugle et al., DATE'09):
///
/// `e = z * sqrt(p(1-p)/n * (N-n)/(N-1))`
///
/// The paper's configuration — 1000 faults, 95% confidence — yields
/// roughly a 3% margin for large populations.
pub fn error_margin(n: usize, population: u64, confidence: f64) -> f64 {
    assert!(n > 0);
    let z = z_for_confidence(confidence);
    let p = 0.5;
    let nf = n as f64;
    let nn = population.max(n as u64) as f64;
    let fpc = if nn > 1.0 { ((nn - nf) / (nn - 1.0)).max(0.0) } else { 0.0 };
    z * (p * (1.0 - p) / nf * fpc).sqrt()
}

/// Sample size required for a target margin `e` (inverse of
/// [`error_margin`]), per the same formulation.
pub fn required_samples(e: f64, population: u64, confidence: f64) -> usize {
    let z = z_for_confidence(confidence);
    let p = 0.5;
    let nn = population as f64;
    let n = nn / (1.0 + e * e * (nn - 1.0) / (z * z * p * (1.0 - p)));
    n.ceil() as usize
}

/// Weighted AVF (Section V-A):
/// `wAVF(c) = Σ_k AVF_k(c)·t_k / Σ_k t_k`, where `t_k` is benchmark `k`'s
/// execution time. Input: `(avf, exec_time)` pairs.
pub fn weighted_avf(items: &[(f64, f64)]) -> f64 {
    let total_t: f64 = items.iter().map(|(_, t)| t).sum();
    if total_t == 0.0 {
        return 0.0;
    }
    items.iter().map(|(a, t)| a * t).sum::<f64>() / total_t
}

/// Operations-per-Failure (Section V-G): `OPF = OPS / AVF` where
/// `OPS = ops / exec_time_seconds`. Larger OPF = better
/// reliability/performance trade-off.
pub fn opf(ops_per_run: f64, exec_seconds: f64, avf: f64) -> f64 {
    if avf <= 0.0 {
        return f64::INFINITY;
    }
    (ops_per_run / exec_seconds) / avf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_margin_1000_faults_95_conf() {
        // The paper: "our 1,000 faults correspond to 3% error margin with
        // 95% confidence level" for effectively infinite populations.
        let e = error_margin(1000, u64::MAX, 0.95);
        assert!((e - 0.031).abs() < 0.002, "margin {e}");
    }

    #[test]
    fn margin_shrinks_with_samples_and_population_exhaustion() {
        assert!(error_margin(2000, u64::MAX, 0.95) < error_margin(500, u64::MAX, 0.95));
        // Sampling the whole population → no error.
        assert!(error_margin(1000, 1000, 0.95) < 1e-12);
    }

    #[test]
    fn required_samples_roundtrip() {
        let n = required_samples(0.03, u64::MAX / 2, 0.95);
        assert!((1000..1200).contains(&n), "{n}");
        let e = error_margin(n, u64::MAX / 2, 0.95);
        assert!(e <= 0.0301);
    }

    #[test]
    fn confidence_levels_ordered() {
        assert!(error_margin(1000, u64::MAX, 0.99) > error_margin(1000, u64::MAX, 0.95));
        assert!(error_margin(1000, u64::MAX, 0.95) > error_margin(1000, u64::MAX, 0.90));
        // Approximate inverse CDF for a non-standard level.
        let e97 = error_margin(1000, u64::MAX, 0.97);
        assert!(e97 > error_margin(1000, u64::MAX, 0.95));
        assert!(e97 < error_margin(1000, u64::MAX, 0.99));
    }

    #[test]
    fn weighted_avf_weights_by_time() {
        // Long benchmark at 10% dominates a short one at 90%.
        let w = weighted_avf(&[(0.10, 1000.0), (0.90, 10.0)]);
        assert!(w < 0.12, "{w}");
        assert_eq!(weighted_avf(&[]), 0.0);
        let uniform = weighted_avf(&[(0.2, 5.0), (0.4, 5.0)]);
        assert!((uniform - 0.3).abs() < 1e-12);
    }

    #[test]
    fn opf_prefers_fast_despite_higher_avf() {
        // Paper Observation #7: the DSA is more vulnerable but wins on OPF
        // because it is much faster.
        let cpu = opf(1.0, 1e-3, 0.05); // 1 task / ms at 5% AVF
        let dsa = opf(1.0, 1e-5, 0.40); // 1 task / 10 µs at 40% AVF
        assert!(dsa > cpu);
        assert!(opf(1.0, 1.0, 0.0).is_infinite());
    }
}
