//! Campaign reporting: the paper's Fig. 3(b) fault-propagation
//! correlation (HVF class × AVF class, from the same runs) and
//! text/CSV rendering of campaign results.

use crate::campaign::{CampaignResult, FaultEffect, HvfEffect, RunRecord};
use std::collections::BTreeMap;

/// Joint HVF × AVF classification counts — only computable because the
/// framework classifies both metrics on the *same* injection runs, the
/// correlation capability the paper highlights as unique.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropagationMatrix {
    /// Masked in hardware (never reached the commit stage); necessarily
    /// software-masked too.
    pub hw_masked: usize,
    /// Architecturally visible at commit but masked by the software layer
    /// — the gap between HVF and AVF.
    pub corrupt_sw_masked: usize,
    /// Architecturally visible and surfaced as a silent data corruption.
    pub corrupt_sdc: usize,
    /// Architecturally visible and surfaced as a crash.
    pub corrupt_crash: usize,
}

impl PropagationMatrix {
    /// Build from records; `None` if the campaign did not collect HVF.
    pub fn from_records(records: &[RunRecord]) -> Option<PropagationMatrix> {
        if records.iter().any(|r| r.hvf.is_none()) {
            return None;
        }
        let mut m = PropagationMatrix::default();
        for r in records {
            match (r.hvf.unwrap(), r.effect) {
                (HvfEffect::Masked, _) => m.hw_masked += 1,
                (HvfEffect::Corruption, FaultEffect::Masked) => m.corrupt_sw_masked += 1,
                (HvfEffect::Corruption, FaultEffect::Sdc) => m.corrupt_sdc += 1,
                (HvfEffect::Corruption, FaultEffect::Crash) => m.corrupt_crash += 1,
            }
        }
        Some(m)
    }

    pub fn total(&self) -> usize {
        self.hw_masked + self.corrupt_sw_masked + self.corrupt_sdc + self.corrupt_crash
    }

    /// Fraction of hardware-visible corruptions the software layer masked
    /// — the paper's explanation for HVF > AVF.
    pub fn software_masking_rate(&self) -> f64 {
        let corrupt = self.corrupt_sw_masked + self.corrupt_sdc + self.corrupt_crash;
        if corrupt == 0 {
            0.0
        } else {
            self.corrupt_sw_masked as f64 / corrupt as f64
        }
    }

    /// Render as the Fig. 3(b)-style propagation report.
    pub fn render(&self) -> String {
        let n = self.total().max(1) as f64;
        format!(
            "fault propagation (n = {}):\n\
             \x20 masked in hardware          : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, SW-masked   : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, SDC         : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, crash       : {:>5} ({:>5.1}%)\n\
             \x20 software masking rate       : {:.1}%\n",
            self.total(),
            self.hw_masked,
            self.hw_masked as f64 / n * 100.0,
            self.corrupt_sw_masked,
            self.corrupt_sw_masked as f64 / n * 100.0,
            self.corrupt_sdc,
            self.corrupt_sdc as f64 / n * 100.0,
            self.corrupt_crash,
            self.corrupt_crash as f64 / n * 100.0,
            self.software_masking_rate() * 100.0,
        )
    }
}

/// Per-structure marvel-taint attribution tallies: for every structure,
/// how many runs first became architecturally visible there (split by
/// final classification) and how many runs were last seen there before
/// the fault was masked. This is the campaign-level "where do faults
/// escape" view the per-run propagation timelines roll up into.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StructureAttribution {
    /// Runs whose taint first reached architectural state here.
    pub reached_arch: usize,
    /// Runs whose taint was masked while last resident here.
    pub masked: usize,
    /// Of `reached_arch`, runs classified SDC / Crash.
    pub sdc: usize,
    pub crash: usize,
    /// Sums for mean propagation depth/latency (over all runs counted).
    pub hops_sum: usize,
    pub cycle_sum: u64,
}

impl StructureAttribution {
    pub fn runs(&self) -> usize {
        self.reached_arch + self.masked
    }

    /// Mean structure-to-structure hops before the terminal event.
    pub fn mean_hops(&self) -> f64 {
        if self.runs() == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.runs() as f64
        }
    }

    /// Mean cycle of the terminal event (arch-reach or last sighting).
    pub fn mean_cycle(&self) -> f64 {
        if self.runs() == 0 {
            0.0
        } else {
            self.cycle_sum as f64 / self.runs() as f64
        }
    }
}

/// Aggregate per-run attributions by structure; `None` when the campaign
/// ran without taint tracking (no record carries an attribution).
pub fn attribution_by_structure(
    records: &[RunRecord],
) -> Option<BTreeMap<String, StructureAttribution>> {
    if records.iter().all(|r| r.attribution.is_none()) {
        return None;
    }
    let mut out: BTreeMap<String, StructureAttribution> = BTreeMap::new();
    for r in records {
        let Some(a) = &r.attribution else { continue };
        let e = out.entry(a.structure.clone()).or_default();
        if a.reached_arch {
            e.reached_arch += 1;
            match r.effect {
                FaultEffect::Sdc => e.sdc += 1,
                FaultEffect::Crash => e.crash += 1,
                FaultEffect::Masked => {}
            }
        } else {
            e.masked += 1;
        }
        e.hops_sum += a.hops;
        e.cycle_sum += a.cycle;
    }
    Some(out)
}

/// Render the per-structure attribution table.
pub fn render_attribution(map: &BTreeMap<String, StructureAttribution>) -> String {
    let mut s = String::from(
        "taint attribution by structure:\n\
         \x20 structure             arch  masked  sdc  crash  hops~  cycle~\n",
    );
    for (name, a) in map {
        s.push_str(&format!(
            "  {name:<20} {:>5} {:>7} {:>4} {:>6} {:>6.1} {:>7.0}\n",
            a.reached_arch,
            a.masked,
            a.sdc,
            a.crash,
            a.mean_hops(),
            a.mean_cycle(),
        ));
    }
    s
}

/// CSV rendering of the attribution table (schema-versioned like all
/// campaign artifacts; readable back via `check_snapshot_version`).
pub fn attribution_csv(map: &BTreeMap<String, StructureAttribution>) -> String {
    let mut out = format!(
        "# schema_version={}\nstructure,reached_arch,masked,sdc,crash,mean_hops,mean_cycle\n",
        marvel_telemetry::SCHEMA_VERSION
    );
    for (name, a) in map {
        out.push_str(&format!(
            "{name},{},{},{},{},{:.3},{:.1}\n",
            a.reached_arch,
            a.masked,
            a.sdc,
            a.crash,
            a.mean_hops(),
            a.mean_cycle()
        ));
    }
    out
}

/// JSONL rendering of the attribution table (schema line first).
pub fn attribution_jsonl(map: &BTreeMap<String, StructureAttribution>) -> String {
    let mut out =
        format!("{{\"type\":\"schema\",\"schema_version\":{}}}\n", marvel_telemetry::SCHEMA_VERSION);
    for (name, a) in map {
        out.push_str(&format!(
            "{{\"type\":\"attribution\",\"structure\":{},\"reached_arch\":{},\"masked\":{},\"sdc\":{},\"crash\":{},\"mean_hops\":{:.3},\"mean_cycle\":{:.1}}}\n",
            marvel_telemetry::json_string(name),
            a.reached_arch,
            a.masked,
            a.sdc,
            a.crash,
            a.mean_hops(),
            a.mean_cycle()
        ));
    }
    out
}

/// Crash-cause breakdown (trap tags → counts).
pub fn crash_breakdown(records: &[RunRecord]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for r in records {
        if let Some(tag) = r.trap {
            *out.entry(tag).or_insert(0) += 1;
        }
    }
    out
}

/// Full text report for one campaign.
pub fn render_campaign(res: &CampaignResult) -> String {
    let mut s = String::new();
    s.push_str(&format!("target      : {}\n", res.target.name()));
    s.push_str(&format!("faults      : {}\n", res.n()));
    s.push_str(&format!(
        "AVF         : {:.2}%  (SDC {:.2}%, Crash {:.2}%)  ±{:.2}% @{:.0}%\n",
        res.avf() * 100.0,
        res.sdc_avf() * 100.0,
        res.crash_avf() * 100.0,
        res.margin() * 100.0,
        res.confidence * 100.0
    ));
    if let Some(h) = res.hvf() {
        s.push_str(&format!("HVF         : {:.2}%\n", h * 100.0));
    }
    s.push_str(&format!("early-term  : {:.1}%\n", res.early_termination_rate() * 100.0));
    let crashes = crash_breakdown(&res.records);
    if !crashes.is_empty() {
        s.push_str("crash causes:\n");
        for (tag, n) in crashes {
            s.push_str(&format!("  {tag:<22}{n}\n"));
        }
    }
    if let Some(m) = PropagationMatrix::from_records(&res.records) {
        s.push_str(&m.render());
    }
    if let Some(attr) = attribution_by_structure(&res.records) {
        s.push_str(&render_attribution(&attr));
    }
    s
}

/// CSV line (plus header) for aggregating campaigns across scripts.
pub fn csv_row(label: &str, res: &CampaignResult) -> String {
    format!(
        "{label},{},{},{:.5},{:.5},{:.5},{},{:.5}\n",
        res.target.name(),
        res.n(),
        res.avf(),
        res.sdc_avf(),
        res.crash_avf(),
        res.hvf().map(|h| format!("{h:.5}")).unwrap_or_default(),
        res.early_termination_rate()
    )
}

/// Header matching [`csv_row`].
pub const CSV_HEADER: &str = "label,target,faults,avf,sdc,crash,hvf,early_term\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(effect: FaultEffect, hvf: HvfEffect) -> RunRecord {
        RunRecord {
            effect,
            hvf: Some(hvf),
            trap: None,
            early_terminated: false,
            converged: false,
            cycles: 1,
            forensics: None,
            attribution: None,
        }
    }

    #[test]
    fn matrix_partitions_and_rates() {
        let records = vec![
            rec(FaultEffect::Masked, HvfEffect::Masked),
            rec(FaultEffect::Masked, HvfEffect::Masked),
            rec(FaultEffect::Masked, HvfEffect::Corruption), // SW-masked
            rec(FaultEffect::Sdc, HvfEffect::Corruption),
            rec(FaultEffect::Crash, HvfEffect::Corruption),
        ];
        let m = PropagationMatrix::from_records(&records).unwrap();
        assert_eq!(m.hw_masked, 2);
        assert_eq!(m.corrupt_sw_masked, 1);
        assert_eq!(m.corrupt_sdc, 1);
        assert_eq!(m.corrupt_crash, 1);
        assert_eq!(m.total(), 5);
        assert!((m.software_masking_rate() - 1.0 / 3.0).abs() < 1e-12);
        let text = m.render();
        assert!(text.contains("software masking rate"));
    }

    #[test]
    fn matrix_requires_hvf() {
        let records = vec![RunRecord {
            effect: FaultEffect::Masked,
            hvf: None,
            trap: None,
            early_terminated: false,
            converged: false,
            cycles: 1,
            forensics: None,
            attribution: None,
        }];
        assert!(PropagationMatrix::from_records(&records).is_none());
    }

    #[test]
    fn attribution_aggregates_by_structure() {
        use marvel_telemetry::Attribution;
        let attr = |reached: bool, st: &str, cycle: u64, hops: usize| Attribution {
            reached_arch: reached,
            structure: st.into(),
            cycle,
            hops,
        };
        let mut r1 = rec(FaultEffect::Sdc, HvfEffect::Corruption);
        r1.attribution = Some(attr(true, "ROB", 100, 3));
        let mut r2 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r2.attribution = Some(attr(true, "ROB", 200, 5));
        let mut r3 = rec(FaultEffect::Masked, HvfEffect::Masked);
        r3.attribution = Some(attr(false, "L1D", 50, 1));
        let records = [r1, r2, r3];
        let map = attribution_by_structure(&records).unwrap();
        assert_eq!(map["ROB"].reached_arch, 2);
        assert_eq!(map["ROB"].sdc, 1);
        assert_eq!(map["ROB"].crash, 1);
        assert!((map["ROB"].mean_cycle() - 150.0).abs() < 1e-9);
        assert!((map["ROB"].mean_hops() - 4.0).abs() < 1e-9);
        assert_eq!(map["L1D"].masked, 1);
        assert_eq!(map["L1D"].reached_arch, 0);
        let table = render_attribution(&map);
        assert!(table.contains("ROB") && table.contains("L1D"));
        let csv = attribution_csv(&map);
        assert!(csv.starts_with("# schema_version="));
        assert!(marvel_telemetry::check_snapshot_version(&csv).is_ok());
        let jsonl = attribution_jsonl(&map);
        assert!(marvel_telemetry::check_snapshot_version(&jsonl).is_ok());
        assert_eq!(jsonl.lines().count(), 3);
        // Taint-off campaigns yield no table at all.
        assert!(attribution_by_structure(&[rec(FaultEffect::Masked, HvfEffect::Masked)]).is_none());
    }

    #[test]
    fn crash_tags_counted() {
        let mut r1 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r1.trap = Some("mem-fault");
        let mut r2 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r2.trap = Some("mem-fault");
        let mut r3 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r3.trap = Some("watchdog");
        let b = crash_breakdown(&[r1, r2, r3]);
        assert_eq!(b["mem-fault"], 2);
        assert_eq!(b["watchdog"], 1);
    }
}
