//! Campaign reporting: the paper's Fig. 3(b) fault-propagation
//! correlation (HVF class × AVF class, from the same runs) and
//! text/CSV rendering of campaign results.

use crate::campaign::{CampaignResult, FaultEffect, HvfEffect, RunRecord};
use std::collections::BTreeMap;

/// Joint HVF × AVF classification counts — only computable because the
/// framework classifies both metrics on the *same* injection runs, the
/// correlation capability the paper highlights as unique.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropagationMatrix {
    /// Masked in hardware (never reached the commit stage); necessarily
    /// software-masked too.
    pub hw_masked: usize,
    /// Architecturally visible at commit but masked by the software layer
    /// — the gap between HVF and AVF.
    pub corrupt_sw_masked: usize,
    /// Architecturally visible and surfaced as a silent data corruption.
    pub corrupt_sdc: usize,
    /// Architecturally visible and surfaced as a crash.
    pub corrupt_crash: usize,
}

impl PropagationMatrix {
    /// Build from records; `None` if the campaign did not collect HVF.
    pub fn from_records(records: &[RunRecord]) -> Option<PropagationMatrix> {
        if records.iter().any(|r| r.hvf.is_none()) {
            return None;
        }
        let mut m = PropagationMatrix::default();
        for r in records {
            match (r.hvf.unwrap(), r.effect) {
                (HvfEffect::Masked, _) => m.hw_masked += 1,
                (HvfEffect::Corruption, FaultEffect::Masked) => m.corrupt_sw_masked += 1,
                (HvfEffect::Corruption, FaultEffect::Sdc) => m.corrupt_sdc += 1,
                (HvfEffect::Corruption, FaultEffect::Crash) => m.corrupt_crash += 1,
            }
        }
        Some(m)
    }

    pub fn total(&self) -> usize {
        self.hw_masked + self.corrupt_sw_masked + self.corrupt_sdc + self.corrupt_crash
    }

    /// Fraction of hardware-visible corruptions the software layer masked
    /// — the paper's explanation for HVF > AVF.
    pub fn software_masking_rate(&self) -> f64 {
        let corrupt = self.corrupt_sw_masked + self.corrupt_sdc + self.corrupt_crash;
        if corrupt == 0 {
            0.0
        } else {
            self.corrupt_sw_masked as f64 / corrupt as f64
        }
    }

    /// Render as the Fig. 3(b)-style propagation report.
    pub fn render(&self) -> String {
        let n = self.total().max(1) as f64;
        format!(
            "fault propagation (n = {}):\n\
             \x20 masked in hardware          : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, SW-masked   : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, SDC         : {:>5} ({:>5.1}%)\n\
             \x20 reached commit, crash       : {:>5} ({:>5.1}%)\n\
             \x20 software masking rate       : {:.1}%\n",
            self.total(),
            self.hw_masked,
            self.hw_masked as f64 / n * 100.0,
            self.corrupt_sw_masked,
            self.corrupt_sw_masked as f64 / n * 100.0,
            self.corrupt_sdc,
            self.corrupt_sdc as f64 / n * 100.0,
            self.corrupt_crash,
            self.corrupt_crash as f64 / n * 100.0,
            self.software_masking_rate() * 100.0,
        )
    }
}

/// Crash-cause breakdown (trap tags → counts).
pub fn crash_breakdown(records: &[RunRecord]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    for r in records {
        if let Some(tag) = r.trap {
            *out.entry(tag).or_insert(0) += 1;
        }
    }
    out
}

/// Full text report for one campaign.
pub fn render_campaign(res: &CampaignResult) -> String {
    let mut s = String::new();
    s.push_str(&format!("target      : {}\n", res.target.name()));
    s.push_str(&format!("faults      : {}\n", res.n()));
    s.push_str(&format!(
        "AVF         : {:.2}%  (SDC {:.2}%, Crash {:.2}%)  ±{:.2}% @{:.0}%\n",
        res.avf() * 100.0,
        res.sdc_avf() * 100.0,
        res.crash_avf() * 100.0,
        res.margin() * 100.0,
        res.confidence * 100.0
    ));
    if let Some(h) = res.hvf() {
        s.push_str(&format!("HVF         : {:.2}%\n", h * 100.0));
    }
    s.push_str(&format!("early-term  : {:.1}%\n", res.early_termination_rate() * 100.0));
    let crashes = crash_breakdown(&res.records);
    if !crashes.is_empty() {
        s.push_str("crash causes:\n");
        for (tag, n) in crashes {
            s.push_str(&format!("  {tag:<22}{n}\n"));
        }
    }
    if let Some(m) = PropagationMatrix::from_records(&res.records) {
        s.push_str(&m.render());
    }
    s
}

/// CSV line (plus header) for aggregating campaigns across scripts.
pub fn csv_row(label: &str, res: &CampaignResult) -> String {
    format!(
        "{label},{},{},{:.5},{:.5},{:.5},{},{:.5}\n",
        res.target.name(),
        res.n(),
        res.avf(),
        res.sdc_avf(),
        res.crash_avf(),
        res.hvf().map(|h| format!("{h:.5}")).unwrap_or_default(),
        res.early_termination_rate()
    )
}

/// Header matching [`csv_row`].
pub const CSV_HEADER: &str = "label,target,faults,avf,sdc,crash,hvf,early_term\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(effect: FaultEffect, hvf: HvfEffect) -> RunRecord {
        RunRecord {
            effect,
            hvf: Some(hvf),
            trap: None,
            early_terminated: false,
            cycles: 1,
            forensics: None,
        }
    }

    #[test]
    fn matrix_partitions_and_rates() {
        let records = vec![
            rec(FaultEffect::Masked, HvfEffect::Masked),
            rec(FaultEffect::Masked, HvfEffect::Masked),
            rec(FaultEffect::Masked, HvfEffect::Corruption), // SW-masked
            rec(FaultEffect::Sdc, HvfEffect::Corruption),
            rec(FaultEffect::Crash, HvfEffect::Corruption),
        ];
        let m = PropagationMatrix::from_records(&records).unwrap();
        assert_eq!(m.hw_masked, 2);
        assert_eq!(m.corrupt_sw_masked, 1);
        assert_eq!(m.corrupt_sdc, 1);
        assert_eq!(m.corrupt_crash, 1);
        assert_eq!(m.total(), 5);
        assert!((m.software_masking_rate() - 1.0 / 3.0).abs() < 1e-12);
        let text = m.render();
        assert!(text.contains("software masking rate"));
    }

    #[test]
    fn matrix_requires_hvf() {
        let records = vec![RunRecord {
            effect: FaultEffect::Masked,
            hvf: None,
            trap: None,
            early_terminated: false,
            cycles: 1,
            forensics: None,
        }];
        assert!(PropagationMatrix::from_records(&records).is_none());
    }

    #[test]
    fn crash_tags_counted() {
        let mut r1 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r1.trap = Some("mem-fault");
        let mut r2 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r2.trap = Some("mem-fault");
        let mut r3 = rec(FaultEffect::Crash, HvfEffect::Corruption);
        r3.trap = Some("watchdog");
        let b = crash_breakdown(&[r1, r2, r3]);
        assert_eq!(b["mem-fault"], 2);
        assert_eq!(b["watchdog"], 1);
    }
}
