//! Property tests: every encodable instruction decodes back to micro-ops
//! with the same architectural semantics, on every ISA flavour.

use marvel_isa::{AluOp, AsmInst, Cond, Isa, MemWidth, Op};
use proptest::prelude::*;

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_width() -> impl Strategy<Value = MemWidth> {
    prop::sample::select(MemWidth::ALL.to_vec())
}

/// Register valid in every ISA flavour (x86 has only 16).
fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..16
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn alu_rr_roundtrips(op in arb_alu(), rd in arb_reg(), rm in arb_reg()) {
        for isa in Isa::ALL {
            // x86 is two-operand: rd == rn everywhere for portability.
            let inst = AsmInst::AluRR { op, rd, rn: rd, rm };
            let bytes = isa.encode(&inst).unwrap();
            prop_assert_eq!(bytes.len(), isa.encoded_len(&inst).unwrap());
            let d = isa.decode(&bytes).unwrap();
            prop_assert_eq!(d.len as usize, bytes.len());
            prop_assert_eq!(d.uops.len(), 1);
            let u = d.uops.as_slice()[0];
            prop_assert_eq!(u.op, Op::Alu(op));
            prop_assert_eq!(u.rd, rd);
            prop_assert_eq!(u.rs2, rm);
        }
    }

    #[test]
    fn alu_ri_roundtrips(op in arb_alu(), rd in arb_reg(), imm in -256i64..256) {
        // Immediate forms exist for these ops in every flavour.
        prop_assume!(matches!(
            op,
            AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Slt | AluOp::Sltu
        ));
        for isa in Isa::ALL {
            let inst = AsmInst::AluRI { op, rd, rn: rd, imm };
            let bytes = isa.encode(&inst).unwrap();
            let d = isa.decode(&bytes).unwrap();
            let u = d.uops.as_slice()[0];
            prop_assert_eq!(u.op, Op::AluImm(op));
            prop_assert_eq!(u.imm, imm);
        }
    }

    #[test]
    fn shift_imm_roundtrips(rd in arb_reg(), sh in 0i64..64) {
        for isa in Isa::ALL {
            for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
                let inst = AsmInst::AluRI { op, rd, rn: rd, imm: sh };
                let bytes = isa.encode(&inst).unwrap();
                let u = isa.decode(&bytes).unwrap().uops.as_slice()[0];
                prop_assert_eq!(u.op, Op::AluImm(op));
                prop_assert_eq!(u.imm, sh);
            }
        }
    }

    #[test]
    fn load_store_roundtrip(w in arb_width(), rd in arb_reg(), base in arb_reg(), off in -31i32..32) {
        // Offset scaled so the Arm flavour's scaled-imm9 form accepts it.
        let offset = off * w.bytes() as i32;
        for isa in Isa::ALL {
            let l = AsmInst::Load { w, signed: false, rd, base, offset };
            let bytes = isa.encode(&l).unwrap();
            let u = isa.decode(&bytes).unwrap().uops.as_slice()[0];
            prop_assert_eq!(u.op, Op::Load { w, signed: false });
            prop_assert_eq!(u.imm, offset as i64);
            prop_assert_eq!(u.rs1, base);

            let s = AsmInst::Store { w, rs: rd, base, offset };
            let bytes = isa.encode(&s).unwrap();
            let u = isa.decode(&bytes).unwrap().uops.as_slice()[0];
            prop_assert_eq!(u.op, Op::Store { w });
            prop_assert_eq!(u.rs3, rd);
            prop_assert_eq!(u.imm, offset as i64);
        }
    }

    #[test]
    fn branch_roundtrip(c in arb_cond(), rn in arb_reg(), rm in arb_reg(), off in -512i32..512) {
        let offset = off * 4;
        for isa in Isa::ALL {
            let inst = AsmInst::Branch { cond: c, rn, rm, offset };
            let bytes = isa.encode(&inst).unwrap();
            let u = isa.decode(&bytes).unwrap().uops.as_slice()[0];
            prop_assert_eq!(u.op, Op::Branch(c));
            prop_assert_eq!(u.imm, offset as i64);
        }
    }

    #[test]
    fn alu_eval_matches_host_semantics(a in any::<u64>(), b in any::<u64>()) {
        // Add/Sub/logic/shifts agree with two's-complement host arithmetic.
        let isa = Isa::RiscV;
        prop_assert_eq!(AluOp::Add.eval(a, b, isa).unwrap(), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.eval(a, b, isa).unwrap(), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Xor.eval(a, b, isa).unwrap(), a ^ b);
        prop_assert_eq!(AluOp::Sll.eval(a, b, isa).unwrap(), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(AluOp::Mul.eval(a, b, isa).unwrap(), a.wrapping_mul(b));
        if b != 0 {
            prop_assert_eq!(
                AluOp::Div.eval(a, b, isa).unwrap() as i64,
                (a as i64).wrapping_div(b as i64)
            );
        }
    }

    #[test]
    fn decoder_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 1..16)) {
        for isa in Isa::ALL {
            let _ = isa.decode(&bytes); // must not panic
        }
    }

    #[test]
    fn memwidth_extend_idempotent(v in any::<u64>(), w in arb_width(), s in any::<bool>()) {
        let once = w.extend(v, s);
        prop_assert_eq!(w.extend(once, s), once);
    }
}
