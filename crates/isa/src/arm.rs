//! Arm-flavour encoding: fixed 4-byte words, a dense 8-bit opcode space,
//! register-offset addressing modes, `movz`/`movk` wide-immediate moves,
//! and a **strict** decoder that checks every must-be-zero field (the
//! UNDEFINED-on-reserved-bits behaviour of real A-profile decoders).
//!
//! Strict decode means nearly every bit of a fetched instruction matters:
//! flips are rarely masked at decode, which is the honest mechanism behind
//! the paper's Arm-has-highest-L1I-AVF observation.
//!
//! Word layouts (bit 31 is the MSB):
//!
//! | class         | 31:24 | 23:19 | 18:14 | 13:5 | 4:0 |
//! |---------------|-------|-------|-------|------|-----|
//! | ALU reg-reg   | opc   | rm    | rn    | mbz  | rd  |
//! | ALU reg-imm   | opc   | imm9 (23:15) | rn (14:10) | mbz (9:5) | rd |
//! | movz/movk     | opc   | imm16 (23:8) | hw (7:6) | mbz (5) | rd |
//! | load/store imm| opc   | imm9 (23:15) | rn (14:10) | mbz (9:5) | rd/rs |
//! | load/store rr | opc   | rm    | rn    | mbz  | rd/rs |
//! | b.cond        | opc   | rm    | rn    | imm14 (13:0 spans) | — |
//! | b / bl        | opc   | imm24 (23:0) | | | |
//! | br / blr      | opc   | mbz   | rn    | mbz  | mbz |
//! | sys           | opc   | mbz (23:9) | code (8:0) | | |

use crate::asm::{AsmInst, EncodeError};
use crate::op::{AluOp, Cond, Decoded, MemWidth, MicroOp, Op};
use crate::trap::DecodeError;

/// Link register (r30).
const LR: u8 = 30;

const OPC_ALU_RR_BASE: u32 = 0x01; // ..0x0D
const OPC_ALU_RI_BASE: u32 = 0x11; // ..0x1D
const OPC_MOVZ: u32 = 0x20;
const OPC_MOVK: u32 = 0x21;
const OPC_LDU_BASE: u32 = 0x28; // +widx, unsigned loads, imm offset
const OPC_LDS_BASE: u32 = 0x2C; // +widx, signed loads, imm offset
const OPC_ST_BASE: u32 = 0x30; // +widx, stores, imm offset
const OPC_LDRR_BASE: u32 = 0x34; // +widx, unsigned loads, reg offset
const OPC_STRR_BASE: u32 = 0x38; // +widx, stores, reg offset
const OPC_B: u32 = 0x40;
const OPC_BL: u32 = 0x41;
const OPC_BR: u32 = 0x42;
const OPC_BLR: u32 = 0x43;
const OPC_BCOND_BASE: u32 = 0x44; // ..0x49
const OPC_SYS: u32 = 0x50;
const OPC_LDSRR_BASE: u32 = 0x60; // +widx, signed loads, reg offset

const SYS_HALT: u32 = 0;
const SYS_CHECKPOINT: u32 = 1;
const SYS_SWITCHCPU: u32 = 2;
const SYS_IRET: u32 = 3;
const SYS_NOP: u32 = 4;

fn alu_idx(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Sll => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Mul => 8,
        AluOp::Div => 9,
        AluOp::Rem => 10,
        AluOp::Slt => 11,
        AluOp::Sltu => 12,
    }
}

fn alu_from_idx(i: u32) -> Option<AluOp> {
    Some(match i {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Sll,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Mul,
        9 => AluOp::Div,
        10 => AluOp::Rem,
        11 => AluOp::Slt,
        12 => AluOp::Sltu,
        _ => return None,
    })
}

fn widx(w: MemWidth) -> u32 {
    match w {
        MemWidth::B => 0,
        MemWidth::H => 1,
        MemWidth::W => 2,
        MemWidth::D => 3,
    }
}

fn width_from_idx(i: u32) -> MemWidth {
    match i {
        0 => MemWidth::B,
        1 => MemWidth::H,
        2 => MemWidth::W,
        _ => MemWidth::D,
    }
}

fn cond_idx(c: Cond) -> u32 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Ltu => 4,
        Cond::Geu => 5,
    }
}

fn cond_from_idx(i: u32) -> Option<Cond> {
    Some(match i {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Ltu,
        5 => Cond::Geu,
        _ => return None,
    })
}

fn reg(inst: &'static str, r: u8) -> Result<u32, EncodeError> {
    if r < 32 {
        Ok(r as u32)
    } else {
        Err(EncodeError::BadRegister { inst, reg: r })
    }
}

fn imm9(inst: &'static str, v: i64) -> Result<u32, EncodeError> {
    if !(-256..256).contains(&v) {
        return Err(EncodeError::ImmOutOfRange { inst, imm: v });
    }
    Ok((v as u32) & 0x1FF)
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

pub fn encode(inst: &AsmInst) -> Result<Vec<u8>, EncodeError> {
    let name = inst.name();
    let word: u32 = match *inst {
        AsmInst::AluRR { op, rd, rn, rm } => {
            ((OPC_ALU_RR_BASE + alu_idx(op)) << 24)
                | (reg(name, rm)? << 19)
                | (reg(name, rn)? << 14)
                | reg(name, rd)?
        }
        AsmInst::AluRI { op, rd, rn, imm } => {
            let iv = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    if !(0..64).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange { inst: name, imm });
                    }
                    imm as u32
                }
                _ => imm9(name, imm)?,
            };
            ((OPC_ALU_RI_BASE + alu_idx(op)) << 24)
                | (iv << 15)
                | (reg(name, rn)? << 10)
                | reg(name, rd)?
        }
        AsmInst::MovZ { rd, imm16, hw } => {
            if hw > 3 {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: hw as i64 });
            }
            (OPC_MOVZ << 24) | ((imm16 as u32) << 8) | ((hw as u32) << 6) | reg(name, rd)?
        }
        AsmInst::MovK { rd, imm16, hw } => {
            if hw > 3 {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: hw as i64 });
            }
            (OPC_MOVK << 24) | ((imm16 as u32) << 8) | ((hw as u32) << 6) | reg(name, rd)?
        }
        AsmInst::Load { w, signed, rd, base, offset } => {
            let bytes = MemWidth::bytes(w) as i64;
            let off = offset as i64;
            if off % bytes != 0 {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: off });
            }
            let scaled = imm9(name, off / bytes)?;
            let base_opc = if signed && w != MemWidth::D { OPC_LDS_BASE } else { OPC_LDU_BASE };
            ((base_opc + widx(w)) << 24) | (scaled << 15) | (reg(name, base)? << 10) | reg(name, rd)?
        }
        AsmInst::Store { w, rs, base, offset } => {
            let bytes = MemWidth::bytes(w) as i64;
            let off = offset as i64;
            if off % bytes != 0 {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: off });
            }
            let scaled = imm9(name, off / bytes)?;
            ((OPC_ST_BASE + widx(w)) << 24) | (scaled << 15) | (reg(name, base)? << 10) | reg(name, rs)?
        }
        AsmInst::LoadRR { w, signed, rd, base, index } => {
            let base_opc = if signed && w != MemWidth::D { OPC_LDSRR_BASE } else { OPC_LDRR_BASE };
            ((base_opc + widx(w)) << 24)
                | (reg(name, index)? << 19)
                | (reg(name, base)? << 14)
                | reg(name, rd)?
        }
        AsmInst::StoreRR { w, rs, base, index } => {
            ((OPC_STRR_BASE + widx(w)) << 24)
                | (reg(name, index)? << 19)
                | (reg(name, base)? << 14)
                | reg(name, rs)?
        }
        AsmInst::Branch { cond, rn, rm, offset } => {
            if offset % 4 != 0 || !(-(1 << 15)..(1 << 15)).contains(&offset) {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: offset as i64 });
            }
            ((OPC_BCOND_BASE + cond_idx(cond)) << 24)
                | (reg(name, rm)? << 19)
                | (reg(name, rn)? << 14)
                | (((offset / 4) as u32) & 0x3FFF)
        }
        AsmInst::Jmp { offset } => {
            if offset % 4 != 0 || !(-(1 << 25)..(1 << 25)).contains(&offset) {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: offset as i64 });
            }
            (OPC_B << 24) | (((offset / 4) as u32) & 0xFF_FFFF)
        }
        AsmInst::Call { offset } => {
            if offset % 4 != 0 || !(-(1 << 25)..(1 << 25)).contains(&offset) {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: offset as i64 });
            }
            (OPC_BL << 24) | (((offset / 4) as u32) & 0xFF_FFFF)
        }
        AsmInst::JmpInd { rn } => (OPC_BR << 24) | (reg(name, rn)? << 14),
        AsmInst::Ret => (OPC_BR << 24) | ((LR as u32) << 14),
        AsmInst::CallInd { rn } => (OPC_BLR << 24) | (reg(name, rn)? << 14),
        AsmInst::Halt => (OPC_SYS << 24) | SYS_HALT,
        AsmInst::Checkpoint => (OPC_SYS << 24) | SYS_CHECKPOINT,
        AsmInst::SwitchCpu => (OPC_SYS << 24) | SYS_SWITCHCPU,
        AsmInst::Iret => (OPC_SYS << 24) | SYS_IRET,
        AsmInst::Nop => (OPC_SYS << 24) | SYS_NOP,
        AsmInst::MovRR { rd, rs } => {
            ((OPC_ALU_RI_BASE + alu_idx(AluOp::Add)) << 24) | (reg(name, rs)? << 10) | reg(name, rd)?
        }
        AsmInst::Lui { .. } | AsmInst::MovImm64 { .. } | AsmInst::AluRM { .. } => {
            return Err(EncodeError::UnsupportedForm { inst: name })
        }
    };
    Ok(word.to_le_bytes().to_vec())
}

/// Strict field check: returns `Invalid` if any must-be-zero bit is set.
fn mbz(w: u32, mask: u32) -> Result<(), DecodeError> {
    if w & mask != 0 {
        Err(DecodeError::Invalid)
    } else {
        Ok(())
    }
}

pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let opc = w >> 24;
    let rm = ((w >> 19) & 0x1F) as u8;
    let rn5 = ((w >> 14) & 0x1F) as u8;
    let rd = (w & 0x1F) as u8;

    let mut u = MicroOp::bare(Op::Nop);
    match opc {
        o if (OPC_ALU_RR_BASE..OPC_ALU_RR_BASE + 13).contains(&o) => {
            mbz(w, 0x3FE0)?; // bits 13:5
            u.op = Op::Alu(alu_from_idx(o - OPC_ALU_RR_BASE).unwrap());
            u.rd = rd;
            u.rs1 = rn5;
            u.rs2 = rm;
        }
        o if (OPC_ALU_RI_BASE..OPC_ALU_RI_BASE + 13).contains(&o) => {
            mbz(w, 0x3E0)?; // bits 9:5
            let op = alu_from_idx(o - OPC_ALU_RI_BASE).unwrap();
            let raw = (w >> 15) & 0x1FF;
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => (raw & 63) as i64,
                _ => sext(raw, 9),
            };
            u.op = Op::AluImm(op);
            u.rd = rd;
            u.rs1 = ((w >> 10) & 0x1F) as u8;
            u.imm = imm;
        }
        OPC_MOVZ => {
            mbz(w, 0x20)?; // bit 5
            let hw = ((w >> 6) & 3) as u8;
            u.op = Op::LoadImm;
            u.rd = rd;
            u.imm = ((((w >> 8) & 0xFFFF) as u64) << (16 * hw as u32)) as i64;
        }
        OPC_MOVK => {
            mbz(w, 0x20)?;
            let hw = ((w >> 6) & 3) as u8;
            u.op = Op::MovK(hw * 16);
            u.rd = rd;
            u.rs1 = rd; // read-modify-write of rd
            u.imm = ((w >> 8) & 0xFFFF) as i64;
        }
        o if (OPC_LDU_BASE..OPC_LDU_BASE + 4).contains(&o)
            || (OPC_LDS_BASE..OPC_LDS_BASE + 4).contains(&o) =>
        {
            mbz(w, 0x3E0)?;
            let signed = o >= OPC_LDS_BASE;
            let wd = width_from_idx(if signed { o - OPC_LDS_BASE } else { o - OPC_LDU_BASE });
            u.op = Op::Load { w: wd, signed };
            u.rd = rd;
            u.rs1 = ((w >> 10) & 0x1F) as u8;
            u.imm = sext((w >> 15) & 0x1FF, 9) * wd.bytes() as i64;
        }
        o if (OPC_ST_BASE..OPC_ST_BASE + 4).contains(&o) => {
            mbz(w, 0x3E0)?;
            let wd = width_from_idx(o - OPC_ST_BASE);
            u.op = Op::Store { w: wd };
            u.rs1 = ((w >> 10) & 0x1F) as u8;
            u.rs3 = rd;
            u.imm = sext((w >> 15) & 0x1FF, 9) * wd.bytes() as i64;
        }
        o if (OPC_LDRR_BASE..OPC_LDRR_BASE + 4).contains(&o)
            || (OPC_LDSRR_BASE..OPC_LDSRR_BASE + 4).contains(&o) =>
        {
            mbz(w, 0x3FE0)?;
            let signed = o >= OPC_LDSRR_BASE;
            let wd = width_from_idx(if signed { o - OPC_LDSRR_BASE } else { o - OPC_LDRR_BASE });
            u.op = Op::Load { w: wd, signed };
            u.rd = rd;
            u.rs1 = rn5;
            u.rs2 = rm;
            u.reg_offset = true;
        }
        o if (OPC_STRR_BASE..OPC_STRR_BASE + 4).contains(&o) => {
            mbz(w, 0x3FE0)?;
            let wd = width_from_idx(o - OPC_STRR_BASE);
            u.op = Op::Store { w: wd };
            u.rs1 = rn5;
            u.rs2 = rm;
            u.rs3 = rd;
            u.reg_offset = true;
        }
        OPC_B => {
            u.op = Op::Jal;
            u.imm = sext(w & 0xFF_FFFF, 24) * 4;
        }
        OPC_BL => {
            u.op = Op::Jal;
            u.rd = LR;
            u.imm = sext(w & 0xFF_FFFF, 24) * 4;
        }
        OPC_BR => {
            mbz(w, 0x00F8_3FFF)?; // rm, bits 13:5, rd must be zero
            u.op = Op::Jalr;
            u.rs1 = rn5;
        }
        OPC_BLR => {
            mbz(w, 0x00F8_3FFF)?;
            u.op = Op::Jalr;
            u.rd = LR;
            u.rs1 = rn5;
        }
        o if (OPC_BCOND_BASE..OPC_BCOND_BASE + 6).contains(&o) => {
            u.op = Op::Branch(cond_from_idx(o - OPC_BCOND_BASE).unwrap());
            u.rs1 = rn5;
            u.rs2 = rm;
            u.imm = sext(w & 0x3FFF, 14) * 4;
        }
        OPC_SYS => {
            mbz(w, 0x00FF_FE00)?;
            u.op = match w & 0x1FF {
                SYS_HALT => Op::Halt,
                SYS_CHECKPOINT => Op::Checkpoint,
                SYS_SWITCHCPU => Op::SwitchCpu,
                SYS_IRET => Op::Iret,
                SYS_NOP => Op::Nop,
                _ => return Err(DecodeError::Invalid),
            };
        }
        _ => return Err(DecodeError::Invalid),
    }
    let call = matches!(u.op, Op::Jal | Op::Jalr) && u.rd == LR;
    let ret = u.op == Op::Jalr && u.rs1 == LR && u.rd != LR;
    Ok(Decoded::single(4, u).with_hints(call, ret))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(i: AsmInst) -> Vec<u8> {
        encode(&i).unwrap()
    }

    fn dec1(b: &[u8]) -> MicroOp {
        let d = decode(b).unwrap();
        assert_eq!(d.len, 4);
        d.uops.as_slice()[0]
    }

    #[test]
    fn roundtrip_alu() {
        for op in AluOp::ALL {
            let u = dec1(&enc(AsmInst::AluRR { op, rd: 1, rn: 2, rm: 3 }));
            assert_eq!(u.op, Op::Alu(op));
            assert_eq!((u.rd, u.rs1, u.rs2), (1, 2, 3));
            let u = dec1(&enc(AsmInst::AluRI { op, rd: 1, rn: 2, imm: 7 }));
            assert_eq!(u.op, Op::AluImm(op));
            assert_eq!(u.imm, 7);
        }
    }

    #[test]
    fn roundtrip_movz_movk() {
        let u = dec1(&enc(AsmInst::MovZ { rd: 9, imm16: 0xBEEF, hw: 1 }));
        assert_eq!(u.op, Op::LoadImm);
        assert_eq!(u.imm as u64, 0xBEEF_0000);
        let u = dec1(&enc(AsmInst::MovK { rd: 9, imm16: 0xCAFE, hw: 2 }));
        assert_eq!(u.op, Op::MovK(32));
        assert_eq!(u.rs1, 9);
        assert_eq!(u.imm, 0xCAFE);
    }

    #[test]
    fn roundtrip_mem_imm_scaled() {
        let u =
            dec1(&enc(AsmInst::Load { w: MemWidth::D, signed: false, rd: 3, base: 4, offset: -2040 }));
        assert_eq!(u.imm, -2040);
        assert!(matches!(u.op, Op::Load { w: MemWidth::D, .. }));
        let u = dec1(&enc(AsmInst::Store { w: MemWidth::W, rs: 7, base: 8, offset: 1020 }));
        assert_eq!(u.imm, 1020);
        assert_eq!(u.rs3, 7);
        // unscaled offsets rejected
        assert!(
            encode(&AsmInst::Load { w: MemWidth::D, signed: false, rd: 3, base: 4, offset: 9 }).is_err()
        );
    }

    #[test]
    fn roundtrip_mem_reg_offset() {
        let u = dec1(&enc(AsmInst::LoadRR { w: MemWidth::W, signed: true, rd: 3, base: 4, index: 5 }));
        assert!(u.reg_offset);
        assert_eq!((u.rs1, u.rs2), (4, 5));
        assert!(matches!(u.op, Op::Load { w: MemWidth::W, signed: true }));
        let u = dec1(&enc(AsmInst::StoreRR { w: MemWidth::B, rs: 6, base: 4, index: 5 }));
        assert!(u.reg_offset);
        assert_eq!(u.rs3, 6);
    }

    #[test]
    fn roundtrip_branches() {
        for c in Cond::ALL {
            let u = dec1(&enc(AsmInst::Branch { cond: c, rn: 1, rm: 2, offset: -32768 }));
            assert_eq!(u.op, Op::Branch(c));
            assert_eq!(u.imm, -32768);
        }
        let u = dec1(&enc(AsmInst::Call { offset: 4096 }));
        assert_eq!(u.op, Op::Jal);
        assert_eq!(u.rd, 30);
        let u = dec1(&enc(AsmInst::Ret));
        assert_eq!(u.op, Op::Jalr);
        assert_eq!(u.rs1, 30);
    }

    #[test]
    fn strict_decoder_rejects_mbz_violations() {
        // Set a must-be-zero bit in an ALU reg-reg word: strict decode fails.
        let b = enc(AsmInst::AluRR { op: AluOp::Add, rd: 1, rn: 2, rm: 3 });
        let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) | (1 << 7);
        assert_eq!(decode(&w.to_le_bytes()), Err(DecodeError::Invalid));
        // Same for system instructions.
        let b = enc(AsmInst::Halt);
        let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) | (1 << 20);
        assert_eq!(decode(&w.to_le_bytes()), Err(DecodeError::Invalid));
    }

    #[test]
    fn sys_roundtrip() {
        assert_eq!(dec1(&enc(AsmInst::Halt)).op, Op::Halt);
        assert_eq!(dec1(&enc(AsmInst::Checkpoint)).op, Op::Checkpoint);
        assert_eq!(dec1(&enc(AsmInst::SwitchCpu)).op, Op::SwitchCpu);
        assert_eq!(dec1(&enc(AsmInst::Iret)).op, Op::Iret);
        assert_eq!(dec1(&enc(AsmInst::Nop)).op, Op::Nop);
    }

    #[test]
    fn unsupported_forms_rejected() {
        assert!(encode(&AsmInst::Lui { rd: 1, imm20: 0 }).is_err());
        assert!(encode(&AsmInst::MovImm64 { rd: 1, imm: 0 }).is_err());
        assert!(encode(&AsmInst::AluRM { op: AluOp::Add, rd: 1, base: 2, offset: 0 }).is_err());
    }

    #[test]
    fn truncated() {
        assert_eq!(decode(&[1, 2]), Err(DecodeError::Truncated));
    }
}
