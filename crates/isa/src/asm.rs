//! Assembler-level instruction set: what the `marvel-ir` compiler emits and
//! what the per-ISA encoders consume.
//!
//! Not every form exists in every ISA flavour — e.g. register-offset
//! addressing ([`AsmInst::LoadRR`]) is Arm-only, memory-operand ALU forms
//! ([`AsmInst::AluRM`]) are x86-only, and `Lui`/`Auipc` are RISC-V-only.
//! The lowering passes in `marvel-ir` pick per-ISA instruction selections.

use crate::op::{AluOp, Cond, MemWidth};

/// An assembler-level (macro) instruction.
///
/// Branch/jump offsets are relative to the **start address of the
/// instruction itself**, in bytes, for every ISA flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsmInst {
    /// `rd = rn <op> rm`
    AluRR {
        op: AluOp,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    /// `rd = rn <op> imm` — immediate range is ISA-dependent
    /// (RISC-V: 12-bit signed, Arm: 9-bit signed, x86: 32-bit signed;
    /// shifts: 6-bit unsigned everywhere).
    AluRI {
        op: AluOp,
        rd: u8,
        rn: u8,
        imm: i64,
    },
    /// `rd = imm16 << (16*hw)` (Arm `movz`; also encodable on x86 as a
    /// `mov r, imm` and on RISC-V when the value fits `lui`/`addi` forms).
    MovZ {
        rd: u8,
        imm16: u16,
        hw: u8,
    },
    /// `rd = (rd & !(0xFFFF << 16*hw)) | imm16 << (16*hw)` (Arm `movk`).
    MovK {
        rd: u8,
        imm16: u16,
        hw: u8,
    },
    /// `rd = sext(imm20 << 12)` (RISC-V `lui`).
    Lui {
        rd: u8,
        imm20: i32,
    },
    /// `rd = imm` with a full 64-bit immediate (x86 `mov r, imm64`).
    MovImm64 {
        rd: u8,
        imm: i64,
    },
    /// Register-register move: x86 `mov r, r`, RISC-V/Arm `add rd, rs, 0`.
    MovRR {
        rd: u8,
        rs: u8,
    },
    /// `rd = mem[base + offset]`.
    Load {
        w: MemWidth,
        signed: bool,
        rd: u8,
        base: u8,
        offset: i32,
    },
    /// `rd = mem[base + index]` (Arm register-offset addressing).
    LoadRR {
        w: MemWidth,
        signed: bool,
        rd: u8,
        base: u8,
        index: u8,
    },
    /// `mem[base + offset] = rs`.
    Store {
        w: MemWidth,
        rs: u8,
        base: u8,
        offset: i32,
    },
    /// `mem[base + index] = rs` (Arm register-offset addressing).
    StoreRR {
        w: MemWidth,
        rs: u8,
        base: u8,
        index: u8,
    },
    /// `rd = rd <op> mem[base + offset]` (x86 memory-operand ALU form;
    /// cracked into a load micro-op plus an ALU micro-op at decode).
    AluRM {
        op: AluOp,
        rd: u8,
        base: u8,
        offset: i32,
    },
    /// `if cond(rn, rm): pc += offset`.
    Branch {
        cond: Cond,
        rn: u8,
        rm: u8,
        offset: i32,
    },
    /// `pc += offset` (unconditional).
    Jmp {
        offset: i32,
    },
    /// Call: RISC-V `jal ra`, Arm `bl lr`; the x86 flavour pushes the return
    /// address onto the stack (cracked into 4 micro-ops at decode).
    Call {
        offset: i32,
    },
    /// Indirect call through `rn`.
    CallInd {
        rn: u8,
    },
    /// Return: RISC-V `jalr x0, ra`, Arm `br lr`, x86 pops from the stack.
    Ret,
    /// Indirect jump through `rn`.
    JmpInd {
        rn: u8,
    },
    /// End simulation (the `m5_exit()` analogue).
    Halt,
    /// Checkpoint marker (the `m5_checkpoint()` analogue).
    Checkpoint,
    /// Injection-window end marker (the `m5_switch_cpu()` analogue).
    SwitchCpu,
    /// Return from interrupt.
    Iret,
    Nop,
}

/// Error returned when an [`AsmInst`] cannot be encoded in a given ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// The immediate/offset does not fit the instruction format.
    ImmOutOfRange { inst: &'static str, imm: i64 },
    /// A register index exceeds the ISA's architectural register count, or
    /// refers to an internal micro-op temporary.
    BadRegister { inst: &'static str, reg: u8 },
    /// The instruction form does not exist in this ISA flavour.
    UnsupportedForm { inst: &'static str },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { inst, imm } => {
                write!(f, "immediate {imm} out of range for {inst}")
            }
            EncodeError::BadRegister { inst, reg } => {
                write!(f, "register r{reg} not encodable in {inst}")
            }
            EncodeError::UnsupportedForm { inst } => {
                write!(f, "instruction form {inst} not supported by this ISA")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl AsmInst {
    /// Short mnemonic-like name, used in error messages and disassembly.
    pub fn name(&self) -> &'static str {
        match self {
            AsmInst::AluRR { .. } => "alu.rr",
            AsmInst::AluRI { .. } => "alu.ri",
            AsmInst::MovZ { .. } => "movz",
            AsmInst::MovK { .. } => "movk",
            AsmInst::Lui { .. } => "lui",
            AsmInst::MovImm64 { .. } => "mov.imm64",
            AsmInst::MovRR { .. } => "mov.rr",
            AsmInst::Load { .. } => "load",
            AsmInst::LoadRR { .. } => "load.rr",
            AsmInst::Store { .. } => "store",
            AsmInst::StoreRR { .. } => "store.rr",
            AsmInst::AluRM { .. } => "alu.rm",
            AsmInst::Branch { .. } => "b.cond",
            AsmInst::Jmp { .. } => "jmp",
            AsmInst::Call { .. } => "call",
            AsmInst::CallInd { .. } => "call.ind",
            AsmInst::Ret => "ret",
            AsmInst::JmpInd { .. } => "jmp.ind",
            AsmInst::Halt => "halt",
            AsmInst::Checkpoint => "checkpoint",
            AsmInst::SwitchCpu => "switchcpu",
            AsmInst::Iret => "iret",
            AsmInst::Nop => "nop",
        }
    }

    /// True if this instruction transfers control.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            AsmInst::Branch { .. }
                | AsmInst::Jmp { .. }
                | AsmInst::Call { .. }
                | AsmInst::CallInd { .. }
                | AsmInst::Ret
                | AsmInst::JmpInd { .. }
                | AsmInst::Iret
        )
    }

    /// Patch the control-flow offset (used by the two-pass assembler once
    /// label addresses are known). No-op for non-relative instructions.
    pub fn with_offset(mut self, off: i32) -> Self {
        match &mut self {
            AsmInst::Branch { offset, .. } | AsmInst::Jmp { offset } | AsmInst::Call { offset } => {
                *offset = off
            }
            _ => {}
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_offset_patches_relatives_only() {
        let b = AsmInst::Branch { cond: Cond::Eq, rn: 1, rm: 2, offset: 0 }.with_offset(64);
        assert!(matches!(b, AsmInst::Branch { offset: 64, .. }));
        let r = AsmInst::Ret.with_offset(64);
        assert_eq!(r, AsmInst::Ret);
    }

    #[test]
    fn control_classification() {
        assert!(AsmInst::Ret.is_control());
        assert!(AsmInst::Jmp { offset: 0 }.is_control());
        assert!(!AsmInst::Nop.is_control());
        assert!(!AsmInst::Halt.is_control());
    }

    #[test]
    fn encode_error_display() {
        let e = EncodeError::ImmOutOfRange { inst: "alu.ri", imm: 99999 };
        assert!(e.to_string().contains("99999"));
    }
}
