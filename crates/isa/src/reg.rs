//! Architectural register specifications for the three ISA flavours.
//!
//! The register spec drives both the rename stage of the out-of-order core
//! (architectural register count) and the `marvel-ir` register allocator
//! (allocatable set, reserved scratch registers, stack pointer, link
//! register). Register-count differences are one of the honest mechanisms
//! behind the paper's cross-ISA register-file AVF observations: the x86
//! flavour's 16 registers force more spilling (fewer live physical
//! registers, more L1D traffic), while the RISC-V flavour's extra
//! address-materialisation temporaries increase physical-register pressure.

/// Register layout of one ISA flavour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSpec {
    /// Total architectural register count visible to the encoder.
    pub arch_regs: u8,
    /// Total register namespace including internal micro-op temporaries
    /// (used by the rename stage; never encodable).
    pub total_regs: u8,
    /// Hardwired zero register, if any.
    pub zero: Option<u8>,
    /// Stack pointer register.
    pub sp: u8,
    /// Link register (return address), if the ISA keeps return addresses in
    /// a register; `None` for the stack-based x86 flavour.
    pub link: Option<u8>,
    /// Register used for function return values.
    pub ret_val: u8,
    /// Scratch registers reserved for the lowering pass (address
    /// materialisation, spill reloads). Never allocated to IR values.
    pub scratch: [u8; 3],
    /// Registers available to the linear-scan allocator.
    pub allocatable: &'static [u8],
}

impl RegSpec {
    /// Number of registers available to the allocator.
    pub fn allocatable_count(&self) -> usize {
        self.allocatable.len()
    }

    /// True if `r` is the hardwired zero register.
    pub fn is_zero(&self, r: u8) -> bool {
        self.zero == Some(r)
    }
}

/// RISC-V flavour: x0 hardwired zero, x1 = ra, x2 = sp; x28–x30 are the
/// lowering scratch registers; x10 carries return values.
pub static RV_REGS: RegSpec = RegSpec {
    arch_regs: 32,
    total_regs: 32,
    zero: Some(0),
    sp: 2,
    link: Some(1),
    ret_val: 10,
    scratch: [28, 29, 30],
    allocatable: &[5, 6, 7, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27],
};

/// Arm flavour: r31 reads as zero (XZR), r29 = sp, r30 = lr; r26–r28 are
/// scratch; r0 carries return values.
pub static ARM_REGS: RegSpec = RegSpec {
    arch_regs: 32,
    total_regs: 32,
    zero: Some(31),
    sp: 29,
    link: Some(30),
    ret_val: 0,
    scratch: [26, 27, 28],
    allocatable: &[
        1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25,
    ],
};

/// x86 flavour: 16 architectural registers (+2 micro-op temporaries used by
/// cracked memory-operand instructions), r4 = rsp, no link register
/// (returns go through the stack), r0 = rax carries return values,
/// r10/r11/r3 are scratch.
pub static X86_REGS: RegSpec = RegSpec {
    arch_regs: 16,
    total_regs: 18,
    zero: None,
    sp: 4,
    link: None,
    ret_val: 0,
    scratch: [10, 11, 3],
    allocatable: &[1, 2, 5, 6, 7, 8, 9, 12, 13, 14, 15],
};

/// Index of the first x86 micro-op temporary register.
pub const X86_UTMP0: u8 = 16;
/// Index of the second x86 micro-op temporary register.
pub const X86_UTMP1: u8 = 17;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_spec(s: &RegSpec) {
        // No overlaps between reserved and allocatable registers.
        let mut reserved: HashSet<u8> = HashSet::new();
        reserved.insert(s.sp);
        reserved.insert(s.ret_val);
        if let Some(z) = s.zero {
            reserved.insert(z);
        }
        if let Some(l) = s.link {
            reserved.insert(l);
        }
        for &r in &s.scratch {
            reserved.insert(r);
        }
        for &r in s.allocatable {
            assert!(!reserved.contains(&r), "allocatable r{r} overlaps reserved set");
            assert!(r < s.arch_regs);
        }
        assert!(s.total_regs >= s.arch_regs);
    }

    #[test]
    fn rv_spec_consistent() {
        check_spec(&RV_REGS);
        assert!(RV_REGS.is_zero(0));
        assert_eq!(RV_REGS.allocatable_count(), 22);
    }

    #[test]
    fn arm_spec_consistent() {
        check_spec(&ARM_REGS);
        assert!(ARM_REGS.is_zero(31));
        assert_eq!(ARM_REGS.allocatable_count(), 25);
    }

    #[test]
    fn x86_spec_consistent() {
        check_spec(&X86_REGS);
        assert_eq!(X86_REGS.zero, None);
        assert_eq!(X86_REGS.total_regs, 18);
        assert_eq!(X86_REGS.allocatable_count(), 11);
        assert!(X86_REGS.link.is_none());
    }

    #[test]
    fn x86_has_fewest_allocatable_registers() {
        assert!(X86_REGS.allocatable_count() < RV_REGS.allocatable_count());
        assert!(X86_REGS.allocatable_count() < ARM_REGS.allocatable_count());
    }
}
