//! Micro-operation level semantics shared by all three ISA flavours.
//!
//! Decoders translate raw bytes into one or more [`MicroOp`]s. The
//! out-of-order core in `marvel-cpu` renames and executes micro-ops; it
//! never sees encoding details.

use crate::Isa;

/// Sentinel register index meaning "no register".
pub const REG_NONE: u8 = 0xFF;

/// Integer ALU operations (64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    Mul,
    /// Signed division; divide-by-zero semantics are ISA-dependent.
    Div,
    /// Signed remainder; divide-by-zero semantics are ISA-dependent.
    Rem,
    /// Set-if-less-than (signed): `rd = (a < b) as u64`.
    Slt,
    /// Set-if-less-than (unsigned).
    Sltu,
}

impl AluOp {
    /// All ALU operations, used by encoders' opcode tables and tests.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// Evaluate the operation.
    ///
    /// Returns `None` only for the divide-by-zero case on ISAs that trap
    /// on it (the x86 flavour); other flavours produce their architecturally
    /// defined result.
    pub fn eval(self, a: u64, b: u64, isa: Isa) -> Option<u64> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    if isa.traps_on_div_zero() {
                        return None;
                    }
                    match isa {
                        Isa::Arm => 0,
                        _ => u64::MAX, // RISC-V: all ones
                    }
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    a // overflow: defined as MIN (RISC-V), wrap for others
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    if isa.traps_on_div_zero() {
                        return None;
                    }
                    match isa {
                        Isa::Arm => a,
                        _ => a, // RISC-V: dividend
                    }
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        })
    }

    /// Execution latency in cycles on the modelled functional units.
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }

    /// Whether the op requires the (single, unpipelined) multiply/divide
    /// functional unit.
    pub fn needs_muldiv_unit(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Rem)
    }
}

/// Branch conditions (compare-and-branch form in all three flavours).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl Cond {
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluate the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// Memory access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    B,
    H,
    W,
    D,
}

impl MemWidth {
    pub const ALL: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// Truncate (and optionally sign-extend) a 64-bit value read at this
    /// width.
    pub fn extend(self, raw: u64, signed: bool) -> u64 {
        let bits = self.bytes() * 8;
        if bits == 64 {
            return raw;
        }
        let mask = (1u64 << bits) - 1;
        let v = raw & mask;
        if signed && (v >> (bits - 1)) & 1 == 1 {
            v | !mask
        } else {
            v
        }
    }
}

/// A micro-operation: the unit of renaming, issue and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `rd = rs1 <op> rs2`
    Alu(AluOp),
    /// `rd = rs1 <op> imm`
    AluImm(AluOp),
    /// `rd = imm`
    LoadImm,
    /// `rd = (rs1 & !(0xFFFF << s)) | ((imm & 0xFFFF) << s)` — Arm `movk`.
    MovK(u8),
    /// `rd = pc + imm` — RISC-V `auipc` (also used to materialise
    /// pc-relative addresses).
    Auipc,
    /// `rd = pc + macro_len` — internal micro-op used by the x86 flavour's
    /// cracked `call`.
    LinkAddr,
    /// `rd = mem[rs1 + imm]`, or `mem[rs1 + rs2]` if `reg_offset`.
    Load {
        w: MemWidth,
        signed: bool,
    },
    /// `mem[rs1 + imm] = rs3` (or `mem[rs1 + rs2] = rs3` if `reg_offset`).
    Store {
        w: MemWidth,
    },
    /// `if cond(rs1, rs2): pc = pc + imm`
    Branch(Cond),
    /// `rd = pc + macro_len; pc = pc + imm`
    Jal,
    /// `rd = pc + macro_len; pc = rs1 + imm`
    Jalr,
    /// End of simulation (the `m5_exit()` analogue).
    Halt,
    /// Checkpoint marker (the `m5_checkpoint()` analogue) — the harness
    /// snapshots the full system state when this commits.
    Checkpoint,
    /// Injection-window end marker (the `m5_switch_cpu()` analogue).
    SwitchCpu,
    /// Return from interrupt handler.
    Iret,
    Nop,
}

impl Op {
    /// True if this micro-op may redirect the program counter.
    pub fn is_control(self) -> bool {
        matches!(self, Op::Branch(_) | Op::Jal | Op::Jalr | Op::Iret)
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// True for simulation markers (`Halt`/`Checkpoint`/`SwitchCpu`): they
    /// have no architectural effects and exist only to signal the harness.
    pub fn is_marker(self) -> bool {
        matches!(self, Op::Halt | Op::Checkpoint | Op::SwitchCpu)
    }

    /// True when the micro-op architecturally writes its destination
    /// register (assuming `rd` names one). Interpreters and the rename
    /// stage agree on this set: everything else leaves `rd` meaningless.
    pub fn writes_dest(self) -> bool {
        matches!(
            self,
            Op::Alu(_)
                | Op::AluImm(_)
                | Op::LoadImm
                | Op::MovK(_)
                | Op::Auipc
                | Op::LinkAddr
                | Op::Load { .. }
                | Op::Jal
                | Op::Jalr
        )
    }

    /// Memory access width for loads and stores, `None` otherwise.
    pub fn mem_width(self) -> Option<MemWidth> {
        match self {
            Op::Load { w, .. } | Op::Store { w } => Some(w),
            _ => None,
        }
    }
}

/// A fully decoded micro-operation with its register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    pub op: Op,
    /// Destination architectural register, or [`REG_NONE`].
    pub rd: u8,
    /// First source (ALU lhs / memory base / branch lhs), or [`REG_NONE`].
    pub rs1: u8,
    /// Second source (ALU rhs / branch rhs / index register), or
    /// [`REG_NONE`].
    pub rs2: u8,
    /// Store data register, or [`REG_NONE`].
    pub rs3: u8,
    /// Immediate (offset for memory/branches, value for `LoadImm`).
    pub imm: i64,
    /// Memory address is `rs1 + rs2` rather than `rs1 + imm`.
    pub reg_offset: bool,
}

impl MicroOp {
    /// A micro-op with no operands.
    pub fn bare(op: Op) -> Self {
        MicroOp {
            op,
            rd: REG_NONE,
            rs1: REG_NONE,
            rs2: REG_NONE,
            rs3: REG_NONE,
            imm: 0,
            reg_offset: false,
        }
    }

    /// Source registers actually read by this micro-op.
    pub fn sources(&self) -> impl Iterator<Item = u8> + '_ {
        [self.rs1, self.rs2, self.rs3].into_iter().filter(|&r| r != REG_NONE)
    }
}

/// Fixed-capacity vector of micro-ops produced by decoding one macro
/// instruction (at most 4: the x86 flavour's cracked `call`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopVec {
    arr: [MicroOp; 4],
    n: u8,
}

impl UopVec {
    pub fn new() -> Self {
        UopVec { arr: [MicroOp::bare(Op::Nop); 4], n: 0 }
    }

    pub fn of(uops: &[MicroOp]) -> Self {
        let mut v = Self::new();
        for &u in uops {
            v.push(u);
        }
        v
    }

    /// # Panics
    /// Panics if more than 4 micro-ops are pushed.
    pub fn push(&mut self, u: MicroOp) {
        assert!((self.n as usize) < 4, "macro instruction cracked into >4 uops");
        self.arr[self.n as usize] = u;
        self.n += 1;
    }

    pub fn len(&self) -> usize {
        self.n as usize
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn as_slice(&self) -> &[MicroOp] {
        &self.arr[..self.n as usize]
    }
}

impl Default for UopVec {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of decoding one macro instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Encoded length in bytes.
    pub len: u8,
    /// The micro-ops, in program order.
    pub uops: UopVec,
    /// Hint: this macro instruction is a call (push the return-address
    /// stack in the branch predictor).
    pub call: bool,
    /// Hint: this macro instruction is a return (pop the RAS).
    pub ret: bool,
}

impl Decoded {
    pub fn single(len: u8, uop: MicroOp) -> Self {
        Decoded { len, uops: UopVec::of(&[uop]), call: false, ret: false }
    }

    /// Attach call/return predictor hints.
    pub fn with_hints(mut self, call: bool, ret: bool) -> Self {
        self.call = call;
        self.ret = ret;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basic_ops() {
        let isa = Isa::RiscV;
        assert_eq!(AluOp::Add.eval(2, 3, isa).unwrap(), 5);
        assert_eq!(AluOp::Sub.eval(2, 3, isa).unwrap(), u64::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010, isa).unwrap(), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010, isa).unwrap(), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010, isa).unwrap(), 0b0110);
        assert_eq!(AluOp::Sll.eval(1, 8, isa).unwrap(), 256);
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63, isa).unwrap(), 1);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 63, isa).unwrap(), u64::MAX);
        assert_eq!(AluOp::Mul.eval(7, 6, isa).unwrap(), 42);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0, isa).unwrap(), 1); // -1 < 0
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0, isa).unwrap(), 0);
    }

    #[test]
    fn shift_amounts_are_mod_64() {
        assert_eq!(AluOp::Sll.eval(1, 64, Isa::Arm).unwrap(), 1);
        assert_eq!(AluOp::Sll.eval(1, 65, Isa::Arm).unwrap(), 2);
    }

    #[test]
    fn div_by_zero_isa_semantics() {
        assert!(AluOp::Div.eval(5, 0, Isa::X86).is_none());
        assert_eq!(AluOp::Div.eval(5, 0, Isa::Arm).unwrap(), 0);
        assert_eq!(AluOp::Div.eval(5, 0, Isa::RiscV).unwrap(), u64::MAX);
        assert!(AluOp::Rem.eval(5, 0, Isa::X86).is_none());
        assert_eq!(AluOp::Rem.eval(5, 0, Isa::RiscV).unwrap(), 5);
    }

    #[test]
    fn div_overflow_defined() {
        let min = i64::MIN as u64;
        assert_eq!(AluOp::Div.eval(min, u64::MAX, Isa::RiscV).unwrap(), min);
        assert_eq!(AluOp::Rem.eval(min, u64::MAX, Isa::RiscV).unwrap(), 0);
    }

    #[test]
    fn signed_division() {
        let isa = Isa::RiscV;
        let a = (-7i64) as u64;
        assert_eq!(AluOp::Div.eval(a, 2, isa).unwrap() as i64, -3);
        assert_eq!(AluOp::Rem.eval(a, 2, isa).unwrap() as i64, -1);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(u64::MAX, 0)); // signed
        assert!(Cond::Geu.eval(u64::MAX, 0)); // unsigned
        assert!(Cond::Ge.eval(5, 5));
        assert!(Cond::Ltu.eval(1, 2));
    }

    #[test]
    fn memwidth_extend() {
        assert_eq!(MemWidth::B.extend(0xFF, true), u64::MAX);
        assert_eq!(MemWidth::B.extend(0xFF, false), 0xFF);
        assert_eq!(MemWidth::H.extend(0x8000, true), 0xFFFF_FFFF_FFFF_8000);
        assert_eq!(MemWidth::W.extend(0x1_0000_0001, false), 1);
        assert_eq!(MemWidth::D.extend(u64::MAX, false), u64::MAX);
    }

    #[test]
    fn uopvec_push_and_slice() {
        let mut v = UopVec::new();
        assert!(v.is_empty());
        v.push(MicroOp::bare(Op::Halt));
        v.push(MicroOp::bare(Op::Nop));
        assert_eq!(v.len(), 2);
        assert_eq!(v.as_slice()[0].op, Op::Halt);
    }

    #[test]
    fn microop_sources_skip_none() {
        let mut u = MicroOp::bare(Op::Alu(AluOp::Add));
        u.rs1 = 3;
        u.rs2 = REG_NONE;
        u.rs3 = 7;
        let s: Vec<u8> = u.sources().collect();
        assert_eq!(s, vec![3, 7]);
    }

    #[test]
    fn op_metadata_partitions() {
        // Markers never write a destination and are not control flow.
        for op in [Op::Halt, Op::Checkpoint, Op::SwitchCpu] {
            assert!(op.is_marker());
            assert!(!op.writes_dest());
            assert!(!op.is_control());
        }
        assert!(!Op::Nop.is_marker() && !Op::Nop.writes_dest());
        assert!(Op::Jal.writes_dest() && Op::Jal.is_control());
        assert!(Op::Load { w: MemWidth::W, signed: true }.writes_dest());
        assert!(!Op::Store { w: MemWidth::B }.writes_dest());
        assert!(!Op::Branch(Cond::Eq).writes_dest());
        assert_eq!(Op::Store { w: MemWidth::H }.mem_width(), Some(MemWidth::H));
        assert_eq!(Op::Jal.mem_width(), None);
    }

    #[test]
    fn alu_latencies() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Div.latency(), 12);
        assert!(AluOp::Div.needs_muldiv_unit());
        assert!(!AluOp::Xor.needs_muldiv_unit());
    }
}
