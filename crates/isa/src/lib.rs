//! # marvel-isa
//!
//! Miniature instruction-set architectures that model the resilience-relevant
//! differences between the three prevailing 64-bit ISAs studied by
//! gem5-MARVEL (HPCA 2024): **x86**, **Arm**, and **RISC-V**.
//!
//! Each mini-ISA provides:
//!
//! * a binary **encoding** for the assembler-level instruction set
//!   ([`AsmInst`]) — fixed 4-byte words for the Arm and RISC-V flavours,
//!   variable-length (2–12 byte) instructions for the x86 flavour;
//! * a **decoder** that turns raw bytes (as fetched from the L1 instruction
//!   cache, faults included) into micro-operations ([`MicroOp`]); and
//! * a **register specification** ([`RegSpec`]) describing architectural
//!   register count, the zero register, reserved registers and the
//!   allocatable set used by the `marvel-ir` compiler.
//!
//! The decoders deliberately differ in *validity density* — the probability
//! that a random bit flip in an encoded instruction still decodes to a valid
//! (but wrong) instruction — and in *don't-care bit density*, mirroring the
//! paper's observation that simpler decode logic masks more faults
//! (Observation #2 / Architectural Implication #2).
//!
//! ```
//! use marvel_isa::{Isa, AsmInst, AluOp};
//!
//! let inst = AsmInst::AluRR { op: AluOp::Add, rd: 5, rn: 6, rm: 7 };
//! let bytes = Isa::RiscV.encode(&inst).expect("encodable");
//! let decoded = Isa::RiscV.decode(&bytes).expect("decodable");
//! assert_eq!(decoded.len as usize, bytes.len());
//! ```

pub mod asm;
pub mod disasm;
pub mod op;
pub mod reg;
pub mod trap;

mod arm;
mod rv;
mod x86;

pub use asm::{AsmInst, EncodeError};
pub use disasm::{disassemble, DisasmLine};
pub use op::{AluOp, Cond, Decoded, MemWidth, MicroOp, Op, UopVec, REG_NONE};
pub use reg::RegSpec;
pub use trap::Trap;

/// The three instruction-set architectures supported by the framework.
///
/// These are *flavours*: miniature ISAs reproducing the axes that matter for
/// microarchitectural fault injection (encoding width and density,
/// architectural register count, addressing-mode richness, micro-op
/// cracking, memory-ordering strength) rather than the full commercial ISAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// x86 flavour: variable-length encoding, 16 architectural registers,
    /// memory operands cracked into micro-ops, TSO memory ordering,
    /// stack-based call/return.
    X86,
    /// Arm flavour: fixed 4-byte encoding with a dense opcode space and a
    /// strict decoder, 31 registers + zero register, register-offset
    /// addressing, weak memory ordering.
    Arm,
    /// RISC-V flavour: fixed 4-byte RV-style encoding with a sparse opcode
    /// space and a *simple* decoder that treats several encoding bits as
    /// don't-care, 31 registers + `x0`, base+imm12 addressing only, weak
    /// memory ordering.
    RiscV,
}

impl Isa {
    /// All supported ISAs, in the order used throughout the paper's figures.
    pub const ALL: [Isa; 3] = [Isa::Arm, Isa::X86, Isa::RiscV];

    /// Human-readable name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Isa::X86 => "x86",
            Isa::Arm => "Arm",
            Isa::RiscV => "RISC-V",
        }
    }

    /// Register specification for this ISA.
    pub fn reg_spec(self) -> &'static RegSpec {
        match self {
            Isa::X86 => &reg::X86_REGS,
            Isa::Arm => &reg::ARM_REGS,
            Isa::RiscV => &reg::RV_REGS,
        }
    }

    /// Encode an assembler-level instruction to bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if an operand does not fit the instruction
    /// format (e.g. an immediate out of range) or the form does not exist in
    /// this ISA (e.g. register-offset addressing outside the Arm flavour).
    pub fn encode(self, inst: &AsmInst) -> Result<Vec<u8>, EncodeError> {
        match self {
            Isa::X86 => x86::encode(inst),
            Isa::Arm => arm::encode(inst),
            Isa::RiscV => rv::encode(inst),
        }
    }

    /// Length in bytes that `inst` will occupy, without encoding it.
    ///
    /// For the fixed-width flavours this is always 4. For the x86 flavour
    /// the length depends only on the instruction *form*, never on operand
    /// values, so two-pass assembly can lay out code before branch targets
    /// are known.
    pub fn encoded_len(self, inst: &AsmInst) -> Result<usize, EncodeError> {
        match self {
            Isa::X86 => x86::encoded_len(inst),
            Isa::Arm | Isa::RiscV => Ok(4),
        }
    }

    /// Decode the instruction starting at `bytes[0]`.
    ///
    /// `bytes` may be longer than the instruction; the decoded length is
    /// reported in [`Decoded::len`].
    ///
    /// # Errors
    ///
    /// * [`trap::DecodeError::Invalid`] — the bytes do not form a valid
    ///   instruction (this becomes an illegal-instruction trap if the
    ///   instruction reaches the commit stage).
    /// * [`trap::DecodeError::Truncated`] — more bytes are required to
    ///   decide (only possible for the variable-length x86 flavour).
    pub fn decode(self, bytes: &[u8]) -> Result<Decoded, trap::DecodeError> {
        match self {
            Isa::X86 => x86::decode(bytes),
            Isa::Arm => arm::decode(bytes),
            Isa::RiscV => rv::decode(bytes),
        }
    }

    /// Maximum encoded instruction length for this ISA, in bytes.
    pub fn max_inst_len(self) -> usize {
        match self {
            Isa::X86 => 12,
            Isa::Arm | Isa::RiscV => 4,
        }
    }

    /// Whether misaligned data accesses trap (Arm/RISC-V flavours) or are
    /// permitted (x86 flavour).
    pub fn traps_on_misaligned(self) -> bool {
        !matches!(self, Isa::X86)
    }

    /// Whether integer division by zero raises a trap (x86) or produces a
    /// defined result (Arm: 0, RISC-V: all-ones) without trapping.
    pub fn traps_on_div_zero(self) -> bool {
        matches!(self, Isa::X86)
    }

    /// Store-queue drain rate towards the L1D per cycle once stores commit.
    ///
    /// The x86 flavour models TSO: committed stores drain strictly in order,
    /// one per cycle, so they occupy the store queue longer. The weakly
    /// ordered flavours may drain two per cycle.
    pub fn store_drain_per_cycle(self) -> usize {
        match self {
            Isa::X86 => 1,
            Isa::Arm | Isa::RiscV => 2,
        }
    }

    /// Whether loads may issue speculatively past older stores with unknown
    /// addresses (weakly ordered flavours) or must wait (TSO flavour).
    pub fn loads_bypass_unknown_stores(self) -> bool {
        !matches!(self, Isa::X86)
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_paper_names() {
        assert_eq!(Isa::X86.name(), "x86");
        assert_eq!(Isa::Arm.name(), "Arm");
        assert_eq!(Isa::RiscV.name(), "RISC-V");
    }

    #[test]
    fn isa_memory_model_knobs() {
        assert!(Isa::X86.traps_on_div_zero());
        assert!(!Isa::RiscV.traps_on_div_zero());
        assert!(Isa::RiscV.traps_on_misaligned());
        assert!(!Isa::X86.traps_on_misaligned());
        assert_eq!(Isa::X86.store_drain_per_cycle(), 1);
        assert!(Isa::Arm.loads_bypass_unknown_stores());
        assert!(!Isa::X86.loads_bypass_unknown_stores());
    }

    #[test]
    fn fixed_width_isas_report_len_4() {
        let i = AsmInst::Nop;
        assert_eq!(Isa::Arm.encoded_len(&i).unwrap(), 4);
        assert_eq!(Isa::RiscV.encoded_len(&i).unwrap(), 4);
    }
}
