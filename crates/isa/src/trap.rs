//! Trap and decode-error types shared across the simulator stack.

/// Architectural traps. When a faulting instruction reaches the commit
/// stage, the simulation ends with the trap recorded; the fault-injection
/// framework classifies such runs as **Crash**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Bytes at the fetch address did not decode to a valid instruction.
    IllegalInstruction { pc: u64 },
    /// A data access fell outside every mapped physical range.
    MemFault { pc: u64, addr: u64 },
    /// A misaligned access on an ISA flavour that traps on misalignment.
    Misaligned { pc: u64, addr: u64 },
    /// Integer division by zero on the x86 flavour.
    DivideByZero { pc: u64 },
    /// Instruction fetch fell outside mapped memory.
    FetchFault { pc: u64 },
    /// The simulation exceeded its watchdog cycle budget (e.g. a corrupted
    /// loop bound); the paper counts these among Crashes.
    Watchdog,
}

impl Trap {
    /// Short machine-readable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Trap::IllegalInstruction { .. } => "illegal-instruction",
            Trap::MemFault { .. } => "mem-fault",
            Trap::Misaligned { .. } => "misaligned",
            Trap::DivideByZero { .. } => "div-by-zero",
            Trap::FetchFault { .. } => "fetch-fault",
            Trap::Watchdog => "watchdog",
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::IllegalInstruction { pc } => write!(f, "illegal instruction at {pc:#x}"),
            Trap::MemFault { pc, addr } => write!(f, "memory fault at {pc:#x} (addr {addr:#x})"),
            Trap::Misaligned { pc, addr } => write!(f, "misaligned access at {pc:#x} (addr {addr:#x})"),
            Trap::DivideByZero { pc } => write!(f, "divide by zero at {pc:#x}"),
            Trap::FetchFault { pc } => write!(f, "fetch fault at {pc:#x}"),
            Trap::Watchdog => write!(f, "watchdog expired"),
        }
    }
}

impl std::error::Error for Trap {}

/// Errors produced by the per-ISA instruction decoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bytes do not form a valid instruction.
    Invalid,
    /// More bytes are required to finish decoding (x86 flavour only); the
    /// fetch stage retries once the next cache line is available.
    Truncated,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Invalid => f.write_str("invalid instruction encoding"),
            DecodeError::Truncated => f.write_str("truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display_nonempty() {
        for t in [
            Trap::IllegalInstruction { pc: 0x80000000 },
            Trap::MemFault { pc: 1, addr: 2 },
            Trap::Misaligned { pc: 1, addr: 3 },
            Trap::DivideByZero { pc: 1 },
            Trap::FetchFault { pc: 1 },
            Trap::Watchdog,
        ] {
            assert!(!t.to_string().is_empty());
            assert!(!t.tag().is_empty());
        }
    }
}
