//! x86-flavour encoding: variable-length instructions (1–11 bytes) built
//! from an optional REX-like prefix, one or two opcode bytes, a ModRM byte
//! and optional displacement/immediate fields.
//!
//! Resilience-relevant properties modelled after real x86:
//!
//! * **variable length** — a bit flip that changes an instruction's length
//!   desynchronises decode for the rest of the fetch stream;
//! * **memory-operand ALU forms** — `rd = rd <op> mem[base+disp]` cracks
//!   into a load micro-op plus an ALU micro-op;
//! * **stack-based call/return** — `call` pushes the return address
//!   (4 micro-ops), `ret` pops it (3 micro-ops), so return addresses live
//!   in the L1D and store queue rather than a link register;
//! * **prefix don't-care bits** — REX bits W (3) and X (2) are ignored by
//!   the decoder, a small decode-masking window;
//! * only 16 architectural registers (ModRM 3-bit fields + prefix R/B
//!   extension bits).
//!
//! Unlike real x86 there is no flags register: conditional branches are
//! compare-and-branch (`Jcc rn, rm, disp32`). Branch displacements are
//! relative to the **start** of the instruction (consistent with the other
//! flavours; real x86 is end-relative).

use crate::asm::{AsmInst, EncodeError};
use crate::op::{AluOp, Cond, Decoded, MemWidth, MicroOp, Op, UopVec};
use crate::reg::X86_UTMP0;
use crate::trap::DecodeError;

/// Stack pointer (r4 = rsp).
const RSP: u8 = 4;

// One-byte opcodes.
const OPC_ADD_RM: u8 = 0x03;
const OPC_OR_RM: u8 = 0x0B;
const OPC_AND_RM: u8 = 0x23;
const OPC_SUB_RM: u8 = 0x2B;
const OPC_XOR_RM: u8 = 0x33;
const OPC_LOAD_BASE: u8 = 0x10; // +0..6: lbu,lhu,lwu,ld,lb,lh,lw
const OPC_STORE_BASE: u8 = 0x18; // +0..3: sb,sh,sw,sd
const OPC_JCC_BASE: u8 = 0x70; // +cond (6)
const OPC_GRP_IMM32: u8 = 0x81;
const OPC_MOV_STORE: u8 = 0x89;
const OPC_MOV_LOAD: u8 = 0x8B;
const OPC_NOP: u8 = 0x90;
const OPC_MOV_IMM64: u8 = 0xB8;
const OPC_SHIFT_IMM: u8 = 0xC1;
const OPC_RET: u8 = 0xC3;
const OPC_MOV_IMM32: u8 = 0xC7;
const OPC_CALL_REL: u8 = 0xE8;
const OPC_JMP_REL: u8 = 0xE9;
const OPC_GRP_FF: u8 = 0xFF;
const OPC_ESCAPE: u8 = 0x0F;

// Two-byte (0x0F-escaped) opcodes.
const OPC2_SLL: u8 = 0x01;
const OPC2_SRL: u8 = 0x02;
const OPC2_SRA: u8 = 0x03;
const OPC2_DIV: u8 = 0x06;
const OPC2_REM: u8 = 0x07;
const OPC2_SLT: u8 = 0x08;
const OPC2_SLTU: u8 = 0x09;
const OPC2_IMUL: u8 = 0xAF;
const OPC2_HALT: u8 = 0x90;
const OPC2_CHECKPOINT: u8 = 0x91;
const OPC2_SWITCHCPU: u8 = 0x92;
const OPC2_IRET: u8 = 0x93;

fn reg(inst: &'static str, r: u8) -> Result<u8, EncodeError> {
    if r < 16 {
        Ok(r)
    } else {
        Err(EncodeError::BadRegister { inst, reg: r })
    }
}

/// Assemble prefix (if needed) + opcode bytes + ModRM + displacement.
struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { out: Vec::with_capacity(11) }
    }

    /// Push prefix + opcodes + ModRM for a register-register form.
    fn modrm_rr(&mut self, opcodes: &[u8], r: u8, rm: u8) {
        self.emit_prefixed(opcodes, r, rm, 0b11, &[]);
    }

    /// Push prefix + opcodes + ModRM + disp for a register-memory form.
    fn modrm_mem(&mut self, opcodes: &[u8], r: u8, base: u8, disp: i32) {
        let (mode, disp_bytes): (u8, Vec<u8>) = if disp == 0 {
            (0b00, vec![])
        } else if (-128..128).contains(&disp) {
            (0b01, vec![disp as i8 as u8])
        } else {
            (0b10, disp.to_le_bytes().to_vec())
        };
        self.emit_prefixed(opcodes, r, base, mode, &disp_bytes);
    }

    fn emit_prefixed(&mut self, opcodes: &[u8], r: u8, rm: u8, mode: u8, tail: &[u8]) {
        let need_prefix = r >= 8 || rm >= 8;
        if need_prefix {
            let mut p = 0x40u8;
            if r >= 8 {
                p |= 0b0010; // R bit
            }
            if rm >= 8 {
                p |= 0b0001; // B bit
            }
            self.out.push(p);
        }
        self.out.extend_from_slice(opcodes);
        self.out.push((mode << 6) | ((r & 7) << 3) | (rm & 7));
        self.out.extend_from_slice(tail);
    }
}

fn alu_rm_opcode(op: AluOp) -> Vec<u8> {
    match op {
        AluOp::Add => vec![OPC_ADD_RM],
        AluOp::Or => vec![OPC_OR_RM],
        AluOp::And => vec![OPC_AND_RM],
        AluOp::Sub => vec![OPC_SUB_RM],
        AluOp::Xor => vec![OPC_XOR_RM],
        AluOp::Sll => vec![OPC_ESCAPE, OPC2_SLL],
        AluOp::Srl => vec![OPC_ESCAPE, OPC2_SRL],
        AluOp::Sra => vec![OPC_ESCAPE, OPC2_SRA],
        AluOp::Div => vec![OPC_ESCAPE, OPC2_DIV],
        AluOp::Rem => vec![OPC_ESCAPE, OPC2_REM],
        AluOp::Slt => vec![OPC_ESCAPE, OPC2_SLT],
        AluOp::Sltu => vec![OPC_ESCAPE, OPC2_SLTU],
        AluOp::Mul => vec![OPC_ESCAPE, OPC2_IMUL],
    }
}

/// ModRM.reg selector for the 0x81 ALU-imm32 group.
fn grp81_sel(op: AluOp) -> Option<u8> {
    Some(match op {
        AluOp::Add => 0,
        AluOp::Or => 1,
        AluOp::Slt => 2,
        AluOp::Sltu => 3,
        AluOp::And => 4,
        AluOp::Sub => 5,
        AluOp::Xor => 6,
        _ => return None,
    })
}

fn grp81_op(sel: u8) -> Option<AluOp> {
    Some(match sel {
        0 => AluOp::Add,
        1 => AluOp::Or,
        2 => AluOp::Slt,
        3 => AluOp::Sltu,
        4 => AluOp::And,
        5 => AluOp::Sub,
        6 => AluOp::Xor,
        _ => return None,
    })
}

fn cond_idx(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Ltu => 4,
        Cond::Geu => 5,
    }
}

fn cond_from_idx(i: u8) -> Option<Cond> {
    Some(match i {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Ltu,
        5 => Cond::Geu,
        _ => return None,
    })
}

pub fn encode(inst: &AsmInst) -> Result<Vec<u8>, EncodeError> {
    let name = inst.name();
    let mut e = Enc::new();
    match *inst {
        AsmInst::AluRR { op, rd, rn, rm } => {
            // Two-operand machine: dst must equal first source. The lowering
            // pass guarantees rd == rn (inserting moves where needed).
            if rd != rn {
                return Err(EncodeError::UnsupportedForm { inst: name });
            }
            e.modrm_rr(&alu_rm_opcode(op), reg(name, rd)?, reg(name, rm)?);
        }
        AsmInst::AluRI { op, rd, rn, imm } => {
            if rd != rn {
                return Err(EncodeError::UnsupportedForm { inst: name });
            }
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    if !(0..64).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange { inst: name, imm });
                    }
                    let sel = match op {
                        AluOp::Sll => 4,
                        AluOp::Srl => 5,
                        _ => 7,
                    };
                    e.modrm_rr(&[OPC_SHIFT_IMM], sel, reg(name, rd)?);
                    e.out.push(imm as u8);
                }
                _ => {
                    let sel = grp81_sel(op).ok_or(EncodeError::UnsupportedForm { inst: name })?;
                    if !(i32::MIN as i64..=i32::MAX as i64).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange { inst: name, imm });
                    }
                    e.modrm_rr(&[OPC_GRP_IMM32], sel, reg(name, rd)?);
                    e.out.extend_from_slice(&(imm as i32).to_le_bytes());
                }
            }
        }
        AsmInst::MovZ { rd, imm16, hw } => {
            // Encoded as mov r, imm32/imm64.
            let v = (imm16 as u64) << (16 * hw as u64);
            return encode(&AsmInst::MovImm64 { rd, imm: v as i64 });
        }
        AsmInst::MovImm64 { rd, imm } => {
            if (i32::MIN as i64..=i32::MAX as i64).contains(&imm) {
                e.modrm_rr(&[OPC_MOV_IMM32], 0, reg(name, rd)?);
                e.out.extend_from_slice(&(imm as i32).to_le_bytes());
            } else {
                e.modrm_rr(&[OPC_MOV_IMM64], 0, reg(name, rd)?);
                e.out.extend_from_slice(&imm.to_le_bytes());
            }
        }
        AsmInst::Load { w, signed, rd, base, offset } => {
            let idx = match (w, signed) {
                (MemWidth::B, false) => 0,
                (MemWidth::H, false) => 1,
                (MemWidth::W, false) => 2,
                (MemWidth::D, _) => 3,
                (MemWidth::B, true) => 4,
                (MemWidth::H, true) => 5,
                (MemWidth::W, true) => 6,
            };
            e.modrm_mem(&[OPC_LOAD_BASE + idx], reg(name, rd)?, reg(name, base)?, offset);
        }
        AsmInst::Store { w, rs, base, offset } => {
            let idx = match w {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
                MemWidth::D => 3,
            };
            e.modrm_mem(&[OPC_STORE_BASE + idx], reg(name, rs)?, reg(name, base)?, offset);
        }
        AsmInst::AluRM { op, rd, base, offset } => {
            match op {
                AluOp::Add | AluOp::Sub | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Mul => {}
                _ => return Err(EncodeError::UnsupportedForm { inst: name }),
            }
            e.modrm_mem(&alu_rm_opcode(op), reg(name, rd)?, reg(name, base)?, offset);
        }
        AsmInst::Branch { cond, rn, rm, offset } => {
            e.modrm_rr(&[OPC_JCC_BASE + cond_idx(cond)], reg(name, rn)?, reg(name, rm)?);
            e.out.extend_from_slice(&offset.to_le_bytes());
        }
        AsmInst::Jmp { offset } => {
            e.out.push(OPC_JMP_REL);
            e.out.extend_from_slice(&offset.to_le_bytes());
        }
        AsmInst::Call { offset } => {
            e.out.push(OPC_CALL_REL);
            e.out.extend_from_slice(&offset.to_le_bytes());
        }
        AsmInst::CallInd { rn } => e.modrm_rr(&[OPC_GRP_FF], 2, reg(name, rn)?),
        AsmInst::JmpInd { rn } => e.modrm_rr(&[OPC_GRP_FF], 4, reg(name, rn)?),
        AsmInst::MovRR { rd, rs } => {
            e.modrm_rr(&[OPC_MOV_LOAD], reg(name, rd)?, reg(name, rs)?);
        }
        AsmInst::Ret => e.out.push(OPC_RET),
        AsmInst::Halt => e.out.extend_from_slice(&[OPC_ESCAPE, OPC2_HALT]),
        AsmInst::Checkpoint => e.out.extend_from_slice(&[OPC_ESCAPE, OPC2_CHECKPOINT]),
        AsmInst::SwitchCpu => e.out.extend_from_slice(&[OPC_ESCAPE, OPC2_SWITCHCPU]),
        AsmInst::Iret => e.out.extend_from_slice(&[OPC_ESCAPE, OPC2_IRET]),
        AsmInst::Nop => e.out.push(OPC_NOP),
        AsmInst::Lui { .. }
        | AsmInst::LoadRR { .. }
        | AsmInst::StoreRR { .. }
        | AsmInst::MovK { .. } => return Err(EncodeError::UnsupportedForm { inst: name }),
    }
    Ok(e.out)
}

/// Instruction length without encoding (value-dependent only through
/// already-known operands, never through late-bound branch offsets, which
/// always use disp32).
pub fn encoded_len(inst: &AsmInst) -> Result<usize, EncodeError> {
    encode(inst).map(|b| b.len())
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let v = *self.b.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.u8()? as i8)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut a = [0u8; 4];
        for x in &mut a {
            *x = self.u8()?;
        }
        Ok(i32::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut a = [0u8; 8];
        for x in &mut a {
            *x = self.u8()?;
        }
        Ok(i64::from_le_bytes(a))
    }
}

struct ModRm {
    mode: u8,
    reg: u8,
    rm: u8,
    /// Displacement (memory modes only).
    disp: i32,
}

fn read_modrm(c: &mut Cursor, rex_r: bool, rex_b: bool) -> Result<ModRm, DecodeError> {
    let m = c.u8()?;
    let mode = m >> 6;
    let mut reg = (m >> 3) & 7;
    let mut rm = m & 7;
    if rex_r {
        reg += 8;
    }
    if rex_b {
        rm += 8;
    }
    let disp = match mode {
        0b01 => c.i8()? as i32,
        0b10 => c.i32()?,
        _ => 0,
    };
    Ok(ModRm { mode, reg, rm, disp })
}

fn load_uop(w: MemWidth, signed: bool, rd: u8, base: u8, disp: i32) -> MicroOp {
    let mut u = MicroOp::bare(Op::Load { w, signed });
    u.rd = rd;
    u.rs1 = base;
    u.imm = disp as i64;
    u
}

fn alu_rr_uop(op: AluOp, rd: u8, rn: u8, rm: u8) -> MicroOp {
    let mut u = MicroOp::bare(Op::Alu(op));
    u.rd = rd;
    u.rs1 = rn;
    u.rs2 = rm;
    u
}

pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    let mut c = Cursor { b: bytes, pos: 0 };
    let mut op0 = c.u8()?;
    let (mut rex_r, mut rex_b) = (false, false);
    if (0x40..0x50).contains(&op0) {
        // REX-like prefix; bits W (3) and X (2) are don't-care.
        rex_r = op0 & 0b0010 != 0;
        rex_b = op0 & 0b0001 != 0;
        op0 = c.u8()?;
        if (0x40..0x50).contains(&op0) {
            return Err(DecodeError::Invalid); // double prefix
        }
    }

    let mut uops = UopVec::new();
    match op0 {
        OPC_ADD_RM | OPC_OR_RM | OPC_AND_RM | OPC_SUB_RM | OPC_XOR_RM => {
            let op = match op0 {
                OPC_ADD_RM => AluOp::Add,
                OPC_OR_RM => AluOp::Or,
                OPC_AND_RM => AluOp::And,
                OPC_SUB_RM => AluOp::Sub,
                _ => AluOp::Xor,
            };
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode == 0b11 {
                uops.push(alu_rr_uop(op, m.reg, m.reg, m.rm));
            } else {
                uops.push(load_uop(MemWidth::D, false, X86_UTMP0, m.rm, m.disp));
                uops.push(alu_rr_uop(op, m.reg, m.reg, X86_UTMP0));
            }
        }
        o if (OPC_LOAD_BASE..OPC_LOAD_BASE + 7).contains(&o) => {
            let (w, s) = match o - OPC_LOAD_BASE {
                0 => (MemWidth::B, false),
                1 => (MemWidth::H, false),
                2 => (MemWidth::W, false),
                3 => (MemWidth::D, false),
                4 => (MemWidth::B, true),
                5 => (MemWidth::H, true),
                _ => (MemWidth::W, true),
            };
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode == 0b11 {
                return Err(DecodeError::Invalid);
            }
            uops.push(load_uop(w, s, m.reg, m.rm, m.disp));
        }
        o if (OPC_STORE_BASE..OPC_STORE_BASE + 4).contains(&o) => {
            let w = match o - OPC_STORE_BASE {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                _ => MemWidth::D,
            };
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode == 0b11 {
                return Err(DecodeError::Invalid);
            }
            let mut u = MicroOp::bare(Op::Store { w });
            u.rs1 = m.rm;
            u.rs3 = m.reg;
            u.imm = m.disp as i64;
            uops.push(u);
        }
        o if (OPC_JCC_BASE..OPC_JCC_BASE + 6).contains(&o) => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode != 0b11 {
                return Err(DecodeError::Invalid);
            }
            let disp = c.i32()?;
            let mut u = MicroOp::bare(Op::Branch(cond_from_idx(o - OPC_JCC_BASE).unwrap()));
            u.rs1 = m.reg;
            u.rs2 = m.rm;
            u.imm = disp as i64;
            uops.push(u);
        }
        OPC_GRP_IMM32 => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode != 0b11 {
                return Err(DecodeError::Invalid);
            }
            let op = grp81_op(m.reg & 7).ok_or(DecodeError::Invalid)?;
            let imm = c.i32()?;
            let mut u = MicroOp::bare(Op::AluImm(op));
            u.rd = m.rm;
            u.rs1 = m.rm;
            u.imm = imm as i64;
            uops.push(u);
        }
        OPC_SHIFT_IMM => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode != 0b11 {
                return Err(DecodeError::Invalid);
            }
            let op = match m.reg & 7 {
                4 => AluOp::Sll,
                5 => AluOp::Srl,
                7 => AluOp::Sra,
                _ => return Err(DecodeError::Invalid),
            };
            let sh = c.u8()?;
            let mut u = MicroOp::bare(Op::AluImm(op));
            u.rd = m.rm;
            u.rs1 = m.rm;
            u.imm = (sh & 63) as i64;
            uops.push(u);
        }
        OPC_MOV_LOAD => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode == 0b11 {
                let mut u = MicroOp::bare(Op::AluImm(AluOp::Add));
                u.rd = m.reg;
                u.rs1 = m.rm;
                u.imm = 0;
                uops.push(u);
            } else {
                uops.push(load_uop(MemWidth::D, false, m.reg, m.rm, m.disp));
            }
        }
        OPC_MOV_STORE => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode == 0b11 {
                let mut u = MicroOp::bare(Op::AluImm(AluOp::Add));
                u.rd = m.rm;
                u.rs1 = m.reg;
                u.imm = 0;
                uops.push(u);
            } else {
                let mut u = MicroOp::bare(Op::Store { w: MemWidth::D });
                u.rs1 = m.rm;
                u.rs3 = m.reg;
                u.imm = m.disp as i64;
                uops.push(u);
            }
        }
        OPC_MOV_IMM32 | OPC_MOV_IMM64 => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode != 0b11 || m.reg & 7 != 0 {
                return Err(DecodeError::Invalid);
            }
            let imm = if op0 == OPC_MOV_IMM32 { c.i32()? as i64 } else { c.i64()? };
            let mut u = MicroOp::bare(Op::LoadImm);
            u.rd = m.rm;
            u.imm = imm;
            uops.push(u);
        }
        OPC_JMP_REL => {
            let disp = c.i32()?;
            let mut u = MicroOp::bare(Op::Jal);
            u.imm = disp as i64;
            uops.push(u);
        }
        OPC_CALL_REL => {
            let disp = c.i32()?;
            // Crack: push return address, adjust rsp, jump.
            let mut link = MicroOp::bare(Op::LinkAddr);
            link.rd = X86_UTMP0;
            uops.push(link);
            let mut st = MicroOp::bare(Op::Store { w: MemWidth::D });
            st.rs1 = RSP;
            st.rs3 = X86_UTMP0;
            st.imm = -8;
            uops.push(st);
            let mut sp = MicroOp::bare(Op::AluImm(AluOp::Add));
            sp.rd = RSP;
            sp.rs1 = RSP;
            sp.imm = -8;
            uops.push(sp);
            let mut j = MicroOp::bare(Op::Jal);
            j.imm = disp as i64;
            uops.push(j);
        }
        OPC_RET => {
            // Crack: pop return address, adjust rsp, indirect jump.
            uops.push(load_uop(MemWidth::D, false, X86_UTMP0, RSP, 0));
            let mut sp = MicroOp::bare(Op::AluImm(AluOp::Add));
            sp.rd = RSP;
            sp.rs1 = RSP;
            sp.imm = 8;
            uops.push(sp);
            let mut j = MicroOp::bare(Op::Jalr);
            j.rs1 = X86_UTMP0;
            uops.push(j);
        }
        OPC_GRP_FF => {
            let m = read_modrm(&mut c, rex_r, rex_b)?;
            if m.mode != 0b11 {
                return Err(DecodeError::Invalid);
            }
            match m.reg & 7 {
                4 => {
                    let mut j = MicroOp::bare(Op::Jalr);
                    j.rs1 = m.rm;
                    uops.push(j);
                }
                2 => {
                    let mut link = MicroOp::bare(Op::LinkAddr);
                    link.rd = X86_UTMP0;
                    uops.push(link);
                    let mut st = MicroOp::bare(Op::Store { w: MemWidth::D });
                    st.rs1 = RSP;
                    st.rs3 = X86_UTMP0;
                    st.imm = -8;
                    uops.push(st);
                    let mut sp = MicroOp::bare(Op::AluImm(AluOp::Add));
                    sp.rd = RSP;
                    sp.rs1 = RSP;
                    sp.imm = -8;
                    uops.push(sp);
                    let mut j = MicroOp::bare(Op::Jalr);
                    j.rs1 = m.rm;
                    uops.push(j);
                }
                _ => return Err(DecodeError::Invalid),
            }
        }
        OPC_NOP => {
            uops.push(MicroOp::bare(Op::Nop));
        }
        OPC_ESCAPE => {
            let op1 = c.u8()?;
            match op1 {
                OPC2_HALT => uops.push(MicroOp::bare(Op::Halt)),
                OPC2_CHECKPOINT => uops.push(MicroOp::bare(Op::Checkpoint)),
                OPC2_SWITCHCPU => uops.push(MicroOp::bare(Op::SwitchCpu)),
                OPC2_IRET => uops.push(MicroOp::bare(Op::Iret)),
                OPC2_SLL | OPC2_SRL | OPC2_SRA | OPC2_DIV | OPC2_REM | OPC2_SLT | OPC2_SLTU => {
                    let op = match op1 {
                        OPC2_SLL => AluOp::Sll,
                        OPC2_SRL => AluOp::Srl,
                        OPC2_SRA => AluOp::Sra,
                        OPC2_DIV => AluOp::Div,
                        OPC2_REM => AluOp::Rem,
                        OPC2_SLT => AluOp::Slt,
                        _ => AluOp::Sltu,
                    };
                    let m = read_modrm(&mut c, rex_r, rex_b)?;
                    if m.mode != 0b11 {
                        return Err(DecodeError::Invalid);
                    }
                    uops.push(alu_rr_uop(op, m.reg, m.reg, m.rm));
                }
                OPC2_IMUL => {
                    let m = read_modrm(&mut c, rex_r, rex_b)?;
                    if m.mode == 0b11 {
                        uops.push(alu_rr_uop(AluOp::Mul, m.reg, m.reg, m.rm));
                    } else {
                        uops.push(load_uop(MemWidth::D, false, X86_UTMP0, m.rm, m.disp));
                        uops.push(alu_rr_uop(AluOp::Mul, m.reg, m.reg, X86_UTMP0));
                    }
                }
                _ => return Err(DecodeError::Invalid),
            }
        }
        _ => return Err(DecodeError::Invalid),
    }
    debug_assert!(!uops.is_empty());
    let call = uops.len() == 4; // only the cracked call forms produce 4 uops
    let ret = op0 == OPC_RET;
    Ok(Decoded { len: c.pos as u8, uops, call, ret })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::REG_NONE;

    fn enc(i: AsmInst) -> Vec<u8> {
        encode(&i).unwrap()
    }

    fn dec(b: &[u8]) -> Decoded {
        decode(b).unwrap()
    }

    #[test]
    fn roundtrip_alu_rr() {
        for op in [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Mul, AluOp::Div] {
            let b = enc(AsmInst::AluRR { op, rd: 5, rn: 5, rm: 12 });
            let d = dec(&b);
            assert_eq!(d.len as usize, b.len());
            assert_eq!(d.uops.len(), 1);
            let u = d.uops.as_slice()[0];
            assert_eq!(u.op, Op::Alu(op));
            assert_eq!((u.rd, u.rs1, u.rs2), (5, 5, 12));
        }
    }

    #[test]
    fn two_operand_constraint() {
        assert!(encode(&AsmInst::AluRR { op: AluOp::Add, rd: 1, rn: 2, rm: 3 }).is_err());
    }

    #[test]
    fn prefix_only_when_high_regs() {
        let lo = enc(AsmInst::AluRR { op: AluOp::Add, rd: 1, rn: 1, rm: 2 });
        let hi = enc(AsmInst::AluRR { op: AluOp::Add, rd: 9, rn: 9, rm: 2 });
        assert_eq!(lo.len() + 1, hi.len());
        assert!((0x40..0x50).contains(&hi[0]));
    }

    #[test]
    fn prefix_w_x_bits_dont_care() {
        let mut b = enc(AsmInst::AluRR { op: AluOp::Add, rd: 9, rn: 9, rm: 2 });
        let before = dec(&b);
        b[0] ^= 0b1100; // flip W and X
        assert_eq!(dec(&b), before);
    }

    #[test]
    fn alu_mem_cracks_to_two_uops() {
        let b = enc(AsmInst::AluRM { op: AluOp::Add, rd: 3, base: 6, offset: 256 });
        let d = dec(&b);
        assert_eq!(d.uops.len(), 2);
        let l = d.uops.as_slice()[0];
        let a = d.uops.as_slice()[1];
        assert!(l.op.is_load());
        assert_eq!(l.rd, X86_UTMP0);
        assert_eq!(l.imm, 256);
        assert_eq!(a.op, Op::Alu(AluOp::Add));
        assert_eq!((a.rd, a.rs1, a.rs2), (3, 3, X86_UTMP0));
    }

    #[test]
    fn disp8_vs_disp32_length() {
        let short = enc(AsmInst::Load { w: MemWidth::D, signed: false, rd: 1, base: 2, offset: 16 });
        let long = enc(AsmInst::Load { w: MemWidth::D, signed: false, rd: 1, base: 2, offset: 4096 });
        assert_eq!(short.len() + 3, long.len());
        assert_eq!(dec(&short).uops.as_slice()[0].imm, 16);
        assert_eq!(dec(&long).uops.as_slice()[0].imm, 4096);
    }

    #[test]
    fn call_cracks_to_four_uops() {
        let b = enc(AsmInst::Call { offset: 1000 });
        let d = dec(&b);
        assert_eq!(d.uops.len(), 4);
        let s = d.uops.as_slice();
        assert_eq!(s[0].op, Op::LinkAddr);
        assert!(s[1].op.is_store());
        assert_eq!(s[1].rs1, RSP);
        assert_eq!(s[1].imm, -8);
        assert_eq!(s[3].op, Op::Jal);
        assert_eq!(s[3].imm, 1000);
    }

    #[test]
    fn ret_cracks_to_three_uops() {
        let d = dec(&enc(AsmInst::Ret));
        assert_eq!(d.uops.len(), 3);
        let s = d.uops.as_slice();
        assert!(s[0].op.is_load());
        assert_eq!(s[2].op, Op::Jalr);
        assert_eq!(s[2].rs1, X86_UTMP0);
    }

    #[test]
    fn roundtrip_branches() {
        for c in Cond::ALL {
            let b = enc(AsmInst::Branch { cond: c, rn: 3, rm: 14, offset: -100 });
            let d = dec(&b);
            let u = d.uops.as_slice()[0];
            assert_eq!(u.op, Op::Branch(c));
            assert_eq!((u.rs1, u.rs2), (3, 14));
            assert_eq!(u.imm, -100);
        }
    }

    #[test]
    fn roundtrip_mov_imm() {
        let b = enc(AsmInst::MovImm64 { rd: 7, imm: -5 });
        assert_eq!(dec(&b).uops.as_slice()[0].imm, -5);
        let b = enc(AsmInst::MovImm64 { rd: 7, imm: 0x1234_5678_9ABC });
        assert_eq!(dec(&b).uops.as_slice()[0].imm, 0x1234_5678_9ABC);
        let b = enc(AsmInst::MovZ { rd: 2, imm16: 0xFFFF, hw: 3 });
        assert_eq!(dec(&b).uops.as_slice()[0].imm as u64, 0xFFFF_0000_0000_0000);
    }

    #[test]
    fn roundtrip_sized_mem() {
        for (w, s) in [(MemWidth::B, true), (MemWidth::H, false), (MemWidth::W, true)] {
            let b = enc(AsmInst::Load { w, signed: s, rd: 1, base: 2, offset: 8 });
            let u = dec(&b).uops.as_slice()[0];
            assert_eq!(u.op, Op::Load { w, signed: s });
        }
        let b = enc(AsmInst::Store { w: MemWidth::B, rs: 1, base: 2, offset: 0 });
        let u = dec(&b).uops.as_slice()[0];
        assert_eq!(u.op, Op::Store { w: MemWidth::B });
        assert_eq!(u.rs3, 1);
    }

    #[test]
    fn reg_moves() {
        let b = enc(AsmInst::AluRI { op: AluOp::Add, rd: 1, rn: 1, imm: 0 });
        assert_eq!(dec(&b).uops.as_slice()[0].op, Op::AluImm(AluOp::Add));
    }

    #[test]
    fn sys_ops() {
        assert_eq!(dec(&enc(AsmInst::Halt)).uops.as_slice()[0].op, Op::Halt);
        assert_eq!(dec(&enc(AsmInst::Nop)).uops.as_slice()[0].op, Op::Nop);
        assert_eq!(dec(&enc(AsmInst::Checkpoint)).uops.as_slice()[0].op, Op::Checkpoint);
    }

    #[test]
    fn truncation_detected() {
        let b = enc(AsmInst::Jmp { offset: 123456 });
        assert_eq!(decode(&b[..2]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn invalid_encodings() {
        assert_eq!(decode(&[0xFE, 0x00]), Err(DecodeError::Invalid));
        // mod=11 on a sized load is invalid
        assert_eq!(decode(&[OPC_LOAD_BASE, 0b11_000_000]), Err(DecodeError::Invalid));
        // double prefix
        assert_eq!(decode(&[0x41, 0x42, 0x90]), Err(DecodeError::Invalid));
    }

    #[test]
    fn high_registers_via_prefix_roundtrip() {
        let b = enc(AsmInst::Store { w: MemWidth::D, rs: 13, base: 12, offset: -64 });
        let u = dec(&b).uops.as_slice()[0];
        assert_eq!((u.rs1, u.rs3), (12, 13));
        assert_eq!(u.imm, -64);
    }

    #[test]
    fn unused_reg_fields_are_none() {
        let u = dec(&enc(AsmInst::Jmp { offset: 4 })).uops.as_slice()[0];
        assert_eq!(u.rd, REG_NONE);
    }
}
