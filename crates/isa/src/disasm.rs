//! Disassembler: renders decoded micro-ops back into readable mnemonics.
//!
//! Used by the `marvel` CLI's `disasm` subcommand and by debugging dumps;
//! operates on the *decoded* form, so a fault-corrupted instruction stream
//! disassembles exactly the way the core will execute it.

use crate::op::{AluOp, Cond, Decoded, MemWidth, MicroOp, Op, REG_NONE};
use crate::trap::DecodeError;
use crate::Isa;

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
    }
}

fn cond_name(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
        Cond::Ltu => "bltu",
        Cond::Geu => "bgeu",
    }
}

fn width_suffix(w: MemWidth, signed: bool) -> &'static str {
    match (w, signed) {
        (MemWidth::B, false) => "bu",
        (MemWidth::B, true) => "b",
        (MemWidth::H, false) => "hu",
        (MemWidth::H, true) => "h",
        (MemWidth::W, false) => "wu",
        (MemWidth::W, true) => "w",
        (MemWidth::D, _) => "d",
    }
}

fn imm_off(v: i64) -> String {
    if v >= 0 {
        format!("+ {v}")
    } else {
        format!("- {}", -v)
    }
}

fn reg(r: u8) -> String {
    if r == REG_NONE {
        "-".to_string()
    } else {
        format!("r{r}")
    }
}

/// Render one micro-op.
pub fn format_uop(u: &MicroOp, pc: u64) -> String {
    match u.op {
        Op::Alu(op) => format!("{} {}, {}, {}", alu_name(op), reg(u.rd), reg(u.rs1), reg(u.rs2)),
        Op::AluImm(op) => format!("{}i {}, {}, {}", alu_name(op), reg(u.rd), reg(u.rs1), u.imm),
        Op::LoadImm => format!("li {}, {:#x}", reg(u.rd), u.imm),
        Op::MovK(sh) => format!("movk {}, {:#x} << {}", reg(u.rd), u.imm & 0xFFFF, sh),
        Op::Auipc => format!("auipc {}, {:#x}", reg(u.rd), u.imm),
        Op::LinkAddr => format!("linkaddr {}", reg(u.rd)),
        Op::Load { w, signed } => {
            if u.reg_offset {
                format!("l{} {}, [{} + {}]", width_suffix(w, signed), reg(u.rd), reg(u.rs1), reg(u.rs2))
            } else {
                format!(
                    "l{} {}, [{} {}]",
                    width_suffix(w, signed),
                    reg(u.rd),
                    reg(u.rs1),
                    imm_off(u.imm)
                )
            }
        }
        Op::Store { w } => {
            if u.reg_offset {
                format!("s{} {}, [{} + {}]", width_suffix(w, true), reg(u.rs3), reg(u.rs1), reg(u.rs2))
            } else {
                format!("s{} {}, [{} {}]", width_suffix(w, true), reg(u.rs3), reg(u.rs1), imm_off(u.imm))
            }
        }
        Op::Branch(c) => {
            format!(
                "{} {}, {}, {:#x}",
                cond_name(c),
                reg(u.rs1),
                reg(u.rs2),
                pc.wrapping_add(u.imm as u64)
            )
        }
        Op::Jal => {
            if u.rd == REG_NONE || u.rd == 0 {
                format!("j {:#x}", pc.wrapping_add(u.imm as u64))
            } else {
                format!("jal {}, {:#x}", reg(u.rd), pc.wrapping_add(u.imm as u64))
            }
        }
        Op::Jalr => format!("jalr {}, {} + {}", reg(u.rd), reg(u.rs1), u.imm),
        Op::Halt => "halt".to_string(),
        Op::Checkpoint => "checkpoint".to_string(),
        Op::SwitchCpu => "switchcpu".to_string(),
        Op::Iret => "iret".to_string(),
        Op::Nop => "nop".to_string(),
    }
}

/// One disassembled macro instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    pub pc: u64,
    pub bytes: Vec<u8>,
    /// `Err` carries the decode failure for undecodable bytes.
    pub text: Result<String, DecodeError>,
}

impl std::fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hex: String = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
        let text = match &self.text {
            Ok(t) => t.clone(),
            Err(e) => format!("<{e}>"),
        };
        write!(f, "{:#010x}:  {:<24}{}", self.pc, hex, text)
    }
}

/// Disassemble a code region. Undecodable bytes advance by the minimum
/// instruction granule and are reported, mirroring how a fetcher would
/// trap on them.
pub fn disassemble(isa: Isa, base: u64, code: &[u8]) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut off = 0usize;
    let granule = match isa {
        Isa::X86 => 1,
        _ => 4,
    };
    while off < code.len() {
        let pc = base + off as u64;
        match isa.decode(&code[off..]) {
            Ok(Decoded { len, uops, .. }) => {
                let text =
                    uops.as_slice().iter().map(|u| format_uop(u, pc)).collect::<Vec<_>>().join(" ; ");
                out.push(DisasmLine {
                    pc,
                    bytes: code[off..off + len as usize].to_vec(),
                    text: Ok(text),
                });
                off += len as usize;
            }
            Err(e) => {
                let n = granule.min(code.len() - off);
                out.push(DisasmLine { pc, bytes: code[off..off + n].to_vec(), text: Err(e) });
                off += n;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AsmInst;

    #[test]
    fn disassembles_simple_sequences() {
        for isa in Isa::ALL {
            let mut code = Vec::new();
            for inst in [
                AsmInst::AluRI { op: AluOp::Add, rd: 1, rn: 1, imm: 5 },
                AsmInst::Store { w: MemWidth::D, rs: 1, base: 2, offset: 8 },
                AsmInst::Halt,
            ] {
                code.extend(isa.encode(&inst).unwrap());
            }
            let lines = disassemble(isa, 0x4000_0000, &code);
            assert_eq!(lines.len(), 3, "{isa}");
            assert!(lines[0].text.as_ref().unwrap().contains("addi"), "{isa}: {}", lines[0]);
            assert!(lines[1].text.as_ref().unwrap().contains("sd r1"), "{isa}: {}", lines[1]);
            assert_eq!(lines[2].text.as_ref().unwrap(), "halt");
            assert_eq!(lines[1].pc, 0x4000_0000 + lines[0].bytes.len() as u64);
        }
    }

    #[test]
    fn branch_targets_are_absolute() {
        let isa = Isa::RiscV;
        let code = isa.encode(&AsmInst::Branch { cond: Cond::Eq, rn: 1, rm: 2, offset: -8 }).unwrap();
        let lines = disassemble(isa, 0x4000_0100, &code);
        assert!(lines[0].text.as_ref().unwrap().contains("0x400000f8"), "{}", lines[0]);
    }

    #[test]
    fn invalid_bytes_reported_not_skipped_silently() {
        let lines = disassemble(Isa::RiscV, 0x4000_0000, &[0xFF, 0xFF, 0xFF, 0xFF, 0x13, 0, 0, 0]);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].text.is_err());
        assert!(lines[1].text.is_ok());
    }

    #[test]
    fn cracked_x86_shows_all_uops() {
        let isa = Isa::X86;
        let code = isa.encode(&AsmInst::Ret).unwrap();
        let lines = disassemble(isa, 0x4000_0000, &code);
        let t = lines[0].text.as_ref().unwrap();
        assert!(t.contains(" ; "), "cracked ret should show multiple uops: {t}");
        assert!(t.contains("jalr"));
    }

    #[test]
    fn display_formats_line() {
        let l = DisasmLine { pc: 0x4000_0000, bytes: vec![0x13, 0, 0, 0], text: Ok("nop".into()) };
        let s = l.to_string();
        assert!(s.contains("0x40000000"));
        assert!(s.contains("13000000"));
    }
}
