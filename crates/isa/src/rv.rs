//! RISC-V-flavour encoding: fixed 4-byte words with RV32I/RV64I-style field
//! packing (R/I/S/B/U/J formats), a sparse 7-bit opcode space, and a
//! deliberately *simple* decoder.
//!
//! The simple decoder mirrors minimal RISC-V implementations: it selects on
//! `opcode`, `funct3` and two discriminating `funct7` bits (bit 30 for
//! SUB/SRA, bit 25 for the M extension) and treats the remaining `funct7`
//! bits as don't-care. Bit flips landing in those positions are therefore
//! masked at decode — the mechanism behind the paper's Observation #2
//! (RISC-V L1I shows the highest decode-level masking).

use crate::asm::{AsmInst, EncodeError};
use crate::op::{AluOp, Cond, Decoded, MemWidth, MicroOp, Op};
use crate::trap::DecodeError;

const OPC_OP: u32 = 0x33;
const OPC_OP_IMM: u32 = 0x13;
const OPC_LOAD: u32 = 0x03;
const OPC_STORE: u32 = 0x23;
const OPC_BRANCH: u32 = 0x63;
const OPC_JAL: u32 = 0x6F;
const OPC_JALR: u32 = 0x67;
const OPC_LUI: u32 = 0x37;
const OPC_AUIPC: u32 = 0x17;
const OPC_SYSTEM: u32 = 0x73;

const SYS_HALT: u32 = 0x000;
const SYS_CHECKPOINT: u32 = 0x7C1;
const SYS_SWITCHCPU: u32 = 0x7C2;
const SYS_IRET: u32 = 0x7C3;
const SYS_NOP: u32 = 0x7C4;

/// Link register (x1 / `ra`).
const RA: u8 = 1;

fn reg(inst: &'static str, r: u8) -> Result<u32, EncodeError> {
    if r < 32 {
        Ok(r as u32)
    } else {
        Err(EncodeError::BadRegister { inst, reg: r })
    }
}

fn check_imm(inst: &'static str, imm: i64, bits: u32) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        Err(EncodeError::ImmOutOfRange { inst, imm })
    } else {
        Ok(())
    }
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opc: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opc
}

fn i_type(imm: i64, rs1: u32, funct3: u32, rd: u32, opc: u32) -> u32 {
    (((imm as u32) & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opc
}

fn s_type(imm: i64, rs2: u32, rs1: u32, funct3: u32, opc: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1F) << 7) | opc
}

fn b_type(imm: i64, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | OPC_BRANCH
}

fn j_type(imm: i64, rd: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | (rd << 7)
        | OPC_JAL
}

fn alu_funct(op: AluOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        AluOp::Add => (0, 0x00),
        AluOp::Sub => (0, 0x20),
        AluOp::Sll => (1, 0x00),
        AluOp::Slt => (2, 0x00),
        AluOp::Sltu => (3, 0x00),
        AluOp::Xor => (4, 0x00),
        AluOp::Srl => (5, 0x00),
        AluOp::Sra => (5, 0x20),
        AluOp::Or => (6, 0x00),
        AluOp::And => (7, 0x00),
        AluOp::Mul => (0, 0x01),
        AluOp::Div => (4, 0x01),
        AluOp::Rem => (6, 0x01),
    }
}

fn load_funct3(w: MemWidth, signed: bool) -> u32 {
    match (w, signed) {
        (MemWidth::B, true) => 0,
        (MemWidth::H, true) => 1,
        (MemWidth::W, true) => 2,
        (MemWidth::D, _) => 3,
        (MemWidth::B, false) => 4,
        (MemWidth::H, false) => 5,
        (MemWidth::W, false) => 6,
    }
}

fn store_funct3(w: MemWidth) -> u32 {
    match w {
        MemWidth::B => 0,
        MemWidth::H => 1,
        MemWidth::W => 2,
        MemWidth::D => 3,
    }
}

fn cond_funct3(c: Cond) -> u32 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 4,
        Cond::Ge => 5,
        Cond::Ltu => 6,
        Cond::Geu => 7,
    }
}

pub fn encode(inst: &AsmInst) -> Result<Vec<u8>, EncodeError> {
    let name = inst.name();
    let word: u32 = match *inst {
        AsmInst::AluRR { op, rd, rn, rm } => {
            let (f3, f7) = alu_funct(op);
            r_type(f7, reg(name, rm)?, reg(name, rn)?, f3, reg(name, rd)?, OPC_OP)
        }
        AsmInst::AluRI { op, rd, rn, imm } => {
            let rd = reg(name, rd)?;
            let rn = reg(name, rn)?;
            match op {
                AluOp::Add | AluOp::Slt | AluOp::Sltu | AluOp::Xor | AluOp::Or | AluOp::And => {
                    check_imm(name, imm, 12)?;
                    let f3 = match op {
                        AluOp::Add => 0,
                        AluOp::Slt => 2,
                        AluOp::Sltu => 3,
                        AluOp::Xor => 4,
                        AluOp::Or => 6,
                        AluOp::And => 7,
                        _ => unreachable!(),
                    };
                    i_type(imm, rn, f3, rd, OPC_OP_IMM)
                }
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    if !(0..64).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange { inst: name, imm });
                    }
                    let (f3, hi) = match op {
                        AluOp::Sll => (1, 0),
                        AluOp::Srl => (5, 0),
                        AluOp::Sra => (5, 0x400), // bit 30 of imm12 field
                        _ => unreachable!(),
                    };
                    i_type(imm | hi, rn, f3, rd, OPC_OP_IMM)
                }
                _ => return Err(EncodeError::UnsupportedForm { inst: name }),
            }
        }
        AsmInst::Lui { rd, imm20 } => {
            if !(-(1 << 19)..(1 << 19)).contains(&imm20) {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: imm20 as i64 });
            }
            (((imm20 as u32) & 0xFFFFF) << 12) | (reg(name, rd)? << 7) | OPC_LUI
        }
        AsmInst::Load { w, signed, rd, base, offset } => {
            check_imm(name, offset as i64, 12)?;
            i_type(offset as i64, reg(name, base)?, load_funct3(w, signed), reg(name, rd)?, OPC_LOAD)
        }
        AsmInst::Store { w, rs, base, offset } => {
            check_imm(name, offset as i64, 12)?;
            s_type(offset as i64, reg(name, rs)?, reg(name, base)?, store_funct3(w), OPC_STORE)
        }
        AsmInst::Branch { cond, rn, rm, offset } => {
            check_imm(name, offset as i64, 13)?;
            if offset & 1 != 0 {
                return Err(EncodeError::ImmOutOfRange { inst: name, imm: offset as i64 });
            }
            b_type(offset as i64, reg(name, rm)?, reg(name, rn)?, cond_funct3(cond))
        }
        AsmInst::Jmp { offset } => {
            check_imm(name, offset as i64, 21)?;
            j_type(offset as i64, 0)
        }
        AsmInst::Call { offset } => {
            check_imm(name, offset as i64, 21)?;
            j_type(offset as i64, RA as u32)
        }
        AsmInst::CallInd { rn } => i_type(0, reg(name, rn)?, 0, RA as u32, OPC_JALR),
        AsmInst::Ret => i_type(0, RA as u32, 0, 0, OPC_JALR),
        AsmInst::JmpInd { rn } => i_type(0, reg(name, rn)?, 0, 0, OPC_JALR),
        AsmInst::Halt => i_type(SYS_HALT as i64, 0, 0, 0, OPC_SYSTEM),
        AsmInst::Checkpoint => i_type(SYS_CHECKPOINT as i64, 0, 0, 0, OPC_SYSTEM),
        AsmInst::SwitchCpu => i_type(SYS_SWITCHCPU as i64, 0, 0, 0, OPC_SYSTEM),
        AsmInst::Iret => i_type(SYS_IRET as i64, 0, 0, 0, OPC_SYSTEM),
        AsmInst::Nop => i_type(SYS_NOP as i64, 0, 0, 0, OPC_SYSTEM),
        AsmInst::MovRR { rd, rs } => i_type(0, reg(name, rs)?, 0, reg(name, rd)?, OPC_OP_IMM),
        AsmInst::MovZ { .. }
        | AsmInst::MovK { .. }
        | AsmInst::MovImm64 { .. }
        | AsmInst::LoadRR { .. }
        | AsmInst::StoreRR { .. }
        | AsmInst::AluRM { .. } => return Err(EncodeError::UnsupportedForm { inst: name }),
    };
    Ok(word.to_le_bytes().to_vec())
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

pub fn decode(bytes: &[u8]) -> Result<Decoded, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let opc = w & 0x7F;
    let rd = ((w >> 7) & 0x1F) as u8;
    let funct3 = (w >> 12) & 0x7;
    let rs1 = ((w >> 15) & 0x1F) as u8;
    let rs2 = ((w >> 20) & 0x1F) as u8;
    let imm_i = sext(w >> 20, 12);

    let mut u = MicroOp::bare(Op::Nop);
    match opc {
        OPC_OP => {
            // Simple decode: select on funct3 + bit25 (M extension) +
            // bit30; the remaining funct7 bits are don't-care.
            let m_ext = (w >> 25) & 1 == 1;
            let bit30 = (w >> 30) & 1 == 1;
            let op = if m_ext {
                match funct3 {
                    0..=3 => AluOp::Mul, // mul/mulh* collapse to mul
                    4 | 5 => AluOp::Div, // div/divu collapse
                    _ => AluOp::Rem,     // rem/remu collapse
                }
            } else {
                match (funct3, bit30) {
                    (0, false) => AluOp::Add,
                    (0, true) => AluOp::Sub,
                    (1, _) => AluOp::Sll,
                    (2, _) => AluOp::Slt,
                    (3, _) => AluOp::Sltu,
                    (4, _) => AluOp::Xor,
                    (5, false) => AluOp::Srl,
                    (5, true) => AluOp::Sra,
                    (6, _) => AluOp::Or,
                    (7, _) => AluOp::And,
                    _ => unreachable!(),
                }
            };
            u.op = Op::Alu(op);
            u.rd = rd;
            u.rs1 = rs1;
            u.rs2 = rs2;
        }
        OPC_OP_IMM => {
            let bit30 = (w >> 30) & 1 == 1;
            let (op, imm) = match funct3 {
                0 => (AluOp::Add, imm_i),
                1 => (AluOp::Sll, (imm_i & 63)),
                2 => (AluOp::Slt, imm_i),
                3 => (AluOp::Sltu, imm_i),
                4 => (AluOp::Xor, imm_i),
                5 => (if bit30 { AluOp::Sra } else { AluOp::Srl }, imm_i & 63),
                6 => (AluOp::Or, imm_i),
                7 => (AluOp::And, imm_i),
                _ => unreachable!(),
            };
            u.op = Op::AluImm(op);
            u.rd = rd;
            u.rs1 = rs1;
            u.imm = imm;
        }
        OPC_LOAD => {
            let (w_, s) = match funct3 {
                0 => (MemWidth::B, true),
                1 => (MemWidth::H, true),
                2 => (MemWidth::W, true),
                3 => (MemWidth::D, false),
                4 => (MemWidth::B, false),
                5 => (MemWidth::H, false),
                6 => (MemWidth::W, false),
                _ => return Err(DecodeError::Invalid),
            };
            u.op = Op::Load { w: w_, signed: s };
            u.rd = rd;
            u.rs1 = rs1;
            u.imm = imm_i;
        }
        OPC_STORE => {
            let w_ = match funct3 {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return Err(DecodeError::Invalid),
            };
            let imm = sext(((w >> 25) << 5) | ((w >> 7) & 0x1F), 12);
            u.op = Op::Store { w: w_ };
            u.rs1 = rs1;
            u.rs3 = rs2;
            u.imm = imm;
        }
        OPC_BRANCH => {
            let c = match funct3 {
                0 => Cond::Eq,
                1 => Cond::Ne,
                4 => Cond::Lt,
                5 => Cond::Ge,
                6 => Cond::Ltu,
                7 => Cond::Geu,
                _ => return Err(DecodeError::Invalid),
            };
            let imm = sext(
                (((w >> 31) & 1) << 12)
                    | (((w >> 7) & 1) << 11)
                    | (((w >> 25) & 0x3F) << 5)
                    | (((w >> 8) & 0xF) << 1),
                13,
            );
            u.op = Op::Branch(c);
            u.rs1 = rs1;
            u.rs2 = rs2;
            u.imm = imm;
        }
        OPC_JAL => {
            let imm = sext(
                (((w >> 31) & 1) << 20)
                    | (((w >> 12) & 0xFF) << 12)
                    | (((w >> 20) & 1) << 11)
                    | (((w >> 21) & 0x3FF) << 1),
                21,
            );
            u.op = Op::Jal;
            u.rd = rd;
            u.imm = imm;
        }
        OPC_JALR => {
            // Simple decode: funct3 ignored.
            u.op = Op::Jalr;
            u.rd = rd;
            u.rs1 = rs1;
            u.imm = imm_i;
        }
        OPC_LUI => {
            u.op = Op::LoadImm;
            u.rd = rd;
            u.imm = sext(w & 0xFFFF_F000, 32);
        }
        OPC_AUIPC => {
            u.op = Op::Auipc;
            u.rd = rd;
            u.imm = sext(w & 0xFFFF_F000, 32);
        }
        OPC_SYSTEM => {
            // Simple decode: funct3/rs1/rd ignored, imm12 selects.
            u.op = match (w >> 20) & 0xFFF {
                SYS_HALT => Op::Halt,
                SYS_CHECKPOINT => Op::Checkpoint,
                SYS_SWITCHCPU => Op::SwitchCpu,
                SYS_IRET => Op::Iret,
                SYS_NOP => Op::Nop,
                _ => return Err(DecodeError::Invalid),
            };
        }
        _ => return Err(DecodeError::Invalid),
    }
    let call = matches!(u.op, Op::Jal | Op::Jalr) && u.rd == RA;
    let ret = u.op == Op::Jalr && u.rs1 == RA && u.rd != RA;
    Ok(Decoded::single(4, u).with_hints(call, ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::REG_NONE as _RN;

    fn enc(i: AsmInst) -> Vec<u8> {
        encode(&i).unwrap()
    }

    fn dec1(b: &[u8]) -> MicroOp {
        let d = decode(b).unwrap();
        assert_eq!(d.len, 4);
        assert_eq!(d.uops.len(), 1);
        d.uops.as_slice()[0]
    }

    #[test]
    fn roundtrip_alu_rr() {
        for op in AluOp::ALL {
            let b = enc(AsmInst::AluRR { op, rd: 5, rn: 6, rm: 7 });
            let u = dec1(&b);
            assert_eq!(u.op, Op::Alu(op), "{op:?}");
            assert_eq!((u.rd, u.rs1, u.rs2), (5, 6, 7));
        }
    }

    #[test]
    fn roundtrip_alu_ri() {
        let b = enc(AsmInst::AluRI { op: AluOp::Add, rd: 1, rn: 2, imm: -7 });
        let u = dec1(&b);
        assert_eq!(u.op, Op::AluImm(AluOp::Add));
        assert_eq!(u.imm, -7);
        let b = enc(AsmInst::AluRI { op: AluOp::Sra, rd: 1, rn: 2, imm: 63 });
        let u = dec1(&b);
        assert_eq!(u.op, Op::AluImm(AluOp::Sra));
        assert_eq!(u.imm, 63);
    }

    #[test]
    fn roundtrip_loads_stores() {
        for w in MemWidth::ALL {
            let b = enc(AsmInst::Load { w, signed: false, rd: 3, base: 4, offset: -16 });
            let u = dec1(&b);
            assert!(matches!(u.op, Op::Load { .. }));
            assert_eq!(u.imm, -16);
            let b = enc(AsmInst::Store { w, rs: 9, base: 4, offset: 40 });
            let u = dec1(&b);
            assert_eq!(u.op, Op::Store { w });
            assert_eq!(u.rs3, 9);
            assert_eq!(u.rs1, 4);
            assert_eq!(u.imm, 40);
        }
    }

    #[test]
    fn roundtrip_branches() {
        for c in Cond::ALL {
            let b = enc(AsmInst::Branch { cond: c, rn: 1, rm: 2, offset: -64 });
            let u = dec1(&b);
            assert_eq!(u.op, Op::Branch(c));
            assert_eq!(u.imm, -64);
        }
        let b = enc(AsmInst::Jmp { offset: 2048 });
        assert_eq!(dec1(&b).imm, 2048);
        let b = enc(AsmInst::Call { offset: -2048 });
        let u = dec1(&b);
        assert_eq!(u.op, Op::Jal);
        assert_eq!(u.rd, 1); // ra
        assert_eq!(u.imm, -2048);
    }

    #[test]
    fn roundtrip_lui_and_sys() {
        let b = enc(AsmInst::Lui { rd: 7, imm20: 0x40000 });
        let u = dec1(&b);
        assert_eq!(u.op, Op::LoadImm);
        assert_eq!(u.imm, 0x4000_0000);
        assert_eq!(dec1(&enc(AsmInst::Halt)).op, Op::Halt);
        assert_eq!(dec1(&enc(AsmInst::Checkpoint)).op, Op::Checkpoint);
        assert_eq!(dec1(&enc(AsmInst::SwitchCpu)).op, Op::SwitchCpu);
        assert_eq!(dec1(&enc(AsmInst::Nop)).op, Op::Nop);
    }

    #[test]
    fn ret_decodes_to_jalr_ra() {
        let u = dec1(&enc(AsmInst::Ret));
        assert_eq!(u.op, Op::Jalr);
        assert_eq!(u.rs1, 1);
        assert_eq!(u.rd, 0); // x0: link discarded
    }

    #[test]
    fn imm_range_enforced() {
        assert!(encode(&AsmInst::AluRI { op: AluOp::Add, rd: 1, rn: 2, imm: 4096 }).is_err());
        assert!(encode(&AsmInst::Load { w: MemWidth::D, signed: false, rd: 1, base: 2, offset: 5000 })
            .is_err());
        assert!(encode(&AsmInst::Branch { cond: Cond::Eq, rn: 1, rm: 2, offset: 8192 }).is_err());
    }

    #[test]
    fn unsupported_forms_rejected() {
        assert!(encode(&AsmInst::MovZ { rd: 1, imm16: 1, hw: 0 }).is_err());
        assert!(encode(&AsmInst::AluRM { op: AluOp::Add, rd: 1, base: 2, offset: 0 }).is_err());
        assert!(encode(&AsmInst::LoadRR { w: MemWidth::D, signed: false, rd: 1, base: 2, index: 3 })
            .is_err());
    }

    #[test]
    fn funct7_dont_care_bits_are_masked() {
        // Flipping funct7 bits other than 25/30 must not change the decode:
        // this is the "simple decoder" masking property.
        let mut b = enc(AsmInst::AluRR { op: AluOp::Add, rd: 5, rn: 6, rm: 7 });
        let before = dec1(&b);
        let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) ^ (1 << 26) ^ (1 << 31);
        b = w.to_le_bytes().to_vec();
        assert_eq!(dec1(&b), before);
    }

    #[test]
    fn sparse_opcode_space_random_words_mostly_invalid() {
        // Statistical sanity: random 32-bit words should frequently fail to
        // decode (sparse 7-bit opcode space).
        let mut invalid = 0;
        let mut x: u32 = 0x12345678;
        for _ in 0..1000 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            if decode(&x.to_le_bytes()).is_err() {
                invalid += 1;
            }
        }
        assert!(invalid > 600, "expected mostly-invalid random words, got {invalid}/1000 invalid");
    }

    #[test]
    fn truncated_input() {
        assert_eq!(decode(&[0x13, 0x00]), Err(DecodeError::Truncated));
    }

    #[test]
    fn store_negative_offset_roundtrip() {
        let b = enc(AsmInst::Store { w: MemWidth::D, rs: 8, base: 2, offset: -8 });
        let u = dec1(&b);
        assert_eq!(u.imm, -8);
    }

    #[test]
    fn jalr_decode_ignores_funct3() {
        // Simple decoder: JALR funct3 is a don't-care.
        let mut b = enc(AsmInst::Ret);
        let w = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) | (0b101 << 12);
        b = w.to_le_bytes().to_vec();
        assert_eq!(dec1(&b).op, Op::Jalr);
    }

    #[test]
    fn no_reg_none_leaks() {
        let u = dec1(&enc(AsmInst::Jmp { offset: 8 }));
        assert_eq!(u.rs1, _RN);
        assert_eq!(u.rd, 0);
    }
}
