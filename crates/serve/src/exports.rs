//! Campaign artifact exports, rebuilt from the complete record set in
//! run-index order. Because every export is a pure function of the
//! ordered records (which are themselves per-mask deterministic), a
//! campaign that was killed and resumed produces byte-identical artifacts
//! to one that ran uninterrupted — the crash-recovery tests pin this.

use crate::journal::encode_record;
use crate::spec::{CampaignSpec, Prepared};
use marvel_core::{
    attribution_by_structure, attribution_csv, attribution_jsonl, csv_row, CampaignResult, RunRecord,
    CSV_HEADER,
};
use marvel_telemetry::SCHEMA_VERSION;
use std::path::Path;

/// Per-record detail table, CSV flavour.
pub fn render_records_csv(records: &[RunRecord]) -> String {
    let mut out = format!(
        "# schema_version={SCHEMA_VERSION}\nidx,effect,hvf,trap,early_terminated,converged,cycles\n"
    );
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "{i},{:?},{},{},{},{},{}\n",
            r.effect,
            r.hvf.map(|h| format!("{h:?}")).unwrap_or_default(),
            r.trap.unwrap_or(""),
            r.early_terminated,
            r.converged,
            r.cycles
        ));
    }
    out
}

/// Per-record detail table, JSONL flavour (same line encoding as the
/// journal, so journal and export tooling share a parser).
pub fn render_records_jsonl(records: &[RunRecord]) -> String {
    let mut out = format!("{{\"type\":\"schema\",\"schema_version\":{SCHEMA_VERSION}}}\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&encode_record(i, r));
        out.push('\n');
    }
    out
}

/// Campaign summary row (the `marvel campaign` report surface as CSV).
pub fn render_summary_csv(spec: &CampaignSpec, prepared: &Prepared, records: &[RunRecord]) -> String {
    let res = CampaignResult {
        target: prepared.target,
        records: records.to_vec(),
        bit_population: prepared.bit_population,
        golden_exec_cycles: prepared.golden_cycles,
        confidence: 0.95,
    };
    let mut out = String::from(CSV_HEADER);
    out.push_str(&csv_row(&spec.id, &res));
    out
}

/// Write the full artifact set for a completed campaign into `dir`:
/// `records.csv`, `records.jsonl`, `summary.csv`, plus
/// `attribution.csv`/`attribution.jsonl` when taint attribution was
/// collected. Returns the list of files written.
pub fn write_exports(
    dir: &Path,
    spec: &CampaignSpec,
    prepared: &Prepared,
    records: &[RunRecord],
) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut written = Vec::new();
    let mut put = |name: &str, body: String| -> Result<(), String> {
        std::fs::write(dir.join(name), body)
            .map_err(|e| format!("writing {}: {e}", dir.join(name).display()))?;
        written.push(name.to_string());
        Ok(())
    };
    put("records.csv", render_records_csv(records))?;
    put("records.jsonl", render_records_jsonl(records))?;
    put("summary.csv", render_summary_csv(spec, prepared, records))?;
    if let Some(map) = attribution_by_structure(records) {
        put("attribution.csv", attribution_csv(&map))?;
        put("attribution.jsonl", attribution_jsonl(&map))?;
    }
    Ok(written)
}
