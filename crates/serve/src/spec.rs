//! Versioned campaign specifications: the JSON documents clients submit
//! to the service (or drop into its spool directory), validated the same
//! way the telemetry exports validate their snapshots — an explicit
//! `schema_version` that unknown readers must reject rather than
//! misparse.
//!
//! A spec is a *pure description*: workload + target + campaign knobs.
//! Everything derived from it (masks, golden run, ladder) is a
//! deterministic function of the spec, which is what makes journals
//! resumable — a restarted service re-derives the identical mask list
//! and skips the run indices already journaled. The spec digest (FNV-1a
//! over the canonical rendering) is stamped into the journal header so a
//! stale journal can never be resumed against an edited spec.

use crate::json::{parse, Json};
use marvel_accel::FuConfig;
use marvel_core::{
    build_campaign_ladder, build_dsa_ladder, campaign_masks, drive_dsa_masks, drive_masks,
    dsa_campaign_masks, CampaignConfig, DriveOutcome, DsaGolden, DsaLadder, FaultKind, FaultMask,
    Golden, Ladder, ResetMode, RunRecord, TelemetryConfig,
};
use marvel_cpu::CoreConfig;
use marvel_ir::assemble;
use marvel_isa::Isa;
use marvel_soc::{System, Target};
use marvel_telemetry::{json_string, PhaseId};
use marvel_workloads::{accel, mibench};
use std::sync::atomic::AtomicBool;

/// Version of the campaign-spec schema (and of the journal format that
/// embeds it). Bump on any shape change; readers reject unknown versions.
pub const SPEC_SCHEMA_VERSION: u32 = 1;

/// What a campaign injects into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// A MiBench-style CPU benchmark on one ISA flavour.
    Cpu { bench: String, isa: Isa },
    /// A MachSuite-style DSA design; `component` names one Table IV
    /// injection component of the design.
    Dsa { design: String, component: String, fus: usize },
}

/// A validated campaign specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign identity: names the artifact directory and the journal.
    pub id: String,
    pub workload: Workload,
    /// CPU injection target (ignored for DSA — the component names it).
    pub cpu_target: Target,
    pub n_faults: usize,
    pub kind: FaultKind,
    pub seed: u64,
    /// Worker threads for one-shot CLI execution (the service shards
    /// across its own pool instead). 0 = all cores.
    pub workers: usize,
    pub reset_mode: ResetMode,
    pub ladder_rungs: usize,
    pub convergence_exit: bool,
    pub collect_hvf: bool,
    pub taint: bool,
    /// Fast-forward golden prep with the reference model (CPU only).
    pub fast_prep: bool,
}

fn kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::Transient => "transient",
        FaultKind::Permanent => "permanent",
        FaultKind::PermanentStuck0 => "permanent-stuck0",
        FaultKind::PermanentStuck1 => "permanent-stuck1",
    }
}

fn parse_kind(s: &str) -> Result<FaultKind, String> {
    match s {
        "transient" => Ok(FaultKind::Transient),
        "permanent" => Ok(FaultKind::Permanent),
        "permanent-stuck0" => Ok(FaultKind::PermanentStuck0),
        "permanent-stuck1" => Ok(FaultKind::PermanentStuck1),
        other => Err(format!("unknown fault kind '{other}'")),
    }
}

fn isa_name(isa: Isa) -> &'static str {
    match isa {
        Isa::Arm => "arm",
        Isa::X86 => "x86",
        Isa::RiscV => "riscv",
    }
}

fn parse_isa(s: &str) -> Result<Isa, String> {
    match s {
        "arm" => Ok(Isa::Arm),
        "x86" => Ok(Isa::X86),
        "riscv" => Ok(Isa::RiscV),
        other => Err(format!("unknown ISA '{other}' (arm|x86|riscv)")),
    }
}

fn cpu_target_name(t: Target) -> Result<&'static str, String> {
    Ok(match t {
        Target::PrfInt => "prf",
        Target::PrfFp => "prf-fp",
        Target::L1I => "l1i",
        Target::L1D => "l1d",
        Target::L2 => "l2",
        Target::LoadQueue => "lq",
        Target::StoreQueue => "sq",
        Target::Rob => "rob",
        Target::RenameMap => "rename",
        other => return Err(format!("{other:?} is not a CPU spec target")),
    })
}

/// Parse a CPU target name (same vocabulary as the `marvel campaign`
/// `--target` flag).
pub fn parse_cpu_target(s: &str) -> Result<Target, String> {
    Ok(match s {
        "prf" | "rf" => Target::PrfInt,
        "prf-fp" | "fp" => Target::PrfFp,
        "l1i" => Target::L1I,
        "l1d" => Target::L1D,
        "l2" => Target::L2,
        "lq" => Target::LoadQueue,
        "sq" => Target::StoreQueue,
        "rob" => Target::Rob,
        "rename" => Target::RenameMap,
        other => return Err(format!("unknown target '{other}'")),
    })
}

impl CampaignSpec {
    /// Parse and validate a spec document. Rejects missing/unknown
    /// `schema_version`, malformed ids, unknown workloads/targets — a
    /// stale or hand-mangled spec fails loudly at submission, not
    /// mid-campaign.
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let v = parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        if v.get("type").and_then(Json::as_str) != Some("campaign_spec") {
            return Err("spec lacks \"type\":\"campaign_spec\"".into());
        }
        let version =
            v.get("schema_version").and_then(Json::as_u64).ok_or("spec has no schema_version field")?;
        if version as u32 != SPEC_SCHEMA_VERSION {
            return Err(format!(
                "unknown spec schema_version {version} (this reader understands {SPEC_SCHEMA_VERSION})"
            ));
        }
        let id = v.get("id").and_then(Json::as_str).ok_or("spec has no id")?.to_string();
        if id.is_empty()
            || id.len() > 64
            || !id.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            || id.starts_with('.')
            || id.starts_with('_')
        {
            return Err(format!(
                "bad campaign id {id:?}: want 1-64 chars of [a-zA-Z0-9._-], not starting with '.' or '_'"
            ));
        }
        let w = v.get("workload").ok_or("spec has no workload")?;
        let workload = match w.get("kind").and_then(Json::as_str) {
            Some("cpu") => {
                let bench = w.get("bench").and_then(Json::as_str).ok_or("cpu workload has no bench")?;
                if !mibench::NAMES.contains(&bench) {
                    return Err(format!("unknown benchmark '{bench}'"));
                }
                let isa = parse_isa(w.get("isa").and_then(Json::as_str).unwrap_or("riscv"))?;
                Workload::Cpu { bench: bench.to_string(), isa }
            }
            Some("dsa") => {
                let design = w
                    .get("design")
                    .and_then(Json::as_str)
                    .ok_or("dsa workload has no design")?
                    .to_uppercase();
                let d = accel::designs()
                    .into_iter()
                    .find(|d| d.name == design)
                    .ok_or_else(|| format!("unknown design '{design}'"))?;
                let component = match w.get("component").and_then(Json::as_str) {
                    Some(c) => {
                        if !d.components.iter().any(|comp| comp.name == c) {
                            return Err(format!("design {design} has no component '{c}'"));
                        }
                        c.to_string()
                    }
                    None => d.components[0].name.to_string(),
                };
                let fus = w.get("fus").and_then(Json::as_usize).unwrap_or(4).clamp(1, 64);
                Workload::Dsa { design, component, fus }
            }
            _ => return Err("workload.kind must be \"cpu\" or \"dsa\"".into()),
        };
        let cpu_target = parse_cpu_target(v.get("target").and_then(Json::as_str).unwrap_or("prf"))?;
        let n_faults = v.get("faults").and_then(Json::as_usize).unwrap_or(100);
        if n_faults == 0 {
            return Err("spec asks for 0 faults".into());
        }
        let kind = parse_kind(v.get("fault_kind").and_then(Json::as_str).unwrap_or("transient"))?;
        let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(0xC0FFEE);
        let workers = v.get("workers").and_then(Json::as_usize).unwrap_or(0);
        let reset_mode = match v.get("reset_mode").and_then(Json::as_str) {
            None => ResetMode::default(),
            Some(s) => {
                ResetMode::parse(s).ok_or_else(|| format!("unknown reset_mode '{s}' (clone|dirty)"))?
            }
        };
        let ladder_rungs = v.get("ladder_rungs").and_then(Json::as_usize).unwrap_or(8);
        let convergence_exit = v.get("convergence_exit").and_then(Json::as_bool).unwrap_or(false);
        let collect_hvf = v.get("hvf").and_then(Json::as_bool).unwrap_or(false);
        let taint = v.get("taint").and_then(Json::as_bool).unwrap_or(false);
        let fast_prep = v.get("fast_prep").and_then(Json::as_bool).unwrap_or(false);
        Ok(CampaignSpec {
            id,
            workload,
            cpu_target,
            n_faults,
            kind,
            seed,
            workers,
            reset_mode,
            ladder_rungs,
            convergence_exit,
            collect_hvf,
            taint,
            fast_prep,
        })
    }

    /// Canonical single-line rendering: fixed field order, every field
    /// explicit. `parse(render(spec)) == spec`, and the digest is defined
    /// over exactly this form, so two submissions that differ only in
    /// JSON formatting or field order share a digest.
    pub fn render(&self) -> String {
        let workload = match &self.workload {
            Workload::Cpu { bench, isa } => format!(
                "{{\"kind\":\"cpu\",\"bench\":{},\"isa\":\"{}\"}}",
                json_string(bench),
                isa_name(*isa)
            ),
            Workload::Dsa { design, component, fus } => format!(
                "{{\"kind\":\"dsa\",\"design\":{},\"component\":{},\"fus\":{fus}}}",
                json_string(design),
                json_string(component)
            ),
        };
        format!(
            "{{\"type\":\"campaign_spec\",\"schema_version\":{SPEC_SCHEMA_VERSION},\"id\":{},\"workload\":{workload},\"target\":\"{}\",\"faults\":{},\"fault_kind\":\"{}\",\"seed\":{},\"workers\":{},\"reset_mode\":\"{}\",\"ladder_rungs\":{},\"convergence_exit\":{},\"hvf\":{},\"taint\":{},\"fast_prep\":{}}}",
            json_string(&self.id),
            cpu_target_name(self.cpu_target).expect("validated at construction"),
            self.n_faults,
            kind_name(self.kind),
            self.seed,
            self.workers,
            match self.reset_mode {
                ResetMode::Clone => "clone",
                ResetMode::Dirty => "dirty",
            },
            self.ladder_rungs,
            self.convergence_exit,
            self.collect_hvf,
            self.taint,
            self.fast_prep,
        )
    }

    /// FNV-1a 64 digest of the canonical rendering, as 16 hex chars.
    /// Stamped into journal headers: resuming a journal whose digest does
    /// not match the submitted spec is an error, never a silent restart.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// The campaign config this spec describes, with the given telemetry.
    pub fn to_config(&self, telemetry: TelemetryConfig) -> CampaignConfig {
        CampaignConfig {
            n_faults: self.n_faults,
            kind: self.kind,
            seed: self.seed,
            collect_hvf: self.collect_hvf,
            workers: self.workers,
            reset_mode: self.reset_mode,
            ladder_rungs: self.ladder_rungs,
            convergence_exit: self.convergence_exit,
            telemetry,
            ..CampaignConfig::default()
        }
    }

    /// Human-oriented one-liner for status displays.
    pub fn describe(&self) -> String {
        match &self.workload {
            Workload::Cpu { bench, isa } => format!(
                "cpu {bench}/{} target {} x{}",
                isa_name(*isa),
                cpu_target_name(self.cpu_target).unwrap_or("?"),
                self.n_faults
            ),
            Workload::Dsa { design, component, .. } => {
                format!("dsa {design}/{component} x{}", self.n_faults)
            }
        }
    }
}

/// The expensive, deterministic derivation of a spec: golden run +
/// checkpoint ladder + mask list. Built once (per service campaign or
/// CLI invocation), then driven incrementally any number of times.
pub struct Prepared {
    pub target: Target,
    pub masks: Vec<FaultMask>,
    pub bit_population: u64,
    pub golden_cycles: u64,
    golden: PreparedGolden,
}

enum PreparedGolden {
    Cpu { golden: Box<Golden>, ladder: Option<Ladder> },
    Dsa { golden: Box<DsaGolden>, ladder: DsaLadder },
}

impl Prepared {
    /// Run golden prep + ladder build + mask derivation for `spec`.
    /// Deterministic: the same spec always yields the same mask list, in
    /// the same order — the foundation of journal resume.
    pub fn new(spec: &CampaignSpec, cc: &CampaignConfig) -> Result<Prepared, String> {
        match &spec.workload {
            Workload::Cpu { bench, isa } => {
                let bin = assemble(&mibench::build(bench), *isa).map_err(|e| e.to_string())?;
                let mut sys = System::new(CoreConfig::table2(*isa));
                sys.load_binary(&bin);
                let golden = cc
                    .telemetry
                    .spans
                    .time(PhaseId::GoldenPrep, || {
                        if spec.fast_prep {
                            Golden::prepare_fast(sys, 200_000_000)
                        } else {
                            Golden::prepare(sys, 200_000_000)
                        }
                    })
                    .map_err(|e| e.to_string())?;
                golden.publish_metrics(&cc.telemetry.registry);
                let ladder = build_campaign_ladder(&golden, cc);
                let target = spec.cpu_target;
                let masks = campaign_masks(&golden, target, cc);
                let bit_population = golden.ckpt.bit_len(target);
                Ok(Prepared {
                    target,
                    masks,
                    bit_population,
                    golden_cycles: golden.exec_cycles,
                    golden: PreparedGolden::Cpu { golden: Box::new(golden), ladder },
                })
            }
            Workload::Dsa { design, component, fus } => {
                let d = accel::designs()
                    .into_iter()
                    .find(|d| d.name == *design)
                    .ok_or_else(|| format!("unknown design '{design}'"))?;
                let comp = d
                    .components
                    .iter()
                    .find(|c| c.name == *component)
                    .ok_or_else(|| format!("design {design} has no component '{component}'"))?;
                let target = comp.target;
                let golden = cc.telemetry.spans.time(PhaseId::GoldenPrep, || {
                    DsaGolden::prepare((d.make)(FuConfig::uniform(*fus)), 100_000_000)
                });
                let ladder = build_dsa_ladder(&golden, cc);
                let masks = dsa_campaign_masks(&golden, target, cc);
                let bit_population = match target {
                    Target::Spm { .. } | Target::RegBank { .. } | Target::Mmr { .. } => {
                        (comp.bytes as u64) * 8
                    }
                    _ => 0,
                };
                Ok(Prepared {
                    target,
                    masks,
                    bit_population,
                    golden_cycles: golden.cycles,
                    golden: PreparedGolden::Dsa { golden: Box::new(golden), ladder },
                })
            }
        }
    }

    /// Fault-site population (bits × cycles) for margin reporting.
    pub fn population(&self) -> u64 {
        self.bit_population.saturating_mul(self.golden_cycles.max(1))
    }

    /// Drive the unskipped masks through the matching worker pool — the
    /// workload-dispatching face of [`drive_masks`]/[`drive_dsa_masks`].
    pub fn drive(
        &self,
        cc: &CampaignConfig,
        skip: &[bool],
        cancel: Option<&AtomicBool>,
        sink: &(dyn Fn(usize, RunRecord) + Sync),
    ) -> DriveOutcome {
        match &self.golden {
            PreparedGolden::Cpu { golden, ladder } => drive_masks(
                golden,
                ladder.as_ref(),
                &self.masks,
                cc,
                self.population(),
                skip,
                cancel,
                sink,
            ),
            PreparedGolden::Dsa { golden, ladder } => {
                let ladder_ref = (!ladder.is_empty()).then_some(ladder);
                drive_dsa_masks(golden, self.target, ladder_ref, &self.masks, cc, skip, cancel, sink)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dsa_spec_text() -> &'static str {
        r#"{"type":"campaign_spec","schema_version":1,"id":"fft-a",
            "workload":{"kind":"dsa","design":"fft"},"faults":8,"seed":7}"#
    }

    #[test]
    fn parse_applies_defaults_and_validates() {
        let spec = CampaignSpec::parse(dsa_spec_text()).unwrap();
        assert_eq!(spec.id, "fft-a");
        assert_eq!(
            spec.workload,
            Workload::Dsa { design: "FFT".into(), component: "IMG".into(), fus: 4 }
        );
        assert_eq!(spec.n_faults, 8);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.ladder_rungs, 8);
        assert_eq!(spec.reset_mode, ResetMode::Dirty);
    }

    #[test]
    fn canonical_roundtrip_and_digest_stability() {
        let spec = CampaignSpec::parse(dsa_spec_text()).unwrap();
        let rendered = spec.render();
        let back = CampaignSpec::parse(&rendered).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.digest(), back.digest());
        // Formatting differences don't change the digest; knob changes do.
        let spaced = rendered.replace(":", ": ");
        assert_eq!(CampaignSpec::parse(&spaced).unwrap().digest(), spec.digest());
        let mut other = spec.clone();
        other.seed ^= 1;
        assert_ne!(other.digest(), spec.digest());
    }

    #[test]
    fn rejects_bad_versions_ids_and_workloads() {
        let no_version = r#"{"type":"campaign_spec","id":"x","workload":{"kind":"dsa","design":"FFT"}}"#;
        assert!(CampaignSpec::parse(no_version).unwrap_err().contains("schema_version"));
        let future = r#"{"type":"campaign_spec","schema_version":99,"id":"x","workload":{"kind":"dsa","design":"FFT"}}"#;
        assert!(CampaignSpec::parse(future).unwrap_err().contains("99"));
        let bad_id = r#"{"type":"campaign_spec","schema_version":1,"id":"a/b","workload":{"kind":"dsa","design":"FFT"}}"#;
        assert!(CampaignSpec::parse(bad_id).unwrap_err().contains("bad campaign id"));
        let bad_design = r#"{"type":"campaign_spec","schema_version":1,"id":"x","workload":{"kind":"dsa","design":"NOPE"}}"#;
        assert!(CampaignSpec::parse(bad_design).unwrap_err().contains("NOPE"));
        let bad_bench = r#"{"type":"campaign_spec","schema_version":1,"id":"x","workload":{"kind":"cpu","bench":"nope"}}"#;
        assert!(CampaignSpec::parse(bad_bench).unwrap_err().contains("nope"));
        let bad_comp = r#"{"type":"campaign_spec","schema_version":1,"id":"x","workload":{"kind":"dsa","design":"FFT","component":"NOPE"}}"#;
        assert!(CampaignSpec::parse(bad_comp).unwrap_err().contains("NOPE"));
    }

    #[test]
    fn cpu_spec_roundtrip() {
        let text = r#"{"type":"campaign_spec","schema_version":1,"id":"c1",
            "workload":{"kind":"cpu","bench":"crc32","isa":"x86"},"target":"l1d",
            "faults":5,"fault_kind":"permanent","hvf":true,"taint":true,"fast_prep":true}"#;
        let spec = CampaignSpec::parse(text).unwrap();
        assert_eq!(spec.workload, Workload::Cpu { bench: "crc32".into(), isa: Isa::X86 });
        assert_eq!(spec.cpu_target, Target::L1D);
        assert_eq!(spec.kind, FaultKind::Permanent);
        assert!(spec.collect_hvf && spec.taint && spec.fast_prep);
        assert_eq!(CampaignSpec::parse(&spec.render()).unwrap(), spec);
    }
}
