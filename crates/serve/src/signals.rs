//! Graceful-shutdown signal handling without a libc dependency (the
//! workspace is offline): raw FFI to `signal(2)` installs an
//! async-signal-safe handler that stores into a process-wide flag.
//! Campaign drivers poll the flag via their `cancel` hook — workers stop
//! claiming new runs, in-flight runs complete and land in the journal,
//! and partial exports are flushed before exit.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;

    extern "C" {
        // `signal` is in every libc the platform links anyway; binding it
        // directly avoids a crate dependency. The handler only does an
        // atomic store, which is async-signal-safe.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: c_int) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Install SIGINT/SIGTERM handlers (idempotent) and return the shutdown
/// flag they trip. On non-unix targets the flag simply never trips.
pub fn install_shutdown_handler() -> &'static AtomicBool {
    #[cfg(unix)]
    unix::install();
    &SHUTDOWN
}

/// The process-wide shutdown flag (without installing handlers).
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// True once a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn handler_trips_flag_on_raised_signal() {
        extern "C" {
            fn raise(sig: std::os::raw::c_int) -> std::os::raw::c_int;
        }
        let flag = install_shutdown_handler();
        assert!(!flag.load(Ordering::SeqCst) || cfg!(not(unix)));
        unsafe { raise(unix::SIGTERM) };
        assert!(shutdown_requested());
        // Reset so other tests in this process see a clean flag.
        flag.store(false, Ordering::SeqCst);
    }
}
