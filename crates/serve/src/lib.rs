//! # marvel-serve
//!
//! Campaign-as-a-service on top of the `marvel-core` fault-injection
//! engine: a long-running process that accepts versioned JSON
//! [`spec::CampaignSpec`]s, shards each campaign's run-index range across
//! an in-process worker pool with fair round-robin scheduling between
//! campaigns, journals every completed run incrementally with fsync'd
//! watermarks, and streams live progress and metrics over a
//! line-delimited TCP protocol.
//!
//! The resilience story mirrors the campaigns it runs: because per-mask
//! records are deterministic (the invariant the differential tests pin),
//! a service killed at any point resumes each campaign from its journal
//! and produces byte-identical exports to an uninterrupted run.
//!
//! Module map:
//!
//! - [`spec`] — schema-versioned campaign specs (parse/render/digest) and
//!   prepared campaign state (golden, ladder, masks, drive dispatch);
//! - [`journal`] — the JSONL run journal with watermark fsync, torn-tail
//!   recovery and compact-on-open;
//! - [`server`] — the service itself (scheduler, worker pool, wire
//!   protocol, spool, crash recovery);
//! - [`client`] — line-protocol client helpers for the CLI verbs;
//! - [`exports`] — artifact rendering (records/summary/attribution);
//! - [`signals`] — SIGINT/SIGTERM → graceful-shutdown flag;
//! - [`json`] — the minimal JSON parser backing specs and journals.

pub mod client;
pub mod exports;
pub mod journal;
pub mod json;
pub mod server;
pub mod signals;
pub mod spec;

pub use client::{read_addr_file, request, request_text, wait_for_addr, watch};
pub use exports::{render_records_csv, render_records_jsonl, render_summary_csv, write_exports};
pub use journal::{encode_record, read_journal, Journal, FLUSH_EVERY};
pub use server::{serve, spool_spec, ServeConfig};
pub use signals::{install_shutdown_handler, shutdown_flag, shutdown_requested};
pub use spec::{CampaignSpec, Prepared, Workload, SPEC_SCHEMA_VERSION};
