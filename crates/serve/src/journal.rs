//! The run journal: an append-only JSONL file that makes campaigns
//! survive kills. Every completed [`RunRecord`] is appended as one line;
//! every `flush_every` records a watermark line is written and the file
//! is fsync'd, bounding loss to the unsynced tail. Because records are
//! per-mask deterministic (independent of worker count, reset mode,
//! ladder and interruption point), a resumed campaign re-derives the
//! mask list from the spec, skips the journaled indices, and the merged
//! record set is bit-identical to an uninterrupted run.
//!
//! Format (schema-versioned like the telemetry exports):
//!
//! ```text
//! {"type":"journal","schema_version":1,"campaign":"id","spec_digest":"16hex","runs":N}
//! {"type":"run","idx":3,"effect":"Sdc","cycles":812345,"early":false,"converged":false}
//! {"type":"watermark","done":32}
//! ...
//! ```
//!
//! Resume tolerates exactly one torn line at the tail (a kill mid-write);
//! any earlier corruption, a header mismatch (campaign id, spec digest,
//! run count, schema version) or a duplicate/out-of-range index fails
//! loudly — a journal must never be silently reinterpreted.

use crate::json::{parse, Json};
use crate::spec::SPEC_SCHEMA_VERSION;
use marvel_core::{FaultEffect, HvfEffect, RunRecord};
use marvel_telemetry::{json_string, Attribution, Histogram, PhaseId, SpanCollector};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Records between fsync'd watermarks. Small enough that a SIGKILL loses
/// at most a batch of cheap re-runnable injections, large enough that
/// the fsync cost disappears under the simulation cost.
pub const FLUSH_EVERY: usize = 32;

/// Trap tags are `&'static str` in [`RunRecord`]; re-intern known tags on
/// journal read-back so resumed records compare identical to fresh ones.
fn intern_trap(tag: &str) -> &'static str {
    for known in [
        "illegal-instruction",
        "mem-fault",
        "misaligned",
        "div-by-zero",
        "fetch-fault",
        "watchdog",
        "accel-error",
        "dma-error",
    ] {
        if tag == known {
            return known;
        }
    }
    // Unknown tag (journal from a newer build): leak it. Journals are
    // read once per resume, so this cannot accumulate.
    Box::leak(tag.to_string().into_boxed_str())
}

fn effect_name(e: FaultEffect) -> &'static str {
    match e {
        FaultEffect::Masked => "Masked",
        FaultEffect::Sdc => "Sdc",
        FaultEffect::Crash => "Crash",
    }
}

fn parse_effect(s: &str) -> Result<FaultEffect, String> {
    match s {
        "Masked" => Ok(FaultEffect::Masked),
        "Sdc" => Ok(FaultEffect::Sdc),
        "Crash" => Ok(FaultEffect::Crash),
        other => Err(format!("unknown effect {other:?}")),
    }
}

/// Encode one record as a journal/export line. Forensics timelines are
/// deliberately not journaled (they are debugging artifacts, large, and
/// only retained for SDC/Crash runs) — the resume invariant covers the
/// classification surface: effect, HVF, trap, flags, cycles, attribution.
pub fn encode_record(idx: usize, rec: &RunRecord) -> String {
    let mut line = format!(
        "{{\"type\":\"run\",\"idx\":{idx},\"effect\":\"{}\",\"cycles\":{},\"early\":{},\"converged\":{}",
        effect_name(rec.effect),
        rec.cycles,
        rec.early_terminated,
        rec.converged
    );
    if let Some(h) = rec.hvf {
        line.push_str(&format!(
            ",\"hvf\":\"{}\"",
            match h {
                HvfEffect::Masked => "Masked",
                HvfEffect::Corruption => "Corruption",
            }
        ));
    }
    if let Some(t) = rec.trap {
        line.push_str(&format!(",\"trap\":{}", json_string(t)));
    }
    if let Some(a) = &rec.attribution {
        line.push_str(&format!(
            ",\"attr\":{{\"arch\":{},\"structure\":{},\"cycle\":{},\"hops\":{}}}",
            a.reached_arch,
            json_string(&a.structure),
            a.cycle,
            a.hops
        ));
    }
    line.push('}');
    line
}

/// Decode one `"type":"run"` line back into its index and record.
pub fn decode_record(v: &Json) -> Result<(usize, RunRecord), String> {
    let idx = v.get("idx").and_then(Json::as_usize).ok_or("run line has no idx")?;
    let effect = parse_effect(v.get("effect").and_then(Json::as_str).ok_or("run line has no effect")?)?;
    let cycles = v.get("cycles").and_then(Json::as_u64).ok_or("run line has no cycles")?;
    let early_terminated = v.get("early").and_then(Json::as_bool).unwrap_or(false);
    let converged = v.get("converged").and_then(Json::as_bool).unwrap_or(false);
    let hvf = match v.get("hvf").and_then(Json::as_str) {
        None => None,
        Some("Masked") => Some(HvfEffect::Masked),
        Some("Corruption") => Some(HvfEffect::Corruption),
        Some(other) => return Err(format!("unknown hvf {other:?}")),
    };
    let trap = v.get("trap").and_then(Json::as_str).map(intern_trap);
    let attribution = match v.get("attr") {
        None => None,
        Some(a) => Some(Attribution {
            reached_arch: a.get("arch").and_then(Json::as_bool).ok_or("attr has no arch")?,
            structure: a
                .get("structure")
                .and_then(Json::as_str)
                .ok_or("attr has no structure")?
                .to_string(),
            cycle: a.get("cycle").and_then(Json::as_u64).ok_or("attr has no cycle")?,
            hops: a.get("hops").and_then(Json::as_usize).ok_or("attr has no hops")?,
        }),
    };
    Ok((
        idx,
        RunRecord {
            effect,
            hvf,
            trap,
            early_terminated,
            converged,
            cycles,
            forensics: None,
            attribution,
        },
    ))
}

fn header_line(campaign: &str, digest: &str, runs: usize) -> String {
    format!(
        "{{\"type\":\"journal\",\"schema_version\":{SPEC_SCHEMA_VERSION},\"campaign\":{},\"spec_digest\":{},\"runs\":{runs}}}",
        json_string(campaign),
        json_string(digest)
    )
}

/// Parse journal text, validating the header against the expected
/// identity. Returns one slot per run index (Some = journaled). The last
/// line may be torn (kill mid-write) and is then ignored; everything
/// before it must parse.
pub fn read_journal(
    text: &str,
    campaign: &str,
    digest: &str,
    runs: usize,
) -> Result<Vec<Option<RunRecord>>, String> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return Err("journal is empty (no header)".into());
    }
    let header = parse(lines[0]).map_err(|e| format!("journal header unreadable: {e}"))?;
    if header.get("type").and_then(Json::as_str) != Some("journal") {
        return Err("journal first line is not a journal header".into());
    }
    let version =
        header.get("schema_version").and_then(Json::as_u64).ok_or("journal has no schema_version")?;
    if version as u32 != SPEC_SCHEMA_VERSION {
        return Err(format!(
            "unknown journal schema_version {version} (this reader understands {SPEC_SCHEMA_VERSION})"
        ));
    }
    let jc = header.get("campaign").and_then(Json::as_str).unwrap_or("");
    if jc != campaign {
        return Err(format!("journal belongs to campaign {jc:?}, expected {campaign:?}"));
    }
    let jd = header.get("spec_digest").and_then(Json::as_str).unwrap_or("");
    if jd != digest {
        return Err(format!(
            "journal spec digest {jd} does not match the submitted spec ({digest}); \
             refusing to resume a different campaign definition"
        ));
    }
    let jr = header.get("runs").and_then(Json::as_usize).unwrap_or(0);
    if jr != runs {
        return Err(format!("journal expects {jr} runs, spec derives {runs}"));
    }
    let mut slots: Vec<Option<RunRecord>> = vec![None; runs];
    for (n, line) in lines.iter().enumerate().skip(1) {
        let last = n == lines.len() - 1;
        let v = match parse(line) {
            Ok(v) => v,
            // Torn tail from a kill mid-write: drop it. The run it held
            // simply re-executes, deterministically.
            Err(_) if last => break,
            Err(e) => return Err(format!("journal line {} corrupt: {e}", n + 1)),
        };
        match v.get("type").and_then(Json::as_str) {
            Some("run") => {
                let (idx, rec) = match decode_record(&v) {
                    Ok(r) => r,
                    Err(_) if last => break,
                    Err(e) => return Err(format!("journal line {}: {e}", n + 1)),
                };
                if idx >= runs {
                    return Err(format!("journal line {}: idx {idx} out of range", n + 1));
                }
                if slots[idx].is_some() {
                    return Err(format!("journal line {}: duplicate idx {idx}", n + 1));
                }
                slots[idx] = Some(rec);
            }
            Some("watermark") => {}
            Some(other) => return Err(format!("journal line {}: unknown type {other:?}", n + 1)),
            None if last => break,
            None => return Err(format!("journal line {} has no type", n + 1)),
        }
    }
    Ok(slots)
}

/// Append-side handle on a campaign journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Run lines written across the journal's whole life (including
    /// recovered ones).
    done: usize,
    /// Lines appended since the last fsync'd watermark.
    unsynced: usize,
    /// Span collector for `JournalAppend`/`JournalFsync` phase attribution
    /// (disabled by default; wired by the service per campaign).
    spans: SpanCollector,
    /// Per-fsync latency histogram (`journal.fsync_ns` on the campaign
    /// registry) — the durability half of "where do campaign cycles go".
    fsync_hist: Option<Arc<Histogram>>,
}

impl Journal {
    /// Create (or resume) the journal at `path` for the given campaign
    /// identity. If the file exists, its records are recovered and the
    /// file is compacted — rewritten as header + recovered records +
    /// watermark — so a torn tail never corrupts subsequent appends.
    /// Returns the handle plus one slot per run index.
    #[allow(clippy::type_complexity)]
    pub fn open(
        path: &Path,
        campaign: &str,
        digest: &str,
        runs: usize,
    ) -> Result<(Journal, Vec<Option<RunRecord>>), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
        }
        let recovered = match std::fs::read_to_string(path) {
            Ok(text) => read_journal(&text, campaign, digest, runs)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => vec![None; runs],
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        };
        // Compact rewrite via a temp file + atomic rename: the journal on
        // disk is never observable in a half-rewritten state.
        let tmp = path.with_extension("jsonl.tmp");
        let mut body = header_line(campaign, digest, runs);
        body.push('\n');
        let mut done = 0;
        for (idx, slot) in recovered.iter().enumerate() {
            if let Some(rec) = slot {
                body.push_str(&encode_record(idx, rec));
                body.push('\n');
                done += 1;
            }
        }
        body.push_str(&format!("{{\"type\":\"watermark\",\"done\":{done}}}\n"));
        {
            let mut f = File::create(&tmp).map_err(|e| e.to_string())?;
            f.write_all(body.as_bytes()).map_err(|e| e.to_string())?;
            f.sync_data().map_err(|e| e.to_string())?;
        }
        std::fs::rename(&tmp, path).map_err(|e| e.to_string())?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                done,
                unsynced: 0,
                spans: SpanCollector::disabled(),
                fsync_hist: None,
            },
            recovered,
        ))
    }

    /// Attach phase spans and an fsync-latency histogram. Purely
    /// observational: appends and flushes behave identically either way.
    pub fn set_profiling(&mut self, spans: SpanCollector, fsync_hist: Option<Arc<Histogram>>) {
        self.spans = spans;
        self.fsync_hist = fsync_hist;
    }

    /// Append one completed run. Every [`FLUSH_EVERY`] appends, a
    /// watermark is written and the file is fsync'd.
    pub fn append(&mut self, idx: usize, rec: &RunRecord) -> Result<(), String> {
        let spans = self.spans.clone();
        spans
            .time(PhaseId::JournalAppend, || {
                let mut line = encode_record(idx, rec);
                line.push('\n');
                self.file.write_all(line.as_bytes())
            })
            .map_err(|e| self.io_err(e))?;
        self.done += 1;
        self.unsynced += 1;
        if self.unsynced >= FLUSH_EVERY {
            self.flush()?;
        }
        Ok(())
    }

    /// Write a watermark and fsync. Idempotent; called on batch
    /// boundaries, graceful shutdown and campaign completion.
    pub fn flush(&mut self) -> Result<(), String> {
        let spans = self.spans.clone();
        spans
            .time(PhaseId::JournalFsync, || {
                let line = format!("{{\"type\":\"watermark\",\"done\":{}}}\n", self.done);
                self.file.write_all(line.as_bytes())?;
                let t0 = Instant::now();
                self.file.sync_data()?;
                if let Some(h) = &self.fsync_hist {
                    h.record(t0.elapsed().as_nanos() as u64);
                }
                Ok::<(), std::io::Error>(())
            })
            .map_err(|e| self.io_err(e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Run lines in the journal (recovered + appended).
    pub fn done(&self) -> usize {
        self.done
    }

    fn io_err(&self, e: std::io::Error) -> String {
        format!("journal {} write failed: {e}", self.path.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(effect: FaultEffect, cycles: u64) -> RunRecord {
        RunRecord {
            effect,
            hvf: None,
            trap: (effect == FaultEffect::Crash).then_some("watchdog"),
            early_terminated: false,
            converged: false,
            cycles,
            forensics: None,
            attribution: None,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marvel-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn record_roundtrip_including_optionals() {
        let mut r = rec(FaultEffect::Crash, 12345);
        r.hvf = Some(HvfEffect::Corruption);
        r.attribution =
            Some(Attribution { reached_arch: true, structure: "rob".into(), cycle: 99, hops: 3 });
        let line = encode_record(7, &r);
        let (idx, back) = decode_record(&parse(&line).unwrap()).unwrap();
        assert_eq!(idx, 7);
        assert_eq!(back.effect, r.effect);
        assert_eq!(back.hvf, r.hvf);
        assert_eq!(back.trap, r.trap);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.attribution, r.attribution);
    }

    #[test]
    fn create_append_resume() {
        let path = tmpdir("car").join("j.jsonl");
        std::fs::remove_file(&path).ok();
        let (mut j, slots) = Journal::open(&path, "c1", "feedface00000000", 4).unwrap();
        assert!(slots.iter().all(Option::is_none));
        j.append(2, &rec(FaultEffect::Sdc, 10)).unwrap();
        j.append(0, &rec(FaultEffect::Masked, 20)).unwrap();
        j.flush().unwrap();
        drop(j);
        let (j2, slots) = Journal::open(&path, "c1", "feedface00000000", 4).unwrap();
        assert_eq!(j2.done(), 2);
        assert!(slots[0].is_some() && slots[2].is_some());
        assert!(slots[1].is_none() && slots[3].is_none());
        assert_eq!(slots[2].as_ref().unwrap().effect, FaultEffect::Sdc);
    }

    #[test]
    fn torn_tail_is_dropped_mid_corruption_is_fatal() {
        let path = tmpdir("torn").join("j.jsonl");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path, "c", "00000000000000aa", 8).unwrap();
        j.append(0, &rec(FaultEffect::Masked, 5)).unwrap();
        j.flush().unwrap();
        drop(j);
        // Simulate a kill mid-append: half a JSON line at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"run\",\"idx\":1,\"eff");
        std::fs::write(&path, &text).unwrap();
        let (j2, slots) = Journal::open(&path, "c", "00000000000000aa", 8).unwrap();
        assert_eq!(j2.done(), 1);
        assert!(slots[0].is_some() && slots[1].is_none());
        drop(j2);
        // Corruption before the tail must fail loudly.
        let good = std::fs::read_to_string(&path).unwrap();
        let broken = good.replacen("\"type\":\"run\"", "\"type\":\"rum\"", 1);
        std::fs::write(&path, &broken).unwrap();
        assert!(Journal::open(&path, "c", "00000000000000aa", 8).is_err());
    }

    #[test]
    fn identity_mismatches_fail_loudly() {
        let path = tmpdir("ident").join("j.jsonl");
        std::fs::remove_file(&path).ok();
        let (j, _) = Journal::open(&path, "c1", "1111111111111111", 4).unwrap();
        drop(j);
        let wrong_digest = Journal::open(&path, "c1", "2222222222222222", 4);
        assert!(wrong_digest.unwrap_err().contains("digest"));
        let wrong_runs = Journal::open(&path, "c1", "1111111111111111", 5);
        assert!(wrong_runs.unwrap_err().contains("runs"));
        let wrong_id = Journal::open(&path, "c2", "1111111111111111", 4);
        assert!(wrong_id.unwrap_err().contains("campaign"));
        // Future schema version.
        let text = std::fs::read_to_string(&path).unwrap().replacen(
            "\"schema_version\":1",
            "\"schema_version\":9",
            1,
        );
        std::fs::write(&path, &text).unwrap();
        assert!(Journal::open(&path, "c1", "1111111111111111", 4)
            .unwrap_err()
            .contains("schema_version 9"));
    }

    #[test]
    fn profiling_attributes_appends_and_fsyncs() {
        let path = tmpdir("prof").join("j.jsonl");
        std::fs::remove_file(&path).ok();
        let (mut j, _) = Journal::open(&path, "c", "00000000000000bb", 64).unwrap();
        let spans = SpanCollector::enabled();
        let hist = Arc::new(Histogram::new());
        j.set_profiling(spans.clone(), Some(hist.clone()));
        for i in 0..40 {
            j.append(i, &rec(FaultEffect::Masked, 1)).unwrap();
        }
        j.flush().unwrap();
        let rep = spans.report();
        assert_eq!(rep.calls(PhaseId::JournalAppend), 40);
        // 40 appends cross one FLUSH_EVERY watermark, plus the explicit flush.
        assert_eq!(rep.calls(PhaseId::JournalFsync), 2);
        assert_eq!(hist.snapshot().count, 2);
    }
}
