//! Minimal JSON parsing for the service's wire formats (specs, journals,
//! protocol lines). The workspace is offline — no serde — and the
//! framework already renders its export JSON by hand, so the service
//! parses the same way: a small recursive-descent reader over the full
//! grammar, with integers kept exact (`i128` covers both `u64` seeds and
//! negative values) instead of round-tripping through `f64`.

/// A parsed JSON value. Object keys keep insertion order so canonical
/// re-rendering (spec digests) is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Any number without `.`/`e` — exact, so `u64::MAX` seeds survive.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON value from `text`, rejecting trailing garbage
/// (other than whitespace). Errors carry a byte offset for diagnostics.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            s.parse::<f64>().map(Json::Float).map_err(|_| format!("bad number {s:?}"))
        } else {
            s.parse::<i128>().map(Json::Int).map_err(|_| format!("bad number {s:?}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else { return Err("unterminated string".into()) };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else { return Err("unterminated escape".into()) };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\u`-escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| format!("bad \\u escape at {}", self.pos))?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode from the byte position: multibyte UTF-8
                    // sequences arrive as raw bytes.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":1,"b":[true,null,-2.5],"c":{"d":"x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2], Json::Float(-2.5));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn big_u64_integers_are_exact() {
        let v = parse(&format!("{{\"seed\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn rejects_torn_and_trailing_input() {
        assert!(parse("{\"a\":1").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("").is_err());
    }
}
