//! Thin client for the line-delimited service protocol: connect, send
//! one request line, read one (or, for WATCH, many) JSON response lines.
//! Used by the `marvel submit`/`status`/`watch` CLI verbs and the
//! integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn addr_file(root: &Path) -> PathBuf {
    root.join("_serve").join("addr")
}

/// Record the service's actual listen address under the artifact root so
/// clients can find it (the service binds port 0 by default).
pub fn write_addr_file(root: &Path, addr: &str) -> Result<(), String> {
    let path = addr_file(root);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    std::fs::write(&path, format!("{addr}\n")).map_err(|e| e.to_string())
}

/// Read the service address from the artifact root's addr file.
pub fn read_addr_file(root: &Path) -> Result<String, String> {
    let path = addr_file(root);
    std::fs::read_to_string(&path).map(|s| s.trim().to_string()).map_err(|e| {
        format!("no service address at {} ({e}); is `marvel serve` running?", path.display())
    })
}

/// Wait for the addr file to appear (service startup race in tests and
/// scripted submissions) and return its contents.
pub fn wait_for_addr(root: &Path, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(addr) = read_addr_file(root) {
            if !addr.is_empty() {
                return Ok(addr);
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "service address did not appear under {} within {timeout:?}",
                root.display()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Send one request line and return the first response line.
pub fn request(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    writeln!(stream, "{line}").map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|e| e.to_string())?;
    if response.is_empty() {
        return Err("service closed the connection without responding".into());
    }
    Ok(response.trim_end().to_string())
}

/// Send one request line and read the response to EOF — for multi-line
/// responses (`METRICS <id> prom`). Shutting down the write half tells
/// the service no further requests follow, so it closes after replying.
pub fn request_text(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).map_err(|e| e.to_string())?;
    writeln!(stream, "{line}").map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    stream.shutdown(Shutdown::Write).map_err(|e| e.to_string())?;
    let mut text = String::new();
    BufReader::new(stream).read_to_string(&mut text).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err("service closed the connection without responding".into());
    }
    Ok(text)
}

/// Stream a WATCH subscription, invoking `on_line` per progress line
/// until the service closes the stream or the callback returns `false`.
pub fn watch(addr: &str, id: &str, mut on_line: impl FnMut(&str) -> bool) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    writeln!(stream, "WATCH {id}").map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        if !on_line(line.trim_end()) {
            break;
        }
    }
    Ok(())
}
