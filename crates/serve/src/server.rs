//! The campaign service: a long-running process that accepts versioned
//! [`CampaignSpec`]s (over a line-delimited TCP protocol or dropped into
//! a spool directory), schedules them fairly across an in-process worker
//! pool by sharding each campaign's run-index range, journals every
//! completed run with fsync'd watermarks, and rebuilds exports from the
//! journal — so a SIGKILLed service resumes every in-flight campaign
//! instead of restarting it.
//!
//! Layout under the artifact root (default `results/`):
//!
//! ```text
//! results/
//!   _serve/addr            actual listen address (host:port), for clients
//!   _serve/spool/*.json    drop-in spec submissions (polled)
//!   <campaign-id>/
//!     spec.json            canonical spec (identity; enables restart recovery)
//!     journal.jsonl        run journal (see crate::journal)
//!     records.csv|jsonl    per-run exports, written at completion
//!     summary.csv          campaign summary row
//!     attribution.*        taint attribution tables (when collected)
//!     DONE                 completion marker
//! ```
//!
//! Wire protocol — one request line, one (or for WATCH, many) response
//! lines, all JSON:
//!
//! ```text
//! PING                      → {"ok":true,"type":"pong"}
//! SUBMIT {spec json}        → {"ok":true,"id":...,"digest":...} | {"ok":false,"error":...}
//! STATUS [id]               → status object (or list of them)
//! METRICS <id>              → one-line registry snapshot + per-phase wall-time totals
//! METRICS <id> prom         → multi-line Prometheus text exposition (read to EOF)
//! PROFILE [id]              → one-line phase profile (campaign, or the service
//!                             scheduler itself when no id is given)
//! WATCH <id>                → progress lines until the campaign settles
//! ```

use crate::client::write_addr_file;
use crate::exports::write_exports;
use crate::journal::Journal;
use crate::signals::install_shutdown_handler;
use crate::spec::{CampaignSpec, Prepared};
use marvel_core::{error_margin, FaultEffect, RunRecord, TelemetryConfig};
use marvel_telemetry::{
    json_string, render_phase_object, render_prometheus, render_snapshot_line, PhaseId, PhaseReport,
    ProgressMeter, Registry, SpanCollector, TRACE_SCHEMA_VERSION,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Service configuration (the `marvel serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Artifact root; every campaign gets `root/<id>/`.
    pub root: PathBuf,
    /// Listen address; port 0 picks a free port (written to the addr file).
    pub addr: String,
    /// Worker threads (0 = all cores).
    pub workers: usize,
    /// Runs per scheduling shard. Small shards interleave campaigns more
    /// fairly; large shards amortise per-shard reset cost.
    pub shard: usize,
    /// Spool/scheduler poll interval.
    pub poll_ms: u64,
    /// Exit once at least one campaign is known and all are settled
    /// (Done/Failed). Used by restart-recovery harnesses and CI.
    pub once: bool,
    /// Per-run sleep in the record sink — a test hook (set via
    /// `MARVEL_SERVE_THROTTLE_MS`) that slows campaigns down enough to
    /// kill the service mid-flight deterministically.
    pub throttle_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            root: PathBuf::from("results"),
            addr: "127.0.0.1:0".into(),
            workers: 0,
            shard: 32,
            poll_ms: 50,
            once: false,
            throttle_ms: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Preparing,
    Running,
    Done,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Preparing => "preparing",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }

    fn settled(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed)
    }
}

/// Mutable half of a campaign, behind its own lock so shards of different
/// campaigns never contend.
struct CampState {
    phase: Phase,
    error: Option<String>,
    prepared: Option<Arc<Prepared>>,
    journal: Option<Journal>,
    /// Per-index completion (journaled) flags and record cache (exports
    /// are rebuilt from this at completion, in index order).
    done_flags: Vec<bool>,
    records: Vec<Option<RunRecord>>,
    done: usize,
    sdc: u64,
    crash: u64,
    early: u64,
    /// Pending run indices not yet handed to a shard, in index order
    /// (shards are index ranges of this list).
    pending: Vec<usize>,
    /// Next position in `pending` to shard out.
    cursor: usize,
    /// Indices currently claimed by in-flight shards.
    in_flight: usize,
    meter: Option<ProgressMeter>,
}

struct Campaign {
    spec: CampaignSpec,
    digest: String,
    dir: PathBuf,
    total: usize,
    registry: Registry,
    /// Per-campaign phase spans (golden prep, sim steps, journal I/O …);
    /// always on — the per-run cost is two clock reads per phase.
    spans: SpanCollector,
    state: Mutex<CampState>,
}

impl Campaign {
    fn new(spec: CampaignSpec, dir: PathBuf, phase: Phase) -> Campaign {
        let total = spec.n_faults;
        let digest = spec.digest();
        Campaign {
            spec,
            digest,
            dir,
            total,
            registry: Registry::new(),
            spans: SpanCollector::enabled(),
            state: Mutex::new(CampState {
                phase,
                error: None,
                prepared: None,
                journal: None,
                done_flags: vec![false; total],
                records: vec![None; total],
                done: if phase == Phase::Done { total } else { 0 },
                sdc: 0,
                crash: 0,
                early: 0,
                pending: Vec::new(),
                cursor: 0,
                in_flight: 0,
                meter: None,
            }),
        }
    }

    fn status_line(&self) -> String {
        let st = self.state.lock().unwrap();
        format!(
            "{{\"type\":\"status\",\"id\":{},\"phase\":\"{}\",\"done\":{},\"total\":{},\"sdc\":{},\"crash\":{},\"early\":{},\"digest\":{},\"detail\":{}{}}}",
            json_string(&self.spec.id),
            st.phase.name(),
            st.done,
            self.total,
            st.sdc,
            st.crash,
            st.early,
            json_string(&self.digest),
            json_string(&self.spec.describe()),
            match &st.error {
                Some(e) => format!(",\"error\":{}", json_string(e)),
                None => String::new(),
            }
        )
    }

    fn progress_line(&self) -> String {
        let st = self.state.lock().unwrap();
        match (&st.meter, &st.prepared) {
            (Some(m), Some(p)) => {
                let margin = error_margin(st.done.max(1), p.population(), 0.95);
                m.json_line(st.done as u64, st.sdc, st.crash, st.early, margin)
            }
            _ => {
                drop(st);
                self.status_line()
            }
        }
    }
}

/// One-line phase profile for the `PROFILE` verb: wall clock, attributed
/// self time and the per-phase breakdown, schema-versioned like every
/// other protocol line.
fn profile_line(id: &str, rep: &PhaseReport) -> String {
    format!(
        "{{\"type\":\"profile\",\"schema_version\":{TRACE_SCHEMA_VERSION},\"id\":{},\"wall_us\":{},\"attributed_us\":{},\"phases\":{}}}",
        json_string(id),
        rep.wall_us,
        rep.self_total_us(),
        render_phase_object(rep)
    )
}

/// One claimable unit of work.
enum Unit {
    /// Golden prep + ladder + masks + journal recovery.
    Prep(Arc<Campaign>),
    /// Drive these run indices and journal the records.
    Shard(Arc<Campaign>, Vec<usize>),
}

struct Server {
    cfg: ServeConfig,
    campaigns: Mutex<Vec<Arc<Campaign>>>,
    /// Round-robin cursor for fair scheduling across campaigns.
    rr: AtomicUsize,
    /// Graceful-shutdown flag (SIGINT/SIGTERM); doubles as the campaign
    /// drivers' cancel hook.
    shutdown: &'static AtomicBool,
    /// Internal stop for worker threads (set on shutdown or once-exit).
    stop: AtomicBool,
    /// Service-level spans: scheduler idle time (a campaign's collector
    /// cannot own it — idle belongs to no campaign). `PROFILE` with no id
    /// reads this.
    spans: SpanCollector,
}

impl Server {
    fn find(&self, id: &str) -> Option<Arc<Campaign>> {
        self.campaigns.lock().unwrap().iter().find(|c| c.spec.id == id).cloned()
    }

    /// Register a submitted spec. Idempotent for an identical (id,
    /// digest) pair — resubmitting a known campaign (or one recovered
    /// from disk) acks instead of erroring, so clients can blindly
    /// re-submit after a service restart.
    fn submit(&self, text: &str) -> Result<String, String> {
        let spec = CampaignSpec::parse(text)?;
        let digest = spec.digest();
        if let Some(existing) = self.find(&spec.id) {
            if existing.digest != digest {
                return Err(format!(
                    "campaign id {:?} already exists with a different spec \
                     (digest {} vs submitted {digest})",
                    spec.id, existing.digest
                ));
            }
            return Ok(format!(
                "{{\"ok\":true,\"id\":{},\"digest\":{},\"known\":true}}",
                json_string(&spec.id),
                json_string(&digest)
            ));
        }
        let dir = self.cfg.root.join(&spec.id);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("spec.json"), format!("{}\n", spec.render()))
            .map_err(|e| e.to_string())?;
        let id = spec.id.clone();
        let campaign = Arc::new(Campaign::new(spec, dir, Phase::Queued));
        self.campaigns.lock().unwrap().push(campaign);
        Ok(format!(
            "{{\"ok\":true,\"id\":{},\"digest\":{},\"known\":false}}",
            json_string(&id),
            json_string(&digest)
        ))
    }

    /// Recover campaigns from `root/*/spec.json` at startup. Completed
    /// campaigns (DONE marker) register as Done; everything else queues
    /// and resumes from its journal during prep.
    fn recover_from_disk(&self) {
        let Ok(entries) = std::fs::read_dir(&self.cfg.root) else { return };
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("spec.json").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Ok(text) = std::fs::read_to_string(dir.join("spec.json")) else { continue };
            match CampaignSpec::parse(text.trim()) {
                Ok(spec) => {
                    if self.find(&spec.id).is_some() {
                        continue;
                    }
                    let phase = if dir.join("DONE").is_file() { Phase::Done } else { Phase::Queued };
                    eprintln!(
                        "serve: recovered campaign {} from {} ({})",
                        spec.id,
                        dir.display(),
                        phase.name()
                    );
                    self.campaigns.lock().unwrap().push(Arc::new(Campaign::new(spec, dir, phase)));
                }
                Err(e) => eprintln!("serve: ignoring {}: {e}", dir.display()),
            }
        }
    }

    /// Poll the spool directory for dropped spec files. Accepted files
    /// are renamed to `<name>.accepted`; rejected ones to `<name>.rejected`
    /// with the error alongside.
    fn scan_spool(&self) {
        let spool = self.cfg.root.join("_serve").join("spool");
        let Ok(entries) = std::fs::read_dir(&spool) else { return };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        files.sort();
        for path in files {
            let Ok(text) = std::fs::read_to_string(&path) else { continue };
            match self.submit(text.trim()) {
                Ok(_) => {
                    eprintln!("serve: accepted spooled spec {}", path.display());
                    std::fs::rename(&path, path.with_extension("json.accepted")).ok();
                }
                Err(e) => {
                    eprintln!("serve: rejected spooled spec {}: {e}", path.display());
                    std::fs::write(path.with_extension("json.error"), format!("{e}\n")).ok();
                    std::fs::rename(&path, path.with_extension("json.rejected")).ok();
                }
            }
        }
    }

    /// Claim the next unit of work, round-robin across campaigns so two
    /// concurrent campaigns both make progress regardless of submission
    /// order.
    fn claim(&self) -> Option<Unit> {
        let campaigns = self.campaigns.lock().unwrap();
        if campaigns.is_empty() {
            return None;
        }
        let n = campaigns.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        for off in 0..n {
            let c = &campaigns[(start + off) % n];
            let mut st = c.state.lock().unwrap();
            match st.phase {
                Phase::Queued => {
                    st.phase = Phase::Preparing;
                    return Some(Unit::Prep(c.clone()));
                }
                Phase::Running if st.cursor < st.pending.len() => {
                    let end = (st.cursor + self.cfg.shard).min(st.pending.len());
                    let idxs = st.pending[st.cursor..end].to_vec();
                    st.cursor = end;
                    st.in_flight += idxs.len();
                    return Some(Unit::Shard(c.clone(), idxs));
                }
                _ => {}
            }
        }
        None
    }

    /// Execute the prep unit: golden + ladder + masks, journal recovery,
    /// transition to Running (or straight to Done when the recovered
    /// journal is already complete).
    fn run_prep(&self, c: &Arc<Campaign>) {
        let telemetry = TelemetryConfig {
            registry: c.registry.clone(),
            progress_interval_ms: 0,
            flight_capacity: 0,
            taint: c.spec.taint,
            spans: c.spans.clone(),
        };
        let cc = c.spec.to_config(telemetry);
        let prepared = match Prepared::new(&c.spec, &cc) {
            Ok(p) => Arc::new(p),
            Err(e) => return self.fail(c, format!("golden prep failed: {e}")),
        };
        let journal_path = c.dir.join("journal.jsonl");
        let (mut journal, recovered) = match Journal::open(&journal_path, &c.spec.id, &c.digest, c.total)
        {
            Ok(r) => r,
            Err(e) => return self.fail(c, format!("journal: {e}")),
        };
        journal.set_profiling(c.spans.clone(), c.registry.histogram("journal.fsync_ns"));
        let mut st = c.state.lock().unwrap();
        st.done = 0;
        st.sdc = 0;
        st.crash = 0;
        st.early = 0;
        for (i, slot) in recovered.into_iter().enumerate() {
            if let Some(rec) = slot {
                st.done_flags[i] = true;
                st.done += 1;
                match rec.effect {
                    FaultEffect::Sdc => st.sdc += 1,
                    FaultEffect::Crash => st.crash += 1,
                    FaultEffect::Masked => {}
                }
                if rec.early_terminated {
                    st.early += 1;
                }
                st.records[i] = Some(rec);
            }
        }
        // Seed the meter with the journaled prefix so the live rate and
        // ETA reflect only runs executed by *this* process — a resumed
        // campaign must not report the recovered records as throughput.
        st.meter = Some(ProgressMeter::resumed(&c.spec.id, c.total as u64, st.done as u64));
        st.pending = (0..c.total).filter(|&i| !st.done_flags[i]).collect();
        st.cursor = 0;
        st.prepared = Some(prepared);
        st.journal = Some(journal);
        st.phase = Phase::Running;
        eprintln!(
            "serve: campaign {} running ({} journaled, {} pending)",
            c.spec.id,
            st.done,
            st.pending.len()
        );
        if st.done == c.total {
            self.finalize(c, st);
        }
    }

    /// Execute one shard: drive the indices through the campaign engine
    /// with this worker as the (single) pool thread, journaling each
    /// record as it lands.
    fn run_shard(&self, c: &Arc<Campaign>, idxs: &[usize]) {
        let (prepared, mut cc) = {
            let st = c.state.lock().unwrap();
            let telemetry = TelemetryConfig {
                registry: c.registry.clone(),
                progress_interval_ms: 0,
                flight_capacity: 0,
                taint: c.spec.taint,
                spans: c.spans.clone(),
            };
            (st.prepared.clone().expect("shard claimed before prep"), c.spec.to_config(telemetry))
        };
        cc.workers = 1;
        let mut skip = vec![true; c.total];
        for &i in idxs {
            skip[i] = false;
        }
        let throttle = self.cfg.throttle_ms;
        let sink = |i: usize, rec: RunRecord| {
            {
                let mut st = c.state.lock().unwrap();
                if let Some(j) = st.journal.as_mut() {
                    if let Err(e) = j.append(i, &rec) {
                        eprintln!("serve: campaign {}: {e}", c.spec.id);
                    }
                }
                st.done_flags[i] = true;
                st.done += 1;
                match rec.effect {
                    FaultEffect::Sdc => st.sdc += 1,
                    FaultEffect::Crash => st.crash += 1,
                    FaultEffect::Masked => {}
                }
                if rec.early_terminated {
                    st.early += 1;
                }
                st.records[i] = Some(rec);
            }
            if throttle > 0 {
                std::thread::sleep(Duration::from_millis(throttle));
            }
        };
        prepared.drive(&cc, &skip, Some(self.shutdown), &sink);
        let mut st = c.state.lock().unwrap();
        st.in_flight -= idxs.len();
        if st.phase == Phase::Running && st.done == c.total {
            self.finalize(c, st);
        }
    }

    /// Completion: rebuild exports from the full record set (index
    /// order), drop the DONE marker, flush the journal one last time.
    fn finalize(&self, c: &Arc<Campaign>, mut st: std::sync::MutexGuard<'_, CampState>) {
        let records: Vec<RunRecord> =
            st.records.iter().map(|r| r.clone().expect("finalize with missing record")).collect();
        let prepared = st.prepared.clone().expect("finalize before prep");
        if let Some(j) = st.journal.as_mut() {
            if let Err(e) = j.flush() {
                eprintln!("serve: campaign {}: {e}", c.spec.id);
            }
        }
        match write_exports(&c.dir, &c.spec, &prepared, &records) {
            Ok(files) => {
                std::fs::write(c.dir.join("DONE"), "done\n").ok();
                st.phase = Phase::Done;
                eprintln!(
                    "serve: campaign {} done ({} runs; {} exported to {})",
                    c.spec.id,
                    records.len(),
                    files.join(", "),
                    c.dir.display()
                );
            }
            Err(e) => {
                st.error = Some(e.clone());
                st.phase = Phase::Failed;
                eprintln!("serve: campaign {} export failed: {e}", c.spec.id);
            }
        }
    }

    fn fail(&self, c: &Arc<Campaign>, msg: String) {
        eprintln!("serve: campaign {} failed: {msg}", c.spec.id);
        let mut st = c.state.lock().unwrap();
        st.error = Some(msg);
        st.phase = Phase::Failed;
    }

    fn all_settled(&self) -> bool {
        let campaigns = self.campaigns.lock().unwrap();
        !campaigns.is_empty() && campaigns.iter().all(|c| c.state.lock().unwrap().phase.settled())
    }

    fn worker_loop(&self) {
        loop {
            if self.stop.load(Ordering::Relaxed) || self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.claim() {
                Some(Unit::Prep(c)) => self.run_prep(&c),
                Some(Unit::Shard(c, idxs)) => self.run_shard(&c, &idxs),
                None => self.spans.time(PhaseId::Idle, || {
                    std::thread::sleep(Duration::from_millis(self.cfg.poll_ms.clamp(10, 500)))
                }),
            }
        }
    }

    /// Flush every open journal (graceful-shutdown path: completed runs
    /// must be durable before the process exits).
    fn flush_all_journals(&self) {
        for c in self.campaigns.lock().unwrap().iter() {
            let mut st = c.state.lock().unwrap();
            if let Some(j) = st.journal.as_mut() {
                j.flush().ok();
            }
        }
    }

    fn handle_request(&self, line: &str, out: &mut dyn Write) -> std::io::Result<()> {
        let line = line.trim();
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb {
            "PING" => writeln!(out, "{{\"ok\":true,\"type\":\"pong\"}}"),
            "SUBMIT" => match self.submit(rest) {
                Ok(ack) => writeln!(out, "{ack}"),
                Err(e) => writeln!(out, "{{\"ok\":false,\"error\":{}}}", json_string(&e)),
            },
            "STATUS" => {
                if rest.is_empty() {
                    let lines: Vec<String> =
                        self.campaigns.lock().unwrap().iter().map(|c| c.status_line()).collect();
                    writeln!(out, "{{\"type\":\"status_list\",\"campaigns\":[{}]}}", lines.join(","))
                } else {
                    match self.find(rest) {
                        Some(c) => writeln!(out, "{}", c.status_line()),
                        None => writeln!(
                            out,
                            "{{\"ok\":false,\"error\":{}}}",
                            json_string(&format!("unknown campaign '{rest}'"))
                        ),
                    }
                }
            }
            "METRICS" => {
                let (id, prom) = match rest.split_once(' ') {
                    Some((id, "prom")) => (id, true),
                    _ => (rest, false),
                };
                match self.find(id) {
                    Some(c) if prom => {
                        // Multi-line exposition: the client reads to EOF
                        // (see `client::request_text`), so just write it.
                        let labels = format!("campaign=\"{}\"", c.spec.id);
                        write!(
                            out,
                            "{}",
                            render_prometheus(&c.registry.snapshot(), &c.spans.report(), &labels)
                        )
                    }
                    Some(c) => {
                        // Splice the phase totals into the snapshot line so
                        // one METRICS round-trip carries both surfaces.
                        let line = render_snapshot_line(&c.registry.snapshot());
                        let body = line.trim_end().strip_suffix('}').unwrap_or(&line).to_string();
                        writeln!(out, "{body},\"phases\":{}}}", render_phase_object(&c.spans.report()))
                    }
                    None => writeln!(
                        out,
                        "{{\"ok\":false,\"error\":{}}}",
                        json_string(&format!("unknown campaign '{id}'"))
                    ),
                }
            }
            "PROFILE" => {
                if rest.is_empty() {
                    writeln!(out, "{}", profile_line("_serve", &self.spans.report()))
                } else {
                    match self.find(rest) {
                        Some(c) => writeln!(out, "{}", profile_line(&c.spec.id, &c.spans.report())),
                        None => writeln!(
                            out,
                            "{{\"ok\":false,\"error\":{}}}",
                            json_string(&format!("unknown campaign '{rest}'"))
                        ),
                    }
                }
            }
            "WATCH" => match self.find(rest) {
                Some(c) => loop {
                    writeln!(out, "{}", c.progress_line())?;
                    out.flush()?;
                    let settled = c.state.lock().unwrap().phase.settled();
                    if settled || self.shutdown.load(Ordering::Relaxed) {
                        writeln!(out, "{}", c.status_line())?;
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(250));
                },
                None => writeln!(
                    out,
                    "{{\"ok\":false,\"error\":{}}}",
                    json_string(&format!("unknown campaign '{rest}'"))
                ),
            },
            other => writeln!(
                out,
                "{{\"ok\":false,\"error\":{}}}",
                json_string(&format!("unknown verb '{other}'"))
            ),
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if self.handle_request(&line, &mut writer).is_err() {
                break;
            }
        }
    }
}

/// Run the campaign service until a shutdown signal arrives (or, with
/// `once`, until every known campaign settles). Returns an error only
/// for unrecoverable startup failures (bad root, bind failure).
pub fn serve(mut cfg: ServeConfig) -> Result<(), String> {
    if let Ok(ms) = std::env::var("MARVEL_SERVE_THROTTLE_MS") {
        if let Ok(ms) = ms.parse::<u64>() {
            cfg.throttle_ms = ms;
        }
    }
    let internal = cfg.root.join("_serve");
    std::fs::create_dir_all(internal.join("spool")).map_err(|e| e.to_string())?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    write_addr_file(&cfg.root, &local.to_string())?;
    eprintln!("serve: listening on {local}, root {}", cfg.root.display());

    let shutdown = install_shutdown_handler();
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        cfg.workers
    };
    let poll = Duration::from_millis(cfg.poll_ms.clamp(10, 1000));
    let server = Arc::new(Server {
        cfg,
        campaigns: Mutex::new(Vec::new()),
        rr: AtomicUsize::new(0),
        shutdown,
        stop: AtomicBool::new(false),
        spans: SpanCollector::enabled(),
    });
    server.recover_from_disk();

    let mut pool = Vec::new();
    for _ in 0..workers {
        let srv = server.clone();
        pool.push(std::thread::spawn(move || srv.worker_loop()));
    }

    loop {
        if shutdown.load(Ordering::Relaxed) {
            eprintln!("serve: shutdown signal — draining workers and flushing journals");
            break;
        }
        server.scan_spool();
        if server.cfg.once && server.all_settled() {
            eprintln!("serve: all campaigns settled — exiting (--once)");
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let srv = server.clone();
                std::thread::spawn(move || srv.handle_connection(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                std::thread::sleep(poll);
            }
        }
    }

    server.stop.store(true, Ordering::Relaxed);
    for t in pool {
        t.join().ok();
    }
    server.flush_all_journals();
    Ok(())
}

/// Drop a spec file into a service's spool directory (file-based
/// submission for environments without network access to the service).
pub fn spool_spec(root: &Path, spec: &CampaignSpec) -> Result<PathBuf, String> {
    let spool = root.join("_serve").join("spool");
    std::fs::create_dir_all(&spool).map_err(|e| e.to_string())?;
    let path = spool.join(format!("{}.json", spec.id));
    std::fs::write(&path, format!("{}\n", spec.render())).map_err(|e| e.to_string())?;
    Ok(path)
}
