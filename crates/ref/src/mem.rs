//! Flat architectural memory for the reference model: RAM + console, with
//! an optional line-granular access trace used to warm the O3 caches
//! after a fast-forward state transplant.

use marvel_ir::memmap::{CONSOLE_ADDR, RAM_BASE};
use marvel_ir::Binary;
use std::collections::HashMap;

/// Line-granular access trace: for every touched cache line, the sequence
/// number of its most recent access, split by instruction/data stream.
/// Replaying the lines in ascending last-touch order approximates the
/// recency state the cycle-level caches would have reached.
#[derive(Debug, Clone, Default)]
struct AccessTrace {
    seq: u64,
    /// `(line_addr, icache)` → last-touch sequence number.
    lines: HashMap<(u64, bool), u64>,
}

/// Flat memory backing the reference model. Mirrors the address-space
/// behaviour of `marvel_cpu::TestBus`: one cacheable RAM range at
/// [`RAM_BASE`] and a write-only console device at [`CONSOLE_ADDR`].
/// Device *reads* return `None` (→ `MemFault`), exactly like `TestBus`.
#[derive(Debug, Clone)]
pub struct RefMem {
    pub ram: Vec<u8>,
    pub console: Vec<u8>,
    trace: Option<Box<AccessTrace>>,
    line: u64,
}

impl RefMem {
    /// Wrap an existing RAM image (e.g. a clone of the SoC RAM).
    pub fn new(ram: Vec<u8>) -> Self {
        RefMem { ram, console: Vec::new(), trace: None, line: 64 }
    }

    /// Build a fresh RAM holding `bin`'s image at its load address.
    pub fn for_binary(bin: &Binary) -> Self {
        let mut ram = vec![0u8; marvel_ir::memmap::RAM_SIZE as usize];
        let off = (bin.entry - RAM_BASE) as usize;
        ram[off..off + bin.image.len()].copy_from_slice(&bin.image);
        RefMem::new(ram)
    }

    /// Start recording the line-granular access trace (`line` = cache
    /// line size in bytes; must match the core the trace will warm).
    pub fn enable_trace(&mut self, line: u64) {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        self.line = line;
        self.trace = Some(Box::default());
    }

    /// Touched lines as `(line_addr, icache)` in ascending last-touch
    /// order — replay through the cache hierarchy oldest-first so the
    /// most recently used lines win the replacement race.
    pub fn trace_lines(&self) -> Vec<(u64, bool)> {
        let Some(t) = self.trace.as_deref() else { return Vec::new() };
        let mut v: Vec<(u64, u64, bool)> =
            t.lines.iter().map(|(&(addr, ic), &seq)| (seq, addr, ic)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, addr, ic)| (addr, ic)).collect()
    }

    pub fn is_cacheable(&self, addr: u64) -> bool {
        (RAM_BASE..RAM_BASE + self.ram.len() as u64).contains(&addr)
    }

    pub fn is_device(&self, addr: u64) -> bool {
        addr == CONSOLE_ADDR
    }

    pub(crate) fn touch(&mut self, addr: u64, size: u64, icache: bool) {
        let Some(t) = self.trace.as_deref_mut() else { return };
        t.seq += 1;
        let seq = t.seq;
        let line = self.line;
        let mut a = addr & !(line - 1);
        let end = addr + size.max(1);
        while a < end {
            t.lines.insert((a, icache), seq);
            a += line;
        }
    }

    /// Read `size` bytes little-endian from RAM. Caller has validated the
    /// range with [`is_cacheable`](Self::is_cacheable).
    pub fn read(&mut self, addr: u64, size: u8) -> u64 {
        self.touch(addr, size as u64, false);
        let off = (addr - RAM_BASE) as usize;
        let mut out = 0u64;
        for i in (0..size as usize).rev() {
            out = (out << 8) | self.ram[off + i] as u64;
        }
        out
    }

    /// Write `size` bytes little-endian into RAM (range pre-validated).
    pub fn write(&mut self, addr: u64, size: u8, val: u64) {
        self.touch(addr, size as u64, false);
        let off = (addr - RAM_BASE) as usize;
        let mut v = val;
        for i in 0..size as usize {
            self.ram[off + i] = v as u8;
            v >>= 8;
        }
    }

    /// Copy instruction bytes without touching the data-stream trace.
    pub(crate) fn fetch_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.touch(addr, buf.len() as u64, true);
        let off = (addr - RAM_BASE) as usize;
        buf.copy_from_slice(&self.ram[off..off + buf.len()]);
    }

    /// Uncached device read — always `None` (console is write-only),
    /// matching `TestBus::device_read`.
    pub fn device_read(&mut self, _addr: u64, _size: u8) -> Option<u64> {
        None
    }

    /// Uncached device write; only the console accepts data.
    pub fn device_write(&mut self, addr: u64, _size: u8, val: u64) -> Option<()> {
        if addr == CONSOLE_ADDR {
            self.console.push(val as u8);
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_le() {
        let mut m = RefMem::new(vec![0u8; 4096]);
        m.write(RAM_BASE + 16, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(RAM_BASE + 16, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read(RAM_BASE + 16, 2), 0x7788);
        assert_eq!(m.read(RAM_BASE + 22, 2), 0x1122);
    }

    #[test]
    fn console_is_write_only_device() {
        let mut m = RefMem::new(vec![0u8; 64]);
        assert!(m.is_device(CONSOLE_ADDR));
        assert!(m.device_read(CONSOLE_ADDR, 1).is_none());
        m.device_write(CONSOLE_ADDR, 1, 0x41).unwrap();
        assert!(m.device_write(CONSOLE_ADDR + 8, 1, 0).is_none());
        assert_eq!(m.console, vec![0x41]);
    }

    #[test]
    fn trace_orders_lines_by_last_touch() {
        let mut m = RefMem::new(vec![0u8; 4096]);
        m.enable_trace(64);
        m.write(RAM_BASE, 8, 1); // line 0
        m.write(RAM_BASE + 128, 8, 2); // line 2
        m.write(RAM_BASE + 1, 1, 3); // line 0 again (now most recent)
        let lines = m.trace_lines();
        assert_eq!(lines, vec![(RAM_BASE + 128, false), (RAM_BASE, false)]);
    }

    #[test]
    fn cross_line_access_touches_both_lines() {
        let mut m = RefMem::new(vec![0u8; 4096]);
        m.enable_trace(64);
        m.write(RAM_BASE + 60, 8, 0xAABB_CCDD_EEFF_0011); // spans lines 0 and 1
        let lines = m.trace_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(m.read(RAM_BASE + 60, 8), 0xAABB_CCDD_EEFF_0011);
    }
}
