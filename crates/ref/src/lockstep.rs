//! The differential oracle: replay the O3 core's committed micro-op
//! stream on the reference model and report the first architectural
//! divergence with full context.

use crate::cpu::RefCpu;
use crate::mem::RefMem;
use marvel_cpu::CommitEffect;
use marvel_isa::{Isa, Trap};
use std::collections::VecDeque;
use std::fmt;

/// The first point where the O3 core and the reference model disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Position in the committed micro-op stream (0-based).
    pub index: u64,
    /// Which field disagreed first.
    pub field: &'static str,
    /// What the O3 core committed.
    pub dut: CommitEffect,
    /// What the reference model computed (for "stream" divergences the
    /// reference side may be a synthesized placeholder — see `field`).
    pub reference: CommitEffect,
    /// Reference-model architectural registers at the divergence point.
    pub regs: Vec<u64>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lockstep divergence at committed uop #{} (field: {})", self.index, self.field)?;
        writeln!(f, "  dut: pc={:#x} {:?}", self.dut.pc, self.dut.uop.op)?;
        writeln!(
            f,
            "       rd={:?} value={:#x} next_pc={:#x} mem_addr={:#x} trap={:?}",
            self.dut.rd, self.dut.value, self.dut.next_pc, self.dut.mem_addr, self.dut.trap
        )?;
        writeln!(f, "  ref: pc={:#x} {:?}", self.reference.pc, self.reference.uop.op)?;
        writeln!(
            f,
            "       rd={:?} value={:#x} next_pc={:#x} mem_addr={:#x} trap={:?}",
            self.reference.rd,
            self.reference.value,
            self.reference.next_pc,
            self.reference.mem_addr,
            self.reference.trap
        )?;
        write!(f, "  ref regs:")?;
        for (i, v) in self.regs.iter().enumerate() {
            if i % 4 == 0 {
                writeln!(f)?;
                write!(f, "   ")?;
            }
            write!(f, " r{i:<2}={v:#018x}")?;
        }
        Ok(())
    }
}

/// Lockstep comparator. Feed it every [`CommitEffect`] the core commits
/// (in order); it advances its own [`RefCpu`] one macro instruction at a
/// time and checks the streams micro-op for micro-op.
///
/// The oracle is self-disabling rather than wrong in the two situations
/// the architectural model cannot follow: interrupt entry (the SoC
/// suspends it) and device reads outside the reference memory map.
#[derive(Debug, Clone)]
pub struct Lockstep {
    cpu: RefCpu,
    mem: RefMem,
    pending: VecDeque<CommitEffect>,
    checked: u64,
    divergence: Option<Box<Divergence>>,
    disabled: Option<String>,
}

impl Lockstep {
    /// Build an oracle whose reference machine starts from the given
    /// architectural state and a copy of RAM. `line` is the core's cache
    /// line size (fetch windows must match).
    pub fn new(isa: Isa, pc: u64, regs: &[u64], ram: Vec<u8>, line: u64) -> Self {
        let mut cpu = RefCpu::with_line(isa, pc, line);
        cpu.set_regs(regs);
        Lockstep {
            cpu,
            mem: RefMem::new(ram),
            pending: VecDeque::new(),
            checked: 0,
            divergence: None,
            disabled: None,
        }
    }

    /// Micro-ops compared so far.
    pub fn checked(&self) -> u64 {
        self.checked
    }

    pub fn divergence(&self) -> Option<&Divergence> {
        self.divergence.as_deref()
    }

    /// Why the oracle stopped comparing, if it had to bow out.
    pub fn disabled_reason(&self) -> Option<&str> {
        self.disabled.as_deref()
    }

    /// Permanently stop comparing (e.g. on interrupt entry, which the
    /// reference model does not replay).
    pub fn suspend(&mut self, reason: &str) {
        if self.disabled.is_none() {
            self.disabled = Some(reason.to_string());
        }
    }

    /// The reference model's console output so far.
    pub fn ref_console(&self) -> &[u8] {
        &self.mem.console
    }

    /// Compare one committed micro-op against the reference stream.
    pub fn check(&mut self, dut: &CommitEffect) {
        if self.disabled.is_some() || self.divergence.is_some() {
            return;
        }
        if self.pending.is_empty() {
            if self.cpu.halted() || self.cpu.trap().is_some() {
                // The DUT committed past the reference machine's end of
                // stream: synthesize the missing reference side.
                let placeholder = CommitEffect {
                    pc: self.cpu.pc(),
                    uop: marvel_isa::MicroOp::bare(marvel_isa::Op::Nop),
                    macro_len: 0,
                    last_of_macro: true,
                    rd: None,
                    value: 0,
                    next_pc: self.cpu.pc(),
                    mem_addr: 0,
                    trap: self.cpu.trap(),
                };
                let idx = self.checked;
                self.checked += 1;
                self.diverge(idx, "stream", dut, &placeholder);
                return;
            }
            let mut effs = Vec::new();
            self.cpu.step_logged(&mut self.mem, Some(&mut effs));
            self.pending.extend(effs);
            if self.pending.is_empty() {
                // Cannot happen (every step emits ≥ 1 effect), but never
                // fail open silently.
                self.suspend("reference model produced no effects");
                return;
            }
        }
        let r = self.pending.pop_front().expect("refilled above");
        let idx = self.checked;
        self.checked += 1;

        match (dut.trap, r.trap) {
            (Some(a), Some(b)) => {
                // Both sides crash: the trap itself (kind, pc, addr) is
                // the architectural effect to agree on.
                if a != b {
                    self.diverge(idx, "trap", dut, &r);
                }
            }
            (None, Some(Trap::MemFault { .. })) if r.uop.op.is_load() => {
                // The DUT load succeeded where the reference memory map
                // has no backing store (a readable device outside the
                // console-only model). Not a pipeline bug — bow out.
                self.suspend(&format!(
                    "device read at {:#x} outside the reference memory model (uop #{idx})",
                    r.mem_addr
                ));
            }
            (_, _) if dut.trap != r.trap => self.diverge(idx, "trap", dut, &r),
            _ => {
                let field = if dut.uop != r.uop {
                    Some("uop")
                } else if dut.pc != r.pc {
                    Some("pc")
                } else if dut.rd != r.rd {
                    Some("rd")
                } else if dut.rd.is_some() && dut.value != r.value {
                    Some("value")
                } else if dut.uop.op.is_store() && dut.value != r.value {
                    Some("store_data")
                } else if dut.next_pc != r.next_pc {
                    Some("next_pc")
                } else if (dut.uop.op.is_load() || dut.uop.op.is_store()) && dut.mem_addr != r.mem_addr {
                    Some("mem_addr")
                } else {
                    None
                };
                if let Some(field) = field {
                    self.diverge(idx, field, dut, &r);
                }
            }
        }
    }

    fn diverge(&mut self, index: u64, field: &'static str, dut: &CommitEffect, r: &CommitEffect) {
        self.divergence = Some(Box::new(Divergence {
            index,
            field,
            dut: *dut,
            reference: *r,
            regs: self.cpu.regs().to_vec(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_isa::{MicroOp, Op};

    fn stub_effect(pc: u64) -> CommitEffect {
        CommitEffect {
            pc,
            uop: MicroOp::bare(Op::Nop),
            macro_len: 4,
            last_of_macro: true,
            rd: None,
            value: 0,
            next_pc: pc + 4,
            mem_addr: 0,
            trap: None,
        }
    }

    #[test]
    fn committing_past_reference_halt_diverges() {
        // An empty RAM: the reference fetch immediately faults, so any
        // clean DUT commit is a stream divergence (trap mismatch).
        let mut ls = Lockstep::new(Isa::RiscV, 0x10, &[], vec![0u8; 64], 64);
        ls.check(&stub_effect(0x10));
        let d = ls.divergence().expect("must diverge");
        assert_eq!(d.field, "trap");
        assert!(format!("{d}").contains("lockstep divergence"));
    }

    #[test]
    fn suspend_is_sticky_and_stops_checking() {
        let mut ls = Lockstep::new(Isa::RiscV, 0x10, &[], vec![0u8; 64], 64);
        ls.suspend("irq entry");
        ls.check(&stub_effect(0x10));
        assert!(ls.divergence().is_none());
        assert_eq!(ls.checked(), 0);
        assert_eq!(ls.disabled_reason(), Some("irq entry"));
    }
}
