//! The architectural interpreter: one macro instruction per step, exact
//! O3 commit semantics (same decoders, same `AluOp::eval`/`Cond::eval`
//! helpers, same trap precedence, same fetch-window byte gathering), no
//! timing.

use crate::mem::RefMem;
use marvel_cpu::CommitEffect;
use marvel_ir::Binary;
use marvel_isa::trap::DecodeError;
use marvel_isa::{Isa, MicroOp, Op, Trap, REG_NONE};

/// What one [`RefCpu::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefStep {
    /// One macro instruction retired.
    Retired,
    /// A `Halt` marker retired: the program ended normally.
    Halted,
    /// A `Checkpoint` marker retired.
    Checkpoint,
    /// A `SwitchCpu` marker retired.
    SwitchCpu,
    /// A trap fired; the machine is stopped at the faulting instruction.
    Trapped(Trap),
}

/// Why a [`RefCpu::run`] loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefRunOutcome {
    Halted {
        insts: u64,
    },
    Trapped {
        trap: Trap,
        insts: u64,
    },
    /// Only from [`RefCpu::run_to_checkpoint`]: the marker was reached.
    Checkpoint {
        insts: u64,
    },
    /// The instruction budget ran out first.
    OutOfBudget,
}

/// Architectural CPU state: PC + register file, nothing else. The fetch
/// path mirrors the O3 front end byte for byte (line-windowed decode, the
/// same fetch/decode trap precedence), so the two models see identical
/// instruction streams even for variable-length x86 straddling lines.
#[derive(Debug, Clone)]
pub struct RefCpu {
    isa: Isa,
    pc: u64,
    regs: Vec<u64>,
    halted: bool,
    trapped: Option<Trap>,
    retired: u64,
    /// Cache line size used for fetch windowing (must match the core
    /// being compared against; the default is the Table-2 config's 64).
    line: u64,
}

impl RefCpu {
    pub fn new(isa: Isa, pc: u64) -> Self {
        Self::with_line(isa, pc, 64)
    }

    pub fn with_line(isa: Isa, pc: u64, line: u64) -> Self {
        assert!(line.is_power_of_two() && line >= isa.max_inst_len() as u64);
        let n = isa.reg_spec().total_regs as usize;
        RefCpu { isa, pc, regs: vec![0; n], halted: false, trapped: None, retired: 0, line }
    }

    /// Install architectural register values (e.g. from `Core::arch_regs`).
    /// The zero register stays hardwired to 0.
    pub fn set_regs(&mut self, regs: &[u64]) {
        let zero = self.isa.reg_spec().zero;
        for (a, &v) in regs.iter().enumerate().take(self.regs.len()) {
            if Some(a as u8) != zero {
                self.regs[a] = v;
            }
        }
    }

    pub fn isa(&self) -> Isa {
        self.isa
    }

    pub fn pc(&self) -> u64 {
        self.pc
    }

    pub fn regs(&self) -> &[u64] {
        &self.regs
    }

    pub fn halted(&self) -> bool {
        self.halted
    }

    pub fn trap(&self) -> Option<Trap> {
        self.trapped
    }

    /// Macro instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn read_reg(&self, r: u8) -> u64 {
        if r == REG_NONE {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn write_reg(&mut self, r: u8, v: u64) {
        if r != REG_NONE && Some(r) != self.isa.reg_spec().zero {
            self.regs[r as usize] = v;
        }
    }

    /// Whether the O3 rename stage would allocate a destination for this
    /// uop — mirrored so logged effects pair up field for field.
    fn renames_dest(&self, u: &MicroOp) -> bool {
        u.rd != REG_NONE && Some(u.rd) != self.isa.reg_spec().zero
    }

    /// Execute one macro instruction. `effects`, when given, receives one
    /// [`CommitEffect`] per retired micro-op with the exact conventions
    /// of the O3 commit-effect log (fetch traps appear as zero-length
    /// `Nop` stubs whose `next_pc` is the faulting PC, matching the O3
    /// `push_trap_uop` path).
    pub fn step_logged(
        &mut self,
        mem: &mut RefMem,
        mut effects: Option<&mut Vec<CommitEffect>>,
    ) -> RefStep {
        if let Some(t) = self.trapped {
            return RefStep::Trapped(t);
        }
        if self.halted {
            return RefStep::Halted;
        }
        let pc = self.pc;

        // --- fetch: gather up to max_inst_len bytes across ≤ 2 lines ---
        let max_len = self.isa.max_inst_len();
        let line = self.line;
        let off = (pc % line) as usize;
        let avail0 = (line as usize - off).min(max_len);
        let mut window = [0u8; 16];

        if !mem.is_cacheable(pc) {
            return self.fetch_trap(Trap::FetchFault { pc }, effects);
        }
        mem.fetch_bytes(pc, &mut window[..avail0]);
        let mut avail = avail0;
        let mut decoded = self.isa.decode(&window[..avail]);
        if matches!(decoded, Err(DecodeError::Truncated)) && avail < max_len {
            let npc = (pc & !(line - 1)) + line;
            if !mem.is_cacheable(npc) {
                return self.fetch_trap(Trap::FetchFault { pc: npc }, effects);
            }
            let need = max_len - avail;
            let mut tail = [0u8; 16];
            mem.fetch_bytes(npc, &mut tail[..need]);
            window[avail..avail + need].copy_from_slice(&tail[..need]);
            avail += need;
            decoded = self.isa.decode(&window[..avail]);
        }
        let d = match decoded {
            Ok(d) => d,
            Err(_) => return self.fetch_trap(Trap::IllegalInstruction { pc }, effects),
        };

        // --- execute the macro's micro-ops in order ---
        let fallthrough = pc.wrapping_add(d.len as u64);
        let mut next_pc = fallthrough;
        let n = d.uops.len();
        let mut marker = RefStep::Retired;
        for (k, &u) in d.uops.as_slice().iter().enumerate() {
            let last = k == n - 1;
            let a = self.read_reg(u.rs1);
            let b = self.read_reg(u.rs2);
            // (value, uop_next, mem_addr, trap)
            let mut eff_value = 0u64;
            let mut eff_addr = 0u64;
            let mut trap: Option<Trap> = None;
            let mut uop_next = fallthrough;
            match u.op {
                Op::Alu(op) => match op.eval(a, b, self.isa) {
                    Some(v) => eff_value = v,
                    None => trap = Some(Trap::DivideByZero { pc }),
                },
                Op::AluImm(op) => match op.eval(a, u.imm as u64, self.isa) {
                    Some(v) => eff_value = v,
                    None => trap = Some(Trap::DivideByZero { pc }),
                },
                Op::LoadImm => eff_value = u.imm as u64,
                Op::MovK(sh) => {
                    let mask = 0xFFFFu64 << sh;
                    eff_value = (a & !mask) | (((u.imm as u64) & 0xFFFF) << sh);
                }
                Op::Auipc => eff_value = pc.wrapping_add(u.imm as u64),
                Op::LinkAddr => eff_value = fallthrough,
                Op::Jal => {
                    eff_value = fallthrough;
                    uop_next = pc.wrapping_add(u.imm as u64);
                }
                Op::Jalr => {
                    eff_value = fallthrough;
                    uop_next = a.wrapping_add(u.imm as u64);
                }
                Op::Branch(c) => {
                    if c.eval(a, b) {
                        uop_next = pc.wrapping_add(u.imm as u64);
                    }
                }
                Op::Load { w, signed } => {
                    let addr =
                        if u.reg_offset { a.wrapping_add(b) } else { a.wrapping_add(u.imm as u64) };
                    eff_addr = addr;
                    let size = w.bytes() as u8;
                    match self.mem_trap(mem, pc, addr, size) {
                        Some(t) => trap = Some(t),
                        None if mem.is_device(addr) => match mem.device_read(addr, size) {
                            Some(v) => eff_value = w.extend(v, signed),
                            None => trap = Some(Trap::MemFault { pc, addr }),
                        },
                        None => eff_value = w.extend(mem.read(addr, size), signed),
                    }
                }
                Op::Store { w } => {
                    let addr =
                        if u.reg_offset { a.wrapping_add(b) } else { a.wrapping_add(u.imm as u64) };
                    eff_addr = addr;
                    let size = w.bytes() as u8;
                    let data = self.read_reg(u.rs3);
                    eff_value = data;
                    match self.mem_trap(mem, pc, addr, size) {
                        Some(t) => trap = Some(t),
                        None if mem.is_device(addr) => {
                            if mem.device_write(addr, size, data).is_none() {
                                trap = Some(Trap::MemFault { pc: 0, addr });
                            }
                        }
                        None => mem.write(addr, size, data),
                    }
                }
                Op::Halt => marker = RefStep::Halted,
                Op::Checkpoint => marker = RefStep::Checkpoint,
                Op::SwitchCpu => marker = RefStep::SwitchCpu,
                // The reference model has no interrupt plumbing; lockstep
                // is suspended on IRQ entry before an `Iret` can commit,
                // and straight-line programs never execute one.
                Op::Iret => trap = Some(Trap::IllegalInstruction { pc }),
                Op::Nop => {}
            }

            if last && u.op.is_control() && trap.is_none() {
                next_pc = uop_next;
            }
            if let Some(log) = effects.as_deref_mut() {
                log.push(CommitEffect {
                    pc,
                    uop: u,
                    macro_len: d.len,
                    last_of_macro: last,
                    rd: if self.renames_dest(&u) && trap.is_none() { Some(u.rd) } else { None },
                    value: if trap.is_some() { 0 } else { eff_value },
                    next_pc: if u.op.is_control() && trap.is_none() { uop_next } else { fallthrough },
                    mem_addr: eff_addr,
                    trap,
                });
            }
            if let Some(t) = trap {
                self.trapped = Some(t);
                return RefStep::Trapped(t);
            }
            if u.op.writes_dest() {
                self.write_reg(u.rd, eff_value);
            }
            if !matches!(marker, RefStep::Retired) {
                // Markers end the macro; fetch resumes past them.
                self.pc = fallthrough;
                self.retired += 1;
                if matches!(marker, RefStep::Halted) {
                    self.halted = true;
                }
                return marker;
            }
        }
        self.pc = next_pc;
        self.retired += 1;
        RefStep::Retired
    }

    /// Misalignment/mapping trap precedence, mirrored from the O3
    /// `issue_mem` stage: alignment first (on trapping flavours), then
    /// the mapped check across the full access.
    fn mem_trap(&self, mem: &RefMem, pc: u64, addr: u64, size: u8) -> Option<Trap> {
        if !addr.is_multiple_of(size as u64) && self.isa.traps_on_misaligned() {
            return Some(Trap::Misaligned { pc, addr });
        }
        let mapped =
            mem.is_device(addr) || (mem.is_cacheable(addr) && mem.is_cacheable(addr + size as u64 - 1));
        if !mapped {
            return Some(Trap::MemFault { pc, addr });
        }
        None
    }

    fn fetch_trap(&mut self, t: Trap, effects: Option<&mut Vec<CommitEffect>>) -> RefStep {
        // Mirror the O3 `push_trap_uop` stub: a zero-length Nop whose
        // next_pc is the (unadvanced) faulting PC.
        if let Some(log) = effects {
            log.push(CommitEffect {
                pc: self.pc,
                uop: MicroOp::bare(Op::Nop),
                macro_len: 0,
                last_of_macro: true,
                rd: None,
                value: 0,
                next_pc: self.pc,
                mem_addr: 0,
                trap: Some(t),
            });
        }
        self.trapped = Some(t);
        RefStep::Trapped(t)
    }

    /// Execute one macro instruction without effect logging.
    pub fn step(&mut self, mem: &mut RefMem) -> RefStep {
        self.step_logged(mem, None)
    }

    /// Run until `Halt`, a trap, or the instruction budget runs out.
    /// `Checkpoint`/`SwitchCpu` markers are retired and passed through.
    pub fn run(&mut self, mem: &mut RefMem, budget: u64) -> RefRunOutcome {
        self.run_inner(mem, budget, false)
    }

    /// Run until the `Checkpoint` marker (the golden-prep fast-forward),
    /// `Halt`, a trap, or budget exhaustion.
    pub fn run_to_checkpoint(&mut self, mem: &mut RefMem, budget: u64) -> RefRunOutcome {
        self.run_inner(mem, budget, true)
    }

    fn run_inner(&mut self, mem: &mut RefMem, budget: u64, stop_at_ckpt: bool) -> RefRunOutcome {
        for _ in 0..budget {
            match self.step(mem) {
                RefStep::Retired | RefStep::SwitchCpu => {}
                RefStep::Checkpoint => {
                    if stop_at_ckpt {
                        return RefRunOutcome::Checkpoint { insts: self.retired };
                    }
                }
                RefStep::Halted => return RefRunOutcome::Halted { insts: self.retired },
                RefStep::Trapped(t) => return RefRunOutcome::Trapped { trap: t, insts: self.retired },
            }
        }
        RefRunOutcome::OutOfBudget
    }
}

/// Execute an assembled [`Binary`] on the reference model from scratch;
/// returns the outcome and the console output.
pub fn run_binary(bin: &Binary, budget: u64) -> (RefRunOutcome, Vec<u8>) {
    let mut mem = RefMem::for_binary(bin);
    let mut cpu = RefCpu::new(bin.isa, bin.entry);
    let out = cpu.run(&mut mem, budget);
    (out, mem.console)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_ir::{assemble, interp, FuncBuilder, Module};
    use marvel_isa::AluOp;

    fn arith_module() -> Module {
        let mut m = Module::new();
        let main = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let buf = m.global_zeroed("buf", 64, 8);
        let x = b.bin(AluOp::Mul, 6i64, 7i64);
        let base = b.addr_of(buf);
        b.store(marvel_isa::MemWidth::D, x, base, 0);
        let y = b.load(marvel_isa::MemWidth::D, false, base, 0);
        let z = b.bin(AluOp::Add, y, 1i64);
        b.out_byte(z);
        b.halt();
        m.define(main, b.build());
        m
    }

    #[test]
    fn runs_arithmetic_on_all_isas() {
        let m = arith_module();
        let golden = interp::run(&m, 100_000).unwrap();
        for isa in Isa::ALL {
            let bin = assemble(&m, isa).unwrap();
            let (out, console) = run_binary(&bin, 100_000);
            assert!(matches!(out, RefRunOutcome::Halted { .. }), "{isa:?}: {out:?}");
            assert_eq!(console, golden.output, "{isa:?}");
        }
    }

    #[test]
    fn checkpoint_marker_stops_fast_forward() {
        let mut m = Module::new();
        let main = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let x = b.bin(AluOp::Add, 40i64, 2i64);
        b.checkpoint();
        b.out_byte(x);
        b.halt();
        m.define(main, b.build());
        for isa in Isa::ALL {
            let bin = assemble(&m, isa).unwrap();
            let mut mem = RefMem::for_binary(&bin);
            let mut cpu = RefCpu::new(isa, bin.entry);
            let out = cpu.run_to_checkpoint(&mut mem, 10_000);
            assert!(matches!(out, RefRunOutcome::Checkpoint { .. }), "{isa:?}: {out:?}");
            assert!(mem.console.is_empty());
            // Resume: the rest of the program still runs to completion.
            let out = cpu.run(&mut mem, 10_000);
            assert!(matches!(out, RefRunOutcome::Halted { .. }), "{isa:?}: {out:?}");
            assert_eq!(mem.console, vec![42]);
        }
    }

    #[test]
    fn division_by_zero_traps_only_on_x86() {
        let mut m = Module::new();
        let main = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        let q = b.bin(AluOp::Div, 7i64, 0i64);
        b.out_byte(q);
        b.halt();
        m.define(main, b.build());
        for isa in Isa::ALL {
            let bin = assemble(&m, isa).unwrap();
            let (out, _) = run_binary(&bin, 10_000);
            if isa.traps_on_div_zero() {
                assert!(
                    matches!(out, RefRunOutcome::Trapped { trap: Trap::DivideByZero { .. }, .. }),
                    "{isa:?}: {out:?}"
                );
            } else {
                assert!(matches!(out, RefRunOutcome::Halted { .. }), "{isa:?}: {out:?}");
            }
        }
    }

    #[test]
    fn unmapped_fetch_faults_with_stub_effect() {
        for isa in Isa::ALL {
            let mut mem = RefMem::new(vec![0u8; 64]);
            let mut cpu = RefCpu::new(isa, 0x10); // below RAM_BASE
            let mut effs = Vec::new();
            let step = cpu.step_logged(&mut mem, Some(&mut effs));
            assert!(matches!(step, RefStep::Trapped(Trap::FetchFault { pc: 0x10 })), "{isa:?}");
            assert_eq!(effs.len(), 1);
            let e = &effs[0];
            assert_eq!((e.macro_len, e.next_pc, e.rd), (0, 0x10, None));
            assert!(matches!(e.uop.op, Op::Nop));
            // The machine stays stopped at the fault.
            assert!(matches!(cpu.step(&mut mem), RefStep::Trapped(_)));
        }
    }
}
