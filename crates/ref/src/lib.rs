//! # marvel-ref
//!
//! The architectural reference model: a fast interpreter over the shared
//! micro-op space of `marvel-isa` that executes all three ISA flavours
//! with registers, traps and flat memory — no pipeline, no caches, no
//! speculation. It is the framework's analogue of gem5's atomic CPU, and
//! serves two roles:
//!
//! 1. **Fast-forward golden prep** — `marvel-core` runs the reference
//!    model to the `Checkpoint` marker and transplants the architectural
//!    state into the cycle-level O3 core (replaying the recorded memory
//!    access trace to warm the caches), so campaign setup skips the
//!    expensive cycle-level warmup.
//! 2. **Lockstep differential oracle** — [`Lockstep`] re-executes every
//!    committed instruction's architectural effects next to the O3 core
//!    (via the commit-effect log in `marvel-cpu`) and reports the first
//!    divergence with full context. This is the correctness baseline that
//!    validates the simulator substrate underneath the fault-injection
//!    results.
//!
//! The interpreter deliberately reuses the decoders and the micro-op
//! semantics helpers from `marvel-isa` (`AluOp::eval`, `Cond::eval`,
//! `MemWidth::extend`, the per-ISA trap knobs) so that O3-vs-reference
//! divergences point at *pipeline* bugs, not at a second copy of the
//! instruction semantics drifting out of sync.
//!
//! ```
//! use marvel_ir::{assemble, FuncBuilder, Module};
//! use marvel_isa::{AluOp, Isa};
//! use marvel_ref::{run_binary, RefRunOutcome};
//!
//! let mut m = Module::new();
//! let main = m.declare("main", 0);
//! let mut b = FuncBuilder::new(0);
//! let v = b.bin(AluOp::Mul, 6i64, 7i64);
//! b.out_byte(v);
//! b.halt();
//! m.define(main, b.build());
//!
//! let bin = assemble(&m, Isa::Arm).unwrap();
//! let (outcome, output) = run_binary(&bin, 10_000);
//! assert!(matches!(outcome, RefRunOutcome::Halted { .. }));
//! assert_eq!(output, vec![42]);
//! ```

pub mod cpu;
pub mod lockstep;
pub mod mem;

pub use cpu::{run_binary, RefCpu, RefRunOutcome, RefStep};
pub use lockstep::{Divergence, Lockstep};
pub use mem::RefMem;
