//! Golden-run validation of the eight MachSuite-style DSA designs, with
//! result checks against Rust reference computations where cheap.

use marvel_accel::FuConfig;
use marvel_core::{DsaGolden, DsaOutcome};
use marvel_workloads::accel::{design, designs};
use marvel_workloads::util::Lcg;

const WATCHDOG: u64 = 20_000_000;

#[test]
fn all_designs_complete_fault_free() {
    for d in designs() {
        let h = (d.make)(FuConfig::default());
        let mut run = h.clone();
        match run.run(None, WATCHDOG) {
            DsaOutcome::Done { output, cycles } => {
                assert!(!output.is_empty(), "{}: empty output", d.name);
                assert!(output.iter().any(|&b| b != 0), "{}: all-zero output", d.name);
                assert!(cycles > 100, "{}: suspiciously fast ({cycles})", d.name);
                eprintln!("{:<12} {:>9} cycles, {:>6} output bytes", d.name, cycles, output.len());
            }
            o => panic!("{}: fault-free run failed: {o:?}", d.name),
        }
    }
}

#[test]
fn designs_are_deterministic() {
    for name in ["GEMM", "BFS", "MERGESORT"] {
        let d = design(name);
        let g1 = DsaGolden::prepare((d.make)(FuConfig::default()), WATCHDOG);
        let g2 = DsaGolden::prepare((d.make)(FuConfig::default()), WATCHDOG);
        assert_eq!(g1.output, g2.output, "{name}");
        assert_eq!(g1.cycles, g2.cycles, "{name}");
    }
}

#[test]
fn mergesort_sorts() {
    let d = design("MERGESORT");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), WATCHDOG);
    let vals: Vec<u64> = g.output.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(vals.len(), 1024);
    for w in vals.windows(2) {
        assert!(w[0] <= w[1], "not sorted: {} > {}", w[0], w[1]);
    }
    // Same multiset as the input.
    let mut rng = Lcg::new(0x3365);
    let mut expect: Vec<u64> = (0..1024).map(|_| rng.below(1 << 32)).collect();
    expect.sort_unstable();
    assert_eq!(vals, expect);
}

#[test]
fn gemm_matches_reference() {
    let d = design("GEMM");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), WATCHDOG);
    // Recompute C = A*B in Rust.
    let mut rng = Lcg::new(0x6E33);
    let n = 64usize;
    let a: Vec<f64> = (0..n * n).map(|_| (rng.below(2000) as f64 - 1000.0) / 1000.0).collect();
    let b: Vec<f64> = (0..n * n).map(|_| (rng.below(2000) as f64 - 1000.0) / 1000.0).collect();
    let got: Vec<f64> =
        g.output.chunks(8).map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()))).collect();
    for i in (0..n).step_by(17) {
        for j in (0..n).step_by(13) {
            // The accelerator reduces in tree order; compare with a
            // tolerance.
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            let diff = (got[i * n + j] - acc).abs();
            assert!(diff < 1e-9, "C[{i}][{j}]: {} vs {}", got[i * n + j], acc);
        }
    }
}

#[test]
fn bfs_levels_reachable() {
    let d = design("BFS");
    let g = DsaGolden::prepare((d.make)(FuConfig::default()), WATCHDOG);
    let levels: Vec<u64> =
        g.output.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    assert_eq!(levels.len(), 256);
    assert_eq!(levels[0], 0);
    // Ring edges guarantee full reachability within 12 horizons for most
    // nodes; all levels must be set or INF.
    let reached = levels.iter().filter(|&&l| l < 999).count();
    assert!(reached > 128, "only {reached} nodes reached");
}

#[test]
fn fewer_fus_slow_gemm_down() {
    let d = design("GEMM");
    let fast = DsaGolden::prepare((d.make)(FuConfig::uniform(16)), WATCHDOG);
    let slow = DsaGolden::prepare((d.make)(FuConfig::uniform(1)), WATCHDOG);
    assert!(
        slow.cycles > fast.cycles + fast.cycles / 4,
        "FU sweep must change runtime: {} vs {}",
        slow.cycles,
        fast.cycles
    );
    assert_eq!(slow.output, fast.output, "results must not depend on FU count");
}
