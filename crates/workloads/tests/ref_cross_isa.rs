//! Cross-ISA architectural equivalence under the marvel-ref reference
//! model: every MiBench-style benchmark, compiled for every ISA flavour,
//! must produce the interpreter's golden output when executed by the
//! fast architectural interpreter — with no pipeline in the loop at all.
//!
//! Together with `mibench_cross_isa.rs` (O3 core vs interpreter) this
//! closes the triangle: interpreter == reference model == O3 core, so a
//! regression in any one of the three executors is pinned to that
//! executor by which test fails.

use marvel_ir::{assemble, interp};
use marvel_isa::Isa;
use marvel_ref::{run_binary, RefRunOutcome};
use marvel_workloads::mibench;

/// Generous: the reference model retires one instruction per step, so
/// this bounds instructions, not cycles.
const MAX_STEPS: u64 = 100_000_000;

#[test]
fn suite_matches_golden_under_reference_model() {
    for name in mibench::NAMES {
        let golden = interp::run(&mibench::build(name), 100_000_000)
            .unwrap_or_else(|e| panic!("{name}: interp: {e:?}"));
        for isa in Isa::ALL {
            let bin = assemble(&mibench::build(name), isa)
                .unwrap_or_else(|e| panic!("{name}/{isa}: assemble: {e}"));
            let (outcome, console) = run_binary(&bin, MAX_STEPS);
            match outcome {
                RefRunOutcome::Halted { .. } => {}
                other => panic!("{name}/{isa}: reference model did not halt: {other:?}"),
            }
            assert_eq!(
                console,
                golden.output,
                "{name}/{isa}: reference output mismatch (got {:02x?} want {:02x?})",
                &console[..console.len().min(16)],
                &golden.output[..golden.output.len().min(16)]
            );
        }
    }
}

#[test]
fn retired_instruction_counts_are_close_across_isas() {
    // Architectural instruction counts may differ between flavours
    // (register pressure, immediate materialisation) but should stay
    // within the same order of magnitude for every workload; a blowup
    // indicates a lowering pathology rather than an ISA difference.
    for name in mibench::NAMES {
        let mut counts = Vec::new();
        for isa in Isa::ALL {
            let bin = assemble(&mibench::build(name), isa).unwrap();
            let (outcome, _) = run_binary(&bin, MAX_STEPS);
            match outcome {
                RefRunOutcome::Halted { insts } => counts.push(insts),
                other => panic!("{name}/{isa}: {other:?}"),
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            max / min.max(&1) < 8,
            "{name}: retired-instruction spread too wide across ISAs: {counts:?}"
        );
    }
}
