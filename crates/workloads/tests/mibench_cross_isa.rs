//! Cross-ISA differential execution: every benchmark, compiled for every
//! ISA flavour, must reproduce the interpreter's golden output on the
//! cycle-level out-of-order core.

use marvel_cpu::CoreConfig;
use marvel_ir::{assemble, interp};
use marvel_isa::Isa;
use marvel_soc::{RunOutcome, System};
use marvel_workloads::mibench;

const MAX_CYCLES: u64 = 60_000_000;

fn run_bench(name: &str, isa: Isa) -> (Vec<u8>, u64, usize) {
    let m = mibench::build(name);
    let bin = assemble(&m, isa).unwrap_or_else(|e| panic!("{name}/{isa}: assemble: {e}"));
    let code = bin.code_len;
    let mut sys = System::new(CoreConfig::table2(isa));
    sys.load_binary(&bin);
    match sys.run(MAX_CYCLES) {
        RunOutcome::Halted { cycles } => (sys.output().to_vec(), cycles, code),
        RunOutcome::Crashed { trap, cycles } => {
            panic!("{name}/{isa}: crashed fault-free at cycle {cycles}: {trap}")
        }
        RunOutcome::Timeout => panic!("{name}/{isa}: timeout"),
    }
}

#[test]
fn suite_matches_golden_on_all_isas() {
    let mut report = String::new();
    for name in mibench::NAMES {
        let golden = interp::run(&mibench::build(name), 100_000_000).unwrap();
        for isa in Isa::ALL {
            let (out, cycles, code) = run_bench(name, isa);
            assert_eq!(
                out,
                golden.output,
                "{name}/{isa}: output mismatch (got {:02x?} want {:02x?})",
                &out[..out.len().min(16)],
                &golden.output[..golden.output.len().min(16)]
            );
            report.push_str(&format!("{name:<14}{isa:<8}{cycles:>10} cycles {code:>8} B code\n"));
        }
    }
    eprintln!("{report}");
}
