//! Interpreter-level validation of the MiBench suite: every benchmark
//! validates, runs to completion, and produces a stable non-trivial
//! digest.

use marvel_ir::interp;
use marvel_workloads::mibench;

#[test]
fn all_benchmarks_validate_and_run() {
    for (name, m) in mibench::suite() {
        m.validate().unwrap_or_else(|e| panic!("{name}: invalid module: {e}"));
        let r = interp::run(&m, 50_000_000).unwrap_or_else(|e| panic!("{name}: interp error: {e}"));
        assert!(r.output.len() >= 8, "{name}: too little output ({} bytes)", r.output.len());
        assert!(r.output.iter().any(|&b| b != 0), "{name}: all-zero digest is suspicious");
        assert!(r.stats.insts > 2_000, "{name}: too small ({} IR insts)", r.stats.insts);
        assert!(r.stats.insts < 20_000_000, "{name}: too large ({} IR insts)", r.stats.insts);
    }
}

#[test]
fn outputs_are_deterministic() {
    for name in ["sha", "qsort", "fft"] {
        let a = interp::run(&mibench::build(name), 50_000_000).unwrap();
        let b = interp::run(&mibench::build(name), 50_000_000).unwrap();
        assert_eq!(a.output, b.output, "{name}");
    }
}

#[test]
fn qsort_actually_sorts() {
    // The digest of a sorted array must differ from the unsorted input's
    // digest; more importantly the module's own hits counter checks out in
    // patricia. Here: recompute the expected sorted digest in Rust.
    use marvel_workloads::util::Lcg;
    let mut rng = Lcg::new(0x4507);
    let mut vals: Vec<u32> = (0..1280).map(|_| rng.next_u32()).collect();
    vals.sort_unstable();
    let mut h: u64 = 0;
    for v in &vals {
        h = h.wrapping_mul(31) ^ (*v as u64);
    }
    let r = interp::run(&mibench::build("qsort"), 50_000_000).unwrap();
    assert_eq!(r.output, h.to_le_bytes().to_vec());
}

#[test]
fn sha_matches_reference() {
    // Independent Rust SHA-1 over the same input.
    use marvel_workloads::util::Lcg;
    let mut rng = Lcg::new(0x5A1);
    let data: Vec<u8> = (0..1024).map(|_| rng.next_u32() as u8).collect();
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    for blk in data.chunks(64) {
        let mut w = [0u32; 80];
        for t in 0..16 {
            w[t] = u32::from_be_bytes([blk[4 * t], blk[4 * t + 1], blk[4 * t + 2], blk[4 * t + 3]]);
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (k, f) = match t / 20 {
                0 => (0x5A827999u32, (b & c) | (!b & d)),
                1 => (0x6ED9EBA1, b ^ c ^ d),
                2 => (0x8F1BBCDC, (b & c) | (b & d) | (c & d)),
                _ => (0xCA62C1D6, b ^ c ^ d),
            };
            let tmp = a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(wt).wrapping_add(k);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut digest: u64 = 0;
    for v in h {
        digest = digest.wrapping_mul(31) ^ (v as u64);
    }
    let r = interp::run(&mibench::build("sha"), 50_000_000).unwrap();
    assert_eq!(r.output, digest.to_le_bytes().to_vec());
}

#[test]
fn adpcm_encoder_matches_reference_decoder_input() {
    // adpcmd decodes what the Rust reference encoder produced from the
    // same PCM input; its digest must be non-trivial and stable.
    let r = interp::run(&mibench::build("adpcmd"), 50_000_000).unwrap();
    let r2 = interp::run(&mibench::build("adpcmd"), 50_000_000).unwrap();
    assert_eq!(r.output, r2.output);
}
