//! SUSAN-style image kernels (smoothing, edges, corners) and
//! stringsearch.

use crate::util::{digest_bytes, digest_words, for_range, for_range_unrolled, out_u64, Lcg};
use marvel_ir::{FuncBuilder, GlobalId, Module, VReg};
use marvel_isa::{AluOp, Cond, MemWidth};

const W: i64 = 48;
const H: i64 = 32;

fn make_image(m: &mut Module) -> GlobalId {
    // Deterministic synthetic scene: gradient + blobs + noise.
    let mut rng = Lcg::new(0x5CA);
    let mut img = vec![0u8; (W * H) as usize];
    for y in 0..H {
        for x in 0..W {
            let mut v = x * 4 + y * 3;
            // two bright blobs with hard edges (for corners/edges)
            if (10..20).contains(&x) && (8..16).contains(&y) {
                v += 120;
            }
            if (28..42).contains(&x) && (18..28).contains(&y) {
                v += 90;
            }
            v += (rng.below(8)) as i64;
            img[(y * W + x) as usize] = v.clamp(0, 255) as u8;
        }
    }
    m.global("image", img, 8)
}

/// Emit `|a - b|` into a fresh vreg.
fn absdiff(b: &mut FuncBuilder, a: VReg, c: VReg) -> VReg {
    let d = b.bin(AluOp::Sub, a, c);
    let neg = b.bin(AluOp::Sub, 0, d);
    let r = b.vreg();
    let l_neg = b.new_label();
    let l_done = b.new_label();
    b.br(Cond::Lt, d, 0, l_neg);
    b.assign(r, d);
    b.jump(l_done);
    b.bind(l_neg);
    b.assign(r, neg);
    b.bind(l_done);
    r
}

/// USAN count over the 3×3 (`radius = 1`) or 5×5 (`radius = 2`)
/// neighbourhood of pixel `(x, y)`, with brightness threshold `t`.
fn usan_count(b: &mut FuncBuilder, img: VReg, x: VReg, y: VReg, radius: i64, t: i64) -> (VReg, VReg) {
    let row = b.bin(AluOp::Mul, y, W);
    let center_i = b.bin(AluOp::Add, row, x);
    let center = b.load_idx(MemWidth::B, false, img, center_i);
    let count = b.li(0);
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            if dx == 0 && dy == 0 {
                continue;
            }
            let ny = b.bin(AluOp::Add, y, dy);
            let nx = b.bin(AluOp::Add, x, dx);
            let nrow = b.bin(AluOp::Mul, ny, W);
            let ni = b.bin(AluOp::Add, nrow, nx);
            let p = b.load_idx(MemWidth::B, false, img, ni);
            let d = absdiff(b, p, center);
            let similar = b.bin(AluOp::Slt, d, t);
            let nc = b.bin(AluOp::Add, count, similar);
            b.assign(count, nc);
        }
    }
    (count, center)
}

/// `smooth` — SUSAN smoothing: brightness-similarity-gated 3×3 average.
pub fn smooth() -> Module {
    let mut m = Module::new();
    let g_img = make_image(&mut m);
    let g_out = m.global_zeroed("smoothed", (W * H) as usize, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let img = b.addr_of(g_img);
    let warm = b.li(0);
    for_range(&mut b, W * H, |b, i| {
        let v = b.load_idx(MemWidth::B, false, img, i);
        let w2 = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w2);
    });
    b.checkpoint();
    let out = b.addr_of(g_out);
    for_range(&mut b, H - 2, |b, yy| {
        let y = b.bin(AluOp::Add, yy, 1);
        for_range_unrolled(b, W - 2, 2, |b, xx| {
            let x = b.bin(AluOp::Add, xx, 1);
            let row = b.bin(AluOp::Mul, y, W);
            let ci = b.bin(AluOp::Add, row, x);
            let center = b.load_idx(MemWidth::B, false, img, ci);
            let sum = b.li(0);
            let cnt = b.li(0);
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let ny = b.bin(AluOp::Add, y, dy);
                    let nx = b.bin(AluOp::Add, x, dx);
                    let nrow = b.bin(AluOp::Mul, ny, W);
                    let ni = b.bin(AluOp::Add, nrow, nx);
                    let p = b.load_idx(MemWidth::B, false, img, ni);
                    let d = absdiff(b, p, center);
                    let l_skip = b.new_label();
                    b.br(Cond::Ge, d, 26, l_skip);
                    let s2 = b.bin(AluOp::Add, sum, p);
                    b.assign(sum, s2);
                    let c2 = b.bin(AluOp::Add, cnt, 1);
                    b.assign(cnt, c2);
                    b.bind(l_skip);
                }
            }
            // out = cnt ? sum/cnt : center
            let r = b.vreg();
            let l_zero = b.new_label();
            let l_done = b.new_label();
            b.br(Cond::Eq, cnt, 0, l_zero);
            let avg = b.bin(AluOp::Div, sum, cnt);
            b.assign(r, avg);
            b.jump(l_done);
            b.bind(l_zero);
            b.assign(r, center);
            b.bind(l_done);
            b.store_idx(MemWidth::B, r, out, ci);
        });
    });
    b.switch_cpu();
    digest_bytes(&mut b, g_out, W * H);
    b.halt();
    m.define(f, b.build());
    m
}

/// `edges` — SUSAN edge response: `max(0, g - usan_area)` over a 5×5 mask.
pub fn edges() -> Module {
    let mut m = Module::new();
    let g_img = make_image(&mut m);
    let g_out = m.global_zeroed("edgemap", (W * H) as usize, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let img = b.addr_of(g_img);
    let warm = b.li(0);
    for_range(&mut b, W * H, |b, i| {
        let v = b.load_idx(MemWidth::B, false, img, i);
        let w2 = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w2);
    });
    b.checkpoint();
    let out = b.addr_of(g_out);
    let edge_count = b.li(0);
    for_range(&mut b, H - 2, |b, yy| {
        let y = b.bin(AluOp::Add, yy, 1);
        for_range_unrolled(b, W - 2, 2, |b, xx| {
            let x = b.bin(AluOp::Add, xx, 1);
            let (count, _) = usan_count(b, img, x, y, 1, 20);
            // response = max(0, 7 - count)
            let resp = b.bin(AluOp::Sub, 7, count);
            let l_neg = b.new_label();
            let l_done = b.new_label();
            b.br(Cond::Lt, resp, 0, l_neg);
            b.jump(l_done);
            b.bind(l_neg);
            b.assign(resp, 0i64);
            b.bind(l_done);
            let row = b.bin(AluOp::Mul, y, W);
            let ci = b.bin(AluOp::Add, row, x);
            b.store_idx(MemWidth::B, resp, out, ci);
            let is_edge = b.bin(AluOp::Slt, 0, resp);
            let ec = b.bin(AluOp::Add, edge_count, is_edge);
            b.assign(edge_count, ec);
        });
    });
    b.switch_cpu();
    digest_bytes(&mut b, g_out, W * H);
    out_u64(&mut b, edge_count);
    b.halt();
    m.define(f, b.build());
    m
}

/// `corners` — SUSAN corners: pixels whose 5×5 USAN area falls below the
/// geometric corner threshold.
pub fn corners() -> Module {
    let mut m = Module::new();
    let g_img = make_image(&mut m);
    let g_out = m.global_zeroed("cornermap", (W * H) as usize, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let img = b.addr_of(g_img);
    let warm = b.li(0);
    for_range(&mut b, W * H, |b, i| {
        let v = b.load_idx(MemWidth::B, false, img, i);
        let w2 = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w2);
    });
    b.checkpoint();
    let out = b.addr_of(g_out);
    let corner_count = b.li(0);
    for_range(&mut b, H - 2, |b, yy| {
        let y = b.bin(AluOp::Add, yy, 1);
        for_range_unrolled(b, W - 2, 2, |b, xx| {
            let x = b.bin(AluOp::Add, xx, 1);
            let (count, center) = usan_count(b, img, x, y, 1, 22);
            // Corner: USAN < 3 and the centre is locally bright-ish.
            let is_small = b.bin(AluOp::Slt, count, 4);
            let bright = b.bin(AluOp::Slt, 40, center);
            let is_corner = b.bin(AluOp::And, is_small, bright);
            let row = b.bin(AluOp::Mul, y, W);
            let ci = b.bin(AluOp::Add, row, x);
            b.store_idx(MemWidth::B, is_corner, out, ci);
            let cc = b.bin(AluOp::Add, corner_count, is_corner);
            b.assign(corner_count, cc);
        });
    });
    b.switch_cpu();
    digest_bytes(&mut b, g_out, W * H);
    out_u64(&mut b, corner_count);
    b.halt();
    m.define(f, b.build());
    m
}

/// `stringsearch` — Boyer–Moore–Horspool over a 2 KiB text with 8
/// patterns.
pub fn stringsearch() -> Module {
    let mut m = Module::new();
    let mut rng = Lcg::new(0x57A);
    // Word-like text from a small alphabet.
    let alphabet = b"etaoinshrdlu ";
    let mut text = vec![0u8; 6144];
    for t in text.iter_mut() {
        *t = alphabet[rng.below(alphabet.len() as u64) as usize];
    }
    // Plant known patterns.
    let patterns: Vec<&[u8]> =
        vec![b"resilience", b"fault", b"marvel", b"inject", b"gem", b"soc", b"avf", b"zzzz"];
    let mut pos = 100usize;
    for p in patterns.iter().take(6) {
        text[pos..pos + p.len()].copy_from_slice(p);
        pos += 257;
    }
    let g_text = m.global("text", text, 8);
    // Pattern table: 8 patterns padded to 16 bytes each + length array.
    let mut pat_bytes = vec![0u8; 8 * 16];
    let mut pat_lens = vec![0u64; 8];
    for (i, p) in patterns.iter().enumerate() {
        pat_bytes[i * 16..i * 16 + p.len()].copy_from_slice(p);
        pat_lens[i] = p.len() as u64;
    }
    let g_pats = m.global("patterns", pat_bytes, 8);
    let g_lens = m.global_u64("patlens", &pat_lens);
    let g_skip = m.global_zeroed("skiptab", 256 * 8, 8);
    let g_out = m.global_zeroed("matches", 8 * 8, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let text_v = b.addr_of(g_text);
    let warm = b.li(0);
    for_range(&mut b, 6144, |b, i| {
        let v = b.load_idx(MemWidth::B, false, text_v, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let pats = b.addr_of(g_pats);
    let lens = b.addr_of(g_lens);
    let skip = b.addr_of(g_skip);
    let out = b.addr_of(g_out);

    for_range(&mut b, 8, |b, pi| {
        let plen = b.load_idx(MemWidth::D, false, lens, pi);
        let pbase_off = b.bin(AluOp::Mul, pi, 16);
        // skip table init: all = plen
        for_range_unrolled(b, 256, 8, |b, c| {
            b.store_idx(MemWidth::D, plen, skip, c);
        });
        // skip[p[j]] = plen-1-j for j in 0..plen-1
        let lm1 = b.bin(AluOp::Sub, plen, 1);
        let j = b.li(0);
        let jt = b.new_label();
        let jd = b.new_label();
        b.bind(jt);
        b.br(Cond::Ge, j, lm1, jd);
        let pj = b.bin(AluOp::Add, pbase_off, j);
        let ch = b.load_idx(MemWidth::B, false, pats, pj);
        let s = b.bin(AluOp::Sub, lm1, j);
        b.store_idx(MemWidth::D, s, skip, ch);
        let j2 = b.bin(AluOp::Add, j, 1);
        b.assign(j, j2);
        b.jump(jt);
        b.bind(jd);

        // search
        let found = b.li(0);
        let i = b.vreg();
        b.assign(i, lm1);
        let st = b.new_label();
        let sd = b.new_label();
        b.bind(st);
        b.br(Cond::Ge, i, 6144, sd);
        // compare backwards
        let k = b.vreg();
        b.assign(k, lm1);
        let ti = b.vreg();
        b.assign(ti, i);
        let ct = b.new_label();
        let mismatch = b.new_label();
        let matched = b.new_label();
        let advance = b.new_label();
        b.bind(ct);
        let tc = b.load_idx(MemWidth::B, false, text_v, ti);
        let pk = b.bin(AluOp::Add, pbase_off, k);
        let pc = b.load_idx(MemWidth::B, false, pats, pk);
        b.br(Cond::Ne, tc, pc, mismatch);
        let kz = b.new_label();
        b.br(Cond::Eq, k, 0, matched);
        b.bind(kz);
        let k2 = b.bin(AluOp::Sub, k, 1);
        b.assign(k, k2);
        let ti2 = b.bin(AluOp::Sub, ti, 1);
        b.assign(ti, ti2);
        b.jump(ct);
        b.bind(matched);
        let f2 = b.bin(AluOp::Add, found, 1);
        b.assign(found, f2);
        b.bind(mismatch);
        b.jump(advance);
        b.bind(advance);
        let last = b.load_idx(MemWidth::B, false, text_v, i);
        let adv = b.load_idx(MemWidth::D, false, skip, last);
        let i2 = b.bin(AluOp::Add, i, adv);
        b.assign(i, i2);
        b.jump(st);
        b.bind(sd);
        b.store_idx(MemWidth::D, found, out, pi);
    });
    b.switch_cpu();
    digest_words(&mut b, g_out, 8);
    b.halt();
    m.define(f, b.build());
    m
}
