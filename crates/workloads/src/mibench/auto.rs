//! Automotive/telecomm MiBench miniatures: adpcm encode/decode,
//! basicmath, bitcount, crc32.

use crate::util::{digest_bytes, digest_words, for_range, for_range_unrolled, out_u64, Lcg};
use marvel_ir::{FuncBuilder, Module, Value};
use marvel_isa::{AluOp, Cond, MemWidth};

// ---------------------------------------------------------------------
// IMA ADPCM reference tables + Rust reference codec (input generation)
// ---------------------------------------------------------------------

const INDEX_TABLE: [i64; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

fn step_table() -> Vec<i64> {
    // Standard IMA step table (89 entries).
    vec![
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66, 73,
        80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494,
        544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272, 2499,
        2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442,
        11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
    ]
}

const N_SAMPLES: usize = 1536;

fn pcm_input() -> Vec<i16> {
    // Deterministic "speech-like" signal: sum of two integer sinusoids
    // approximated by a table-free recurrence plus LCG noise.
    let mut rng = Lcg::new(0xADC);
    let mut out = Vec::with_capacity(N_SAMPLES);
    let (mut s, mut c) = (0i64, 30000i64);
    for i in 0..N_SAMPLES {
        // Rotation by a small angle in fixed point: s' = s + c>>5 ...
        s += c >> 5;
        c -= s >> 5;
        let noise = (rng.below(1024) as i64) - 512;
        let v = (s >> 2) + noise + ((i as i64 % 64) - 32) * 16;
        out.push(v.clamp(-32768, 32767) as i16);
    }
    out
}

/// Rust reference IMA ADPCM encoder (for decoder input generation).
fn ref_encode(pcm: &[i16]) -> Vec<u8> {
    let steps = step_table();
    let mut pred: i64 = 0;
    let mut index: i64 = 0;
    let mut out = Vec::new();
    let mut nibbles = Vec::new();
    for &sample in pcm {
        let step = steps[index as usize];
        let mut diff = sample as i64 - pred;
        let sign = if diff < 0 { 8 } else { 0 };
        if diff < 0 {
            diff = -diff;
        }
        let mut delta = 0i64;
        let mut vpdiff = step >> 3;
        if diff >= step {
            delta = 4;
            diff -= step;
            vpdiff += step;
        }
        if diff >= step >> 1 {
            delta |= 2;
            diff -= step >> 1;
            vpdiff += step >> 1;
        }
        if diff >= step >> 2 {
            delta |= 1;
            vpdiff += step >> 2;
        }
        if sign != 0 {
            pred -= vpdiff;
        } else {
            pred += vpdiff;
        }
        pred = pred.clamp(-32768, 32767);
        index = (index + INDEX_TABLE[(delta | sign) as usize]).clamp(0, 88);
        nibbles.push((delta | sign) as u8);
    }
    for ch in nibbles.chunks(2) {
        out.push(ch[0] | (ch.get(1).copied().unwrap_or(0) << 4));
    }
    out
}

/// `adpcme` — IMA ADPCM encoder over 512 PCM samples.
pub fn adpcme() -> Module {
    let mut m = Module::new();
    let pcm = pcm_input();
    let pcm_words: Vec<u32> = pcm.iter().map(|&s| s as u16 as u32).collect();
    let g_in = m.global_u32("pcm", &pcm_words);
    let g_steps = m.global_u64("steps", &step_table().iter().map(|&v| v as u64).collect::<Vec<_>>());
    let g_idx = m.global_u64("idxtab", &INDEX_TABLE.iter().map(|&v| v as u64).collect::<Vec<_>>());
    let g_out = m.global_zeroed("enc", N_SAMPLES / 2, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    // Warm inputs, then checkpoint.
    let inp = b.addr_of(g_in);
    let warm = b.li(0);
    for_range(&mut b, N_SAMPLES as i64, |b, i| {
        let v = b.load_idx(MemWidth::W, false, inp, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();

    let steps = b.addr_of(g_steps);
    let idxt = b.addr_of(g_idx);
    let out = b.addr_of(g_out);
    let pred = b.li(0);
    let index = b.li(0);
    for_range_unrolled(&mut b, N_SAMPLES as i64, 2, |b, i| {
        // sample: sign-extend the stored 16-bit value.
        let raw = b.load_idx(MemWidth::W, false, inp, i);
        let sh = b.bin(AluOp::Sll, raw, 48);
        let sample = b.bin(AluOp::Sra, sh, 48);
        let step = b.load_idx(MemWidth::D, false, steps, index);
        let diff0 = b.bin(AluOp::Sub, sample, pred);
        let neg = b.bin(AluOp::Slt, diff0, 0);
        let sign = b.bin(AluOp::Sll, neg, 3);
        let ndiff = b.bin(AluOp::Sub, 0, diff0);
        // |diff| via select: diff = neg ? -diff : diff
        let diff = b.vreg();
        let l_else = b.new_label();
        let l_end = b.new_label();
        b.br(Cond::Eq, neg, 0, l_else);
        b.assign(diff, ndiff);
        b.jump(l_end);
        b.bind(l_else);
        b.assign(diff, diff0);
        b.bind(l_end);

        let delta = b.li(0);
        let vpdiff = b.bin(AluOp::Srl, step, 3);
        // bit 2
        let l_no4 = b.new_label();
        b.br(Cond::Lt, diff, step, l_no4);
        b.bin_into(delta, AluOp::Or, delta, 4);
        let d2 = b.bin(AluOp::Sub, diff, step);
        b.assign(diff, d2);
        let v2 = b.bin(AluOp::Add, vpdiff, step);
        b.assign(vpdiff, v2);
        b.bind(l_no4);
        // bit 1
        let half = b.bin(AluOp::Srl, step, 1);
        let l_no2 = b.new_label();
        b.br(Cond::Lt, diff, half, l_no2);
        b.bin_into(delta, AluOp::Or, delta, 2);
        let d3 = b.bin(AluOp::Sub, diff, half);
        b.assign(diff, d3);
        let v3 = b.bin(AluOp::Add, vpdiff, half);
        b.assign(vpdiff, v3);
        b.bind(l_no2);
        // bit 0
        let quarter = b.bin(AluOp::Srl, step, 2);
        let l_no1 = b.new_label();
        b.br(Cond::Lt, diff, quarter, l_no1);
        b.bin_into(delta, AluOp::Or, delta, 1);
        let v4 = b.bin(AluOp::Add, vpdiff, quarter);
        b.assign(vpdiff, v4);
        b.bind(l_no1);

        // predictor update
        let l_pos = b.new_label();
        let l_upd = b.new_label();
        b.br(Cond::Eq, neg, 0, l_pos);
        let pm = b.bin(AluOp::Sub, pred, vpdiff);
        b.assign(pred, pm);
        b.jump(l_upd);
        b.bind(l_pos);
        let pp = b.bin(AluOp::Add, pred, vpdiff);
        b.assign(pred, pp);
        b.bind(l_upd);
        clamp(b, pred, -32768, 32767);

        // index update
        let code = b.bin(AluOp::Or, delta, sign);
        let adj = b.load_idx(MemWidth::D, false, idxt, code);
        let ni = b.bin(AluOp::Add, index, adj);
        b.assign(index, ni);
        clamp(b, index, 0, 88);

        // pack nibble
        let byte_i = b.bin(AluOp::Srl, i, 1);
        let lo_bit = b.bin(AluOp::And, i, 1);
        let old = b.load_idx(MemWidth::B, false, out, byte_i);
        let shift = b.bin(AluOp::Sll, lo_bit, 2); // 0 or 4
        let nib = b.bin(AluOp::Sll, code, shift);
        let merged = b.bin(AluOp::Or, old, nib);
        b.store_idx(MemWidth::B, merged, out, byte_i);
    });

    b.switch_cpu();
    digest_bytes(&mut b, g_out, (N_SAMPLES / 2) as i64);
    out_u64(&mut b, pred);
    b.halt();
    m.define(f, b.build());
    m
}

/// Emit `v = clamp(v, lo, hi)` on an existing vreg.
fn clamp(b: &mut FuncBuilder, v: marvel_ir::VReg, lo: i64, hi: i64) {
    let l_lo = b.new_label();
    let l_done = b.new_label();
    b.br(Cond::Lt, v, lo, l_lo);
    let l_hi = b.new_label();
    b.br(Cond::Ge, hi, v, l_done);
    b.bind(l_hi);
    b.assign(v, Value::Imm(hi));
    b.jump(l_done);
    b.bind(l_lo);
    b.assign(v, Value::Imm(lo));
    b.bind(l_done);
}

/// `adpcmd` — IMA ADPCM decoder over the reference-encoded stream.
pub fn adpcmd() -> Module {
    let mut m = Module::new();
    let enc = ref_encode(&pcm_input());
    let g_in = m.global("enc", enc, 8);
    let g_steps = m.global_u64("steps", &step_table().iter().map(|&v| v as u64).collect::<Vec<_>>());
    let g_idx = m.global_u64("idxtab", &INDEX_TABLE.iter().map(|&v| v as u64).collect::<Vec<_>>());
    let g_out = m.global_zeroed("pcm_out", N_SAMPLES * 4, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let inp = b.addr_of(g_in);
    let warm = b.li(0);
    for_range(&mut b, (N_SAMPLES / 2) as i64, |b, i| {
        let v = b.load_idx(MemWidth::B, false, inp, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();

    let steps = b.addr_of(g_steps);
    let idxt = b.addr_of(g_idx);
    let out = b.addr_of(g_out);
    let pred = b.li(0);
    let index = b.li(0);
    for_range_unrolled(&mut b, N_SAMPLES as i64, 2, |b, i| {
        let byte_i = b.bin(AluOp::Srl, i, 1);
        let lo_bit = b.bin(AluOp::And, i, 1);
        let byte = b.load_idx(MemWidth::B, false, inp, byte_i);
        let shift = b.bin(AluOp::Sll, lo_bit, 2);
        let shifted = b.bin(AluOp::Srl, byte, shift);
        let code = b.bin(AluOp::And, shifted, 0xF);

        let step = b.load_idx(MemWidth::D, false, steps, index);
        // vpdiff = step>>3 + (code&4 ? step : 0) + (code&2 ? step>>1 : 0)
        //          + (code&1 ? step>>2 : 0)
        let vpdiff = b.bin(AluOp::Srl, step, 3);
        let b4 = b.bin(AluOp::And, code, 4);
        let l_no4 = b.new_label();
        b.br(Cond::Eq, b4, 0, l_no4);
        let v2 = b.bin(AluOp::Add, vpdiff, step);
        b.assign(vpdiff, v2);
        b.bind(l_no4);
        let b2 = b.bin(AluOp::And, code, 2);
        let l_no2 = b.new_label();
        b.br(Cond::Eq, b2, 0, l_no2);
        let half = b.bin(AluOp::Srl, step, 1);
        let v3 = b.bin(AluOp::Add, vpdiff, half);
        b.assign(vpdiff, v3);
        b.bind(l_no2);
        let b1 = b.bin(AluOp::And, code, 1);
        let l_no1 = b.new_label();
        b.br(Cond::Eq, b1, 0, l_no1);
        let quarter = b.bin(AluOp::Srl, step, 2);
        let v4 = b.bin(AluOp::Add, vpdiff, quarter);
        b.assign(vpdiff, v4);
        b.bind(l_no1);

        let b8 = b.bin(AluOp::And, code, 8);
        let l_pos = b.new_label();
        let l_upd = b.new_label();
        b.br(Cond::Eq, b8, 0, l_pos);
        let pm = b.bin(AluOp::Sub, pred, vpdiff);
        b.assign(pred, pm);
        b.jump(l_upd);
        b.bind(l_pos);
        let pp = b.bin(AluOp::Add, pred, vpdiff);
        b.assign(pred, pp);
        b.bind(l_upd);
        clamp(b, pred, -32768, 32767);

        let adj = b.load_idx(MemWidth::D, false, idxt, code);
        let ni = b.bin(AluOp::Add, index, adj);
        b.assign(index, ni);
        clamp(b, index, 0, 88);

        b.store_idx(MemWidth::W, pred, out, i);
    });

    b.switch_cpu();
    digest_words(&mut b, g_out, (N_SAMPLES / 2) as i64);
    b.halt();
    m.define(f, b.build());
    m
}

/// `basicmath` — integer square roots (Newton), GCDs and fixed-point
/// angle conversions, as in MiBench's basicmath kernel mix.
pub fn basicmath() -> Module {
    let mut m = Module::new();
    let mut rng = Lcg::new(0xBA51C);
    let inputs: Vec<u64> = (0..320).map(|_| rng.below(1 << 40)).collect();
    let g_in = m.global_u64("vals", &inputs);
    let g_out = m.global_zeroed("res", 320 * 8, 8);

    let f = m.declare("main", 0);

    // isqrt(v): Newton iteration on integers.
    let isqrt = m.declare("isqrt", 1);
    {
        let mut b = FuncBuilder::new(1);
        let v = b.param(0);
        let early = b.new_label();
        b.br(Cond::Ltu, v, 2, early);
        let x = b.bin(AluOp::Srl, v, 1);
        let top = b.new_label();
        b.bind(top);
        let q = b.bin(AluOp::Div, v, x);
        let s = b.bin(AluOp::Add, x, q);
        let nx = b.bin(AluOp::Srl, s, 1);
        let cont = b.new_label();
        b.br(Cond::Ltu, nx, x, cont);
        b.ret(Some(Value::Reg(x)));
        b.bind(cont);
        b.assign(x, nx);
        b.jump(top);
        b.bind(early);
        b.ret(Some(Value::Reg(v)));
        m.define(isqrt, b.build());
    }

    // gcd(a, b): Euclid.
    let gcd = m.declare("gcd", 2);
    {
        let mut b = FuncBuilder::new(2);
        let a = b.param(0);
        let bb = b.param(1);
        let top = b.new_label();
        b.bind(top);
        let done = b.new_label();
        b.br(Cond::Eq, bb, 0, done);
        let r = b.bin(AluOp::Rem, a, bb);
        b.assign(a, bb);
        b.assign(bb, r);
        b.jump(top);
        b.bind(done);
        b.ret(Some(Value::Reg(a)));
        m.define(gcd, b.build());
    }

    let mut b = FuncBuilder::new(0);
    let inp = b.addr_of(g_in);
    let warm = b.li(0);
    for_range(&mut b, 320, |b, i| {
        let v = b.load_idx(MemWidth::D, false, inp, i);
        let w = b.bin(AluOp::Xor, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let out = b.addr_of(g_out);
    for_range_unrolled(&mut b, 320, 2, |b, i| {
        let v = b.load_idx(MemWidth::D, false, inp, i);
        let r = b.call(isqrt, &[Value::Reg(v)]);
        // deg→rad in Q16: rad = deg * 205887 >> 16  (pi/180 ≈ 205887/2^16/180... scaled)
        let rad = b.bin(AluOp::Mul, r, 205887);
        let rad16 = b.bin(AluOp::Srl, rad, 16);
        let j = b.bin(AluOp::Add, i, 1);
        let jm = b.bin(AluOp::Rem, j, 320);
        let v2 = b.load_idx(MemWidth::D, false, inp, jm);
        let v2m = b.bin(AluOp::Or, v2, 1);
        let v1m = b.bin(AluOp::Or, v, 1);
        let g = b.call(gcd, &[Value::Reg(v1m), Value::Reg(v2m)]);
        let mix = b.bin(AluOp::Xor, rad16, g);
        let mix2 = b.bin(AluOp::Add, mix, r);
        b.store_idx(MemWidth::D, mix2, out, i);
    });
    b.switch_cpu();
    digest_words(&mut b, g_out, 320);
    b.halt();
    m.define(f, b.build());
    m
}

/// `bitcount` — four bit-counting strategies over 160 words.
pub fn bitcount() -> Module {
    let mut m = Module::new();
    let mut rng = Lcg::new(0xB17C);
    let vals: Vec<u64> = (0..640).map(|_| rng.next_u64()).collect();
    // 8-bit popcount table.
    let table: Vec<u8> = (0..256u32).map(|v| v.count_ones() as u8).collect();
    let g_in = m.global_u64("vals", &vals);
    let g_tab = m.global("poptab", table, 8);
    let g_out = m.global_zeroed("counts", 4 * 8, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let inp = b.addr_of(g_in);
    let tab = b.addr_of(g_tab);
    let warm = b.li(0);
    for_range(&mut b, 640, |b, i| {
        let v = b.load_idx(MemWidth::D, false, inp, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();

    let c_kern = b.li(0);
    let c_tab = b.li(0);
    let c_shift = b.li(0);
    let c_par = b.li(0);
    for_range_unrolled(&mut b, 640, 2, |b, i| {
        let v = b.load_idx(MemWidth::D, false, inp, i);
        // Kernighan
        let x = b.vreg();
        b.assign(x, v);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        b.br(Cond::Eq, x, 0, done);
        let xm1 = b.bin(AluOp::Sub, x, 1);
        let nx = b.bin(AluOp::And, x, xm1);
        b.assign(x, nx);
        let ck = b.bin(AluOp::Add, c_kern, 1);
        b.assign(c_kern, ck);
        b.jump(top);
        b.bind(done);
        // table: 8 byte lookups
        for byte in 0..8i64 {
            let sh = b.bin(AluOp::Srl, v, byte * 8);
            let idx = b.bin(AluOp::And, sh, 0xFF);
            let c = b.load_idx(MemWidth::B, false, tab, idx);
            let ct = b.bin(AluOp::Add, c_tab, c);
            b.assign(c_tab, ct);
        }
        // shift-and-test over 16 low bits
        for bit in 0..16i64 {
            let sh = b.bin(AluOp::Srl, v, bit);
            let one = b.bin(AluOp::And, sh, 1);
            let cs = b.bin(AluOp::Add, c_shift, one);
            b.assign(c_shift, cs);
        }
        // parity fold
        let p1 = b.bin(AluOp::Srl, v, 32);
        let p2 = b.bin(AluOp::Xor, v, p1);
        let p3 = b.bin(AluOp::Srl, p2, 16);
        let p4 = b.bin(AluOp::Xor, p2, p3);
        let p5 = b.bin(AluOp::Srl, p4, 8);
        let p6 = b.bin(AluOp::Xor, p4, p5);
        let pz = b.bin(AluOp::And, p6, 0xFF);
        let pc = b.load_idx(MemWidth::B, false, tab, pz);
        let par = b.bin(AluOp::And, pc, 1);
        let cp = b.bin(AluOp::Add, c_par, par);
        b.assign(c_par, cp);
    });
    let out = b.addr_of(g_out);
    b.store(MemWidth::D, c_kern, out, 0);
    b.store(MemWidth::D, c_tab, out, 8);
    b.store(MemWidth::D, c_shift, out, 16);
    b.store(MemWidth::D, c_par, out, 24);
    b.switch_cpu();
    digest_words(&mut b, g_out, 4);
    b.halt();
    m.define(f, b.build());
    m
}

/// `crc32` — table-driven CRC-32 over a 1.5 KiB buffer.
pub fn crc32() -> Module {
    let mut m = Module::new();
    // CRC-32 (IEEE) table.
    let mut table = vec![0u32; 256];
    for (i, e) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *e = c;
    }
    let mut rng = Lcg::new(0xC3C);
    let data: Vec<u8> = (0..6144).map(|_| rng.next_u32() as u8).collect();
    let g_tab = m.global_u32("crctab", &table);
    let g_in = m.global("data", data, 8);
    let g_out = m.global_zeroed("crcs", 3 * 8, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let tab = b.addr_of(g_tab);
    let inp = b.addr_of(g_in);
    let warm = b.li(0);
    for_range(&mut b, 6144, |b, i| {
        let v = b.load_idx(MemWidth::B, false, inp, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();

    let out = b.addr_of(g_out);
    // Three passes over thirds of the buffer, like crc32 over three files.
    for part in 0..3i64 {
        let crc = b.li(0xFFFF_FFFF);
        let base_i = part * 2048;
        for_range_unrolled(&mut b, 2048, 4, |b, i| {
            let gi = b.bin(AluOp::Add, i, base_i);
            let byte = b.load_idx(MemWidth::B, false, inp, gi);
            let x = b.bin(AluOp::Xor, crc, byte);
            let idx = b.bin(AluOp::And, x, 0xFF);
            let t = b.load_idx(MemWidth::W, false, tab, idx);
            let sh = b.bin(AluOp::Srl, crc, 8);
            let sh32 = b.bin(AluOp::And, sh, 0xFF_FFFF);
            let nc = b.bin(AluOp::Xor, t, sh32);
            b.assign(crc, nc);
        });
        let fin = b.bin(AluOp::Xor, crc, 0xFFFF_FFFFi64);
        let fin32 = b.bin(AluOp::Sll, fin, 32);
        let fin32b = b.bin(AluOp::Srl, fin32, 32);
        b.store(MemWidth::D, fin32b, out, part * 8);
    }
    b.switch_cpu();
    digest_words(&mut b, g_out, 3);
    b.halt();
    m.define(f, b.build());
    m
}
