//! Network/security/consumer MiBench miniatures: dijkstra, fft, patricia,
//! qsort, rijndael (AES-128), sha (SHA-1).

use crate::util::{digest_words, digest_words32, for_range, for_range_unrolled, out_u64, Lcg};
use marvel_ir::{FuncBuilder, Module, VReg, Value};
use marvel_isa::{AluOp, Cond, MemWidth};

/// `dijkstra` — O(N²) single-source shortest paths over a dense
/// 20-node adjacency matrix, repeated from 4 sources.
pub fn dijkstra() -> Module {
    const N: i64 = 28;
    let mut m = Module::new();
    let mut rng = Lcg::new(0xD1);
    let mut adj = vec![0u32; (N * N) as usize];
    for i in 0..N {
        for j in 0..N {
            if i != j {
                adj[(i * N + j) as usize] = 1 + rng.below(99) as u32;
            }
        }
    }
    let g_adj = m.global_u32("adj", &adj);
    let g_dist = m.global_zeroed("dist", (N * 8) as usize, 8);
    let g_vis = m.global_zeroed("visited", (N * 8) as usize, 8);
    let g_out = m.global_zeroed("alldist", (3 * N * 8) as usize, 8);
    const INF: i64 = 1 << 40;

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let adj_v = b.addr_of(g_adj);
    let warm = b.li(0);
    for_range(&mut b, N * N, |b, i| {
        let v = b.load_idx(MemWidth::W, false, adj_v, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let dist = b.addr_of(g_dist);
    let vis = b.addr_of(g_vis);
    let out = b.addr_of(g_out);

    for src in 0..3i64 {
        // init
        for_range(&mut b, N, |b, i| {
            b.store_idx(MemWidth::D, INF, dist, i);
            b.store_idx(MemWidth::D, 0i64, vis, i);
        });
        b.store(MemWidth::D, 0i64, dist, src * 9 * 8);
        for_range(&mut b, N, |b, _round| {
            // find unvisited min
            let best = b.li(INF);
            let besti = b.li(-1);
            for_range_unrolled(b, N, 2, |b, i| {
                let v = b.load_idx(MemWidth::D, false, vis, i);
                let skip = b.new_label();
                b.br(Cond::Ne, v, 0, skip);
                let d = b.load_idx(MemWidth::D, false, dist, i);
                b.br(Cond::Ge, d, best, skip);
                b.assign(best, d);
                b.assign(besti, i);
                b.bind(skip);
            });
            let none = b.new_label();
            let go = b.new_label();
            b.br(Cond::Lt, besti, 0, none);
            b.jump(go);
            b.bind(none);
            b.jump(go); // no early exit construct; relaxation happens naturally
            b.bind(go);
            let l_skip_all = b.new_label();
            b.br(Cond::Lt, besti, 0, l_skip_all);
            b.store_idx(MemWidth::D, 1i64, vis, besti);
            // relax neighbours
            let rowbase = b.bin(AluOp::Mul, besti, N);
            for_range_unrolled(b, N, 2, |b, j| {
                let ai = b.bin(AluOp::Add, rowbase, j);
                let w = b.load_idx(MemWidth::W, false, adj_v, ai);
                let skip = b.new_label();
                b.br(Cond::Eq, w, 0, skip);
                let nd = b.bin(AluOp::Add, best, w);
                let dj = b.load_idx(MemWidth::D, false, dist, j);
                b.br(Cond::Ge, nd, dj, skip);
                b.store_idx(MemWidth::D, nd, dist, j);
                b.bind(skip);
            });
            b.bind(l_skip_all);
        });
        // save distances
        for_range(&mut b, N, |b, i| {
            let d = b.load_idx(MemWidth::D, false, dist, i);
            let oi = b.bin(AluOp::Add, i, src * N);
            b.store_idx(MemWidth::D, d, out, oi);
        });
    }
    b.switch_cpu();
    digest_words(&mut b, g_out, 3 * N);
    b.halt();
    m.define(f, b.build());
    m
}

/// `fft` — 64-point fixed-point (Q14) radix-2 decimation-in-time FFT with
/// a real twiddle table, plus inverse-transform check digest.
pub fn fft() -> Module {
    const N: i64 = 256;
    const LOGN: i64 = 8;
    const Q: i64 = 14;
    let mut m = Module::new();
    // Twiddles: cos/sin for k in 0..N/2, Q14.
    let mut tw = Vec::new();
    for k in 0..(N / 2) {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        tw.push(((ang.cos() * (1 << Q) as f64).round() as i64) as u64);
        tw.push(((ang.sin() * (1 << Q) as f64).round() as i64) as u64);
    }
    let g_tw = m.global_u64("twiddles", &tw);
    // Input: Q14 samples of a synthetic waveform.
    let mut rng = Lcg::new(0xFF7);
    let re: Vec<u64> = (0..N)
        .map(|i| {
            let v = ((i % 8) - 4) * 1024 + (rng.below(512) as i64 - 256);
            v as u64
        })
        .collect();
    let g_re = m.global_u64("re", &re);
    let g_im = m.global_zeroed("im", (N * 8) as usize, 8);
    let g_wre = m.global_zeroed("wre", (N * 8) as usize, 8);
    let g_wim = m.global_zeroed("wim", (N * 8) as usize, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let re_v = b.addr_of(g_re);
    let warm = b.li(0);
    for_range(&mut b, N, |b, i| {
        let v = b.load_idx(MemWidth::D, false, re_v, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let _im_v = b.addr_of(g_im);
    let wre = b.addr_of(g_wre);
    let wim = b.addr_of(g_wim);
    let tw_v = b.addr_of(g_tw);

    // Bit-reversal copy into working arrays.
    for_range(&mut b, N, |b, i| {
        // reverse LOGN bits of i
        let r = b.li(0);
        for bit in 0..LOGN {
            let sh = b.bin(AluOp::Srl, i, bit);
            let one = b.bin(AluOp::And, sh, 1);
            let up = b.bin(AluOp::Sll, one, LOGN - 1 - bit);
            let r2 = b.bin(AluOp::Or, r, up);
            b.assign(r, r2);
        }
        let v = b.load_idx(MemWidth::D, false, re_v, i);
        b.store_idx(MemWidth::D, v, wre, r);
        b.store_idx(MemWidth::D, 0i64, wim, r);
    });

    // Butterflies.
    for s in 1..=LOGN {
        let mlen = 1i64 << s;
        let half = mlen / 2;
        let step = N / mlen;
        for_range(&mut b, N / mlen, |b, blk| {
            let base = b.bin(AluOp::Mul, blk, mlen);
            let unroll = if half >= 4 { 2 } else { 1 };
            for_range_unrolled(b, half, unroll, |b, j| {
                let tw_i = b.bin(AluOp::Mul, j, step);
                let tw_off = b.bin(AluOp::Mul, tw_i, 2);
                let wr = b.load_idx(MemWidth::D, false, tw_v, tw_off);
                let two = b.bin(AluOp::Add, tw_off, 1);
                let wi = b.load_idx(MemWidth::D, false, tw_v, two);
                let i0 = b.bin(AluOp::Add, base, j);
                let i1 = b.bin(AluOp::Add, i0, half);
                let xr = b.load_idx(MemWidth::D, false, wre, i1);
                let xi = b.load_idx(MemWidth::D, false, wim, i1);
                // t = w * x (complex, Q14)
                let a = b.bin(AluOp::Mul, wr, xr);
                let c = b.bin(AluOp::Mul, wi, xi);
                let tr0 = b.bin(AluOp::Sub, a, c);
                let tr = b.bin(AluOp::Sra, tr0, Q);
                let d = b.bin(AluOp::Mul, wr, xi);
                let e = b.bin(AluOp::Mul, wi, xr);
                let ti0 = b.bin(AluOp::Add, d, e);
                let ti = b.bin(AluOp::Sra, ti0, Q);
                let ur = b.load_idx(MemWidth::D, false, wre, i0);
                let ui = b.load_idx(MemWidth::D, false, wim, i0);
                let sr = b.bin(AluOp::Add, ur, tr);
                let si = b.bin(AluOp::Add, ui, ti);
                let dr = b.bin(AluOp::Sub, ur, tr);
                let di = b.bin(AluOp::Sub, ui, ti);
                b.store_idx(MemWidth::D, sr, wre, i0);
                b.store_idx(MemWidth::D, si, wim, i0);
                b.store_idx(MemWidth::D, dr, wre, i1);
                b.store_idx(MemWidth::D, di, wim, i1);
            });
        });
    }
    b.switch_cpu();
    digest_words(&mut b, g_wre, N);
    digest_words(&mut b, g_wim, N);
    b.halt();
    m.define(f, b.build());
    m
}

/// `patricia` — bitwise trie (Patricia-style) over 32-bit keys:
/// insert 64, probe 128.
pub fn patricia() -> Module {
    let mut m = Module::new();
    let mut rng = Lcg::new(0x9A7);
    let inserts: Vec<u64> = (0..160).map(|_| rng.next_u32() as u64).collect();
    let mut probes: Vec<u64> = inserts.iter().take(160).copied().collect();
    probes.extend((0..160).map(|_| rng.next_u32() as u64));
    let g_ins = m.global_u64("inserts", &inserts);
    let g_probe = m.global_u64("probes", &probes);
    // Node pool: [key, left, right] × 512; node 0 = sentinel root.
    let g_pool = m.global_zeroed("pool", 1024 * 24, 8);
    let g_out = m.global_zeroed("hits", 16, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let ins = b.addr_of(g_ins);
    let warm = b.li(0);
    for_range(&mut b, 160, |b, i| {
        let v = b.load_idx(MemWidth::D, false, ins, i);
        let w = b.bin(AluOp::Xor, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let pool = b.addr_of(g_pool);
    let probe = b.addr_of(g_probe);
    let out = b.addr_of(g_out);
    let next_free = b.li(1);

    // Insert.
    for_range_unrolled(&mut b, 160, 2, |b, i| {
        let key = b.load_idx(MemWidth::D, false, ins, i);
        let node = b.li(0);
        let bit = b.li(31);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top);
        b.br(Cond::Lt, bit, 0, done);
        let sh = b.bin(AluOp::Srl, key, bit);
        let dir = b.bin(AluOp::And, sh, 1);
        // child slot offset = node*24 + 8 + dir*8
        let nb = b.bin(AluOp::Mul, node, 24);
        let ds = b.bin(AluOp::Mul, dir, 8);
        let slot0 = b.bin(AluOp::Add, nb, 8);
        let slot = b.bin(AluOp::Add, slot0, ds);
        let addr = b.bin(AluOp::Add, pool, slot);
        let child = b.load(MemWidth::D, false, addr, 0);
        let have = b.new_label();
        b.br(Cond::Ne, child, 0, have);
        // allocate
        let newn = b.vreg();
        b.assign(newn, next_free);
        let nf2 = b.bin(AluOp::Add, next_free, 1);
        b.assign(next_free, nf2);
        b.store(MemWidth::D, newn, addr, 0);
        b.assign(child, newn);
        b.bind(have);
        b.assign(node, child);
        let b2 = b.bin(AluOp::Sub, bit, 1);
        b.assign(bit, b2);
        // stop after 12 levels (compressed path: store key at leaf level)
        let lvl = b.bin(AluOp::Sub, 31, bit);
        b.br(Cond::Lt, lvl, 12, top);
        b.bind(done);
        let nb2 = b.bin(AluOp::Mul, node, 24);
        let kaddr = b.bin(AluOp::Add, pool, nb2);
        b.store(MemWidth::D, key, kaddr, 0);
    });

    // Probe.
    let hits = b.li(0);
    let misses = b.li(0);
    for_range_unrolled(&mut b, 320, 2, |b, i| {
        let key = b.load_idx(MemWidth::D, false, probe, i);
        let node = b.li(0);
        let bit = b.li(31);
        let fail = b.new_label();
        let check = b.new_label();
        let top = b.new_label();
        let next = b.new_label();
        b.bind(top);
        let sh = b.bin(AluOp::Srl, key, bit);
        let dir = b.bin(AluOp::And, sh, 1);
        let nb = b.bin(AluOp::Mul, node, 24);
        let ds = b.bin(AluOp::Mul, dir, 8);
        let slot0 = b.bin(AluOp::Add, nb, 8);
        let slot = b.bin(AluOp::Add, slot0, ds);
        let addr = b.bin(AluOp::Add, pool, slot);
        let child = b.load(MemWidth::D, false, addr, 0);
        b.br(Cond::Eq, child, 0, fail);
        b.assign(node, child);
        let b2 = b.bin(AluOp::Sub, bit, 1);
        b.assign(bit, b2);
        let lvl = b.bin(AluOp::Sub, 31, bit);
        b.br(Cond::Lt, lvl, 12, top);
        b.jump(check);
        b.bind(check);
        let nb2 = b.bin(AluOp::Mul, node, 24);
        let kaddr = b.bin(AluOp::Add, pool, nb2);
        let stored = b.load(MemWidth::D, false, kaddr, 0);
        b.br(Cond::Ne, stored, key, fail);
        let h2 = b.bin(AluOp::Add, hits, 1);
        b.assign(hits, h2);
        b.jump(next);
        b.bind(fail);
        let m2 = b.bin(AluOp::Add, misses, 1);
        b.assign(misses, m2);
        b.bind(next);
    });
    b.store(MemWidth::D, hits, out, 0);
    b.store(MemWidth::D, misses, out, 8);
    b.switch_cpu();
    digest_words(&mut b, g_out, 2);
    out_u64(&mut b, next_free);
    b.halt();
    m.define(f, b.build());
    m
}

/// `qsort` — recursive quicksort (Lomuto) over 220 32-bit keys.
pub fn qsort() -> Module {
    const N: i64 = 1280;
    let mut m = Module::new();
    let mut rng = Lcg::new(0x4507);
    let vals: Vec<u32> = (0..N).map(|_| rng.next_u32()).collect();
    let g_arr = m.global_u32("arr", &vals);
    let f = m.declare("main", 0);
    let qs = m.declare("qs", 3); // (base, lo, hi)

    {
        let mut b = FuncBuilder::new(3);
        let base = b.param(0);
        let lo = b.param(1);
        let hi = b.param(2);
        let done = b.new_label();
        b.br(Cond::Ge, lo, hi, done);
        // pivot = arr[hi]
        let pivot = b.load_idx(MemWidth::W, false, base, hi);
        let i = b.vreg();
        b.assign(i, lo);
        let j = b.vreg();
        b.assign(j, lo);
        let top = b.new_label();
        let skip = b.new_label();
        let endloop = b.new_label();
        b.bind(top);
        b.br(Cond::Ge, j, hi, endloop);
        let aj = b.load_idx(MemWidth::W, false, base, j);
        b.br(Cond::Geu, aj, pivot, skip);
        let ai = b.load_idx(MemWidth::W, false, base, i);
        b.store_idx(MemWidth::W, aj, base, i);
        b.store_idx(MemWidth::W, ai, base, j);
        let i2 = b.bin(AluOp::Add, i, 1);
        b.assign(i, i2);
        b.bind(skip);
        let j2 = b.bin(AluOp::Add, j, 1);
        b.assign(j, j2);
        b.jump(top);
        b.bind(endloop);
        let ai = b.load_idx(MemWidth::W, false, base, i);
        b.store_idx(MemWidth::W, pivot, base, i);
        b.store_idx(MemWidth::W, ai, base, hi);
        // recurse
        let im1 = b.bin(AluOp::Sub, i, 1);
        let l_right = b.new_label();
        b.br(Cond::Ge, lo, im1, l_right);
        b.call_void(qs, &[Value::Reg(base), Value::Reg(lo), Value::Reg(im1)]);
        b.bind(l_right);
        let ip1 = b.bin(AluOp::Add, i, 1);
        b.br(Cond::Ge, ip1, hi, done);
        b.call_void(qs, &[Value::Reg(base), Value::Reg(ip1), Value::Reg(hi)]);
        b.bind(done);
        b.ret(None);
        m.define(qs, b.build());
    }

    let mut b = FuncBuilder::new(0);
    let arr = b.addr_of(g_arr);
    let warm = b.li(0);
    for_range(&mut b, N, |b, i| {
        let v = b.load_idx(MemWidth::W, false, arr, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    b.call_void(qs, &[Value::Reg(arr), Value::Imm(0), Value::Imm(N - 1)]);
    b.switch_cpu();
    digest_words32(&mut b, g_arr, N);
    b.halt();
    m.define(f, b.build());
    m
}

// AES tables/reference for rijndael.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn aes_round_keys(key: [u8; 16]) -> Vec<u8> {
    let mut w = [0u32; 44];
    for i in 0..4 {
        w[i] = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    let mut rcon: u32 = 0x0100_0000;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t = t.rotate_left(8);
            let b = t.to_be_bytes();
            t = u32::from_be_bytes([
                SBOX[b[0] as usize],
                SBOX[b[1] as usize],
                SBOX[b[2] as usize],
                SBOX[b[3] as usize],
            ]);
            t ^= rcon;
            rcon = xtime32(rcon);
        }
        w[i] = w[i - 4] ^ t;
    }
    w.iter().flat_map(|v| v.to_be_bytes()).collect()
}

fn xtime32(v: u32) -> u32 {
    let b = (v >> 24) as u8;
    let x = if b & 0x80 != 0 { (b << 1) ^ 0x1b } else { b << 1 };
    (x as u32) << 24
}

/// `rijndael` — AES-128 ECB encryption of 8 blocks (SubBytes, ShiftRows,
/// MixColumns, AddRoundKey in IR over precomputed round keys).
pub fn rijndael() -> Module {
    let mut m = Module::new();
    let key: [u8; 16] = *b"MARVEL-HPCA-2024";
    let rk = aes_round_keys(key);
    let mut rng = Lcg::new(0xAE5);
    let pt: Vec<u8> = (0..256).map(|_| rng.next_u32() as u8).collect();
    let g_sbox = m.global("sbox", SBOX.to_vec(), 8);
    let g_rk = m.global("roundkeys", rk, 8);
    let g_state = m.global("state", pt, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let sbox = b.addr_of(g_sbox);
    let warm = b.li(0);
    for_range(&mut b, 256, |b, i| {
        let v = b.load_idx(MemWidth::B, false, sbox, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let rk_v = b.addr_of(g_rk);
    let st = b.addr_of(g_state);

    // xtime(a) = (a<<1) ^ (a&0x80 ? 0x1b : 0), all mod 256.
    for_range(&mut b, 16, |b, blk| {
        let base = b.bin(AluOp::Mul, blk, 16);
        // AddRoundKey(0)
        for i in 0..16i64 {
            let si = b.bin(AluOp::Add, base, i);
            let v = b.load_idx(MemWidth::B, false, st, si);
            let k = b.load(MemWidth::B, false, rk_v, i);
            let x = b.bin(AluOp::Xor, v, k);
            b.store_idx(MemWidth::B, x, st, si);
        }
        // Rounds 1..=9 as a runtime loop (MixColumns included);
        // round 10 (no MixColumns) is peeled below.
        let round = b.li(1);
        let r_top = b.new_label();
        b.bind(r_top);
        // SubBytes
        for i in 0..16i64 {
            let si = b.bin(AluOp::Add, base, i);
            let v = b.load_idx(MemWidth::B, false, st, si);
            let s = b.load_idx(MemWidth::B, false, sbox, v);
            b.store_idx(MemWidth::B, s, st, si);
        }
        // ShiftRows
        for r in 1..4i64 {
            let mut cells = Vec::new();
            for c in 0..4i64 {
                let si = b.bin(AluOp::Add, base, r + 4 * c);
                cells.push(b.load_idx(MemWidth::B, false, st, si));
            }
            for c in 0..4i64 {
                let si = b.bin(AluOp::Add, base, r + 4 * c);
                let src = cells[((c + r) % 4) as usize];
                b.store_idx(MemWidth::B, src, st, si);
            }
        }
        // MixColumns
        for c in 0..4i64 {
            let mut a = Vec::new();
            for r in 0..4i64 {
                let si = b.bin(AluOp::Add, base, 4 * c + r);
                a.push(b.load_idx(MemWidth::B, false, st, si));
            }
            let xt = |b: &mut FuncBuilder, v: VReg| -> VReg {
                let hi = b.bin(AluOp::And, v, 0x80);
                let sh = b.bin(AluOp::Sll, v, 1);
                let sh8 = b.bin(AluOp::And, sh, 0xFF);
                let sel = b.bin(AluOp::Sltu, 0, hi);
                let poly = b.bin(AluOp::Mul, sel, 0x1b);
                b.bin(AluOp::Xor, sh8, poly)
            };
            for r in 0..4i64 {
                let a0 = a[r as usize];
                let a1 = a[((r + 1) % 4) as usize];
                let a2 = a[((r + 2) % 4) as usize];
                let a3 = a[((r + 3) % 4) as usize];
                let x0 = xt(b, a0);
                let x1 = xt(b, a1);
                let t1 = b.bin(AluOp::Xor, x0, x1);
                let t2 = b.bin(AluOp::Xor, t1, a1);
                let t3 = b.bin(AluOp::Xor, t2, a2);
                let nv = b.bin(AluOp::Xor, t3, a3);
                let si = b.bin(AluOp::Add, base, 4 * c + r);
                b.store_idx(MemWidth::B, nv, st, si);
            }
        }
        // AddRoundKey(round)
        let rk_base = b.bin(AluOp::Mul, round, 16);
        for i in 0..16i64 {
            let si = b.bin(AluOp::Add, base, i);
            let v = b.load_idx(MemWidth::B, false, st, si);
            let ki = b.bin(AluOp::Add, rk_base, i);
            let k = b.load_idx(MemWidth::B, false, rk_v, ki);
            let x = b.bin(AluOp::Xor, v, k);
            b.store_idx(MemWidth::B, x, st, si);
        }
        let r2 = b.bin(AluOp::Add, round, 1);
        b.assign(round, r2);
        b.br(Cond::Lt, round, 10, r_top);

        // Final round: SubBytes + ShiftRows + AddRoundKey(10).
        for i in 0..16i64 {
            let si = b.bin(AluOp::Add, base, i);
            let v = b.load_idx(MemWidth::B, false, st, si);
            let s = b.load_idx(MemWidth::B, false, sbox, v);
            b.store_idx(MemWidth::B, s, st, si);
        }
        for r in 1..4i64 {
            let mut cells = Vec::new();
            for c in 0..4i64 {
                let si = b.bin(AluOp::Add, base, r + 4 * c);
                cells.push(b.load_idx(MemWidth::B, false, st, si));
            }
            for c in 0..4i64 {
                let si = b.bin(AluOp::Add, base, r + 4 * c);
                let src = cells[((c + r) % 4) as usize];
                b.store_idx(MemWidth::B, src, st, si);
            }
        }
        for i in 0..16i64 {
            let si = b.bin(AluOp::Add, base, i);
            let v = b.load_idx(MemWidth::B, false, st, si);
            let k = b.load(MemWidth::B, false, rk_v, 160 + i);
            let x = b.bin(AluOp::Xor, v, k);
            b.store_idx(MemWidth::B, x, st, si);
        }
    });
    b.switch_cpu();
    digest_words(&mut b, g_state, 32);
    b.halt();
    m.define(f, b.build());
    m
}

/// `sha` — SHA-1 over 256 bytes (4 blocks, full 80-round compression).
pub fn sha() -> Module {
    let mut m = Module::new();
    let mut rng = Lcg::new(0x5A1);
    let data: Vec<u8> = (0..1024).map(|_| rng.next_u32() as u8).collect();
    let g_in = m.global("msg", data, 8);
    let g_w = m.global_zeroed("wsched", 80 * 8, 8);
    let g_h = m.global_u64("h", &[0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0]);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let inp = b.addr_of(g_in);
    let warm = b.li(0);
    for_range(&mut b, 1024, |b, i| {
        let v = b.load_idx(MemWidth::B, false, inp, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let wv = b.addr_of(g_w);
    let hv = b.addr_of(g_h);
    const M32: i64 = 0xFFFF_FFFF;

    let rotl = |b: &mut FuncBuilder, v: VReg, n: i64| -> VReg {
        let l = b.bin(AluOp::Sll, v, n);
        let r = b.bin(AluOp::Srl, v, 32 - n);
        let o = b.bin(AluOp::Or, l, r);
        b.bin(AluOp::And, o, M32)
    };

    // Blocks as a runtime loop; within a block the four 20-round phases
    // are unrolled 4 rounds per iteration (compiler-style unrolling).
    for_range(&mut b, 16, |b, blk| {
        let blk_base = b.bin(AluOp::Mul, blk, 64);
        // Message schedule 0..16.
        for_range(b, 16, |b, t| {
            let t4 = b.bin(AluOp::Mul, t, 4);
            let idx = b.bin(AluOp::Add, blk_base, t4);
            let w = b.li(0);
            for byte in 0..4i64 {
                let bi = b.bin(AluOp::Add, idx, byte);
                let v = b.load_idx(MemWidth::B, false, inp, bi);
                let sh = b.bin(AluOp::Sll, w, 8);
                let nw = b.bin(AluOp::Or, sh, v);
                b.assign(w, nw);
            }
            b.store_idx(MemWidth::D, w, wv, t);
        });
        // Expansion 16..80.
        for_range(b, 64, |b, tt| {
            let t = b.bin(AluOp::Add, tt, 16);
            let i3 = b.bin(AluOp::Sub, t, 3);
            let i8 = b.bin(AluOp::Sub, t, 8);
            let i14 = b.bin(AluOp::Sub, t, 14);
            let i16 = b.bin(AluOp::Sub, t, 16);
            let w3 = b.load_idx(MemWidth::D, false, wv, i3);
            let w8 = b.load_idx(MemWidth::D, false, wv, i8);
            let w14 = b.load_idx(MemWidth::D, false, wv, i14);
            let w16 = b.load_idx(MemWidth::D, false, wv, i16);
            let x1 = b.bin(AluOp::Xor, w3, w8);
            let x2 = b.bin(AluOp::Xor, x1, w14);
            let x3 = b.bin(AluOp::Xor, x2, w16);
            let l = b.bin(AluOp::Sll, x3, 1);
            let r = b.bin(AluOp::Srl, x3, 31);
            let o = b.bin(AluOp::Or, l, r);
            let w = b.bin(AluOp::And, o, M32);
            b.store_idx(MemWidth::D, w, wv, t);
        });
        // Compression: 4 phases x (5 iterations x 4 unrolled rounds).
        let a = b.load(MemWidth::D, false, hv, 0);
        let bb = b.load(MemWidth::D, false, hv, 8);
        let c = b.load(MemWidth::D, false, hv, 16);
        let d = b.load(MemWidth::D, false, hv, 24);
        let e = b.load(MemWidth::D, false, hv, 32);
        for phase in 0..4i64 {
            let (k, fexpr): (i64, u8) = match phase {
                0 => (0x5A827999, 0),
                1 => (0x6ED9EBA1, 1),
                2 => (0x8F1BBCDC, 2),
                _ => (0xCA62C1D6, 1),
            };
            let t = b.li(phase * 20);
            let p_top = b.new_label();
            b.bind(p_top);
            for u in 0..4i64 {
                let fv = match fexpr {
                    0 => {
                        let t1 = b.bin(AluOp::And, bb, c);
                        let nb = b.bin(AluOp::Xor, bb, M32);
                        let t2 = b.bin(AluOp::And, nb, d);
                        b.bin(AluOp::Or, t1, t2)
                    }
                    1 => {
                        let t1 = b.bin(AluOp::Xor, bb, c);
                        b.bin(AluOp::Xor, t1, d)
                    }
                    _ => {
                        let t1 = b.bin(AluOp::And, bb, c);
                        let t2 = b.bin(AluOp::And, bb, d);
                        let t3 = b.bin(AluOp::And, c, d);
                        let t4 = b.bin(AluOp::Or, t1, t2);
                        b.bin(AluOp::Or, t4, t3)
                    }
                };
                let a5 = rotl(&mut *b, a, 5);
                let s1 = b.bin(AluOp::Add, a5, fv);
                let s2 = b.bin(AluOp::Add, s1, e);
                let tu = b.bin(AluOp::Add, t, u);
                let wt = b.load_idx(MemWidth::D, false, wv, tu);
                let s3 = b.bin(AluOp::Add, s2, wt);
                let s4 = b.bin(AluOp::Add, s3, k);
                let tmp = b.bin(AluOp::And, s4, M32);
                b.assign(e, d);
                b.assign(d, c);
                let b30 = rotl(&mut *b, bb, 30);
                b.assign(c, b30);
                b.assign(bb, a);
                b.assign(a, tmp);
            }
            let t2 = b.bin(AluOp::Add, t, 4);
            b.assign(t, t2);
            b.br(Cond::Lt, t, (phase + 1) * 20, p_top);
        }
        for (i, v) in [(0i64, a), (8, bb), (16, c), (24, d), (32, e)] {
            let old = b.load(MemWidth::D, false, hv, i);
            let s = b.bin(AluOp::Add, old, v);
            let s32 = b.bin(AluOp::And, s, M32);
            b.store(MemWidth::D, s32, hv, i);
        }
    });
    b.switch_cpu();
    digest_words(&mut b, g_h, 5);
    b.halt();
    m.define(f, b.build());
    m
}
