//! The 15-benchmark MiBench-style suite used throughout the paper's CPU
//! case studies (Section III-D).
//!
//! Every benchmark is a faithful miniature of its namesake's kernel,
//! written once against the portable IR and compiled per ISA. Each
//! program: warms its data, executes the `Checkpoint` marker (the
//! `m5_checkpoint()` analogue — campaigns snapshot here), runs its kernel,
//! emits an output digest (the SDC comparison stream) and halts.

mod auto;
mod image;
mod misc;

pub use auto::{adpcmd, adpcme, basicmath, bitcount, crc32};
pub use image::{corners, edges, smooth, stringsearch};
pub use misc::{dijkstra, fft, patricia, qsort, rijndael, sha};

use marvel_ir::Module;

/// Benchmark names in the paper's figure order.
pub const NAMES: [&str; 15] = [
    "adpcmd",
    "adpcme",
    "basicmath",
    "bitcount",
    "corners",
    "crc32",
    "dijkstra",
    "edges",
    "fft",
    "patricia",
    "qsort",
    "rijndael",
    "sha",
    "smooth",
    "stringsearch",
];

/// Build a benchmark by name.
///
/// # Panics
/// Panics on an unknown name.
pub fn build(name: &str) -> Module {
    match name {
        "adpcmd" => adpcmd(),
        "adpcme" => adpcme(),
        "basicmath" => basicmath(),
        "bitcount" => bitcount(),
        "corners" => corners(),
        "crc32" => crc32(),
        "dijkstra" => dijkstra(),
        "edges" => edges(),
        "fft" => fft(),
        "patricia" => patricia(),
        "qsort" => qsort(),
        "rijndael" => rijndael(),
        "sha" => sha(),
        "smooth" => smooth(),
        "stringsearch" => stringsearch(),
        _ => panic!("unknown benchmark {name}"),
    }
}

/// The whole suite: `(name, module)` pairs.
pub fn suite() -> Vec<(&'static str, Module)> {
    NAMES.iter().map(|&n| (n, build(n))).collect()
}
