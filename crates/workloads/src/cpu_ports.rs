//! CPU-side implementations of the four algorithms used for the paper's
//! CPU-vs-DSA comparison (Fig. 16): GEMM, BFS, FFT and KNN.
//!
//! The CPU flavour computes in integer/fixed-point (the modelled cores are
//! integer machines), while the DSA flavour uses f64 — the comparison is
//! about vulnerability and operations-per-failure, not bit-equality.
//! FFT reuses the `mibench::fft` benchmark.

use crate::util::{digest_words, for_range, Lcg};
use marvel_ir::{FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, MemWidth};

/// Number of "operations" per run, for OPS/OPF accounting.
pub fn ops_per_run(name: &str) -> f64 {
    match name {
        // 2 N^3 with N matched to each platform's problem size.
        "gemm" => 2.0 * 32f64.powi(3),
        "gemm_dsa" => 2.0 * 64f64.powi(3),
        "bfs" => 2048.0 * 2.0,     // edge relaxations
        "fft" => 5.0 * 64.0 * 6.0, // 5 N log N
        "fft_dsa" => 5.0 * 1024.0 * 10.0,
        "knn" => 256.0 * 8.0 * 10.0,
        _ => 1.0,
    }
}

/// 32×32 fixed-point (Q8) matrix multiply.
pub fn gemm_cpu() -> Module {
    const N: i64 = 32;
    let mut m = Module::new();
    let mut rng = Lcg::new(0x6E33);
    let a: Vec<u64> = (0..N * N).map(|_| (rng.below(512) as i64 - 256) as u64).collect();
    let bm: Vec<u64> = (0..N * N).map(|_| (rng.below(512) as i64 - 256) as u64).collect();
    let g_a = m.global_u64("A", &a);
    let g_b = m.global_u64("B", &bm);
    let g_c = m.global_zeroed("C", (N * N * 8) as usize, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let av = b.addr_of(g_a);
    let bv = b.addr_of(g_b);
    let warm = b.li(0);
    for_range(&mut b, N * N, |b, i| {
        let v = b.load_idx(MemWidth::D, false, av, i);
        let v2 = b.load_idx(MemWidth::D, false, bv, i);
        let s = b.bin(AluOp::Add, v, v2);
        let w = b.bin(AluOp::Add, warm, s);
        b.assign(warm, w);
    });
    b.checkpoint();
    let cv = b.addr_of(g_c);
    for_range(&mut b, N, |b, i| {
        let arow = b.bin(AluOp::Mul, i, N);
        for_range(b, N, |b, j| {
            let acc = b.li(0);
            for_range(b, N, |b, k| {
                let ai = b.bin(AluOp::Add, arow, k);
                let a = b.load_idx(MemWidth::D, false, av, ai);
                let brow = b.bin(AluOp::Mul, k, N);
                let bi = b.bin(AluOp::Add, brow, j);
                let bb = b.load_idx(MemWidth::D, false, bv, bi);
                let p = b.bin(AluOp::Mul, a, bb);
                let ps = b.bin(AluOp::Sra, p, 8);
                let na = b.bin(AluOp::Add, acc, ps);
                b.assign(acc, na);
            });
            let ci = b.bin(AluOp::Add, arow, j);
            b.store_idx(MemWidth::D, acc, cv, ci);
        });
    });
    b.switch_cpu();
    digest_words(&mut b, g_c, N * N);
    b.halt();
    m.define(f, b.build());
    m
}

/// BFS over the same 256-node/2048-edge graph shape as the DSA design.
pub fn bfs_cpu() -> Module {
    const N: i64 = 256;
    const DEG: i64 = 8;
    const INF: i64 = 999;
    let mut m = Module::new();
    let mut rng = Lcg::new(0xBF5);
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    for i in 0..N as u64 {
        nodes.push((i * DEG as u64) | ((DEG as u64) << 32));
        edges.push((i + 1) % N as u64);
        for _ in 1..DEG {
            edges.push(rng.below(N as u64));
        }
    }
    let g_nodes = m.global_u64("nodes", &nodes);
    let g_edges = m.global_u64("edges", &edges);
    let g_level = m.global_zeroed("level", (N * 8) as usize, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let ev = b.addr_of(g_edges);
    let warm = b.li(0);
    for_range(&mut b, N * DEG, |b, i| {
        let v = b.load_idx(MemWidth::D, false, ev, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let nv = b.addr_of(g_nodes);
    let lv = b.addr_of(g_level);
    for_range(&mut b, N, |b, i| {
        b.store_idx(MemWidth::D, INF, lv, i);
    });
    b.store(MemWidth::D, 0i64, lv, 0);
    for_range(&mut b, 12, |b, h| {
        for_range(b, N, |b, n| {
            let l = b.load_idx(MemWidth::D, false, lv, n);
            let skip = b.new_label();
            b.br(Cond::Ne, l, h, skip);
            let nd = b.load_idx(MemWidth::D, false, nv, n);
            let start = b.bin(AluOp::And, nd, 0xFFFF_FFFFi64);
            let count = b.bin(AluOp::Srl, nd, 32);
            let e = b.vreg();
            b.assign(e, start);
            let end = b.bin(AluOp::Add, start, count);
            let etop = b.new_label();
            let edone = b.new_label();
            b.bind(etop);
            b.br(Cond::Geu, e, end, edone);
            let tgt = b.load_idx(MemWidth::D, false, ev, e);
            let tl = b.load_idx(MemWidth::D, false, lv, tgt);
            let h1 = b.bin(AluOp::Add, h, 1);
            let noupd = b.new_label();
            b.br(Cond::Geu, h1, tl, noupd);
            b.store_idx(MemWidth::D, h1, lv, tgt);
            b.bind(noupd);
            let e2 = b.bin(AluOp::Add, e, 1);
            b.assign(e, e2);
            b.jump(etop);
            b.bind(edone);
            b.bind(skip);
        });
    });
    b.switch_cpu();
    digest_words(&mut b, g_level, N);
    b.halt();
    m.define(f, b.build());
    m
}

/// KNN force accumulation (fixed-point Q16 reciprocal via Newton) over
/// the same 256-atom/8-neighbour lists as the DSA design.
pub fn knn_cpu() -> Module {
    const ATOMS: i64 = 256;
    const NEIGH: i64 = 8;
    let mut m = Module::new();
    let mut rng = Lcg::new(0x3DD);
    let posx: Vec<u64> = (0..ATOMS).map(|_| rng.below(1000) * 655 / 100).collect(); // Q16 /100
    let posy: Vec<u64> = (0..ATOMS).map(|_| rng.below(1000) * 655 / 100).collect();
    let posz: Vec<u64> = (0..ATOMS).map(|_| rng.below(1000) * 655 / 100).collect();
    let mut nl = Vec::new();
    for i in 0..ATOMS as u64 {
        for k in 1..=NEIGH as u64 {
            nl.push((i + k * 7) % ATOMS as u64);
        }
    }
    let g_x = m.global_u64("posx", &posx);
    let g_y = m.global_u64("posy", &posy);
    let g_z = m.global_u64("posz", &posz);
    let g_nl = m.global_u64("nl", &nl);
    let g_f = m.global_zeroed("forcex", (ATOMS * 8) as usize, 8);

    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    let xv = b.addr_of(g_x);
    let warm = b.li(0);
    for_range(&mut b, ATOMS, |b, i| {
        let v = b.load_idx(MemWidth::D, false, xv, i);
        let w = b.bin(AluOp::Add, warm, v);
        b.assign(warm, w);
    });
    b.checkpoint();
    let yv = b.addr_of(g_y);
    let zv = b.addr_of(g_z);
    let nlv = b.addr_of(g_nl);
    let fv = b.addr_of(g_f);
    for_range(&mut b, ATOMS, |b, i| {
        let px = b.load_idx(MemWidth::D, false, xv, i);
        let py = b.load_idx(MemWidth::D, false, yv, i);
        let pz = b.load_idx(MemWidth::D, false, zv, i);
        let fx = b.li(0);
        let base = b.bin(AluOp::Mul, i, NEIGH);
        for_range(b, NEIGH, |b, j| {
            let slot = b.bin(AluOp::Add, base, j);
            let idx = b.load_idx(MemWidth::D, false, nlv, slot);
            let qx = b.load_idx(MemWidth::D, false, xv, idx);
            let qy = b.load_idx(MemWidth::D, false, yv, idx);
            let qz = b.load_idx(MemWidth::D, false, zv, idx);
            let dx = b.bin(AluOp::Sub, px, qx);
            let dy = b.bin(AluOp::Sub, py, qy);
            let dz = b.bin(AluOp::Sub, pz, qz);
            // r2 in Q16: (dx*dx)>>16 etc.
            let dx2 = b.bin(AluOp::Mul, dx, dx);
            let dx2s = b.bin(AluOp::Sra, dx2, 16);
            let dy2 = b.bin(AluOp::Mul, dy, dy);
            let dy2s = b.bin(AluOp::Sra, dy2, 16);
            let dz2 = b.bin(AluOp::Mul, dz, dz);
            let dz2s = b.bin(AluOp::Sra, dz2, 16);
            let s1 = b.bin(AluOp::Add, dx2s, dy2s);
            let r2 = b.bin(AluOp::Add, s1, dz2s);
            let r2nz = b.bin(AluOp::Or, r2, 1);
            // r2inv (Q16) = 2^32 / r2
            let big = b.li(1i64 << 32);
            let r2inv = b.bin(AluOp::Div, big, r2nz);
            let r4 = b.bin(AluOp::Mul, r2inv, r2inv);
            let r4s = b.bin(AluOp::Sra, r4, 16);
            let r6 = b.bin(AluOp::Mul, r4s, r2inv);
            let r6s = b.bin(AluOp::Sra, r6, 16);
            let half = b.li(1 << 15);
            let t1 = b.bin(AluOp::Sub, r6s, half);
            let pot = b.bin(AluOp::Mul, r6s, t1);
            let pots = b.bin(AluOp::Sra, pot, 16);
            let term = b.bin(AluOp::Mul, pots, dx);
            let terms = b.bin(AluOp::Sra, term, 16);
            let nf = b.bin(AluOp::Add, fx, terms);
            b.assign(fx, nf);
        });
        b.store_idx(MemWidth::D, fx, fv, i);
    });
    b.switch_cpu();
    digest_words(&mut b, g_f, ATOMS);
    b.halt();
    m.define(f, b.build());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_ir::interp;

    #[test]
    fn cpu_ports_run() {
        for (name, m) in [("gemm", gemm_cpu()), ("bfs", bfs_cpu()), ("knn", knn_cpu())] {
            m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let r = interp::run(&m, 100_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r.output.len() >= 8, "{name}");
        }
    }

    #[test]
    fn ops_table_positive() {
        for n in ["gemm", "gemm_dsa", "bfs", "fft", "fft_dsa", "knn"] {
            assert!(ops_per_run(n) > 0.0);
        }
    }
}
