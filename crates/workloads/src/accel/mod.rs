//! The eight MachSuite-style accelerator designs of the paper's Table IV,
//! with the exact SPM/RegBank component names and sizes, packaged as
//! ready-to-run [`DsaHarness`] experiments.

mod designs_a;
mod designs_b;

pub use designs_a::{bfs, fft, gemm, md_knn};
pub use designs_b::{mergesort, spmv, stencil2d, stencil3d};

use marvel_accel::{FuConfig, SramKind};
use marvel_core::DsaHarness;
use marvel_soc::Target;

/// One injectable component of a design (a Table IV row).
#[derive(Debug, Clone)]
pub struct Component {
    pub name: &'static str,
    pub target: Target,
    pub bytes: usize,
    pub kind: SramKind,
}

/// A registered DSA design.
pub struct DsaDesign {
    pub name: &'static str,
    /// The Table IV injection components.
    pub components: Vec<Component>,
    /// Build the harness (accelerator + inputs + DMA plan) for an FU
    /// configuration.
    pub make: fn(FuConfig) -> DsaHarness,
}

fn spm(name: &'static str, mem: usize, bytes: usize) -> Component {
    Component { name, target: Target::Spm { accel: 0, mem }, bytes, kind: SramKind::Spm }
}

fn regbank(name: &'static str, mem: usize, bytes: usize) -> Component {
    Component { name, target: Target::RegBank { accel: 0, mem }, bytes, kind: SramKind::RegBank }
}

/// All eight designs, Table IV order, with the paper's component sizes.
pub fn designs() -> Vec<DsaDesign> {
    vec![
        DsaDesign {
            name: "BFS",
            components: vec![regbank("EDGES", 0, 16_384), regbank("NODES", 1, 2_048)],
            make: bfs,
        },
        DsaDesign {
            name: "FFT",
            components: vec![spm("IMG", 0, 8_192), spm("REAL", 1, 8_192)],
            make: fft,
        },
        DsaDesign {
            name: "GEMM",
            components: vec![spm("MATRIX1", 0, 32_768), spm("MATRIX3", 2, 32_768)],
            make: gemm,
        },
        DsaDesign {
            name: "MD_KNN",
            components: vec![spm("NLADDR", 0, 16_384), spm("FORCEX", 1, 2_048)],
            make: md_knn,
        },
        DsaDesign {
            name: "MERGESORT",
            components: vec![spm("MAIN", 0, 8_192), spm("TEMP", 1, 8_192)],
            make: mergesort,
        },
        DsaDesign {
            name: "SPMV",
            components: vec![spm("VAL", 0, 13_328), spm("COLS", 1, 6_664)],
            make: spmv,
        },
        DsaDesign {
            name: "STENCIL2D",
            components: vec![spm("ORIG", 0, 32_768), spm("SOL", 1, 32_768), regbank("FILTER", 0, 360)],
            make: stencil2d,
        },
        DsaDesign {
            name: "STENCIL3D",
            components: vec![spm("ORIG", 0, 65_536), spm("SOL", 1, 65_536), regbank("C_VAR", 0, 8)],
            make: stencil3d,
        },
    ]
}

/// Find a design by name.
pub fn design(name: &str) -> DsaDesign {
    designs().into_iter().find(|d| d.name == name).unwrap_or_else(|| panic!("unknown design {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_sizes_match_paper() {
        let ds = designs();
        assert_eq!(ds.len(), 8);
        let find = |d: &str, c: &str| -> usize {
            ds.iter()
                .find(|x| x.name == d)
                .unwrap()
                .components
                .iter()
                .find(|x| x.name == c)
                .unwrap()
                .bytes
        };
        assert_eq!(find("BFS", "EDGES"), 16_384);
        assert_eq!(find("BFS", "NODES"), 2_048);
        assert_eq!(find("FFT", "IMG"), 8_192);
        assert_eq!(find("GEMM", "MATRIX1"), 32_768);
        assert_eq!(find("MD_KNN", "NLADDR"), 16_384);
        assert_eq!(find("MD_KNN", "FORCEX"), 2_048);
        assert_eq!(find("MERGESORT", "TEMP"), 8_192);
        assert_eq!(find("SPMV", "VAL"), 13_328);
        assert_eq!(find("SPMV", "COLS"), 6_664);
        assert_eq!(find("STENCIL2D", "FILTER"), 360);
        assert_eq!(find("STENCIL3D", "ORIG"), 65_536);
        assert_eq!(find("STENCIL3D", "C_VAR"), 8);
    }
}
