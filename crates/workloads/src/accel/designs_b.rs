//! MachSuite designs: MERGESORT, SPMV, STENCIL2D, STENCIL3D.

use crate::util::Lcg;
use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{Accelerator, DmaDir, DmaJob, FuConfig, Sram, SramKind};
use marvel_core::DsaHarness;
use marvel_isa::AluOp;

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect()
}

fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Bottom-up merge sort of 1024 u64 keys: MAIN ↔ TEMP ping-pong (faults
/// in TEMP are frequently overwritten by the merge stream — the paper's
/// observation about its lower AVF).
pub fn mergesort(fu: FuConfig) -> DsaHarness {
    const N: u64 = 1024;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let w_head = g.block(1); // width
    let m_head = g.block(2); // width, lo
    let merge = g.block(5); // width, lo, i, j, k
    let pair_latch = g.block(2); // width, lo
    let copy_head = g.block(1); // width
    let copy_body = g.block(2); // width, idx
    let w_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let one = g.konst(1);
    g.jump(w_head, &[one]);

    g.select(w_head);
    let w = g.arg(0);
    let z = g.konst(0);
    g.jump(m_head, &[w, z]);

    // m_head: set up merge of [lo, lo+w) and [lo+w, lo+2w).
    g.select(m_head);
    let w = g.arg(0);
    let lo = g.arg(1);
    let mid = g.alu(AluOp::Add, lo, w);
    g.jump(merge, &[w, lo, lo, mid, lo]);

    // merge block: one output element per execution.
    g.select(merge);
    let w = g.arg(0);
    let lo = g.arg(1);
    let i = g.arg(2);
    let j = g.arg(3);
    let k = g.arg(4);
    let mid0 = g.alu(AluOp::Add, lo, w);
    let nk = g.konst(N);
    let mid_over = g.alu(AluOp::Sltu, nk, mid0);
    let mid = g.select_val(mid_over, nk, mid0);
    let two = g.konst(2);
    let w2 = g.alu(AluOp::Mul, w, two);
    let hi0 = g.alu(AluOp::Add, lo, w2);
    let hi_over = g.alu(AluOp::Sltu, nk, hi0);
    let hi = g.select_val(hi_over, nk, hi0);
    let eight = g.konst(8);
    let one = g.konst(1);
    // take-from-left if i < mid && (j >= hi || a[i] <= a[j])
    let i_ok = g.alu(AluOp::Sltu, i, mid);
    let j_ok = g.alu(AluOp::Sltu, j, hi);
    // Clamp dead-side pointers so loads stay in bounds (values unused).
    let midm1 = g.alu(AluOp::Sub, mid, one);
    let ic = g.select_val(i_ok, i, midm1);
    let him1 = g.alu(AluOp::Sub, hi, one);
    let jc = g.select_val(j_ok, j, him1);
    let ioff = g.alu(AluOp::Mul, ic, eight);
    let joff = g.alu(AluOp::Mul, jc, eight);
    let ai = g.load(MemRef::Spm(0), 8, ioff);
    let aj = g.load(MemRef::Spm(0), 8, joff);
    let right_smaller = g.alu(AluOp::Sltu, aj, ai);
    let left_le = g.alu(AluOp::Sltu, right_smaller, one); // ai <= aj
    let right_dead = g.alu(AluOp::Sltu, j_ok, one);
    let left_pref = g.alu(AluOp::Or, left_le, right_dead);
    let take_left = g.alu(AluOp::And, i_ok, left_pref);
    let val = g.select_val(take_left, ai, aj);
    let koff = g.alu(AluOp::Mul, k, eight);
    g.store(MemRef::Spm(1), 8, koff, val);
    let i2 = g.alu(AluOp::Add, i, take_left);
    let take_right = g.alu(AluOp::Sltu, take_left, one);
    let j2 = g.alu(AluOp::Add, j, take_right);
    let k2 = g.alu(AluOp::Add, k, one);
    let more = g.alu(AluOp::Sltu, k2, hi);
    g.branch(more, merge, &[w, lo, i2, j2, k2], pair_latch, &[w, lo]);

    g.select(pair_latch);
    let w = g.arg(0);
    let lo = g.arg(1);
    let two = g.konst(2);
    let w2 = g.alu(AluOp::Mul, w, two);
    let lo2 = g.alu(AluOp::Add, lo, w2);
    let nk = g.konst(N);
    let more_pairs = g.alu(AluOp::Sltu, lo2, nk);
    g.branch(more_pairs, m_head, &[w, lo2], copy_head, &[w]);

    g.select(copy_head);
    let w = g.arg(0);
    let z = g.konst(0);
    g.jump(copy_body, &[w, z]);

    g.select(copy_body);
    let w = g.arg(0);
    let idx = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, idx, eight);
    let v = g.load(MemRef::Spm(1), 8, off);
    g.store(MemRef::Spm(0), 8, off, v);
    let one = g.konst(1);
    let idx2 = g.alu(AluOp::Add, idx, one);
    let nk = g.konst(N);
    let more = g.alu(AluOp::Sltu, idx2, nk);
    g.branch(more, copy_body, &[w, idx2], w_latch, &[w]);

    g.select(w_latch);
    let w = g.arg(0);
    let two = g.konst(2);
    let w2 = g.alu(AluOp::Mul, w, two);
    let nk = g.konst(N);
    let more = g.alu(AluOp::Sltu, w2, nk);
    g.branch(more, w_head, &[w2], done, &[]);

    g.select(done);
    g.finish();

    let mut rng = Lcg::new(0x3365);
    let vals: Vec<u64> = (0..N).map(|_| rng.below(1 << 32)).collect();

    let accel = Accelerator::new(
        "mergesort",
        g.build().expect("mergesort cdfg"),
        fu,
        vec![Sram::new("MAIN", SramKind::Spm, 8_192, 2), Sram::new("TEMP", SramKind::Spm, 8_192, 2)],
        vec![],
        0,
    );
    let mut ram = vec![0u8; 32 * 1024];
    ram[0..8_192].copy_from_slice(&u64s_to_bytes(&vals));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![DmaJob {
            dir: DmaDir::ToSram,
            ram_off: 0,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: 8_192,
        }],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 16_384,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: 8_192,
        }],
        args: vec![],
        output: 16_384..24_576,
    }
}

/// SPMV (ELLPACK-like CRS): `y[r] = Σ val[k] · x[cols[k]]` with the
/// Table IV VAL/COLS geometries (1666 nnz over 256 rows). Corrupted COLS
/// entries index outside the dense vector — the crash component.
pub fn spmv(fu: FuConfig) -> DsaHarness {
    const ROWS: u64 = 256;
    const NNZ: u64 = 1666;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let r_head = g.block(1);
    let k_body = g.block(4); // r, k, end, acc
    let r_latch = g.block(2); // r, acc
    let done = g.block(0);

    g.select(entry);
    let z = g.konst(0);
    g.jump(r_head, &[z]);

    g.select(r_head);
    let r = g.arg(0);
    let four = g.konst(4);
    let roff = g.alu(AluOp::Mul, r, four);
    let start = g.load(MemRef::Spm(2), 4, roff);
    let roff2 = g.alu(AluOp::Add, roff, four);
    let end = g.load(MemRef::Spm(2), 4, roff2);
    let fz = g.fconst(0.0);
    g.jump(k_body, &[r, start, end, fz]);

    g.select(k_body);
    let r = g.arg(0);
    let k = g.arg(1);
    let end = g.arg(2);
    let acc = g.arg(3);
    let no_work = g.alu(AluOp::Sltu, k, end);
    let eight = g.konst(8);
    let four = g.konst(4);
    // Clamp the nnz index when the row is empty (value unused).
    let one = g.konst(1);
    let endm1 = g.alu(AluOp::Sub, end, one);
    let kc = g.select_val(no_work, k, endm1);
    let voff = g.alu(AluOp::Mul, kc, eight);
    let v = g.load(MemRef::Spm(0), 8, voff);
    let coff = g.alu(AluOp::Mul, kc, four);
    let col = g.load(MemRef::Spm(1), 4, coff);
    let xoff = g.alu(AluOp::Mul, col, eight);
    let x = g.load(MemRef::Spm(3), 8, xoff);
    let prod = g.fmul(v, x);
    let facc = g.fadd(acc, prod);
    let acc2 = g.select_val(no_work, facc, acc);
    let k2 = g.alu(AluOp::Add, k, one);
    let more = g.alu(AluOp::Sltu, k2, end);
    g.branch(more, k_body, &[r, k2, end, acc2], r_latch, &[r, acc2]);

    g.select(r_latch);
    let r = g.arg(0);
    let acc = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, r, eight);
    g.store(MemRef::Spm(4), 8, off, acc);
    let one = g.konst(1);
    let r2 = g.alu(AluOp::Add, r, one);
    let nr = g.konst(ROWS);
    let more = g.alu(AluOp::Sltu, r2, nr);
    g.branch(more, r_head, &[r2], done, &[]);

    g.select(done);
    g.finish();

    // Matrix: NNZ entries distributed over ROWS rows.
    let mut rng = Lcg::new(0x59A7);
    let mut rowptr = vec![0u32; ROWS as usize + 1];
    let base = (NNZ / ROWS) as u32;
    let extra = (NNZ % ROWS) as u32;
    for r in 0..ROWS as usize {
        let cnt = base + u32::from((r as u32) < extra);
        rowptr[r + 1] = rowptr[r] + cnt;
    }
    let vals: Vec<f64> = (0..NNZ).map(|_| (rng.below(2000) as f64 - 1000.0) / 500.0).collect();
    let cols: Vec<u32> = (0..NNZ).map(|_| rng.below(ROWS) as u32).collect();
    let x: Vec<f64> = (0..ROWS).map(|_| (rng.below(1000) as f64) / 250.0).collect();

    let accel = Accelerator::new(
        "spmv",
        g.build().expect("spmv cdfg"),
        fu,
        vec![
            Sram::new("VAL", SramKind::Spm, 13_328, 2),
            Sram::new("COLS", SramKind::Spm, 6_664, 2),
            Sram::new("ROWPTR", SramKind::Spm, 1_028, 2),
            Sram::new("VEC", SramKind::Spm, 2_048, 2),
            Sram::new("OUT", SramKind::Spm, 2_048, 2),
        ],
        vec![],
        0,
    );
    let mut ram = vec![0u8; 64 * 1024];
    ram[0..13_328].copy_from_slice(&f64s_to_bytes(&vals));
    ram[16_384..16_384 + 6_664].copy_from_slice(&u32s_to_bytes(&cols));
    ram[24_576..24_576 + 1_028].copy_from_slice(&u32s_to_bytes(&rowptr));
    ram[28_672..30_720].copy_from_slice(&f64s_to_bytes(&x));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 13_328 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 16_384, mem: MemRef::Spm(1), mem_off: 0, len: 6_664 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 24_576, mem: MemRef::Spm(2), mem_off: 0, len: 1_028 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 28_672, mem: MemRef::Spm(3), mem_off: 0, len: 2_048 },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 40_960,
            mem: MemRef::Spm(4),
            mem_off: 0,
            len: 2_048,
        }],
        args: vec![],
        output: 40_960..43_008,
    }
}

/// 2-D 3×3 convolution over a 64×64 f64 grid; the 360-byte FILTER
/// register bank holds 45 coefficient slots of which the kernel reads 9
/// (faults in dead slots mask, as with any unused cell).
pub fn stencil2d(fu: FuConfig) -> DsaHarness {
    const DIM: u64 = 64;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let r_head = g.block(1);
    let c_body = g.block(2);
    let r_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let one = g.konst(1);
    g.jump(r_head, &[one]);

    g.select(r_head);
    let r = g.arg(0);
    let one = g.konst(1);
    g.jump(c_body, &[r, one]);

    g.select(c_body);
    let r = g.arg(0);
    let c = g.arg(1);
    let eight = g.konst(8);
    let dim = g.konst(DIM);
    let acc0 = g.fconst(0.0);
    let mut acc = acc0;
    for (fi, (dr, dc)) in
        [(-1i64, -1i64), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1), (1, -1), (1, 0), (1, 1)]
            .iter()
            .enumerate()
    {
        let drk = g.konst(*dr as u64);
        let dck = g.konst(*dc as u64);
        let rr = g.alu(AluOp::Add, r, drk);
        let cc = g.alu(AluOp::Add, c, dck);
        let row = g.alu(AluOp::Mul, rr, dim);
        let idx = g.alu(AluOp::Add, row, cc);
        let off = g.alu(AluOp::Mul, idx, eight);
        let v = g.load(MemRef::Spm(0), 8, off);
        let foff = g.konst((fi as u64) * 8);
        let coef = g.load(MemRef::RegBank(0), 8, foff);
        let p = g.fmul(v, coef);
        acc = g.fadd(acc, p);
    }
    let row = g.alu(AluOp::Mul, r, dim);
    let idx = g.alu(AluOp::Add, row, c);
    let off = g.alu(AluOp::Mul, idx, eight);
    g.store(MemRef::Spm(1), 8, off, acc);
    let one = g.konst(1);
    let c2 = g.alu(AluOp::Add, c, one);
    let dm1 = g.konst(DIM - 1);
    let more = g.alu(AluOp::Sltu, c2, dm1);
    g.branch(more, c_body, &[r, c2], r_latch, &[r]);

    g.select(r_latch);
    let r = g.arg(0);
    let one = g.konst(1);
    let r2 = g.alu(AluOp::Add, r, one);
    let dm1 = g.konst(DIM - 1);
    let more = g.alu(AluOp::Sltu, r2, dm1);
    g.branch(more, r_head, &[r2], done, &[]);

    g.select(done);
    g.finish();

    let mut rng = Lcg::new(0x57E2);
    let orig: Vec<f64> = (0..DIM * DIM).map(|_| rng.below(256) as f64).collect();
    let mut filter = vec![0.0f64; 45];
    let coeffs = [0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625];
    filter[..9].copy_from_slice(&coeffs);

    let accel = Accelerator::new(
        "stencil2d",
        g.build().expect("stencil2d cdfg"),
        fu,
        vec![Sram::new("ORIG", SramKind::Spm, 32_768, 4), Sram::new("SOL", SramKind::Spm, 32_768, 2)],
        vec![Sram::new("FILTER", SramKind::RegBank, 360, 2)],
        0,
    );
    let mut ram = vec![0u8; 128 * 1024];
    ram[0..32_768].copy_from_slice(&f64s_to_bytes(&orig));
    ram[32_768..32_768 + 360].copy_from_slice(&f64s_to_bytes(&filter));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 32_768 },
            DmaJob {
                dir: DmaDir::ToSram,
                ram_off: 32_768,
                mem: MemRef::RegBank(0),
                mem_off: 0,
                len: 360,
            },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 65_536,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: 32_768,
        }],
        args: vec![],
        output: 65_536..98_304,
    }
}

/// 3-D 7-point stencil over a 32×16×16 grid with a single scalar
/// coefficient in the C_VAR register bank (8 bytes — Table IV).
pub fn stencil3d(fu: FuConfig) -> DsaHarness {
    const X: u64 = 32;
    const Y: u64 = 16;
    const Z: u64 = 16;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let x_head = g.block(1);
    let y_head = g.block(2);
    let z_body = g.block(3);
    let y_latch = g.block(2);
    let x_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let one = g.konst(1);
    g.jump(x_head, &[one]);

    g.select(x_head);
    let x = g.arg(0);
    let one = g.konst(1);
    g.jump(y_head, &[x, one]);

    g.select(y_head);
    let x = g.arg(0);
    let y = g.arg(1);
    let one = g.konst(1);
    g.jump(z_body, &[x, y, one]);

    g.select(z_body);
    let x = g.arg(0);
    let y = g.arg(1);
    let z = g.arg(2);
    let eight = g.konst(8);
    let yk = g.konst(Y);
    let zk = g.konst(Z);
    // idx = (x*Y + y)*Z + z
    let xy = g.alu(AluOp::Mul, x, yk);
    let xyy = g.alu(AluOp::Add, xy, y);
    let xyz = g.alu(AluOp::Mul, xyy, zk);
    let idx = g.alu(AluOp::Add, xyz, z);
    let coff = g.alu(AluOp::Mul, idx, eight);
    let center = g.load(MemRef::Spm(0), 8, coff);
    let czero = g.konst(0);
    let cvar = g.load(MemRef::RegBank(0), 8, czero);
    let mut nsum = None;
    let strides = [Y * Z, Y * Z, Z, Z, 1, 1];
    let signs = [1i64, -1, 1, -1, 1, -1];
    for k in 0..6 {
        let s = g.konst((signs[k] * strides[k] as i64) as u64);
        let nidx = g.alu(AluOp::Add, idx, s);
        let noff = g.alu(AluOp::Mul, nidx, eight);
        let v = g.load(MemRef::Spm(0), 8, noff);
        nsum = Some(match nsum {
            None => v,
            Some(p) => g.fadd(p, v),
        });
    }
    let nsum = nsum.unwrap();
    let cprod = g.fmul(center, cvar);
    let res = g.fadd(cprod, nsum);
    g.store(MemRef::Spm(1), 8, coff, res);
    let one = g.konst(1);
    let z2 = g.alu(AluOp::Add, z, one);
    let zm1 = g.konst(Z - 1);
    let more = g.alu(AluOp::Sltu, z2, zm1);
    g.branch(more, z_body, &[x, y, z2], y_latch, &[x, y]);

    g.select(y_latch);
    let x = g.arg(0);
    let y = g.arg(1);
    let one = g.konst(1);
    let y2 = g.alu(AluOp::Add, y, one);
    let ym1 = g.konst(Y - 1);
    let more = g.alu(AluOp::Sltu, y2, ym1);
    g.branch(more, y_head, &[x, y2], x_latch, &[x]);

    g.select(x_latch);
    let x = g.arg(0);
    let one = g.konst(1);
    let x2 = g.alu(AluOp::Add, x, one);
    let xm1 = g.konst(X - 1);
    let more = g.alu(AluOp::Sltu, x2, xm1);
    g.branch(more, x_head, &[x2], done, &[]);

    g.select(done);
    g.finish();

    let mut rng = Lcg::new(0x57E3);
    let orig: Vec<f64> = (0..X * Y * Z).map(|_| rng.below(100) as f64).collect();
    let cvar = [(-6.0f64)];

    let accel = Accelerator::new(
        "stencil3d",
        g.build().expect("stencil3d cdfg"),
        fu,
        vec![Sram::new("ORIG", SramKind::Spm, 65_536, 4), Sram::new("SOL", SramKind::Spm, 65_536, 2)],
        vec![Sram::new("C_VAR", SramKind::RegBank, 8, 1)],
        0,
    );
    let mut ram = vec![0u8; 256 * 1024];
    ram[0..65_536].copy_from_slice(&f64s_to_bytes(&orig));
    ram[65_536..65_544].copy_from_slice(&f64s_to_bytes(&cvar));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 65_536 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 65_536, mem: MemRef::RegBank(0), mem_off: 0, len: 8 },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 131_072,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: 65_536,
        }],
        args: vec![],
        output: 131_072..196_608,
    }
}
