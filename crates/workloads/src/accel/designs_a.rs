//! MachSuite designs: BFS, FFT, GEMM, MD-KNN.

use crate::util::Lcg;
use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{Accelerator, DmaDir, DmaJob, FuConfig, Sram, SramKind};
use marvel_core::DsaHarness;
use marvel_isa::AluOp;

fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_bits().to_le_bytes()).collect()
}

fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// BFS over a 256-node / 2048-edge graph held in the EDGES and NODES
/// register banks (Table IV), frontier propagation by horizon. Faults in
/// either bank corrupt traversal *indices*, which is why this design is
/// crash-dominated in the paper.
pub fn bfs(fu: FuConfig) -> DsaHarness {
    const N: u64 = 256;
    const DEG: u64 = 8;
    const INF: u64 = 999;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let h_head = g.block(1);
    let n_head = g.block(2);
    let e_init = g.block(2);
    let e_body = g.block(4);
    let n_latch = g.block(2);
    let h_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let z = g.konst(0);
    g.jump(h_head, &[z]);

    g.select(h_head);
    let h = g.arg(0);
    let z = g.konst(0);
    g.jump(n_head, &[h, z]);

    g.select(n_head);
    let h = g.arg(0);
    let n = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, n, eight);
    let lvl = g.load(MemRef::Spm(0), 8, off);
    let is_h = g.alu(AluOp::Sub, lvl, h);
    let zero = g.konst(0);
    let ne = g.alu(AluOp::Sltu, zero, is_h);
    g.branch(ne, n_latch, &[h, n], e_init, &[h, n]);

    g.select(e_init);
    let h = g.arg(0);
    let n = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, n, eight);
    let nd = g.load(MemRef::RegBank(1), 8, off);
    let mask = g.konst(0xFFFF_FFFF);
    let start = g.alu(AluOp::And, nd, mask);
    let c32 = g.konst(32);
    let count = g.alu(AluOp::Srl, nd, c32);
    let end = g.alu(AluOp::Add, start, count);
    let any = g.alu(AluOp::Sltu, start, end);
    g.branch(any, e_body, &[h, n, start, end], n_latch, &[h, n]);

    g.select(e_body);
    let h = g.arg(0);
    let n = g.arg(1);
    let e = g.arg(2);
    let end = g.arg(3);
    let eight = g.konst(8);
    let eoff = g.alu(AluOp::Mul, e, eight);
    let tgt = g.load(MemRef::RegBank(0), 8, eoff);
    let toff = g.alu(AluOp::Mul, tgt, eight);
    let tl = g.load(MemRef::Spm(0), 8, toff);
    let one = g.konst(1);
    let h1 = g.alu(AluOp::Add, h, one);
    let better = g.alu(AluOp::Sltu, h1, tl);
    let new_lvl = g.select_val(better, h1, tl);
    g.store(MemRef::Spm(0), 8, toff, new_lvl);
    let e2 = g.alu(AluOp::Add, e, one);
    let more = g.alu(AluOp::Sltu, e2, end);
    g.branch(more, e_body, &[h, n, e2, end], n_latch, &[h, n]);

    g.select(n_latch);
    let h = g.arg(0);
    let n = g.arg(1);
    let one = g.konst(1);
    let n2 = g.alu(AluOp::Add, n, one);
    let nn = g.konst(N);
    let more = g.alu(AluOp::Sltu, n2, nn);
    g.branch(more, n_head, &[h, n2], h_latch, &[h]);

    g.select(h_latch);
    let h = g.arg(0);
    let one = g.konst(1);
    let h2 = g.alu(AluOp::Add, h, one);
    let maxh = g.konst(12);
    let more = g.alu(AluOp::Sltu, h2, maxh);
    g.branch(more, h_head, &[h2], done, &[]);

    g.select(done);
    g.finish();

    // Graph: node i owns edges [i*DEG, (i+1)*DEG); targets pseudo-random
    // with a guaranteed ring edge for connectivity.
    let mut rng = Lcg::new(0xBF5);
    let mut nodes = Vec::with_capacity(N as usize);
    let mut edges = Vec::with_capacity((N * DEG) as usize);
    for i in 0..N {
        nodes.push((i * DEG) | (DEG << 32));
        edges.push((i + 1) % N);
        for _ in 1..DEG {
            edges.push(rng.below(N));
        }
    }
    let mut levels = vec![INF; N as usize];
    levels[0] = 0;

    let accel = Accelerator::new(
        "bfs",
        g.build().expect("bfs cdfg"),
        fu,
        vec![Sram::new("LEVEL", SramKind::Spm, 2048, 2)],
        vec![
            Sram::new("EDGES", SramKind::RegBank, 16_384, 2),
            Sram::new("NODES", SramKind::RegBank, 2_048, 2),
        ],
        0,
    );
    let mut ram = vec![0u8; 64 * 1024];
    ram[0..16_384].copy_from_slice(&u64s_to_bytes(&edges));
    ram[16_384..18_432].copy_from_slice(&u64s_to_bytes(&nodes));
    ram[18_432..20_480].copy_from_slice(&u64s_to_bytes(&levels));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::RegBank(0), mem_off: 0, len: 16_384 },
            DmaJob {
                dir: DmaDir::ToSram,
                ram_off: 16_384,
                mem: MemRef::RegBank(1),
                mem_off: 0,
                len: 2_048,
            },
            DmaJob { dir: DmaDir::ToSram, ram_off: 18_432, mem: MemRef::Spm(0), mem_off: 0, len: 2_048 },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 32_768,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: 2_048,
        }],
        args: vec![],
        output: 32_768..34_816,
    }
}

/// 1024-point strided (DIF) FFT over the REAL/IMG scratchpads; twiddles
/// in a third (non-target) SPM. Output in bit-reversed order, as in
/// MachSuite's fft/strided.
pub fn fft(fu: FuConfig) -> DsaHarness {
    const N: u64 = 1024;
    const LOGN: u64 = 10;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let s_head = g.block(1);
    let body = g.block(2);
    let s_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let z = g.konst(0);
    g.jump(s_head, &[z]);

    g.select(s_head);
    let s = g.arg(0);
    let z = g.konst(0);
    g.jump(body, &[s, z]);

    g.select(body);
    let s = g.arg(0);
    let j = g.arg(1);
    // span = N >> (s+1); log_span = LOGN-1-s
    let one = g.konst(1);
    let s1 = g.alu(AluOp::Add, s, one);
    let nk = g.konst(N);
    let span = g.alu(AluOp::Srl, nk, s1);
    let logn1 = g.konst(LOGN - 1);
    let log_span = g.alu(AluOp::Sub, logn1, s);
    // grp = j >> log_span; pos = j & (span-1)
    let grp = g.alu(AluOp::Srl, j, log_span);
    let span_m1 = g.alu(AluOp::Sub, span, one);
    let pos = g.alu(AluOp::And, j, span_m1);
    // even = grp*2*span + pos; odd = even + span
    let two = g.konst(2);
    let g2 = g.alu(AluOp::Mul, grp, two);
    let g2s = g.alu(AluOp::Mul, g2, span);
    let even = g.alu(AluOp::Add, g2s, pos);
    let odd = g.alu(AluOp::Add, even, span);
    let eight = g.konst(8);
    let e_off = g.alu(AluOp::Mul, even, eight);
    let o_off = g.alu(AluOp::Mul, odd, eight);
    let er = g.load(MemRef::Spm(1), 8, e_off);
    let ei = g.load(MemRef::Spm(0), 8, e_off);
    let or_ = g.load(MemRef::Spm(1), 8, o_off);
    let oi = g.load(MemRef::Spm(0), 8, o_off);
    // twiddle index = pos << s; table holds (cos, sin) pairs.
    let tw_i = g.alu(AluOp::Sll, pos, s);
    let sixteen = g.konst(16);
    let tw_off = g.alu(AluOp::Mul, tw_i, sixteen);
    let wr = g.load(MemRef::Spm(2), 8, tw_off);
    let tw_off2 = g.alu(AluOp::Add, tw_off, eight);
    let wi = g.load(MemRef::Spm(2), 8, tw_off2);
    // e' = e + o ; d = e - o ; o' = d * w
    let sr = g.fadd(er, or_);
    let si = g.fadd(ei, oi);
    let dr = g.fsub(er, or_);
    let di = g.fsub(ei, oi);
    let m1 = g.fmul(dr, wr);
    let m2 = g.fmul(di, wi);
    let m3 = g.fmul(dr, wi);
    let m4 = g.fmul(di, wr);
    let nr = g.fsub(m1, m2);
    let ni = g.fadd(m3, m4);
    g.store(MemRef::Spm(1), 8, e_off, sr);
    g.store(MemRef::Spm(0), 8, e_off, si);
    g.store(MemRef::Spm(1), 8, o_off, nr);
    g.store(MemRef::Spm(0), 8, o_off, ni);
    let j2 = g.alu(AluOp::Add, j, one);
    let half = g.konst(N / 2);
    let more = g.alu(AluOp::Sltu, j2, half);
    g.branch(more, body, &[s, j2], s_latch, &[s]);

    g.select(s_latch);
    let s = g.arg(0);
    let one = g.konst(1);
    let s2 = g.alu(AluOp::Add, s, one);
    let ln = g.konst(LOGN);
    let more = g.alu(AluOp::Sltu, s2, ln);
    g.branch(more, s_head, &[s2], done, &[]);

    g.select(done);
    g.finish();

    // Twiddles (cos, sin) for k in 0..N/2.
    let mut tw = Vec::with_capacity(N as usize);
    for k in 0..N / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        tw.push(ang.cos());
        tw.push(ang.sin());
    }
    let mut rng = Lcg::new(0xFF7 + 1);
    let re: Vec<f64> =
        (0..N).map(|i| ((i % 16) as f64 - 8.0) + (rng.below(100) as f64) / 100.0).collect();
    let im = vec![0.0f64; N as usize];

    let accel = Accelerator::new(
        "fft",
        g.build().expect("fft cdfg"),
        fu,
        vec![
            Sram::new("IMG", SramKind::Spm, 8_192, 2),
            Sram::new("REAL", SramKind::Spm, 8_192, 2),
            Sram::new("TWID", SramKind::Spm, 8_192, 2),
        ],
        vec![],
        0,
    );
    let mut ram = vec![0u8; 64 * 1024];
    ram[0..8_192].copy_from_slice(&f64s_to_bytes(&re));
    ram[8_192..16_384].copy_from_slice(&f64s_to_bytes(&im));
    ram[16_384..24_576].copy_from_slice(&f64s_to_bytes(&tw));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(1), mem_off: 0, len: 8_192 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 8_192, mem: MemRef::Spm(0), mem_off: 0, len: 8_192 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 16_384, mem: MemRef::Spm(2), mem_off: 0, len: 8_192 },
        ],
        jobs_out: vec![
            DmaJob { dir: DmaDir::ToRam, ram_off: 32_768, mem: MemRef::Spm(1), mem_off: 0, len: 8_192 },
            DmaJob { dir: DmaDir::ToRam, ram_off: 40_960, mem: MemRef::Spm(0), mem_off: 0, len: 8_192 },
        ],
        args: vec![],
        output: 32_768..49_152,
    }
}

/// 64×64 f64 matrix multiply, inner (k) loop unrolled ×8 so the FU count
/// genuinely bounds throughput — the Fig. 17 design-space axis.
pub fn gemm(fu: FuConfig) -> DsaHarness {
    const N: u64 = 64;
    const UNROLL: u64 = 8;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let i_head = g.block(1);
    let j_head = g.block(2);
    let k_body = g.block(4);
    let j_latch = g.block(3);
    let i_latch = g.block(1);
    let done = g.block(0);

    g.select(entry);
    let z = g.konst(0);
    g.jump(i_head, &[z]);

    g.select(i_head);
    let i = g.arg(0);
    let z = g.konst(0);
    g.jump(j_head, &[i, z]);

    g.select(j_head);
    let i = g.arg(0);
    let j = g.arg(1);
    let z = g.konst(0);
    let fz = g.fconst(0.0);
    g.jump(k_body, &[i, j, z, fz]);

    g.select(k_body);
    let i = g.arg(0);
    let j = g.arg(1);
    let k = g.arg(2);
    let acc = g.arg(3);
    let row_stride = g.konst(N * 8);
    let eight = g.konst(8);
    let a_row = g.alu(AluOp::Mul, i, row_stride);
    let j8 = g.alu(AluOp::Mul, j, eight);
    let mut prods = Vec::new();
    for u in 0..UNROLL {
        let uk = g.konst(u);
        let ku = g.alu(AluOp::Add, k, uk);
        let ku8 = g.alu(AluOp::Mul, ku, eight);
        let a_off = g.alu(AluOp::Add, a_row, ku8);
        let a = g.load(MemRef::Spm(0), 8, a_off);
        let b_row = g.alu(AluOp::Mul, ku, row_stride);
        let b_off = g.alu(AluOp::Add, b_row, j8);
        let bb = g.load(MemRef::Spm(1), 8, b_off);
        prods.push(g.fmul(a, bb));
    }
    // Reduction tree.
    let s01 = g.fadd(prods[0], prods[1]);
    let s23 = g.fadd(prods[2], prods[3]);
    let s45 = g.fadd(prods[4], prods[5]);
    let s67 = g.fadd(prods[6], prods[7]);
    let s0123 = g.fadd(s01, s23);
    let s4567 = g.fadd(s45, s67);
    let sum = g.fadd(s0123, s4567);
    let acc2 = g.fadd(acc, sum);
    let un = g.konst(UNROLL);
    let k2 = g.alu(AluOp::Add, k, un);
    let nk = g.konst(N);
    let more = g.alu(AluOp::Sltu, k2, nk);
    g.branch(more, k_body, &[i, j, k2, acc2], j_latch, &[i, j, acc2]);

    g.select(j_latch);
    let i = g.arg(0);
    let j = g.arg(1);
    let acc = g.arg(2);
    let row_stride = g.konst(N * 8);
    let eight = g.konst(8);
    let c_row = g.alu(AluOp::Mul, i, row_stride);
    let j8 = g.alu(AluOp::Mul, j, eight);
    let c_off = g.alu(AluOp::Add, c_row, j8);
    g.store(MemRef::Spm(2), 8, c_off, acc);
    let one = g.konst(1);
    let j2 = g.alu(AluOp::Add, j, one);
    let nk = g.konst(N);
    let more = g.alu(AluOp::Sltu, j2, nk);
    g.branch(more, j_head, &[i, j2], i_latch, &[i]);

    g.select(i_latch);
    let i = g.arg(0);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let nk = g.konst(N);
    let more = g.alu(AluOp::Sltu, i2, nk);
    g.branch(more, i_head, &[i2], done, &[]);

    g.select(done);
    g.finish();

    let mut rng = Lcg::new(0x6E33);
    let a: Vec<f64> = (0..N * N).map(|_| (rng.below(2000) as f64 - 1000.0) / 1000.0).collect();
    let bmat: Vec<f64> = (0..N * N).map(|_| (rng.below(2000) as f64 - 1000.0) / 1000.0).collect();

    let accel = Accelerator::new(
        "gemm",
        g.build().expect("gemm cdfg"),
        fu,
        vec![
            Sram::new("MATRIX1", SramKind::Spm, 32_768, 4),
            Sram::new("MATRIX2", SramKind::Spm, 32_768, 4),
            Sram::new("MATRIX3", SramKind::Spm, 32_768, 2),
        ],
        vec![],
        0,
    );
    let mut ram = vec![0u8; 128 * 1024];
    ram[0..32_768].copy_from_slice(&f64s_to_bytes(&a));
    ram[32_768..65_536].copy_from_slice(&f64s_to_bytes(&bmat));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 32_768 },
            DmaJob {
                dir: DmaDir::ToSram,
                ram_off: 32_768,
                mem: MemRef::Spm(1),
                mem_off: 0,
                len: 32_768,
            },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 65_536,
            mem: MemRef::Spm(2),
            mem_off: 0,
            len: 32_768,
        }],
        args: vec![],
        output: 65_536..98_304,
    }
}

/// MD-KNN: Lennard-Jones x-force accumulation over 8-neighbour lists
/// (NLADDR holds neighbour *indices* — fault-corrupted entries walk out
/// of the position arrays).
pub fn md_knn(fu: FuConfig) -> DsaHarness {
    const ATOMS: u64 = 256;
    const NEIGH: u64 = 8;
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let a_head = g.block(1);
    let n_body = g.block(6); // i, j, fx, px, py, pz
    let a_latch = g.block(2); // i, fx
    let done = g.block(0);

    g.select(entry);
    let z = g.konst(0);
    g.jump(a_head, &[z]);

    g.select(a_head);
    let i = g.arg(0);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let px = g.load(MemRef::Spm(2), 8, off);
    let py = g.load(MemRef::Spm(3), 8, off);
    let pz = g.load(MemRef::Spm(4), 8, off);
    let z = g.konst(0);
    let fz = g.fconst(0.0);
    g.jump(n_body, &[i, z, fz, px, py, pz]);

    g.select(n_body);
    let i = g.arg(0);
    let j = g.arg(1);
    let fx = g.arg(2);
    let px = g.arg(3);
    let py = g.arg(4);
    let pz = g.arg(5);
    let eight = g.konst(8);
    let nk = g.konst(NEIGH);
    let base = g.alu(AluOp::Mul, i, nk);
    let slot = g.alu(AluOp::Add, base, j);
    let soff = g.alu(AluOp::Mul, slot, eight);
    let idx = g.load(MemRef::Spm(0), 8, soff);
    let poff = g.alu(AluOp::Mul, idx, eight);
    let qx = g.load(MemRef::Spm(2), 8, poff);
    let qy = g.load(MemRef::Spm(3), 8, poff);
    let qz = g.load(MemRef::Spm(4), 8, poff);
    let dx = g.fsub(px, qx);
    let dy = g.fsub(py, qy);
    let dz = g.fsub(pz, qz);
    let dx2 = g.fmul(dx, dx);
    let dy2 = g.fmul(dy, dy);
    let dz2 = g.fmul(dz, dz);
    let s1 = g.fadd(dx2, dy2);
    let r2 = g.fadd(s1, dz2);
    let one = g.fconst(1.0);
    let r2inv = g.fdiv(one, r2);
    let r4 = g.fmul(r2inv, r2inv);
    let r6 = g.fmul(r4, r2inv);
    let half = g.fconst(0.5);
    let t1 = g.fsub(r6, half);
    let pot = g.fmul(r6, t1);
    let fterm = g.fmul(pot, dx);
    let fx2 = g.fadd(fx, fterm);
    let ik = g.konst(1);
    let j2 = g.alu(AluOp::Add, j, ik);
    let more = g.alu(AluOp::Sltu, j2, nk);
    g.branch(more, n_body, &[i, j2, fx2, px, py, pz], a_latch, &[i, fx2]);

    g.select(a_latch);
    let i = g.arg(0);
    let fx = g.arg(1);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    g.store(MemRef::Spm(1), 8, off, fx);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let na = g.konst(ATOMS);
    let more = g.alu(AluOp::Sltu, i2, na);
    g.branch(more, a_head, &[i2], done, &[]);

    g.select(done);
    g.finish();

    let mut rng = Lcg::new(0x3DD);
    let posx: Vec<f64> = (0..ATOMS).map(|_| rng.below(1000) as f64 / 100.0).collect();
    let posy: Vec<f64> = (0..ATOMS).map(|_| rng.below(1000) as f64 / 100.0).collect();
    let posz: Vec<f64> = (0..ATOMS).map(|_| rng.below(1000) as f64 / 100.0).collect();
    let mut nl = Vec::with_capacity((ATOMS * NEIGH) as usize);
    for i in 0..ATOMS {
        for k in 1..=NEIGH {
            nl.push((i + k * 7) % ATOMS);
        }
    }

    let accel = Accelerator::new(
        "md_knn",
        g.build().expect("md cdfg"),
        fu,
        vec![
            Sram::new("NLADDR", SramKind::Spm, 16_384, 2),
            Sram::new("FORCEX", SramKind::Spm, 2_048, 2),
            Sram::new("POSX", SramKind::Spm, 2_048, 2),
            Sram::new("POSY", SramKind::Spm, 2_048, 2),
            Sram::new("POSZ", SramKind::Spm, 2_048, 2),
        ],
        vec![],
        0,
    );
    let mut ram = vec![0u8; 64 * 1024];
    ram[0..16_384].copy_from_slice(&u64s_to_bytes(&nl));
    ram[16_384..18_432].copy_from_slice(&f64s_to_bytes(&posx));
    ram[18_432..20_480].copy_from_slice(&f64s_to_bytes(&posy));
    ram[20_480..22_528].copy_from_slice(&f64s_to_bytes(&posz));
    DsaHarness {
        accel,
        ram,
        jobs_in: vec![
            DmaJob { dir: DmaDir::ToSram, ram_off: 0, mem: MemRef::Spm(0), mem_off: 0, len: 16_384 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 16_384, mem: MemRef::Spm(2), mem_off: 0, len: 2_048 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 18_432, mem: MemRef::Spm(3), mem_off: 0, len: 2_048 },
            DmaJob { dir: DmaDir::ToSram, ram_off: 20_480, mem: MemRef::Spm(4), mem_off: 0, len: 2_048 },
        ],
        jobs_out: vec![DmaJob {
            dir: DmaDir::ToRam,
            ram_off: 32_768,
            mem: MemRef::Spm(1),
            mem_off: 0,
            len: 2_048,
        }],
        args: vec![],
        output: 32_768..34_816,
    }
}
