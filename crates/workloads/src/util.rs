//! Shared workload-construction helpers: deterministic input generation,
//! counted loops and output digests.

use marvel_ir::{FuncBuilder, GlobalId, VReg, Value};
use marvel_isa::{AluOp, Cond, MemWidth};

/// Deterministic 64-bit LCG used to generate workload inputs at build
/// time (Numerical Recipes constants).
#[derive(Debug, Clone)]
pub struct Lcg(pub u64);

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Emit a counted loop `for i in 0..n { body(b, i) }`.
///
/// The loop always executes at least once; callers must pass `n >= 1`.
pub fn for_range(b: &mut FuncBuilder, n: i64, body: impl FnOnce(&mut FuncBuilder, VReg)) {
    debug_assert!(n >= 1);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    body(b, i);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, n, top);
}

/// Emit a counted loop unrolled by `factor` (compiler-style unrolling —
/// grows the code footprint the way `-O2`/`-funroll-loops` builds of the
/// real MiBench do). `n` must be a positive multiple of `factor`.
pub fn for_range_unrolled(
    b: &mut FuncBuilder,
    n: i64,
    factor: i64,
    body: impl Fn(&mut FuncBuilder, VReg),
) {
    assert!(factor >= 1 && n >= factor && n % factor == 0);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    for u in 0..factor {
        let iu = if u == 0 { i } else { b.bin(AluOp::Add, i, u) };
        body(b, iu);
    }
    let i2 = b.bin(AluOp::Add, i, factor);
    b.assign(i, i2);
    b.br(Cond::Lt, i, n, top);
}

/// Emit a counted loop with a runtime bound held in a vreg.
pub fn for_range_reg(b: &mut FuncBuilder, n: VReg, body: impl FnOnce(&mut FuncBuilder, VReg)) {
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    body(b, i);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, n, top);
}

/// Emit the 8 bytes of `v` to the console (LSB first).
pub fn out_u64(b: &mut FuncBuilder, v: impl Into<Value> + Copy) {
    for k in 0..8i64 {
        let sh = b.bin(AluOp::Srl, v, k * 8);
        b.out_byte(sh);
    }
}

/// Mix `n_words` 64-bit words starting at `global` into a digest register
/// (`h = h*31 ^ word`) and emit it. This is the standard benchmark output
/// the SDC comparison keys on.
pub fn digest_words(b: &mut FuncBuilder, base_of: GlobalId, n_words: i64) {
    let base = b.addr_of(base_of);
    let h = b.li(0);
    for_range(b, n_words, |b, i| {
        let w = b.load_idx(MemWidth::D, false, base, i);
        let h31 = b.bin(AluOp::Mul, h, 31);
        let hx = b.bin(AluOp::Xor, h31, w);
        b.assign(h, hx);
    });
    out_u64(b, h);
}

/// Same digest over 32-bit words.
pub fn digest_words32(b: &mut FuncBuilder, base_of: GlobalId, n_words: i64) {
    let base = b.addr_of(base_of);
    let h = b.li(0);
    for_range(b, n_words, |b, i| {
        let w = b.load_idx(MemWidth::W, false, base, i);
        let h31 = b.bin(AluOp::Mul, h, 31);
        let hx = b.bin(AluOp::Xor, h31, w);
        b.assign(h, hx);
    });
    out_u64(b, h);
}

/// Same digest over bytes.
pub fn digest_bytes(b: &mut FuncBuilder, base_of: GlobalId, n: i64) {
    let base = b.addr_of(base_of);
    let h = b.li(0);
    for_range(b, n, |b, i| {
        let w = b.load_idx(MemWidth::B, false, base, i);
        let h31 = b.bin(AluOp::Mul, h, 31);
        let hx = b.bin(AluOp::Xor, h31, w);
        b.assign(h, hx);
    });
    out_u64(b, h);
}

#[cfg(test)]
mod tests {
    use super::*;
    use marvel_ir::{interp, Module};

    #[test]
    fn lcg_deterministic_and_bounded() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            assert!(a.below(17) < 17);
        }
    }

    #[test]
    fn for_range_and_digest() {
        let mut m = Module::new();
        let g = m.global_u64("t", &[1, 2, 3, 4]);
        let f = m.declare("main", 0);
        let mut b = FuncBuilder::new(0);
        digest_words(&mut b, g, 4);
        b.halt();
        m.define(f, b.build());
        let r = interp::run(&m, 100_000).unwrap();
        // h = ((((0*31^1)*31^2)*31^3)*31^4)
        let mut h: u64 = 0;
        for w in [1u64, 2, 3, 4] {
            h = h.wrapping_mul(31) ^ w;
        }
        assert_eq!(r.output, h.to_le_bytes().to_vec());
    }
}
