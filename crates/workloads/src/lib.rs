//! # marvel-workloads
//!
//! Workload content for the gem5-MARVEL reproduction:
//!
//! * [`mibench`] — the paper's 15-benchmark MiBench-style CPU suite
//!   (Section III-D), written once against the portable IR and compiled
//!   per ISA;
//! * [`accel`] — the 8 MachSuite-style accelerator designs of Table IV
//!   with the paper's exact SPM/RegBank geometries;
//! * [`cpu_ports`] — CPU implementations of GEMM/BFS/FFT/KNN for the
//!   CPU-vs-DSA comparison (Fig. 16).

pub mod accel;
pub mod cpu_ports;
pub mod mibench;
pub mod util;
