//! Heterogeneous SoC integration tests: host CPU + hosted accelerator +
//! DMA + interrupt controller, on every ISA flavour, including fault
//! injection into accelerator structures *through the SoC*.

use marvel_accel::air::{CdfgBuilder, MemRef};
use marvel_accel::{Accelerator, DmaDir, FuConfig, Sram, SramKind};
use marvel_ir::memmap::{ACCEL_MMR_BASE, IRQ_FLAG_ADDR};
use marvel_ir::{assemble, FuncBuilder, Module};
use marvel_isa::{AluOp, Cond, Isa, MemWidth};
use marvel_soc::{DmaPlanEntry, HostedAccel, RunOutcome, System, Target};

/// OUT[i] = IN[i] + 100 for 8 u64 values.
fn accel_add100() -> Accelerator {
    let mut g = CdfgBuilder::new();
    let entry = g.block(0);
    let body = g.block(1);
    let done = g.block(0);
    g.select(entry);
    let z = g.konst(0);
    g.jump(body, &[z]);
    g.select(body);
    let i = g.arg(0);
    let eight = g.konst(8);
    let off = g.alu(AluOp::Mul, i, eight);
    let v = g.load(MemRef::Spm(0), 8, off);
    let hundred = g.konst(100);
    let v2 = g.alu(AluOp::Add, v, hundred);
    g.store(MemRef::Spm(1), 8, off, v2);
    let one = g.konst(1);
    let i2 = g.alu(AluOp::Add, i, one);
    let n = g.konst(8);
    let more = g.alu(AluOp::Sltu, i2, n);
    g.branch(more, body, &[i2], done, &[]);
    g.select(done);
    g.finish();
    Accelerator::new(
        "add100",
        g.build().unwrap(),
        FuConfig::default(),
        vec![Sram::new("IN", SramKind::Spm, 64, 2), Sram::new("OUT", SramKind::Spm, 64, 2)],
        vec![],
        0,
    )
}

fn host_module() -> Module {
    let mut m = Module::new();
    let input = m.global_u64("in", &[1, 2, 3, 4, 5, 6, 7, 8]);
    let output = m.global_zeroed("out", 64, 8);
    let f = m.declare("main", 0);
    let mut b = FuncBuilder::new(0);
    b.checkpoint();
    let mmr = b.li(ACCEL_MMR_BASE as i64);
    let inp = b.addr_of(input);
    let outp = b.addr_of(output);
    b.store(MemWidth::D, inp, mmr, 16); // data0: input RAM address
    b.store(MemWidth::D, outp, mmr, 24); // data1: output RAM address
    b.store(MemWidth::D, 1, mmr, 0); // CTRL.start
    let flag = b.li(IRQ_FLAG_ADDR as i64);
    let wait = b.new_label();
    b.bind(wait);
    let fv = b.load(MemWidth::D, false, flag, 0);
    b.br(Cond::Eq, fv, 0, wait);
    let i = b.li(0);
    let top = b.new_label();
    b.bind(top);
    let v = b.load_idx(MemWidth::D, false, outp, i);
    b.out_byte(v);
    let i2 = b.bin(AluOp::Add, i, 1);
    b.assign(i, i2);
    b.br(Cond::Lt, i, 8, top);
    b.halt();
    m.define(f, b.build());
    m
}

fn hosted() -> HostedAccel {
    HostedAccel::new(
        accel_add100(),
        vec![DmaPlanEntry {
            dir: DmaDir::ToSram,
            addr_arg: 0,
            mem: MemRef::Spm(0),
            mem_off: 0,
            len: 64,
        }],
        vec![DmaPlanEntry { dir: DmaDir::ToRam, addr_arg: 1, mem: MemRef::Spm(1), mem_off: 0, len: 64 }],
        vec![],
    )
}

fn build_system(isa: Isa) -> System {
    let mut sys = System::new(marvel_cpu::CoreConfig::table2(isa));
    sys.add_accel(hosted());
    let bin = assemble(&host_module(), isa).unwrap();
    sys.load_binary(&bin);
    sys
}

#[test]
fn interrupt_driven_offload_on_every_isa() {
    // The same SoC composition works with GIC (Arm), PLIC (RISC-V) and
    // APIC (x86) delivery — the paper's Section III-C portability claim.
    for isa in Isa::ALL {
        let mut sys = build_system(isa);
        let out = sys.run(3_000_000);
        assert!(matches!(out, RunOutcome::Halted { .. }), "{isa}: {out:?}");
        assert_eq!(sys.output(), &[101, 102, 103, 104, 105, 106, 107, 108], "{isa}");
        assert_eq!(sys.bus.irq_ctrl.claims, 1, "{isa}: exactly one claim");
        assert_eq!(sys.bus.irq_ctrl.completions, 1, "{isa}: exactly one completion");
    }
}

#[test]
fn spm_fault_through_soc_corrupts_offloaded_result() {
    // Flip a bit of the input SPM after DMA-in: the host-visible result
    // must change — end-to-end propagation through accelerator + DMA +
    // interrupt + host readback.
    let isa = Isa::RiscV;
    let mut sys = build_system(isa);
    // Run until the accelerator has its input (DMA done => busy compute or
    // later); tick a bounded number of cycles then inject.
    for _ in 0..400 {
        sys.tick();
    }
    sys.flip(Target::Spm { accel: 0, mem: 0 }, 5); // IN[0] bit 5: 1 -> 33
    let out = sys.run(3_000_000);
    assert!(matches!(out, RunOutcome::Halted { .. }), "{out:?}");
    // Golden would be 101..108; a corrupted IN[0] shows as 133 (if the
    // flip landed before the compute read) or 101 (already consumed).
    let first = sys.output()[0];
    assert!(first == 133 || first == 101, "unexpected first byte {first}");
    assert_eq!(&sys.output()[1..], &[102, 103, 104, 105, 106, 107, 108]);
}

#[test]
fn mmr_bit_len_and_injection_via_system() {
    let sys = build_system(Isa::Arm);
    let t = Target::Mmr { accel: 0 };
    assert!(sys.bit_len(t) >= 4 * 64, "CTRL+STATUS+data regs");
    let mut sys2 = sys.clone();
    sys2.flip(t, 64 + 1); // STATUS bit 1
    assert!(sys2.fault_fate(t).is_some());
}

#[test]
fn checkpoint_captures_accelerator_state() {
    let isa = Isa::Arm;
    let mut sys = build_system(isa);
    // Advance into the middle of the offload, checkpoint, then verify
    // both copies finish identically (accelerator state included).
    for _ in 0..500 {
        sys.tick();
    }
    let mut a = sys.clone();
    let mut b = sys.clone();
    let ra = a.run(3_000_000);
    let rb = b.run(3_000_000);
    assert_eq!(ra, rb);
    assert_eq!(a.output(), b.output());
    assert_eq!(a.cycle, b.cycle);
}
