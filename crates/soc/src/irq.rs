//! Interrupt controllers: GIC-flavour (Arm), PLIC-flavour (RISC-V) and
//! APIC-flavour (x86).
//!
//! The paper's port of gem5-SALAM from Arm to RISC-V hinged on translating
//! GIC interrupt delivery to the PLIC; this module models the three
//! controllers behind one register-block interface so the same SoC
//! composition works for every ISA flavour. The programming models differ
//! in where claim/complete live:
//!
//! | controller | claim (read)      | complete (write)   |
//! |------------|-------------------|--------------------|
//! | GIC        | `0x08` (IAR)      | `0x10` (EOIR)      |
//! | PLIC       | `0x08` (claim)    | `0x08` (complete)  |
//! | APIC       | `0x08` (vector)   | `0x10` (EOI)       |
//!
//! Offset `0x00` always reads the raw pending mask.

use marvel_isa::Isa;

/// Controller flavour (selected by the SoC from the CPU ISA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqCtrlKind {
    Gic,
    Plic,
    Apic,
}

impl IrqCtrlKind {
    /// The natural controller for an ISA flavour.
    pub fn for_isa(isa: Isa) -> Self {
        match isa {
            Isa::Arm => IrqCtrlKind::Gic,
            Isa::RiscV => IrqCtrlKind::Plic,
            Isa::X86 => IrqCtrlKind::Apic,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            IrqCtrlKind::Gic => "GIC",
            IrqCtrlKind::Plic => "PLIC",
            IrqCtrlKind::Apic => "APIC",
        }
    }

    /// Byte offset of the claim register.
    pub fn claim_offset(self) -> u64 {
        0x08
    }

    /// Byte offset of the complete/EOI register.
    pub fn complete_offset(self) -> u64 {
        match self {
            IrqCtrlKind::Plic => 0x08,
            IrqCtrlKind::Gic | IrqCtrlKind::Apic => 0x10,
        }
    }
}

/// A small level-style interrupt controller with claim/complete semantics.
/// Sources are numbered 1..=32 (0 means "no interrupt", as in the PLIC).
#[derive(Debug, Clone)]
pub struct IrqController {
    pub kind: IrqCtrlKind,
    pending: u32,
    in_service: u32,
    pub claims: u64,
    pub completions: u64,
}

impl IrqController {
    pub fn new(kind: IrqCtrlKind) -> Self {
        IrqController { kind, pending: 0, in_service: 0, claims: 0, completions: 0 }
    }

    /// Post (edge) interrupt from source `src` (1-based).
    pub fn post(&mut self, src: u32) {
        assert!((1..=32).contains(&src));
        self.pending |= 1 << (src - 1);
    }

    /// Level seen by the CPU: any pending, not-in-service source.
    pub fn line(&self) -> bool {
        self.pending & !self.in_service != 0
    }

    /// Claim the highest-priority (lowest-numbered) pending source.
    /// Returns 0 when nothing is pending.
    pub fn claim(&mut self) -> u32 {
        let avail = self.pending & !self.in_service;
        if avail == 0 {
            return 0;
        }
        let src = avail.trailing_zeros() + 1;
        self.in_service |= 1 << (src - 1);
        self.pending &= !(1 << (src - 1));
        self.claims += 1;
        src
    }

    /// Complete servicing `src`.
    pub fn complete(&mut self, src: u32) {
        if (1..=32).contains(&src) {
            self.in_service &= !(1 << (src - 1));
            self.completions += 1;
        }
    }

    /// Functional-state equality for the convergence exit: pending and
    /// in-service masks steer delivery; the claim/completion tallies are
    /// observational.
    pub fn state_eq(&self, pristine: &IrqController) -> bool {
        self.kind == pristine.kind
            && self.pending == pristine.pending
            && self.in_service == pristine.in_service
    }

    /// Register-block read at byte offset `off`.
    pub fn mmio_read(&mut self, off: u64) -> Option<u64> {
        if off == 0 {
            Some(self.pending as u64)
        } else if off == self.kind.claim_offset() {
            Some(self.claim() as u64)
        } else {
            None
        }
    }

    /// Register-block write at byte offset `off`.
    pub fn mmio_write(&mut self, off: u64, val: u64) -> Option<()> {
        if off == self.kind.complete_offset() {
            self.complete(val as u32);
            Some(())
        } else if off == 0x18 {
            // Software-triggered interrupt (test aid).
            self.post((val as u32).clamp(1, 32));
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_match_isas() {
        assert_eq!(IrqCtrlKind::for_isa(Isa::Arm), IrqCtrlKind::Gic);
        assert_eq!(IrqCtrlKind::for_isa(Isa::RiscV), IrqCtrlKind::Plic);
        assert_eq!(IrqCtrlKind::for_isa(Isa::X86), IrqCtrlKind::Apic);
        assert_eq!(IrqCtrlKind::Plic.complete_offset(), IrqCtrlKind::Plic.claim_offset());
        assert_ne!(IrqCtrlKind::Gic.complete_offset(), IrqCtrlKind::Gic.claim_offset());
    }

    #[test]
    fn post_claim_complete_cycle() {
        let mut c = IrqController::new(IrqCtrlKind::Plic);
        assert!(!c.line());
        c.post(3);
        assert!(c.line());
        let src = c.claim();
        assert_eq!(src, 3);
        assert!(!c.line(), "claimed interrupt no longer asserts the line");
        c.complete(3);
        assert_eq!(c.completions, 1);
    }

    #[test]
    fn priority_is_lowest_source_first() {
        let mut c = IrqController::new(IrqCtrlKind::Gic);
        c.post(5);
        c.post(2);
        assert_eq!(c.claim(), 2);
        assert_eq!(c.claim(), 5);
        assert_eq!(c.claim(), 0);
    }

    #[test]
    fn mmio_interface() {
        let mut c = IrqController::new(IrqCtrlKind::Plic);
        c.post(1);
        assert_eq!(c.mmio_read(0), Some(1));
        assert_eq!(c.mmio_read(8), Some(1)); // claim source 1
        assert!(c.mmio_write(8, 1).is_some()); // complete
        assert_eq!(c.mmio_read(0x30), None);
    }
}
